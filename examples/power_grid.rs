//! Supply-grid IR-drop analysis — the workload the paper's introduction
//! uses to motivate RC reduction: "Supply line resistance and
//! capacitance … can lead to large variations of the supply voltage
//! during digital switching".
//!
//! Builds a 20×20 power grid with corner pads and 12 phase-staggered
//! switching blocks, reduces the rail network with PACT, and compares
//! the worst-case IR-drop waveform and simulation cost.
//!
//! Run with `cargo run --release --example power_grid`.

use pact::{CutoffSpec, ReduceOptions};
use pact_circuit::Circuit;
use pact_gen::{power_grid_deck, PowerGridSpec};
use pact_netlist::{extract_rc, splice_reduced};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = PowerGridSpec::default();
    let deck = power_grid_deck(&spec);
    println!(
        "power grid: {}x{} nodes, {} switching taps, worst tap at {}",
        spec.nx, spec.ny, spec.num_taps, deck.worst_tap
    );

    let ex = extract_rc(&deck.netlist, &[])?;
    println!(
        "rail network: {} ports, {} internal nodes",
        ex.network.num_ports,
        ex.network.num_internal()
    );
    let red = pact::reduce_network(
        &ex.network,
        &ReduceOptions::new(CutoffSpec::new(2e9, 0.05)?),
    )?;
    println!(
        "reduced to {} internal node(s); passive: {}",
        red.model.num_poles(),
        red.model.is_passive(1e-8)
    );
    let reduced = splice_reduced(&deck.netlist, red.model.to_netlist_elements("pg", 1e-9));

    for (name, nl) in [("original", &deck.netlist), ("reduced", &reduced)] {
        let ckt = Circuit::from_netlist(nl)?;
        let tr = ckt.transient(25e-12, 5e-9)?;
        let v = tr.voltage(&deck.worst_tap).ok_or("worst tap missing")?;
        let vmin = v.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "{name:>9}: worst IR drop {:.2} mV (min rail {:.4} V), {} unknowns, sim {:.2} s",
            (spec.vdd - vmin) * 1e3,
            vmin,
            ckt.dim(),
            tr.stats.elapsed_seconds
        );
    }
    Ok(())
}
