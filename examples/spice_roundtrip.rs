//! SPICE-in, SPICE-out: the same flow as the `rcfit` binary, driven
//! programmatically — parse a deck, reduce its RC network, splice, and
//! print the output deck.
//!
//! Run with `cargo run --release --example spice_roundtrip`.

use pact::{CutoffSpec, ReduceOptions};
use pact_netlist::{extract_rc, parse, splice_reduced};

const DECK: &str = "\
* clock spine with parasitics
.model nch nmos (vto=0.7 kp=110u)
.model pch pmos (vto=-0.9 kp=40u)
Vdd vdd 0 5
Vclk clk 0 pulse(0 5 0 0.2n 0.2n 4n 10n)
MN0 spine clk 0 0 nch w=40u l=1u
MP0 spine clk vdd vdd pch w=80u l=1u
* spine parasitics: 3 taps, each an RC branch
R1 spine t1 120
C1 t1 0 80f
R2 t1 t2 120
C2 t2 0 80f
R3 t2 t3 120
C3 t3 0 80f
* receivers at taps 1 and 3
MN1 y1 t1 0 0 nch w=2u l=1u
MP1 y1 t1 vdd vdd pch w=4u l=1u
MN3 y3 t3 0 0 nch w=2u l=1u
MP3 y3 t3 vdd vdd pch w=4u l=1u
.tran 20p 10n
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deck = parse(DECK)?;
    let ex = extract_rc(&deck, &[])?;
    println!(
        "* extracted {} ports / {} internal nodes",
        ex.network.num_ports,
        ex.network.num_internal()
    );
    let red = pact::reduce_network(
        &ex.network,
        &ReduceOptions::new(CutoffSpec::new(2e9, 0.05)?),
    )?;
    println!(
        "* {} internal node(s) retained, passive: {}",
        red.model.num_poles(),
        red.model.is_passive(1e-8)
    );
    let out = splice_reduced(&deck, red.model.to_netlist_elements("rcfit", 1e-9));
    println!("{out}");
    Ok(())
}
