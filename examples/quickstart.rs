//! Quickstart: reduce a multiport RC network in a few lines.
//!
//! Builds a 50-segment RC interconnect line, reduces it with PACT at 5 %
//! tolerance up to 5 GHz, and compares the reduced admittance against the
//! exact one.
//!
//! Run with `cargo run --release --example quickstart`.

use pact::{CutoffSpec, FullAdmittance, Partitions, ReduceOptions};
use pact_netlist::{extract_rc, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A SPICE deck: an RC line driven by a source, loading a MOSFET
    //    gate. Any deck works — rcfit's extraction rules decide which
    //    nodes are ports.
    let mut deck =
        String::from("* quickstart line\nV1 n0 0 1\nM1 x n50 0 0 nch\n.model nch nmos()\n");
    for i in 0..50 {
        deck.push_str(&format!("R{i} n{i} n{} 5\n", i + 1));
        deck.push_str(&format!("C{i} n{} 0 27f\n", i + 1));
    }
    let netlist = parse(&deck)?;

    // 2. Extract the RC network; `n0` (source) and `n50` (gate) become
    //    ports, everything else is internal.
    let ex = extract_rc(&netlist, &[])?;
    println!(
        "network: {} ports + {} internal nodes",
        ex.network.num_ports,
        ex.network.num_internal()
    );

    // 3. Reduce: keep every admittance pole below the cutoff implied by
    //    "5 % error up to 5 GHz" (the cutoff lands at ~3x f_max).
    let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05)?);
    let red = pact::reduce_network(&ex.network, &opts)?;
    println!(
        "reduced to {} internal node(s); poles at {:?} GHz",
        red.model.num_poles(),
        red.model
            .pole_frequencies()
            .iter()
            .map(|f| (f / 1e8).round() / 10.0)
            .collect::<Vec<_>>()
    );

    // 4. The reduction is passive by construction — verify anyway.
    assert!(red.model.is_passive(1e-8));
    println!("passivity: OK");

    // 5. Compare Y(jω) against the exact network.
    let parts = Partitions::split(&ex.network.stamp());
    let exact = FullAdmittance::new(&parts);
    for f in [1e8, 1e9, 5e9] {
        let ye = exact.y_at(f)?[(0, 0)];
        let yr = red.model.y_at(f)[(0, 0)];
        println!(
            "f = {:>5.1} GHz: |Y11| exact {:.4e}  reduced {:.4e}  (err {:.2} %)",
            f / 1e9,
            ye.abs(),
            yr.abs(),
            (yr - ye).abs() / ye.abs() * 100.0
        );
    }

    // 6. Emit the reduced network as SPICE elements.
    let elements = red.model.to_netlist_elements("red", 1e-9);
    println!(
        "reduced SPICE netlist fragment ({} elements):",
        elements.len()
    );
    for e in &elements {
        println!("  {e}");
    }
    Ok(())
}
