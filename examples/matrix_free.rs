//! Fully matrix-free PACT: the entire reduction runs on `D`-solves by
//! preconditioned conjugate gradients — no Cholesky factor is ever
//! formed, so memory stays proportional to the sparse matrices
//! themselves. The logical endpoint of the paper's Section-4 memory
//! argument, useful when a 3-D mesh's factor fill exceeds the budget.
//!
//! Run with `cargo run --release --example matrix_free`.

use pact::{reduce_matrix_free, CutoffSpec, DSolver, Partitions, PcgSolver, ReduceOptions};
use pact_gen::{substrate_mesh, MeshSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = substrate_mesh(&MeshSpec {
        nx: 20,
        ny: 20,
        nz: 6,
        num_contacts: 30,
        ..MeshSpec::table2()
    });
    println!(
        "mesh: {} ports, {} internal nodes",
        net.num_ports,
        net.num_internal()
    );
    let spec = CutoffSpec::new(1e9, 0.05)?;
    let parts = Partitions::split(&net.stamp());
    let ports: Vec<String> = net.node_names[..net.num_ports].to_vec();

    // Standard path: factor D, reduce.
    let standard = pact::reduce_network(&net, &ReduceOptions::new(spec))?;
    println!(
        "factored:    {} poles, {:.2} s, factor+work {:.1} MB",
        standard.model.num_poles(),
        standard.stats.elapsed_seconds,
        standard.stats.modelled_memory_bytes as f64 / 1e6
    );

    // Matrix-free path: IC(0)-preconditioned CG for every D-solve.
    let solver = PcgSolver::new(&parts.d)?;
    let mf = reduce_matrix_free(&parts, &ports, &spec, &solver)?;
    println!(
        "matrix-free: {} poles, {:.2} s, working set {:.1} MB (IC(0) is zero-fill)",
        mf.model.num_poles(),
        mf.stats.elapsed_seconds,
        solver.memory_bytes() as f64 / 1e6
    );

    // The two models agree.
    let f = 1e9;
    let ya = standard.model.y_at(f);
    let yb = mf.model.y_at(f);
    let mut worst: f64 = 0.0;
    let scale = ya[(0, 0)].abs();
    for i in 0..parts.m {
        for j in 0..parts.m {
            worst = worst.max((ya[(i, j)] - yb[(i, j)]).abs() / scale);
        }
    }
    println!("max |ΔY| between the two models at 1 GHz: {worst:.2e} (relative)");
    assert!(mf.model.is_passive(1e-7));
    println!("matrix-free model passivity: OK");
    Ok(())
}
