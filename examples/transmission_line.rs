//! The paper's Figure 2/3 scenario as a library example: a CMOS inverter
//! drives another inverter across a distributed RC line; PACT compresses
//! the 100-segment line to a single internal node and the transient
//! response barely changes.
//!
//! Run with `cargo run --release --example transmission_line`.

use pact::{CutoffSpec, ReduceOptions};
use pact_circuit::Circuit;
use pact_gen::{inverter_pair_deck, LineSpec};
use pact_netlist::extract_rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deck = inverter_pair_deck(&LineSpec {
        segments: 100,
        r_total: 250.0,
        c_total: 1.35e-12,
        ..LineSpec::default()
    });

    // Reduce the line (5 % to 5 GHz) and splice it back into the deck.
    let ex = extract_rc(&deck, &[])?;
    let red = pact::reduce_network(
        &ex.network,
        &ReduceOptions::new(CutoffSpec::new(5e9, 0.05)?),
    )?;
    println!(
        "line reduced: {} -> {} internal nodes (pole at {:.2} GHz)",
        ex.network.num_internal(),
        red.model.num_poles(),
        red.model.pole_frequencies()[0] / 1e9
    );
    let reduced_deck =
        pact_netlist::splice_reduced(&deck, red.model.to_netlist_elements("line", 1e-9));

    // Simulate both and compare the receiver output.
    type Traces = (Vec<f64>, Vec<f64>, f64);
    let run = |nl: &pact_netlist::Netlist| -> Result<Traces, Box<dyn std::error::Error>> {
        let ckt = Circuit::from_netlist(nl)?;
        let tr = ckt.transient(10e-12, 5e-9)?;
        let v = tr.voltage("out").ok_or("missing v(out)")?;
        Ok((tr.times.clone(), v, tr.stats.elapsed_seconds))
    };
    let (t_full, v_full, s_full) = run(&deck)?;
    let (t_red, v_red, s_red) = run(&reduced_deck)?;

    let mut worst: f64 = 0.0;
    for (k, &t) in t_full.iter().enumerate() {
        // reduced solver uses the same fixed step, so indices align; be
        // safe and interpolate anyway.
        let mut vi = *v_red.last().unwrap();
        for kk in 1..t_red.len() {
            if t <= t_red[kk] {
                let f = (t - t_red[kk - 1]) / (t_red[kk] - t_red[kk - 1]).max(1e-30);
                vi = v_red[kk - 1] + f * (v_red[kk] - v_red[kk - 1]);
                break;
            }
        }
        worst = worst.max((vi - v_full[k]).abs());
    }
    println!("max |Δv(out)| between full and reduced: {worst:.4} V (5 V swing)");
    println!("sim time: full {s_full:.3} s, reduced {s_red:.3} s");
    Ok(())
}
