//! Substrate-noise macromodeling (the paper's Tables 2–3 / Figure 6
//! scenario): a one-bit full adder switches above a 3-D substrate mesh;
//! PACT compresses the ~1.5k-node mesh to a handful of nodes and the
//! substrate noise waveform at the monitor contact is preserved.
//!
//! Run with `cargo run --release --example substrate_noise`.

use pact::{CutoffSpec, EigenSelect, ReduceOptions};
use pact_circuit::Circuit;
use pact_gen::{full_adder_deck, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::{extract_rc, splice_reduced};
use pact_sparse::Ordering;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A smaller mesh than the paper's keeps this example fast.
    let deck = full_adder_deck(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 25,
        ..MeshSpec::table2()
    });
    let monitor = deck.monitor_port.clone();

    let ex = extract_rc(&deck.netlist, &[])?;
    println!(
        "substrate network: {} ports, {} internal nodes",
        ex.network.num_ports,
        ex.network.num_internal()
    );
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(1e9, 0.05)?,
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::Rcm,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let red = pact::reduce_network(&ex.network, &opts)?;
    println!("kept {} pole(s) below ~3 GHz", red.model.num_poles());
    let reduced = splice_reduced(&deck.netlist, red.model.to_netlist_elements("sub", 1e-9));

    for (name, nl) in [("original", &deck.netlist), ("reduced", &reduced)] {
        let ckt = Circuit::from_netlist(nl)?;
        let tr = ckt.transient(100e-12, 8e-9)?;
        let v = tr.voltage(&monitor).ok_or("missing monitor node")?;
        let dc = v[0];
        let peak = v.iter().map(|x| (x - dc).abs()).fold(0.0f64, f64::max);
        println!(
            "{name:>9}: substrate noise peak {:.2} mV around {:.1} mV bias, sim {:.2} s ({} unknowns)",
            peak * 1e3,
            dc * 1e3,
            tr.stats.elapsed_seconds,
            ckt.dim()
        );
    }
    Ok(())
}
