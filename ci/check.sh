#!/usr/bin/env bash
# Repository gate: formatting, lints, build, tests, and a smoke run of the
# CLI's telemetry path. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
cargo test -q

echo "==> rcfit --trace / --log-json smoke test"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/smoke.sp" <<'EOF'
* rc ladder smoke deck
R1 in n1 100
R2 n1 n2 100
R3 n2 out 100
C1 n1 0 1p
C2 n2 0 2p
C3 out 0 1p
.end
EOF
./target/release/rcfit --port in --port out --fmax 1e9 --trace \
    --log-json "$tmp/telemetry.json" -o "$tmp/reduced.sp" "$tmp/smoke.sp" \
    2> "$tmp/trace.txt"
grep -q "rcfit-telemetry-v1" "$tmp/telemetry.json"
grep -q "phase" "$tmp/trace.txt"
test -s "$tmp/reduced.sp"

echo "==> all checks passed"
