#!/usr/bin/env bash
# Repository gate: formatting, lints, build, tests, and a smoke run of the
# CLI's telemetry path. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo build --release"
# --workspace so the smoke sections below get every release binary
# (rcfit, rcfitd, gen_mesh, the bench drivers), not just the root bin.
cargo build --release --workspace

echo "==> cargo test (tier-1)"
cargo test -q

echo "==> rcfit --trace / --log-json smoke test"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/smoke.sp" <<'EOF'
* rc ladder smoke deck
R1 in n1 100
R2 n1 n2 100
R3 n2 out 100
C1 n1 0 1p
C2 n2 0 2p
C3 out 0 1p
.end
EOF
./target/release/rcfit --port in --port out --fmax 1e9 --trace \
    --log-json "$tmp/telemetry.json" -o "$tmp/reduced.sp" "$tmp/smoke.sp" \
    2> "$tmp/trace.txt"
grep -q "rcfit-telemetry-v1" "$tmp/telemetry.json"
grep -q "supernode_count" "$tmp/telemetry.json"
grep -q "phase" "$tmp/trace.txt"
test -s "$tmp/reduced.sp"

echo "==> rcfit --hier smoke test"
./target/release/gen_mesh 16 16 4 16 "$tmp/hier_mesh.sp" > /dev/null
hier_ports=""
for i in $(seq 0 15); do hier_ports="$hier_ports --port port$i"; done
# shellcheck disable=SC2086
./target/release/rcfit $hier_ports --fmax 2e9 --hier --block-size 128 \
    --log-json "$tmp/hier_telemetry.json" -o "$tmp/hier_reduced.sp" \
    "$tmp/hier_mesh.sp" > /dev/null
test -s "$tmp/hier_reduced.sp"
python3 - "$tmp/hier_telemetry.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "rcfit-telemetry-v1", d.get("schema")
c = d["counters"]
assert c["hier_blocks"] >= 2, f"partition degenerated: {c['hier_blocks']} block(s)"
assert c["hier_separator_nodes"] > 0, "no separator nodes recorded"
assert c["hier_tree_depth"] > 0, "tree depth not recorded"
print(f"hier telemetry ok: {c['hier_blocks']} blocks, "
      f"{c['hier_separator_nodes']} separators, depth {c['hier_tree_depth']}")
EOF

echo "==> flat vs hier perf A/B (10k + 20k meshes -> results/hier_perf.txt)"
# hier_scaling --smoke times reduce_network only (deck built outside the
# timed regions, min of two runs per side) on the 10k and 20k meshes and
# *asserts* hier strictly beats flat at 1 thread on the 20k mesh — that
# assertion is the perf gate; a hier regression fails CI here. Run in a
# scratch dir so a smoke run can never clobber the committed full-size
# BENCH_hier.json.
root="$PWD"
(cd "$tmp" && "$root/target/release/hier_scaling" --smoke) | tee "$tmp/hier_smoke.txt"
grep -q "hier A/B OK" "$tmp/hier_smoke.txt"
mkdir -p results
{
    echo "# Flat vs hierarchical reduction A/B: 10k (32x32x10) and 20k"
    echo "# (40x40x13) substrate meshes, 64 ports, fmax 500 MHz, $(nproc)"
    echo "# core(s). reduce_network wall clock only, min of two runs per"
    echo "# side (hier_scaling --smoke). Full thread sweep: BENCH_hier.json"
    echo "# (cargo run --release -p pact-bench --bin hier_scaling)."
    grep "^PERF " "$tmp/hier_smoke.txt"
} > results/hier_perf.txt
cat results/hier_perf.txt

echo "==> lanczos cap-scale cost-cliff probe (warn-only)"
# Tracks the eigen-phase spread across a ±1% capacitor-scale sweep; the
# cliff is chaotic in mesh size so this warns rather than gates.
./target/release/lanczos_cliff | tee "$tmp/cliff.txt"
grep -Eq "lanczos_cliff OK|WARN lanczos_cliff" "$tmp/cliff.txt"

echo "==> refactor-determinism smoke (transient + AC sweep, 1 vs 4 threads -> results/sweep_perf.txt)"
# The --smoke mode asserts bit-identical AC voltages and work counters at
# 1 vs 4 threads, bitwise reuse-vs-fresh equivalence, and the linear
# transient's one-symbolic-analysis accounting; its PERF line records the
# factor-vs-refactor sweep wall clock.
./target/release/ac_sweep_scaling --smoke | tee "$tmp/sweep_smoke.txt"
grep -q "ac sweep determinism OK" "$tmp/sweep_smoke.txt"
grep -q "transient accounting OK" "$tmp/sweep_smoke.txt"
mkdir -p results
{
    echo "# Factorization-reuse smoke: 192-node substrate mesh, 16-point AC"
    echo "# sweep, $(nproc) core(s). fresh = full symbolic+numeric LU per"
    echo "# point; refactor = one symbolic analysis, numeric-only replay."
    grep "^PERF " "$tmp/sweep_smoke.txt"
} > results/sweep_perf.txt
cat results/sweep_perf.txt

echo "==> eigen backend parity smoke (--eigen dense vs lanczos vs auto -> results/backend_parity.txt)"
# The numeric guarantee (retained poles agree to <= 1e-8 relative across
# dense / lanczos / lowrank / auto on every generator family) is asserted
# by the backend_equivalence suite; here the compiled test re-runs that
# assertion and the CLI smoke confirms the --eigen flag wires through to
# the same pole counts on the mesh deck.
cargo test -q --release --test backend_equivalence \
    eigen_backends_agree_on_retained_poles -- --exact > "$tmp/parity_test.txt"
./target/release/gen_mesh 16 16 4 16 "$tmp/parity_mesh.sp" > /dev/null
parity_ports=""
for i in $(seq 0 15); do parity_ports="$parity_ports --port port$i"; done
for backend in dense lanczos auto; do
    # shellcheck disable=SC2086
    ./target/release/rcfit $parity_ports --fmax 2e9 --eigen "$backend" \
        -o /dev/null "$tmp/parity_mesh.sp" 2> "$tmp/parity_$backend.txt" > /dev/null
done
dense_poles=$(grep -o "kept [0-9]* pole" "$tmp/parity_dense.txt" | grep -o "[0-9]*")
lanczos_poles=$(grep -o "kept [0-9]* pole" "$tmp/parity_lanczos.txt" | grep -o "[0-9]*")
auto_poles=$(grep -o "kept [0-9]* pole" "$tmp/parity_auto.txt" | grep -o "[0-9]*")
test "$dense_poles" = "$lanczos_poles"
test "$dense_poles" = "$auto_poles"
mkdir -p results
{
    echo "# Eigen backend parity: 16x16x4 substrate mesh (16 ports), fmax 2 GHz."
    echo "# Retained-pole agreement to <= 1e-8 relative is asserted by the"
    echo "# backend_equivalence::eigen_backends_agree_on_retained_poles test"
    echo "# (dense QL vs Lanczos vs low-rank vs auto on mesh/powergrid/line);"
    echo "# the CLI rows below confirm --eigen reaches the same pole counts."
    echo "dense_poles    $dense_poles"
    echo "lanczos_poles  $lanczos_poles"
    echo "auto_poles     $auto_poles"
} > results/backend_parity.txt
cat results/backend_parity.txt

echo "==> supernodal kernel parity + perf A/B (-> results/supernodal_perf.txt)"
# Runs the scalar-vs-supernodal A/B on the paper's Table-4 mesh: isolated
# factor/refactor timings, end-to-end reduction timings, and an asserted
# retained-pole parity gate. The kernel-equivalence guarantee across all
# generator families, strategies, backends, thread counts, and warm
# refactors is asserted by the supernodal_parity suite.
cargo test -q --release --test supernodal_parity > "$tmp/supernodal_test.txt"
./target/release/supernodal_perf | tee "$tmp/supernodal_ab.txt"
grep -q "parity: OK" "$tmp/supernodal_ab.txt"
mkdir -p results
{
    echo "# Supernodal vs scalar Cholesky kernel A/B, $(nproc) core(s)."
    echo "# (A quick small-mesh variant: supernodal_perf --smoke.)"
    cat "$tmp/supernodal_ab.txt"
} > results/supernodal_perf.txt

echo "==> session batch smoke (warm reduce_batch amortization)"
# --smoke asserts bitwise cold-vs-warm equality and the one-symbolic-
# analysis accounting on a small mesh. Run in a scratch dir so the
# committed full-size BENCH_session.json is not overwritten.
root="$PWD"
(cd "$tmp" && "$root/target/release/session_batch" --smoke) | tee "$tmp/session_smoke.txt"
grep -q "smoke OK" "$tmp/session_smoke.txt"
grep -q "^PERF " "$tmp/session_smoke.txt"

echo "==> rcfitd daemon smoke (JSONL over stdin)"
# Two same-topology decks (the second must hit a warm session and reduce
# byte-identically), one request with a misspelled option (typed error),
# a stats probe, and a clean shutdown.
python3 - > "$tmp/serve_requests.jsonl" <<'EOF'
import json
deck = ("* ci ladder\nVdrv in 0 1\nR1 in n1 100\nR2 n1 n2 100\n"
        "R3 n2 out 100\nC1 n1 0 1p\nC2 n2 0 2p\nC3 out 0 1p\n"
        "Iload out 0 1m\n.end\n")
print(json.dumps({"id": "s1", "deck": deck}))
print(json.dumps({"id": "s2", "deck": deck}))
print(json.dumps({"id": "bad", "deck": deck, "options": {"tolerence": 0.1}}))
print(json.dumps({"id": "st", "op": "stats"}))
print(json.dumps({"id": "end", "op": "shutdown"}))
EOF
./target/release/rcfitd --workers 2 < "$tmp/serve_requests.jsonl" \
    > "$tmp/serve_responses.jsonl"
python3 - "$tmp/serve_responses.jsonl" <<'EOF'
import json, sys
docs = {d["id"]: d for d in map(json.loads, open(sys.argv[1]))}
assert len(docs) == 5, sorted(docs)
assert all(d["schema"] == "rcfitd-v1" for d in docs.values())
assert docs["s1"]["ok"] and not docs["s1"]["session_hit"]
assert docs["s2"]["ok"] and docs["s2"]["session_hit"], \
    "second same-topology deck must hit a warm session"
assert docs["s2"]["deck"] == docs["s1"]["deck"], \
    "identical decks must reduce byte-identically"
assert docs["s1"]["telemetry"]["schema"] == "rcfit-telemetry-v1"
assert not docs["bad"]["ok"]
assert docs["bad"]["error"]["code"] == "unknown_option", docs["bad"]["error"]
# Stats is answered inline by the dispatcher, so only the submit-side
# counters are ordered with respect to it.
assert docs["st"]["stats"]["counters"]["requests"] >= 3
assert docs["st"]["stats"]["workers"] == 2
assert docs["end"]["shutdown"] is True
print("daemon smoke ok: warm hit + typed error + stats + clean shutdown")
EOF

echo "==> multipoint strategy parity smoke (CLI + daemon vs one-shot)"
# One-shot CLI run with the multipoint strategy: telemetry must record
# the expansion points and basis; then the same deck through a warm
# rcfitd session (second request hits the cached symbolic) must return
# the one-shot deck byte-identically.
./target/release/gen_mesh 16 16 4 16 "$tmp/mp_mesh.sp" > /dev/null
mp_ports=""
for i in $(seq 0 15); do mp_ports="$mp_ports --port port$i"; done
# shellcheck disable=SC2086
./target/release/rcfit $mp_ports --fmax 2e9 --strategy multipoint \
    --log-json "$tmp/mp_telemetry.json" -o "$tmp/mp_reduced.sp" \
    "$tmp/mp_mesh.sp" > /dev/null
test -s "$tmp/mp_reduced.sp"
python3 - "$tmp/mp_telemetry.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "rcfit-telemetry-v1", d.get("schema")
c = d["counters"]
assert c["multipoint_points"] == 2, c["multipoint_points"]
assert c["multipoint_moment_poles"] > 0, "no shifted moment candidates"
assert c["multipoint_basis_columns"] > 0, "empty projection basis"
print(f"multipoint telemetry ok: {c['multipoint_points']} points, "
      f"{c['multipoint_moment_poles']} moment candidates, "
      f"{c['multipoint_basis_columns']} basis columns")
EOF
python3 - "$tmp/mp_mesh.sp" > "$tmp/mp_requests.jsonl" <<'EOF'
import json, sys
deck = open(sys.argv[1]).read()
ports = [f"port{i}" for i in range(16)]
opts = {"fmax": 2e9, "ports": ports, "strategy": "multipoint"}
print(json.dumps({"id": "mp1", "deck": deck, "options": opts}))
print(json.dumps({"id": "mp2", "deck": deck, "options": opts}))
print(json.dumps({"id": "end", "op": "shutdown"}))
EOF
./target/release/rcfitd --workers 1 < "$tmp/mp_requests.jsonl" \
    > "$tmp/mp_responses.jsonl"
python3 - "$tmp/mp_responses.jsonl" "$tmp/mp_reduced.sp" <<'EOF'
import json, sys
docs = {d["id"]: d for d in map(json.loads, open(sys.argv[1]))}
oneshot = open(sys.argv[2]).read()
assert docs["mp1"]["ok"] and not docs["mp1"]["session_hit"]
assert docs["mp2"]["ok"] and docs["mp2"]["session_hit"], \
    "second multipoint deck must hit a warm session"
assert docs["mp1"]["deck"] == oneshot, \
    "cold daemon multipoint deck differs from one-shot rcfit"
assert docs["mp2"]["deck"] == oneshot, \
    "warm daemon multipoint deck differs from one-shot rcfit"
print("multipoint daemon parity ok: cold + warm responses byte-identical "
      "to one-shot rcfit")
EOF

echo "==> multipoint ablation smoke (accuracy vs poles -> results/multipoint_ablation.txt)"
# --smoke runs scaled-down Table-2/Table-4 meshes: flat vs multipoint
# pole counts at spec plus the ranked truncation curve. Run in a
# scratch dir so the committed full-size BENCH_multipoint.json is not
# overwritten.
(cd "$tmp" && "$root/target/release/multipoint_ablation" --smoke) \
    | tee "$tmp/mp_ablation.txt"
grep -q "smoke OK" "$tmp/mp_ablation.txt"
mkdir -p results
{
    echo "# Multipoint vs flat ablation smoke: scaled-down Table-2/Table-4"
    echo "# meshes, $(nproc) core(s). Full-size study: BENCH_multipoint.json"
    echo "# (cargo run --release -p pact-bench --bin multipoint_ablation)."
    grep -E "^(## |flat:|multipoint:|  mp truncated|PERF )" "$tmp/mp_ablation.txt"
} > results/multipoint_ablation.txt
cat results/multipoint_ablation.txt

echo "==> serve load smoke (daemon vs cold one-shot -> results/serve_perf.txt)"
# --smoke byte-compares every daemon response against the cold one-shot
# loop and reports the latency/throughput PERF line; the committed
# full-size study (1200 decks) lives in BENCH_serve.json.
(cd "$tmp" && "$root/target/release/serve_load" --smoke) | tee "$tmp/serve_smoke.txt"
grep -q "smoke OK" "$tmp/serve_smoke.txt"
mkdir -p results
{
    echo "# rcfitd serving smoke: serve_load --smoke (60 mixed decks, daemon"
    echo "# vs cold one-shot loop), $(nproc) core(s). Full-size study:"
    echo "# BENCH_serve.json (cargo run --release -p pact-bench --bin serve_load)."
    grep "^PERF " "$tmp/serve_smoke.txt"
} > results/serve_perf.txt
cat results/serve_perf.txt

echo "==> extraction + chain-collapse smoke (-> results/extract_perf.txt)"
# chain_collapse --smoke runs the 2000-segment line deck A/B and asserts
# the acceptance gates: collapse eliminates >= 50% of the island's
# internal nodes, two runs emit byte-identical decks (bit-identical port
# responses), the re-stitched deck's in-band AC matches the unreduced
# deck within the collapse budget, and the mixed R/C/L/diode/MOS deck
# extracts end-to-end. Run in a scratch dir so the committed full-size
# BENCH_extract.json is not overwritten.
(cd "$tmp" && "$root/target/release/chain_collapse" --smoke) \
    | tee "$tmp/extract_smoke.txt"
grep -q "chain collapse OK" "$tmp/extract_smoke.txt"
mkdir -p results
{
    echo "# Chain-collapse A/B smoke: 2000-segment line deck, fmax 1 GHz,"
    echo "# $(nproc) core(s). reduce_embedded wall clock, extraction only vs"
    echo "# collapse + extraction. Full run: BENCH_extract.json"
    echo "# (cargo run --release -p pact-bench --bin chain_collapse)."
    grep "^PERF " "$tmp/extract_smoke.txt"
} > results/extract_perf.txt
cat results/extract_perf.txt

echo "==> rcfit --extract --collapse-chains CLI smoke (2000-segment line)"
# The same workload through the CLI flags: telemetry must report the
# collapsed chain and the eliminated nodes, and the re-stitched deck must
# be a parseable SPICE payload.
python3 - > "$tmp/long_line.sp" <<'EOF'
n = 2000
print("* 2000-segment extraction smoke line")
print("Vdrv in 0 1")
print("Rdrv in x0 50")
for i in range(n):
    a, b = f"x{i}", f"x{i+1}"
    print(f"R{i} {a} {b} {250.0 / n:.9g}")
    print(f"C{i} {b} 0 {1.35e-12 / n:.6e}")
print("Iload x2000 0 1m")
print(".end")
EOF
./target/release/rcfit --extract --collapse-chains --chain-tol 1e-4 \
    --fmax 1g --log-json "$tmp/extract_telemetry.json" \
    -o "$tmp/extract_reduced.sp" "$tmp/long_line.sp" > /dev/null
test -s "$tmp/extract_reduced.sp"
python3 - "$tmp/extract_telemetry.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "rcfit-telemetry-v1", d.get("schema")
c = d["counters"]
assert c["extract_subnets"] >= 1, "no RC island extracted"
assert c["chains_collapsed"] >= 1, "chain collapse did not run"
assert c["nodes_eliminated"] > 0, "no nodes eliminated"
assert c["nodes_eliminated"] >= 1000, \
    f"eliminated {c['nodes_eliminated']} of ~2000 internal nodes (< 50%)"
print(f"extraction telemetry ok: {c['extract_subnets']} island(s), "
      f"{c['chains_collapsed']} chain(s) collapsed, "
      f"{c['nodes_eliminated']} nodes eliminated")
EOF

echo "==> all checks passed"
