//! Dependency-free parallel execution layer.
//!
//! Everything in the PACT hot path that fans out — per-port congruence
//! columns, blocked triangular solves, matrix–vector products, Lanczos
//! reorthogonalization sweeps — runs through [`ParCtx`], a thin wrapper
//! over [`std::thread::scope`]. No work-stealing runtime, no external
//! crates: the workloads here are large, regular and contiguous, so
//! static partitioning into per-worker ranges is both simpler and at
//! least as fast as a task scheduler.
//!
//! ## Determinism contract
//!
//! Reduced models must be **bit-identical** regardless of thread count.
//! Every primitive in this module preserves that property by
//! construction:
//!
//! - each item `i` is computed by exactly one worker, with the same
//!   scalar instruction sequence a serial loop would use;
//! - results are returned or written **in item order**, never in
//!   completion order;
//! - no primitive performs a cross-item floating-point reduction whose
//!   grouping depends on the partition. Callers that need partial-sum
//!   reductions (e.g. `Aᵀx`) must fix the partial boundaries as a
//!   function of problem size only — see `CsrMat::matvec_t_ctx`.

use std::ops::Range;

/// Split `0..n` into at most `parts` contiguous, near-equal, nonempty
/// ranges, in order. The first `n % parts` ranges are one longer.
///
/// The split depends only on `n` and `parts` — callers that need
/// partition boundaries independent of thread count simply pass a
/// `parts` derived from the problem size.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Execution context: how many OS threads fan-out primitives may use.
///
/// `ParCtx` is cheap to copy and carries no state besides the thread
/// count; a count of 1 makes every primitive run inline on the calling
/// thread with zero spawn overhead.
#[derive(Clone, Copy, Debug)]
pub struct ParCtx {
    threads: usize,
}

impl ParCtx {
    /// Context with an explicit thread count (`None` ⇒ all available
    /// cores as reported by [`std::thread::available_parallelism`]).
    pub fn new(threads: Option<usize>) -> Self {
        let threads = threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        ParCtx { threads }
    }

    /// Single-threaded context: every primitive runs inline.
    pub fn serial() -> Self {
        ParCtx { threads: 1 }
    }

    /// Number of worker threads this context will use at most.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers actually worth spawning for `n` items.
    fn parts_for(&self, n: usize) -> usize {
        self.threads.min(n).max(1)
    }

    /// Map each item `0..n` through `f`, with one per-worker scratch
    /// state built by `init`, returning results **in item order**.
    ///
    /// `init` runs once per worker on that worker's thread, so scratch
    /// buffers (solve workspaces, per-thread operators) are never shared
    /// and need not be `Sync`.
    pub fn map_items<S, T, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let parts = self.parts_for(n);
        if parts <= 1 {
            let mut scratch = init();
            return (0..n).map(|i| f(&mut scratch, i)).collect();
        }
        let init = &init;
        let f = &f;
        let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = split_ranges(n, parts)
                .into_iter()
                .map(|r| {
                    scope.spawn(move || {
                        let mut scratch = init();
                        r.map(|i| f(&mut scratch, i)).collect::<Vec<T>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(n);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// Run `f` once per contiguous range of `0..n`, returning the
    /// per-range results in range order.
    ///
    /// The partition depends on the thread count, so `f` must produce
    /// values that are independent of where the range boundaries fall
    /// (e.g. disjoint per-item outputs — *not* partial sums).
    pub fn map_ranges<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let parts = self.parts_for(n);
        if parts <= 1 {
            return vec![f(0..n)];
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = split_ranges(n, parts)
                .into_iter()
                .map(|r| scope.spawn(move || f(r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        })
    }

    /// Partition `data` (viewed as `data.len() / stride` items of
    /// `stride` elements each) into contiguous per-worker chunks and run
    /// `f(item_range, chunk)` on each — the disjoint-output workhorse
    /// behind parallel `matvec` and dense column fan-out.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], stride: usize, f: F)
    where
        T: Send,
        F: Fn(Range<usize>, &mut [T]) + Sync,
    {
        assert!(stride > 0, "stride must be nonzero");
        assert_eq!(
            data.len() % stride,
            0,
            "data length must be a multiple of stride"
        );
        let n = data.len() / stride;
        let parts = self.parts_for(n);
        if parts <= 1 {
            f(0..n, data);
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = data;
            for r in split_ranges(n, parts) {
                let (chunk, tail) = rest.split_at_mut(r.len() * stride);
                rest = tail;
                scope.spawn(move || f(r, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap before {r:?}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
                // Near-even: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(|r| r.len()).max(),
                    ranges.iter().map(|r| r.len()).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_items_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let ctx = ParCtx::new(Some(threads));
            let got = ctx.map_items(
                37,
                || 0u64,
                |count, i| {
                    *count += 1;
                    i * i
                },
            );
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_ranges_covers_all_items() {
        for threads in [1, 4] {
            let ctx = ParCtx::new(Some(threads));
            let sums = ctx.map_ranges(100, |r| r.sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        }
    }

    #[test]
    fn for_each_chunk_mut_writes_disjoint_strided() {
        for threads in [1, 2, 5] {
            let ctx = ParCtx::new(Some(threads));
            let mut data = vec![0usize; 12 * 3];
            ctx.for_each_chunk_mut(&mut data, 3, |items, chunk| {
                for (k, i) in items.enumerate() {
                    for c in 0..3 {
                        chunk[k * 3 + c] = 10 * i + c;
                    }
                }
            });
            for i in 0..12 {
                for c in 0..3 {
                    assert_eq!(data[i * 3 + c], 10 * i + c);
                }
            }
        }
    }

    #[test]
    fn serial_context_runs_inline() {
        let ctx = ParCtx::serial();
        assert_eq!(ctx.threads(), 1);
        let got = ctx.map_items(5, || (), |_, i| i + 1);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }
}
