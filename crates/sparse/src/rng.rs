//! Minimal deterministic pseudo-random number generator.
//!
//! The workspace must build and test with no network access, so instead
//! of depending on the `rand` crate we vendor a tiny xorshift128+
//! generator seeded through SplitMix64. It is *not* cryptographic — it
//! exists to produce reproducible start vectors, test matrices and
//! workload layouts, where the only requirements are decent equidistribution
//! and bit-exact replay from a `u64` seed.

/// Xorshift128+ pseudo-random generator with SplitMix64 seeding.
///
/// The same seed always yields the same stream, on every platform:
/// everything downstream (Lanczos start vectors, generated meshes,
/// randomized tests) is reproducible from a single `u64`.
#[derive(Clone, Debug)]
pub struct XorShiftRng {
    s0: u64,
    s1: u64,
}

/// SplitMix64 step: expands a seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl XorShiftRng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The seed is run through SplitMix64 twice to produce the two state
    /// words, so even "weak" seeds like 0 and 1 give unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        // xorshift128+ requires a nonzero state; SplitMix64 only maps a
        // single input to (0, 0), so nudge that one case.
        if s0 == 0 && s1 == 0 {
            XorShiftRng { s0: 1, s1: 0 }
        } else {
            XorShiftRng { s0, s1 }
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `usize` in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses the widening-multiply trick; the bias is at most `n / 2⁶⁴`,
    /// irrelevant for workload generation.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let mut a = XorShiftRng::seed_from_u64(42);
        let mut b = XorShiftRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftRng::seed_from_u64(1);
        let mut b = XorShiftRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = XorShiftRng::seed_from_u64(7);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        // The stream should cover most of the interval.
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn index_in_bounds_and_covers() {
        let mut rng = XorShiftRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.gen_index(10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShiftRng::seed_from_u64(0);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert!(x != 0 || y != 0);
    }
}
