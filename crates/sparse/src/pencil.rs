//! Frequency-parameterized sparse pencil `G + jωC`.
//!
//! Every AC-style sweep in the workspace evaluates the same matrix
//! pencil at many frequencies: the admittance evaluator factors
//! `(D + sE)` per point and the circuit simulator factors `(G + jωC)`
//! per point. The sparsity structure never changes across the sweep —
//! only the values — so [`CscPencil`] merges the conductance and
//! capacitance patterns into one fixed union structure once, and
//! [`CscPencil::eval_into`] refreshes the complex values in place. The
//! fixed structure is exactly what lets a single [`crate::SymbolicLu`]
//! analysis serve the whole sweep.

use crate::complex::Complex64;
use crate::splu::CscMat;

/// Word-at-a-time FNV-1a over the pencil's union structure, mirroring
/// `CsrMat::pattern_key` (dimension and array lengths folded in first).
fn union_fingerprint(n: usize, indptr: &[usize], indices: &[usize]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let eat = |h: u64, w: u64| (h ^ w).wrapping_mul(PRIME);
    h = eat(h, n as u64);
    h = eat(h, indptr.len() as u64);
    h = eat(h, indices.len() as u64);
    for &w in indptr {
        h = eat(h, w as u64);
    }
    for &w in indices {
        h = eat(h, w as u64);
    }
    h
}

/// A sparse pencil `P(ω) = G + jωC` with a fixed union sparsity
/// structure, evaluable at any frequency without re-sorting or
/// re-merging triplets.
#[derive(Clone, Debug)]
pub struct CscPencil {
    n: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    /// Real parts: `G` values on the union pattern (zero where only `C`
    /// has an entry).
    g: Vec<f64>,
    /// Imaginary-slope parts: `C` values on the union pattern.
    c: Vec<f64>,
}

impl CscPencil {
    /// Builds the union structure of the `G` and `C` triplet lists for
    /// an `n × n` pencil. Duplicate entries are summed, exactly like
    /// [`CscMat::from_triplets`].
    ///
    /// # Panics
    ///
    /// Panics if any triplet index is out of bounds.
    pub fn from_triplets(
        n: usize,
        gtrips: &[(usize, usize, f64)],
        ctrips: &[(usize, usize, f64)],
    ) -> Self {
        // Tag each triplet with which side it contributes to, then do
        // one column-major merge summing G and C independently.
        let mut tagged: Vec<(usize, usize, f64, bool)> =
            Vec::with_capacity(gtrips.len() + ctrips.len());
        for &(r, c, v) in gtrips {
            assert!(
                r < n && c < n,
                "G triplet ({r}, {c}) out of bounds for n = {n}"
            );
            tagged.push((c, r, v, false));
        }
        for &(r, c, v) in ctrips {
            assert!(
                r < n && c < n,
                "C triplet ({r}, {c}) out of bounds for n = {n}"
            );
            tagged.push((c, r, v, true));
        }
        tagged.sort_by_key(|&(col, row, _, _)| (col, row));
        let mut indptr = vec![0usize; n + 1];
        let mut indices = Vec::new();
        let mut g = Vec::new();
        let mut c = Vec::new();
        let mut it = tagged.into_iter().peekable();
        for col in 0..n {
            while let Some(&(tc, row, _, _)) = it.peek() {
                if tc != col {
                    break;
                }
                let mut gsum = 0.0;
                let mut csum = 0.0;
                while let Some(&(nc, nr, v, is_c)) = it.peek() {
                    if nc != col || nr != row {
                        break;
                    }
                    if is_c {
                        csum += v;
                    } else {
                        gsum += v;
                    }
                    it.next();
                }
                indices.push(row);
                g.push(gsum);
                c.push(csum);
            }
            indptr[col + 1] = indices.len();
        }
        CscPencil {
            n,
            indptr,
            indices,
            g,
            c,
        }
    }

    /// Pencil dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entries in the union pattern.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// O(nnz) FNV-1a fingerprint of the union sparsity structure
    /// (values excluded), compatible with the verification discipline of
    /// the symbolic-factorization caches: equal structures always hash
    /// equal, and a hit is confirmed exactly via
    /// [`crate::SymbolicLu::matches`] before it is trusted.
    pub fn pattern_key(&self) -> u64 {
        union_fingerprint(self.n, &self.indptr, &self.indices)
    }

    /// Evaluates the pencil at a *real* shift: `G + σC` as an `f64`
    /// matrix on the union pattern (explicit zeros where only the other
    /// side has an entry, so the structure — and therefore a captured
    /// [`crate::SymbolicLu`] analysis — is shared with every
    /// [`CscPencil::eval`] of the same pencil).
    pub fn eval_real(&self, sigma: f64) -> CscMat<f64> {
        let data = self
            .g
            .iter()
            .zip(&self.c)
            .map(|(&g, &c)| g + sigma * c)
            .collect();
        CscMat::from_parts(
            self.n,
            self.n,
            self.indptr.clone(),
            self.indices.clone(),
            data,
        )
    }

    /// Evaluates `G + jωC` into a fresh matrix.
    pub fn eval(&self, omega: f64) -> CscMat<Complex64> {
        let data = self
            .g
            .iter()
            .zip(&self.c)
            .map(|(&g, &c)| Complex64::new(g, omega * c))
            .collect();
        CscMat::from_parts(
            self.n,
            self.n,
            self.indptr.clone(),
            self.indices.clone(),
            data,
        )
    }

    /// Refreshes the values of `out` — which must come from
    /// [`CscPencil::eval`] on this pencil — to frequency `omega`,
    /// without touching the structure.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s value count differs from this pencil's.
    pub fn eval_into(&self, omega: f64, out: &mut CscMat<Complex64>) {
        let vals = out.values_mut();
        assert_eq!(vals.len(), self.g.len(), "matrix is not from this pencil");
        for (k, v) in vals.iter_mut().enumerate() {
            *v = Complex64::new(self.g[k], omega * self.c[k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splu::SparseLu;

    #[test]
    fn union_structure_matches_triplet_build() {
        let gtrips = vec![
            (0, 0, 2.0),
            (1, 1, 3.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (0, 0, 1.0),
        ];
        let ctrips = vec![(1, 1, 1e-12), (2, 2, 4e-12)];
        // Note (2,2) only appears in C; G there is an explicit zero.
        let p = CscPencil::from_triplets(3, &gtrips, &ctrips);
        assert_eq!(p.n(), 3);
        let omega = 1.0e9;
        let m = p.eval(omega);
        // Reference: complex triplets merged the slow way.
        let mut trips: Vec<(usize, usize, Complex64)> = gtrips
            .iter()
            .map(|&(r, c, v)| (r, c, Complex64::from_real(v)))
            .collect();
        trips.extend(
            ctrips
                .iter()
                .map(|&(r, c, v)| (r, c, Complex64::new(0.0, omega * v))),
        );
        let reference = CscMat::from_triplets(3, 3, &trips);
        assert!(m.structure_eq(&reference));
        assert_eq!(m.values(), reference.values());
    }

    #[test]
    fn eval_real_shares_structure_and_key_with_complex_eval() {
        let gtrips = vec![(0, 0, 2.0), (1, 1, 3.0), (0, 1, -1.0), (1, 0, -1.0)];
        let ctrips = vec![(1, 1, 1e-12), (2, 2, 4e-12)];
        let p = CscPencil::from_triplets(3, &gtrips, &ctrips);
        let a = p.eval_real(0.0);
        let y = p.eval(2.0e9);
        assert!(a.structure_eq(&y), "real and complex evals share structure");
        let get = |m: &CscMat<f64>, i: usize, j: usize| -> f64 {
            (m.indptr()[j]..m.indptr()[j + 1])
                .find(|&p| m.indices()[p] == i)
                .map_or(0.0, |p| m.values()[p])
        };
        // At σ = 0 the values are exactly G on the union pattern.
        assert_eq!(get(&a, 2, 2), 0.0, "C-only entry is an explicit zero");
        let shifted = p.eval_real(-2.0);
        assert_eq!(get(&shifted, 1, 1), 3.0 - 2.0 * 1e-12);
        // The fingerprint depends on structure only.
        let q = CscPencil::from_triplets(3, &gtrips, &[(1, 1, 7e-12), (2, 2, 1e-15)]);
        assert_eq!(p.pattern_key(), q.pattern_key());
        let r = CscPencil::from_triplets(3, &gtrips, &[(2, 1, 1e-12)]);
        assert_ne!(p.pattern_key(), r.pattern_key());
    }

    #[test]
    fn eval_into_refreshes_values_in_place() {
        let gtrips = vec![(0, 0, 1.0), (1, 1, 1.0), (0, 1, -0.5), (1, 0, -0.5)];
        let ctrips = vec![(0, 0, 1e-12), (1, 1, 2e-12)];
        let p = CscPencil::from_triplets(2, &gtrips, &ctrips);
        let mut m = p.eval(1.0);
        p.eval_into(2.0e8, &mut m);
        let fresh = p.eval(2.0e8);
        assert_eq!(m.values(), fresh.values());
        // And the refreshed matrix factors like the fresh one.
        let lu_a = SparseLu::factor(&m).unwrap();
        let lu_b = SparseLu::factor(&fresh).unwrap();
        assert_eq!(lu_a.l_values(), lu_b.l_values());
        assert_eq!(lu_a.u_values(), lu_b.u_values());
    }
}
