//! Sparse symmetric factorization: LDLᵀ with elimination tree, wrapped as
//! the Cholesky factor `L_chol = L·D^{1/2}` that PACT's first congruence
//! transform needs.
//!
//! Two numeric kernels share one symbolic analysis and one public type:
//!
//! - **Supernodal** (default): the analysis postorders the elimination
//!   tree, detects supernodes — chains of columns with (near-)identical
//!   below-diagonal sparsity — and the numeric pass assembles each one as
//!   a dense column panel with cache-blocked updates
//!   ([`crate::supernodal`]). Triangular solves stream over the panels.
//! - **Scalar**: Davis's up-looking LDL — a symbolic pass builds the
//!   elimination tree and column counts, then a numeric pass computes one
//!   row of `L` at a time with a sparse triangular solve over the row's
//!   elimination-tree reach. Retained as the A/B reference behind
//!   [`CholKernel::Scalar`] / `PACT_CHOL_KERNEL=scalar`.
//!
//! Neither kernel requires dynamic fill-in reallocation, and both share
//! the pivot policies and typed pivot errors below.

use std::sync::Arc;

use crate::csr::CsrMat;
use crate::ordering::{etree_postorder, invert_permutation, Ordering};
use crate::supernodal::{build_plan, refactor_numeric, SupernodalFactor, SupernodePlan};

/// Selects the numeric factorization kernel (and the matching factor
/// storage) used by [`SymbolicCholesky::analyze`] and everything layered
/// on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CholKernel {
    /// Resolve at analysis time: the `PACT_CHOL_KERNEL` environment
    /// variable (`"scalar"`, case-insensitive) selects the scalar
    /// reference kernel, anything else the supernodal default. This is
    /// the A/B escape hatch for benchmarking the blocked path.
    #[default]
    Auto,
    /// Blocked supernodal panels (the default resolution of `Auto`).
    Supernodal,
    /// Scalar up-looking reference kernel.
    Scalar,
}

impl CholKernel {
    /// Resolves [`CholKernel::Auto`] against the environment.
    pub fn resolved(self) -> CholKernel {
        match self {
            CholKernel::Auto => match std::env::var("PACT_CHOL_KERNEL") {
                Ok(v) if v.eq_ignore_ascii_case("scalar") => CholKernel::Scalar,
                _ => CholKernel::Supernodal,
            },
            k => k,
        }
    }
}

/// Error from attempting to factor a matrix that is not symmetric positive
/// definite.
#[derive(Clone, Debug, PartialEq)]
pub enum FactorError {
    /// A pivot `d_k ≤ 0` appeared at the given elimination step; the matrix
    /// is not positive definite (for RC networks: an internal node without a
    /// DC path to any port, or non-physical element values).
    NotPositiveDefinite {
        /// Elimination step (in permuted order) where the pivot failed.
        step: usize,
        /// Row/column of the *original* (unpermuted) matrix whose pivot
        /// failed — for RC networks this identifies the offending internal
        /// node, enabling node attribution in error messages.
        index: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// A non-finite pivot (NaN or ±∞) appeared during elimination. This is
    /// reported as its own variant — never silently floored by
    /// [`PivotPolicy::Perturb`] — because a NaN comparing `false` against
    /// any threshold would otherwise take an arbitrary branch.
    NonFinitePivot {
        /// Elimination step (in permuted order) where the pivot failed.
        step: usize,
        /// Row/column of the *original* (unpermuted) matrix.
        index: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// The matrix handed to [`SymbolicCholesky::refactor`] has a different
    /// sparsity pattern than the one the symbolic analysis was built from.
    StructureMismatch,
    /// The matrix is not square.
    NotSquare,
}

impl FactorError {
    /// The original (unpermuted) row of the failing pivot, if any.
    pub fn failed_index(&self) -> Option<usize> {
        match self {
            FactorError::NotPositiveDefinite { index, .. }
            | FactorError::NonFinitePivot { index, .. } => Some(*index),
            FactorError::StructureMismatch | FactorError::NotSquare => None,
        }
    }
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { step, index, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at step {step} (matrix row {index})"
            ),
            FactorError::NonFinitePivot { step, index, pivot } => write!(
                f,
                "non-finite pivot {pivot} at step {step} (matrix row {index}); \
                 the input contains NaN or infinite values"
            ),
            FactorError::StructureMismatch => write!(
                f,
                "matrix sparsity pattern differs from the symbolic analysis"
            ),
            FactorError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Policy for quasi-singular pivots during factorization.
///
/// PACT's stability theorem assumes the internal conductance block `D` is
/// strictly positive definite, but real extracted netlists carry internal
/// nodes whose only DC path runs through enormous resistances: their
/// pivots are positive yet orders of magnitude below the working
/// precision of the rest of the factor. `PivotPolicy::Perturb` substitutes
/// a documented floor for such pivots instead of failing, recording every
/// substitution so callers can surface a warning. The perturbation is a
/// diagonal modification `D → D + ΔD` with `ΔD ⪰ 0` supported on the
/// degenerate nodes only, so the factored matrix stays symmetric positive
/// definite and the congruence-transform passivity guarantee is preserved
/// (the reduction is exact for the slightly-stiffened network).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PivotPolicy {
    /// Fail with [`FactorError::NotPositiveDefinite`] on any pivot `≤ 0`
    /// (the strict behavior of [`SparseCholesky::factor`]).
    Error,
    /// Replace any finite pivot below `rel_threshold · max_i |A_ii|`
    /// (including non-positive pivots) with that floor value and record
    /// it. Non-finite pivots are *not* repaired: they indicate poisoned
    /// input (NaN/∞ element values), not a quasi-singular but physical
    /// network, and fail with [`FactorError::NonFinitePivot`].
    /// `rel_threshold` must be positive and finite.
    Perturb {
        /// Relative pivot floor, e.g. `1e-12`.
        rel_threshold: f64,
    },
}

/// One pivot substitution performed under [`PivotPolicy::Perturb`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerturbedPivot {
    /// Row/column of the original (unpermuted) matrix.
    pub index: usize,
    /// The pivot value the elimination produced.
    pub original: f64,
    /// The floor value it was replaced with.
    pub replaced_with: f64,
}

/// Diagnostics from [`SparseCholesky::factor_diagnosed`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FactorDiagnostics {
    /// Every pivot substitution, in elimination order (deterministic for a
    /// given matrix + ordering, independent of thread count).
    pub perturbed: Vec<PerturbedPivot>,
}

/// A sparse Cholesky factorization `P A Pᵀ = L D Lᵀ` of a symmetric
/// positive-definite matrix, with `L` unit lower triangular and `D > 0`
/// diagonal.
///
/// The *Cholesky factor* used by PACT's first congruence transform is
/// `F = Pᵀ L D^{1/2}` which satisfies `F Fᵀ = A`; [`SparseCholesky::fsolve`]
/// and [`SparseCholesky::ftsolve`] apply `F⁻¹` and `F⁻ᵀ`.
///
/// ```
/// use pact_sparse::{TripletMat, SparseCholesky, Ordering};
/// let mut t = TripletMat::new(2, 2);
/// t.push(0, 0, 4.0);
/// t.push(1, 1, 3.0);
/// t.push(0, 1, -1.0);
/// t.push(1, 0, -1.0);
/// let f = SparseCholesky::factor(&t.to_csr(), Ordering::Natural)?;
/// let x = f.solve(&[1.0, 2.0]);
/// // A x = b
/// assert!((4.0 * x[0] - x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), pact_sparse::FactorError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SparseCholesky {
    n: usize,
    /// Fill-reducing permutation: row `i` of `PAPᵀ` is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Inverse permutation.
    iperm: Vec<usize>,
    /// Kernel-specific storage of unit-lower `L` (diagonal not stored).
    data: FactorData,
    /// Positive pivots `D`.
    d: Vec<f64>,
    /// `sqrt(D)` cached for the Cholesky-factor solves.
    sqrt_d: Vec<f64>,
    /// Elimination tree parents (`usize::MAX` for roots).
    parent: Vec<usize>,
}

/// Storage of the unit-lower factor, per numeric kernel.
#[derive(Clone, Debug)]
enum FactorData {
    /// CSC columns of `L` (scalar up-looking kernel).
    Scalar {
        /// Column pointers.
        lp: Vec<usize>,
        /// Row indices.
        li: Vec<usize>,
        /// Values.
        lx: Vec<f64>,
    },
    /// Dense column panels over a supernode partition.
    Super(SupernodalFactor),
}

impl Default for FactorData {
    fn default() -> Self {
        FactorData::Scalar {
            lp: Vec::new(),
            li: Vec::new(),
            lx: Vec::new(),
        }
    }
}

/// The reusable, value-free part of a sparse Cholesky factorization: the
/// fill-reducing permutation, the elimination tree, and the column counts
/// of `L` — everything that depends only on the sparsity *pattern* of `A`.
///
/// Computing the nested-dissection ordering and the elimination tree is
/// the dominant non-numeric cost of [`SparseCholesky::factor`]; when many
/// matrices share one pattern (parameter sweeps, same-topology decks, the
/// [`crate::LuCache`] analogue for SPD systems) a single analysis serves
/// them all. [`SymbolicCholesky::refactor`] replays exactly the numeric
/// elimination that a fresh [`SparseCholesky::factor_diagnosed`] with the
/// same ordering would run — same floating-point operations in the same
/// order — so the resulting factor is bit-identical to a cold
/// factorization.
#[derive(Clone, Debug)]
pub struct SymbolicCholesky {
    n: usize,
    /// Fill-reducing permutation captured at analysis time.
    perm: Vec<usize>,
    /// Inverse permutation.
    iperm: Vec<usize>,
    /// Elimination tree parents over the permuted pattern.
    parent: Vec<usize>,
    /// Column pointers of unit-lower `L` (fill pattern is value-free).
    lp: Vec<usize>,
    /// Supernode partition when the analysis targets the supernodal
    /// kernel; `None` selects the scalar kernel at refactor time.
    plan: Option<Arc<SupernodePlan>>,
    /// Structure fingerprint of the unpermuted input pattern — the O(1)
    /// fast path of [`SymbolicCholesky::matches`].
    a_key: u64,
    /// Row pointers of the *unpermuted* input pattern, for
    /// [`SymbolicCholesky::matches_exact`].
    a_indptr: Vec<usize>,
    /// Column indices of the unpermuted input pattern.
    a_indices: Vec<usize>,
}

impl SymbolicCholesky {
    /// Runs the symbolic analysis (ordering + elimination tree + column
    /// counts + supernode detection) for a symmetric matrix pattern,
    /// targeting the default kernel ([`CholKernel::Auto`]).
    ///
    /// # Errors
    ///
    /// [`FactorError::NotSquare`] for rectangular input.
    pub fn analyze(a: &CsrMat, ordering: Ordering) -> Result<Self, FactorError> {
        Self::analyze_with_kernel(a, ordering, CholKernel::Auto)
    }

    /// Runs the symbolic analysis targeting an explicit numeric kernel.
    ///
    /// For both kernels the fill-reducing permutation is composed with a
    /// postorder of the elimination tree. A postorder is a topological
    /// reorder of the tree, so fill-in and column counts are preserved
    /// exactly; it makes supernode chains contiguous (required by the
    /// panel layout) and gives both kernels the *same* permutation so
    /// their factors are directly comparable.
    ///
    /// # Errors
    ///
    /// [`FactorError::NotSquare`] for rectangular input.
    pub fn analyze_with_kernel(
        a: &CsrMat,
        ordering: Ordering,
        kernel: CholKernel,
    ) -> Result<Self, FactorError> {
        if a.nrows() != a.ncols() {
            return Err(FactorError::NotSquare);
        }
        let kernel = kernel.resolved();
        let perm = ordering.permutation(a);
        // First pass for the elimination tree, then re-analyze under the
        // postorder-composed permutation.
        let pre = Self::analyze_perm_kernel(a, perm, CholKernel::Scalar)?;
        let post = etree_postorder(&pre.parent);
        let perm2: Vec<usize> = post.iter().map(|&k| pre.perm[k]).collect();
        Self::analyze_perm_kernel(a, perm2, kernel)
    }

    /// Runs the symbolic analysis under an explicit permutation, taken
    /// verbatim (no postorder composition), targeting the scalar kernel.
    ///
    /// # Errors
    ///
    /// [`FactorError::NotSquare`] for rectangular input.
    ///
    /// # Panics
    ///
    /// Panics if `perm` has the wrong length.
    pub fn analyze_with_permutation(a: &CsrMat, perm: Vec<usize>) -> Result<Self, FactorError> {
        Self::analyze_perm_kernel(a, perm, CholKernel::Scalar)
    }

    fn analyze_perm_kernel(
        a: &CsrMat,
        perm: Vec<usize>,
        kernel: CholKernel,
    ) -> Result<Self, FactorError> {
        if a.nrows() != a.ncols() {
            return Err(FactorError::NotSquare);
        }
        let n = a.nrows();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let iperm = invert_permutation(&perm);
        let ap = a.permute_sym(&perm);

        // Elimination tree + column counts over the permuted pattern.
        let mut parent = vec![usize::MAX; n];
        let mut lnz = vec![0usize; n];
        let mut flag = vec![usize::MAX; n];
        for k in 0..n {
            flag[k] = k;
            for (j, _) in ap.row_iter(k) {
                if j >= k {
                    continue;
                }
                let mut i = j;
                while flag[i] != k {
                    if parent[i] == usize::MAX {
                        parent[i] = k;
                    }
                    lnz[i] += 1;
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        let mut lp = vec![0usize; n + 1];
        for k in 0..n {
            lp[k + 1] = lp[k] + lnz[k];
        }

        let plan = match kernel.resolved() {
            CholKernel::Scalar => None,
            _ => Some(Arc::new(build_plan(&parent, &lnz, &ap))),
        };

        Ok(SymbolicCholesky {
            n,
            perm,
            iperm,
            parent,
            lp,
            plan,
            a_key: a.pattern_key(),
            a_indptr: a.indptr().to_vec(),
            a_indices: a.indices().to_vec(),
        })
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of off-diagonal entries the factor will hold.
    #[inline]
    pub fn l_nnz(&self) -> usize {
        self.lp[self.n]
    }

    /// The fill-reducing permutation captured at analysis time.
    #[inline]
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Elimination-tree parent array over the permuted pattern (roots
    /// hold `usize::MAX`).
    #[inline]
    pub fn etree(&self) -> &[usize] {
        &self.parent
    }

    /// Below-diagonal entry count of each factor column (permuted order).
    pub fn column_counts(&self) -> Vec<usize> {
        self.lp.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The numeric kernel this analysis targets.
    #[inline]
    pub fn kernel(&self) -> CholKernel {
        if self.plan.is_some() {
            CholKernel::Supernodal
        } else {
            CholKernel::Scalar
        }
    }

    /// Number of supernode panels (0 when targeting the scalar kernel).
    pub fn supernode_count(&self) -> usize {
        self.plan.as_ref().map_or(0, |p| p.nsup())
    }

    /// Widest supernode panel in columns (0 for the scalar kernel).
    pub fn max_panel_cols(&self) -> usize {
        self.plan.as_ref().map_or(0, |p| p.max_width)
    }

    /// Column ranges `[lo, hi)` of the supernode partition, in permuted
    /// order (empty for the scalar kernel).
    pub fn supernode_col_ranges(&self) -> Vec<(usize, usize)> {
        match &self.plan {
            Some(p) => p.sn_ptr.windows(2).map(|w| (w[0], w[1])).collect(),
            None => Vec::new(),
        }
    }

    /// Modelled memory footprint of the analysis in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.perm.len() + self.iperm.len() + self.parent.len() + self.lp.len()) * 8
            + (self.a_indptr.len() + self.a_indices.len()) * 8
            + self.plan.as_ref().map_or(0, |p| p.index_bytes())
    }

    /// Whether `a` has exactly the sparsity pattern this analysis was built
    /// from (values are free to differ).
    ///
    /// O(1): compares the stored 64-bit structure fingerprint (plus the
    /// dimensions), not the index arrays — this is the hot check on every
    /// warm session-cache hit. A false positive requires an FNV-1a
    /// collision between different patterns (~2⁻⁶⁴ per pair); callers that
    /// cannot tolerate that use [`SymbolicCholesky::matches_exact`].
    pub fn matches(&self, a: &CsrMat) -> bool {
        let hit = a.nrows() == self.n && a.ncols() == self.n && a.pattern_key() == self.a_key;
        debug_assert_eq!(
            hit,
            self.matches_exact(a),
            "structure fingerprint collision"
        );
        hit
    }

    /// Full index-array comparison behind [`SymbolicCholesky::matches`]:
    /// exact, O(nnz).
    pub fn matches_exact(&self, a: &CsrMat) -> bool {
        a.nrows() == self.n
            && a.ncols() == self.n
            && a.indptr() == self.a_indptr.as_slice()
            && a.indices() == self.a_indices.as_slice()
    }

    /// Numeric-only factorization of a matrix with the analyzed pattern.
    ///
    /// Bit-identical to a fresh [`SparseCholesky::factor_diagnosed`] with
    /// the ordering that produced this analysis: the replay executes the
    /// same elimination with the same permutation, so every intermediate
    /// and final value matches exactly.
    ///
    /// # Errors
    ///
    /// [`FactorError::StructureMismatch`] when `a`'s pattern differs from
    /// the analyzed one; otherwise the same pivot errors as
    /// [`SparseCholesky::factor_diagnosed`].
    pub fn refactor(
        &self,
        a: &CsrMat,
        policy: PivotPolicy,
    ) -> Result<(SparseCholesky, FactorDiagnostics), FactorError> {
        let mut out = SparseCholesky {
            n: 0,
            perm: Vec::new(),
            iperm: Vec::new(),
            data: FactorData::default(),
            d: Vec::new(),
            sqrt_d: Vec::new(),
            parent: Vec::new(),
        };
        let diag = self.refactor_into(a, policy, &mut out)?;
        Ok((out, diag))
    }

    /// Allocation-reusing [`SymbolicCholesky::refactor`]: overwrites `out`
    /// in place, keeping its buffers when they are already large enough.
    ///
    /// # Errors
    ///
    /// Same as [`SymbolicCholesky::refactor`]. On error `out` is left in an
    /// unspecified but safe-to-reuse state.
    pub fn refactor_into(
        &self,
        a: &CsrMat,
        policy: PivotPolicy,
        out: &mut SparseCholesky,
    ) -> Result<FactorDiagnostics, FactorError> {
        if a.nrows() != a.ncols() {
            return Err(FactorError::NotSquare);
        }
        if !self.matches(a) {
            return Err(FactorError::StructureMismatch);
        }
        let n = self.n;
        let perm = &self.perm;
        let parent = &self.parent;
        let lp = &self.lp;
        let nnz_l = lp[n];
        let ap = a.permute_sym(perm);

        // The pivot floor for PivotPolicy::Perturb is anchored to the
        // largest original diagonal entry, so it is invariant under the
        // fill-reducing permutation and the thread count.
        let pivot_floor = match policy {
            PivotPolicy::Perturb { rel_threshold }
                if rel_threshold.is_finite() && rel_threshold > 0.0 =>
            {
                let mut max_diag = 0.0f64;
                for k in 0..n {
                    for (j, v) in ap.row_iter(k) {
                        if j == k {
                            max_diag = max_diag.max(v.abs());
                        }
                    }
                }
                Some(rel_threshold * max_diag.max(f64::MIN_POSITIVE))
            }
            _ => None,
        };

        out.n = n;
        out.perm.clone_from(perm);
        out.iperm.clone_from(&self.iperm);
        out.parent.clone_from(parent);
        out.d.clear();
        out.d.resize(n, 0.0);

        let mut diag = FactorDiagnostics::default();
        match &self.plan {
            Some(plan) => {
                // Supernodal numeric pass over the prebuilt panel plan,
                // reusing out's panel buffer when it has one.
                let mut fac = match std::mem::take(&mut out.data) {
                    FactorData::Super(mut f) => {
                        f.plan = Arc::clone(plan);
                        f
                    }
                    FactorData::Scalar { .. } => SupernodalFactor {
                        plan: Arc::clone(plan),
                        px: Vec::new(),
                        flops: 0,
                    },
                };
                let res = refactor_numeric(&ap, perm, pivot_floor, &mut out.d, &mut fac, &mut diag);
                out.data = FactorData::Super(fac);
                res?;
            }
            None => {
                let (mut lp_out, mut li, mut lx) = match std::mem::take(&mut out.data) {
                    FactorData::Scalar { lp, li, lx } => (lp, li, lx),
                    FactorData::Super(_) => (Vec::new(), Vec::new(), Vec::new()),
                };
                lp_out.clone_from(lp);
                li.clear();
                li.resize(nnz_l, 0);
                lx.clear();
                lx.resize(nnz_l, 0.0);
                let res = scalar_refactor_numeric(
                    &ap,
                    perm,
                    parent,
                    lp,
                    pivot_floor,
                    &mut li,
                    &mut lx,
                    &mut out.d,
                    &mut diag,
                );
                out.data = FactorData::Scalar { lp: lp_out, li, lx };
                res?;
            }
        }

        out.sqrt_d.clear();
        out.sqrt_d.extend(out.d.iter().map(|v| v.sqrt()));
        Ok(diag)
    }
}

/// Up-looking scalar numeric elimination (Davis's LDL), one row of `L` at
/// a time over the elimination-tree reach of the row.
#[allow(clippy::too_many_arguments)]
fn scalar_refactor_numeric(
    ap: &CsrMat,
    perm: &[usize],
    parent: &[usize],
    lp: &[usize],
    pivot_floor: Option<f64>,
    li: &mut [usize],
    lx: &mut [f64],
    d: &mut [f64],
    diag: &mut FactorDiagnostics,
) -> Result<(), FactorError> {
    let n = perm.len();
    let mut y = vec![0f64; n];
    let mut pattern = vec![0usize; n];
    let mut next = lp.to_vec(); // insertion point per column
    let mut flag = vec![usize::MAX; n];
    for k in 0..n {
        // Scatter row k of the (permuted) upper triangle into y and
        // compute the reach (pattern of row k of L) in topological order.
        let mut top = n;
        flag[k] = k;
        let mut dk = 0.0;
        for (j, v) in ap.row_iter(k) {
            if j > k {
                continue;
            }
            if j == k {
                dk = v;
                continue;
            }
            y[j] = v;
            let mut len = 0usize;
            let mut i = j;
            // Walk up the etree until hitting a flagged node.
            let mut stack_base = top;
            while flag[i] != k {
                pattern[len] = i;
                len += 1;
                flag[i] = k;
                i = parent[i];
            }
            // Push in reverse so that `pattern[top..n]` is topological.
            for s in (0..len).rev() {
                stack_base -= 1;
                pattern[stack_base] = pattern[s];
            }
            top = stack_base;
        }
        // Sparse triangular solve over the pattern.
        for &i in &pattern[top..n] {
            let yi = y[i];
            y[i] = 0.0;
            let lki = yi / d[i];
            // Apply column i of L to y (only entries below row i exist;
            // all stored rows are < k).
            for p in lp[i]..next[i] {
                y[li[p]] -= lx[p] * yi;
            }
            dk -= lki * yi;
            li[next[i]] = k;
            lx[next[i]] = lki;
            next[i] += 1;
        }
        if !dk.is_finite() {
            return Err(FactorError::NonFinitePivot {
                step: k,
                index: perm[k],
                pivot: dk,
            });
        }
        match pivot_floor {
            Some(floor) if dk < floor => {
                diag.perturbed.push(PerturbedPivot {
                    index: perm[k],
                    original: dk,
                    replaced_with: floor,
                });
                dk = floor;
            }
            Some(_) => {}
            None => {
                if dk <= 0.0 {
                    return Err(FactorError::NotPositiveDefinite {
                        step: k,
                        index: perm[k],
                        pivot: dk,
                    });
                }
            }
        }
        d[k] = dk;
    }
    Ok(())
}

impl SparseCholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the structure and values reachable through rows are used; the
    /// matrix is assumed numerically symmetric (stamped RC conductance
    /// matrices are symmetric by construction).
    ///
    /// # Errors
    ///
    /// [`FactorError::NotPositiveDefinite`] if a pivot `≤ 0` is found,
    /// [`FactorError::NotSquare`] for rectangular input.
    pub fn factor(a: &CsrMat, ordering: Ordering) -> Result<Self, FactorError> {
        Self::factor_analyzed(a, ordering, PivotPolicy::Error).map(|(f, _, _)| f)
    }

    /// Factors under an explicit [`PivotPolicy`], returning the factor
    /// together with [`FactorDiagnostics`] describing any pivot
    /// substitutions. With [`PivotPolicy::Error`] this is exactly
    /// [`SparseCholesky::factor`] (and the diagnostics are empty).
    ///
    /// # Errors
    ///
    /// [`FactorError::NotPositiveDefinite`] under [`PivotPolicy::Error`]
    /// when a pivot `≤ 0` is found, [`FactorError::NotSquare`] for
    /// rectangular input. Under [`PivotPolicy::Perturb`] pivot failures
    /// are repaired rather than reported, so only [`FactorError::NotSquare`]
    /// remains (a non-finite or non-positive `rel_threshold` falls back to
    /// strict behavior).
    pub fn factor_diagnosed(
        a: &CsrMat,
        ordering: Ordering,
        policy: PivotPolicy,
    ) -> Result<(Self, FactorDiagnostics), FactorError> {
        Self::factor_analyzed(a, ordering, policy).map(|(f, diag, _)| (f, diag))
    }

    /// Factors with an explicit permutation (row `i` of `PAPᵀ` is row
    /// `perm[i]` of `A`).
    ///
    /// # Errors
    ///
    /// Same as [`SparseCholesky::factor`].
    ///
    /// # Panics
    ///
    /// Panics if `perm` has the wrong length.
    pub fn factor_with_permutation(a: &CsrMat, perm: Vec<usize>) -> Result<Self, FactorError> {
        Self::factor_full(a, perm, PivotPolicy::Error).map(|(f, _)| f)
    }

    /// Factors under an explicit [`PivotPolicy`] and also returns the
    /// reusable [`SymbolicCholesky`] analysis, so later matrices with the
    /// same sparsity pattern can skip the fill-reducing ordering and
    /// elimination-tree construction via [`SymbolicCholesky::refactor`]
    /// ("one symbolic, many numerics").
    ///
    /// # Errors
    ///
    /// Same as [`SparseCholesky::factor_diagnosed`].
    pub fn factor_analyzed(
        a: &CsrMat,
        ordering: Ordering,
        policy: PivotPolicy,
    ) -> Result<(Self, FactorDiagnostics, SymbolicCholesky), FactorError> {
        Self::factor_analyzed_with_kernel(a, ordering, policy, CholKernel::Auto)
    }

    /// [`SparseCholesky::factor_analyzed`] with an explicit numeric
    /// kernel — the in-process A/B switch between the supernodal and
    /// scalar paths (tests and benches use this instead of the
    /// `PACT_CHOL_KERNEL` environment variable to avoid cross-thread
    /// races on the process environment).
    ///
    /// # Errors
    ///
    /// Same as [`SparseCholesky::factor_analyzed`].
    pub fn factor_analyzed_with_kernel(
        a: &CsrMat,
        ordering: Ordering,
        policy: PivotPolicy,
        kernel: CholKernel,
    ) -> Result<(Self, FactorDiagnostics, SymbolicCholesky), FactorError> {
        let sym = SymbolicCholesky::analyze_with_kernel(a, ordering, kernel)?;
        let (factor, diag) = sym.refactor(a, policy)?;
        Ok((factor, diag, sym))
    }

    fn factor_full(
        a: &CsrMat,
        perm: Vec<usize>,
        policy: PivotPolicy,
    ) -> Result<(Self, FactorDiagnostics), FactorError> {
        SymbolicCholesky::analyze_with_permutation(a, perm)?.refactor(a, policy)
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of *structural* off-diagonal entries of `L` (fill-in
    /// measure). For the supernodal representation this counts the
    /// entries the scalar kernel would store, not the panel padding, so
    /// the fill metric is kernel-invariant.
    #[inline]
    pub fn l_nnz(&self) -> usize {
        match &self.data {
            FactorData::Scalar { lx, .. } => lx.len(),
            FactorData::Super(f) => f.plan.struct_nnz,
        }
    }

    /// Modelled memory footprint of the factor in bytes (values + indices +
    /// pointers), used for the paper's memory tables. The supernodal
    /// representation needs no per-entry row index, so it is typically
    /// well below the scalar kernel's 16 bytes/entry despite panel
    /// padding.
    pub fn memory_bytes(&self) -> usize {
        match &self.data {
            FactorData::Scalar { lp, li, lx } => {
                lx.len() * 8 + li.len() * 8 + lp.len() * 8 + self.d.len() * 16
            }
            FactorData::Super(f) => f.memory_bytes() + self.d.len() * 16,
        }
    }

    /// Whether the factor is stored as supernodal panels.
    #[inline]
    pub fn is_supernodal(&self) -> bool {
        matches!(&self.data, FactorData::Super(_))
    }

    /// Number of supernode panels (0 for the scalar representation).
    pub fn supernode_count(&self) -> usize {
        match &self.data {
            FactorData::Scalar { .. } => 0,
            FactorData::Super(f) => f.plan.nsup(),
        }
    }

    /// Widest supernode panel in columns (0 for the scalar representation).
    pub fn max_panel_cols(&self) -> usize {
        match &self.data {
            FactorData::Scalar { .. } => 0,
            FactorData::Super(f) => f.plan.max_width,
        }
    }

    /// Structural flop count of the supernodal numeric factorization — a
    /// function of the pattern only, identical across refactors and
    /// thread counts (0 for the scalar representation).
    pub fn panel_flops(&self) -> u64 {
        match &self.data {
            FactorData::Scalar { .. } => 0,
            FactorData::Super(f) => f.flops,
        }
    }

    /// The stored factor values: off-diagonal CSC entries for the scalar
    /// kernel, concatenated dense panels for the supernodal one. Useful
    /// for bitwise comparisons between factors of the *same*
    /// representation (e.g. fresh vs. refactored).
    pub fn factor_values(&self) -> &[f64] {
        match &self.data {
            FactorData::Scalar { lx, .. } => lx,
            FactorData::Super(f) => &f.px,
        }
    }

    /// The fill-reducing permutation used.
    #[inline]
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse of [`SparseCholesky::permutation`].
    #[inline]
    pub fn inverse_permutation(&self) -> &[usize] {
        &self.iperm
    }

    /// Elimination-tree parent array (roots hold `usize::MAX`).
    #[inline]
    pub fn etree(&self) -> &[usize] {
        &self.parent
    }

    /// The pivots `D` of the LDLᵀ factorization (all positive).
    #[inline]
    pub fn pivots(&self) -> &[f64] {
        &self.d
    }

    /// `log(det(A)) = Σ log d_k` — numerically safe determinant access.
    pub fn log_det(&self) -> f64 {
        self.d.iter().map(|v| v.ln()).sum()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        // Permute, L solve, D solve, Lᵀ solve, unpermute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        self.lsolve_unit(&mut x);
        for (xi, di) in x.iter_mut().zip(&self.d) {
            *xi /= di;
        }
        self.ltsolve_unit(&mut x);
        let mut out = vec![0.0; self.n];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = x[i];
        }
        out
    }

    /// Applies `F⁻¹` where `F = Pᵀ L D^{1/2}` is the Cholesky factor with
    /// `F Fᵀ = A`. This is the `L⁻¹·` operation of the paper's eq. (6)–(8)
    /// (our `F` plays the paper's `L`).
    pub fn fsolve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        self.lsolve_unit(&mut x);
        for (xi, sd) in x.iter_mut().zip(&self.sqrt_d) {
            *xi /= sd;
        }
        x
    }

    /// Applies `F⁻ᵀ` (see [`SparseCholesky::fsolve`]).
    pub fn ftsolve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut x = b.to_vec();
        for (xi, sd) in x.iter_mut().zip(&self.sqrt_d) {
            *xi /= sd;
        }
        self.ltsolve_unit(&mut x);
        let mut out = vec![0.0; self.n];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = x[i];
        }
        out
    }

    /// Allocation-free [`SparseCholesky::solve`]: writes `A⁻¹ b` into
    /// `out`, using `work` (resized in place) as the only workspace.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `out.len() != n`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], work: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        assert_eq!(out.len(), self.n);
        work.clear();
        work.extend(self.perm.iter().map(|&p| b[p]));
        self.lsolve_unit(work);
        for (xi, di) in work.iter_mut().zip(&self.d) {
            *xi /= di;
        }
        self.ltsolve_unit(work);
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = work[i];
        }
    }

    /// Allocation-free [`SparseCholesky::fsolve`]: writes `F⁻¹ b` into
    /// `out` (permuted coordinates, like `fsolve`). Takes no
    /// caller-provided workspace — the forward solve runs in place on
    /// `out` (the supernodal kernel carries a small internal panel
    /// buffer).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `out.len() != n`.
    pub fn fsolve_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(out.len(), self.n);
        for (xi, &p) in out.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        self.lsolve_unit(out);
        for (xi, sd) in out.iter_mut().zip(&self.sqrt_d) {
            *xi /= sd;
        }
    }

    /// Allocation-free [`SparseCholesky::ftsolve`]: writes `F⁻ᵀ b` into
    /// `out`, using `work` (resized in place) as the only workspace.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `out.len() != n`.
    pub fn ftsolve_into(&self, b: &[f64], out: &mut [f64], work: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        assert_eq!(out.len(), self.n);
        work.clear();
        work.extend(b.iter().zip(&self.sqrt_d).map(|(bi, sd)| bi / sd));
        self.ltsolve_unit(work);
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = work[i];
        }
    }

    /// In-place forward solve with unit lower `L` (permuted coordinates).
    fn lsolve_unit(&self, x: &mut [f64]) {
        match &self.data {
            FactorData::Scalar { lp, li, lx } => {
                for j in 0..self.n {
                    let xj = x[j];
                    if xj == 0.0 {
                        continue;
                    }
                    for p in lp[j]..lp[j + 1] {
                        x[li[p]] -= lx[p] * xj;
                    }
                }
            }
            FactorData::Super(f) => f.lsolve_unit(x),
        }
    }

    /// In-place backward solve with unit `Lᵀ` (permuted coordinates).
    fn ltsolve_unit(&self, x: &mut [f64]) {
        match &self.data {
            FactorData::Scalar { lp, li, lx } => {
                for j in (0..self.n).rev() {
                    let mut acc = x[j];
                    for p in lp[j]..lp[j + 1] {
                        acc -= lx[p] * x[li[p]];
                    }
                    x[j] = acc;
                }
            }
            FactorData::Super(f) => f.ltsolve_unit(x),
        }
    }

    /// Solves `A X = B` column by column for a dense right-hand side given
    /// as columns, yielding `A⁻¹ B`.
    pub fn solve_mat_cols(&self, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        cols.iter().map(|c| self.solve(c)).collect()
    }

    // ---- blocked multi-RHS solves ----
    //
    // The factor L is traversed once per group of up to `LANES` right-hand
    // sides held in a node-major scratch (`work[i * width + r]` = RHS `r`
    // at node `i`), so each loaded L entry is applied to all lanes. Within
    // a lane the floating-point sequence is the one the scalar solve uses
    // (the scalar path's skip of exactly-zero pivots aside, which can only
    // flip the sign of a zero), so blocked and scalar results agree.

    /// Blocked [`SparseCholesky::solve`] for `k` right-hand sides stored
    /// column-major in `b` (`b[c * n + i]` = RHS `c` at row `i`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * k`.
    pub fn solve_block(&self, b: &[f64], k: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n * k];
        let mut work = Vec::new();
        self.solve_block_into(b, k, &mut out, &mut work);
        out
    }

    /// Allocation-free [`SparseCholesky::solve_block`]: writes into `out`
    /// (column-major, `n * k`), using `work` (resized in place) as the
    /// only workspace.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * k` or `out.len() != n * k`.
    pub fn solve_block_into(&self, b: &[f64], k: usize, out: &mut [f64], work: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n * k);
        assert_eq!(out.len(), self.n * k);
        let n = self.n;
        let mut c0 = 0;
        while c0 < k {
            let width = (k - c0).min(LANES);
            work.clear();
            work.resize(n * width, 0.0);
            for i in 0..n {
                let src = self.perm[i];
                for r in 0..width {
                    work[i * width + r] = b[(c0 + r) * n + src];
                }
            }
            self.lsolve_lanes(work, width);
            for i in 0..n {
                let di = self.d[i];
                for r in 0..width {
                    work[i * width + r] /= di;
                }
            }
            self.ltsolve_lanes(work, width);
            for i in 0..n {
                let dst = self.perm[i];
                for r in 0..width {
                    out[(c0 + r) * n + dst] = work[i * width + r];
                }
            }
            c0 += width;
        }
    }

    /// Blocked [`SparseCholesky::fsolve`] for `k` right-hand sides stored
    /// column-major in `b`; output columns are in permuted coordinates,
    /// exactly like `fsolve`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * k`.
    pub fn fsolve_block(&self, b: &[f64], k: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n * k];
        let mut work = Vec::new();
        self.fsolve_block_into(b, k, &mut out, &mut work);
        out
    }

    /// Allocation-free [`SparseCholesky::fsolve_block`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * k` or `out.len() != n * k`.
    pub fn fsolve_block_into(&self, b: &[f64], k: usize, out: &mut [f64], work: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n * k);
        assert_eq!(out.len(), self.n * k);
        let n = self.n;
        let mut c0 = 0;
        while c0 < k {
            let width = (k - c0).min(LANES);
            work.clear();
            work.resize(n * width, 0.0);
            for i in 0..n {
                let src = self.perm[i];
                for r in 0..width {
                    work[i * width + r] = b[(c0 + r) * n + src];
                }
            }
            self.lsolve_lanes(work, width);
            for i in 0..n {
                let sd = self.sqrt_d[i];
                for r in 0..width {
                    out[(c0 + r) * n + i] = work[i * width + r] / sd;
                }
            }
            c0 += width;
        }
    }

    /// Blocked [`SparseCholesky::ftsolve`] for `k` right-hand sides stored
    /// column-major in `b` (permuted coordinates, like `ftsolve`'s input);
    /// output columns are unpermuted.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * k`.
    pub fn ftsolve_block(&self, b: &[f64], k: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n * k];
        let mut work = Vec::new();
        self.ftsolve_block_into(b, k, &mut out, &mut work);
        out
    }

    /// Allocation-free [`SparseCholesky::ftsolve_block`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n * k` or `out.len() != n * k`.
    pub fn ftsolve_block_into(&self, b: &[f64], k: usize, out: &mut [f64], work: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n * k);
        assert_eq!(out.len(), self.n * k);
        let n = self.n;
        let mut c0 = 0;
        while c0 < k {
            let width = (k - c0).min(LANES);
            work.clear();
            work.resize(n * width, 0.0);
            for i in 0..n {
                let sd = self.sqrt_d[i];
                for r in 0..width {
                    work[i * width + r] = b[(c0 + r) * n + i] / sd;
                }
            }
            self.ltsolve_lanes(work, width);
            for i in 0..n {
                let dst = self.perm[i];
                for r in 0..width {
                    out[(c0 + r) * n + dst] = work[i * width + r];
                }
            }
            c0 += width;
        }
    }

    /// Forward solve with unit lower `L` over `width ≤ LANES` lanes held
    /// node-major in `w`.
    fn lsolve_lanes(&self, w: &mut [f64], width: usize) {
        debug_assert!(width <= LANES);
        match &self.data {
            FactorData::Scalar { lp, li, lx } => {
                for j in 0..self.n {
                    let mut xj = [0.0f64; LANES];
                    let base = j * width;
                    xj[..width].copy_from_slice(&w[base..base + width]);
                    for p in lp[j]..lp[j + 1] {
                        let l = lx[p];
                        let rbase = li[p] * width;
                        for r in 0..width {
                            w[rbase + r] -= l * xj[r];
                        }
                    }
                }
            }
            FactorData::Super(f) => f.lsolve_lanes(w, width),
        }
    }

    /// Backward solve with unit `Lᵀ` over `width ≤ LANES` lanes held
    /// node-major in `w`.
    fn ltsolve_lanes(&self, w: &mut [f64], width: usize) {
        debug_assert!(width <= LANES);
        match &self.data {
            FactorData::Scalar { lp, li, lx } => {
                for j in (0..self.n).rev() {
                    let base = j * width;
                    let mut acc = [0.0f64; LANES];
                    acc[..width].copy_from_slice(&w[base..base + width]);
                    for p in lp[j]..lp[j + 1] {
                        let l = lx[p];
                        let rbase = li[p] * width;
                        for r in 0..width {
                            acc[r] -= l * w[rbase + r];
                        }
                    }
                    w[base..base + width].copy_from_slice(&acc[..width]);
                }
            }
            FactorData::Super(f) => f.ltsolve_lanes(w, width),
        }
    }
}

/// Lane count of the blocked solves: right-hand sides are processed in
/// groups of up to this many so the factor is traversed once per group.
pub const LANES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMat;
    use crate::dense::norm_inf;

    /// Laplacian of a path graph plus a grounding term: SPD, tridiagonal.
    fn spd_path(n: usize) -> CsrMat {
        let mut t = TripletMat::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(Some(i), Some(i + 1), 1.0 + i as f64 * 0.1);
        }
        for i in 0..n {
            t.push(i, i, 0.5 + 0.01 * i as f64);
        }
        t.to_csr()
    }

    /// 2-D grid Laplacian with grounding, exercising fill-in.
    fn spd_grid(nx: usize, ny: usize) -> CsrMat {
        let n = nx * ny;
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMat::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    t.stamp_conductance(Some(id(x, y)), Some(id(x + 1, y)), 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(Some(id(x, y)), Some(id(x, y + 1)), 1.0);
                }
                t.push(id(x, y), id(x, y), 0.1);
            }
        }
        t.to_csr()
    }

    fn residual(a: &CsrMat, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        norm_inf(&ax.iter().zip(b).map(|(p, q)| p - q).collect::<Vec<_>>())
    }

    #[test]
    fn solves_path_all_orderings() {
        let a = spd_path(25);
        let b: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let f = SparseCholesky::factor(&a, ord).unwrap();
            let x = f.solve(&b);
            assert!(
                residual(&a, &x, &b) < 1e-10,
                "residual too large for {ord:?}"
            );
        }
    }

    #[test]
    fn solves_grid() {
        let a = spd_grid(8, 7);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let f = SparseCholesky::factor(&a, Ordering::Rcm).unwrap();
        let x = f.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn fsolve_ftsolve_compose_to_solve() {
        // F F^T = A  ⇒  A^{-1} b = F^{-T} (F^{-1} b)
        let a = spd_grid(5, 5);
        let b: Vec<f64> = (0..25).map(|i| (i % 3) as f64 - 1.0).collect();
        let f = SparseCholesky::factor(&a, Ordering::Rcm).unwrap();
        let via_parts = f.ftsolve(&f.fsolve(&b));
        let direct = f.solve(&b);
        for (u, v) in via_parts.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn factor_identity_reproduces_a() {
        // Verify F F^T = A by applying to basis vectors: A e_i should equal
        // F (F^T e_i). We check by solving instead: x = solve(a e_i) == e_i.
        let a = spd_path(10);
        let f = SparseCholesky::factor(&a, Ordering::MinDegree).unwrap();
        for i in 0..10 {
            let mut e = vec![0.0; 10];
            e[i] = 1.0;
            let x = f.solve(&a.matvec(&e));
            for (k, &v) in x.iter().enumerate() {
                let expect = if k == i { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let err = SparseCholesky::factor(&t.to_csr(), Ordering::Natural).unwrap_err();
        match err {
            FactorError::NotPositiveDefinite { pivot, .. } => assert!(pivot <= 0.0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_singular() {
        // A floating internal node: zero row/col after stamping only a
        // conductance loop — here simply a zero pivot.
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 2.0);
        // node 1 has no connection at all -> pivot 0
        let a = t.to_csr();
        let e = SparseCholesky::factor(&a, Ordering::Natural).unwrap_err();
        // The failed index names the offending row of the *original*
        // (unpermuted) matrix so callers can attribute it to a node.
        assert_eq!(e.failed_index(), Some(1));
    }

    #[test]
    fn perturb_policy_recovers_singular_pivot() {
        let mut t = TripletMat::new(3, 3);
        t.push(0, 0, 4.0);
        t.push(2, 2, 1.0);
        // node 1 floats -> zero pivot under the strict policy.
        let a = t.to_csr();
        let (f, diag) = SparseCholesky::factor_diagnosed(
            &a,
            Ordering::Natural,
            PivotPolicy::Perturb {
                rel_threshold: 1e-12,
            },
        )
        .unwrap();
        assert_eq!(diag.perturbed.len(), 1);
        let p = diag.perturbed[0];
        assert_eq!(p.index, 1);
        assert_eq!(p.original, 0.0);
        // Floor is anchored to the largest diagonal entry (4.0 here).
        assert!((p.replaced_with - 4e-12).abs() < 1e-24);
        // The factor solves the stiffened system: rows 0 and 2 are exact,
        // the floating row sees the floor pivot.
        let x = f.solve(&[8.0, 0.0, 3.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn perturb_policy_reports_original_indices_under_permutation() {
        // A permuting ordering must not garble the reported index: the
        // perturbed pivot names the row of the caller's matrix.
        let n = 8;
        let mut t = TripletMat::new(n, n);
        for i in 0..n - 1 {
            if i != 5 && i + 1 != 5 {
                t.stamp_conductance(Some(i), Some(i + 1), 1.0);
            }
        }
        for i in 0..n {
            if i != 5 {
                t.push(i, i, 0.5);
            }
        }
        // node 5 floats entirely.
        let a = t.to_csr();
        for ord in ALL_ORDERINGS {
            let (_, diag) = SparseCholesky::factor_diagnosed(
                &a,
                ord,
                PivotPolicy::Perturb {
                    rel_threshold: 1e-10,
                },
            )
            .unwrap();
            assert_eq!(diag.perturbed.len(), 1, "{ord:?}");
            assert_eq!(diag.perturbed[0].index, 5, "{ord:?}");
        }
    }

    #[test]
    fn perturb_policy_is_inert_on_well_conditioned_input() {
        let a = spd_grid(6, 5);
        let (f, diag) = SparseCholesky::factor_diagnosed(
            &a,
            Ordering::Rcm,
            PivotPolicy::Perturb {
                rel_threshold: 1e-12,
            },
        )
        .unwrap();
        assert!(diag.perturbed.is_empty());
        let strict = SparseCholesky::factor(&a, Ordering::Rcm).unwrap();
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).cos()).collect();
        assert_eq!(f.solve(&b), strict.solve(&b));
    }

    /// Random SPD matrix: Laplacian from random edges plus a positive
    /// diagonal, the same construction the randomized sweeps use.
    fn spd_random(n: usize, rng: &mut crate::XorShiftRng) -> CsrMat {
        let mut t = TripletMat::new(n, n);
        for _ in 0..3 * n {
            let i = rng.gen_index(n);
            let j = rng.gen_index(n);
            if i != j {
                t.stamp_conductance(Some(i), Some(j), rng.gen_range_f64(0.01, 10.0));
            }
        }
        for i in 0..n {
            t.push(i, i, rng.gen_range_f64(0.1, 5.0));
        }
        t.to_csr()
    }

    const ALL_ORDERINGS: [Ordering; 4] = [
        Ordering::Natural,
        Ordering::Rcm,
        Ordering::MinDegree,
        Ordering::NestedDissection,
    ];

    #[test]
    fn solve_block_matches_column_solves_all_orderings() {
        // The blocked kernel must agree with column-by-column scalar
        // solves on random SPD systems, for every ordering and for widths
        // below, at, and above the lane count.
        let mut rng = crate::XorShiftRng::seed_from_u64(0xb10c);
        for ord in ALL_ORDERINGS {
            for &k in &[1usize, 3, LANES, LANES + 5] {
                let n = 20 + rng.gen_index(15);
                let a = spd_random(n, &mut rng);
                let f = SparseCholesky::factor(&a, ord).unwrap();
                let b: Vec<f64> = (0..n * k).map(|_| rng.gen_range_f64(-2.0, 2.0)).collect();
                let blocked = f.solve_block(&b, k);
                for c in 0..k {
                    let col = f.solve(&b[c * n..(c + 1) * n]);
                    for i in 0..n {
                        assert_eq!(
                            blocked[c * n + i],
                            col[i],
                            "solve_block mismatch {ord:?} k={k} col={c} row={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fsolve_block_matches_column_solves_all_orderings() {
        let mut rng = crate::XorShiftRng::seed_from_u64(0xf50e);
        for ord in ALL_ORDERINGS {
            let n = 25;
            let k = LANES + 2;
            let a = spd_random(n, &mut rng);
            let f = SparseCholesky::factor(&a, ord).unwrap();
            let b: Vec<f64> = (0..n * k).map(|_| rng.gen_range_f64(-2.0, 2.0)).collect();
            let blocked = f.fsolve_block(&b, k);
            for c in 0..k {
                let col = f.fsolve(&b[c * n..(c + 1) * n]);
                for i in 0..n {
                    assert_eq!(
                        blocked[c * n + i],
                        col[i],
                        "fsolve_block mismatch {ord:?} col={c} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn ftsolve_block_matches_column_solves_all_orderings() {
        let mut rng = crate::XorShiftRng::seed_from_u64(0xf751);
        for ord in ALL_ORDERINGS {
            let n = 25;
            let k = LANES + 2;
            let a = spd_random(n, &mut rng);
            let f = SparseCholesky::factor(&a, ord).unwrap();
            let b: Vec<f64> = (0..n * k).map(|_| rng.gen_range_f64(-2.0, 2.0)).collect();
            let blocked = f.ftsolve_block(&b, k);
            for c in 0..k {
                let col = f.ftsolve(&b[c * n..(c + 1) * n]);
                for i in 0..n {
                    assert_eq!(
                        blocked[c * n + i],
                        col[i],
                        "ftsolve_block mismatch {ord:?} col={c} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_solves() {
        let mut rng = crate::XorShiftRng::seed_from_u64(0x1470);
        let n = 30;
        let a = spd_random(n, &mut rng);
        let f = SparseCholesky::factor(&a, Ordering::Rcm).unwrap();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect();
        let mut out = vec![0.0; n];
        let mut work = Vec::new();

        f.solve_into(&b, &mut out, &mut work);
        assert_eq!(out, f.solve(&b));

        f.fsolve_into(&b, &mut out);
        assert_eq!(out, f.fsolve(&b));

        f.ftsolve_into(&b, &mut out, &mut work);
        assert_eq!(out, f.ftsolve(&b));
    }

    #[test]
    fn block_into_reuses_workspace_across_calls() {
        // Repeated calls with the same buffers must keep producing correct
        // results (the buffers are resized in place, never reallocated by
        // the caller).
        let mut rng = crate::XorShiftRng::seed_from_u64(0x9999);
        let n = 18;
        let a = spd_random(n, &mut rng);
        let f = SparseCholesky::factor(&a, Ordering::MinDegree).unwrap();
        let mut out = vec![0.0; n * 4];
        let mut work = Vec::new();
        for _ in 0..3 {
            let b: Vec<f64> = (0..n * 4).map(|_| rng.gen_range_f64(-3.0, 3.0)).collect();
            f.solve_block_into(&b, 4, &mut out, &mut work);
            for c in 0..4 {
                let col = f.solve(&b[c * n..(c + 1) * n]);
                assert_eq!(&out[c * n..(c + 1) * n], &col[..]);
            }
        }
    }

    #[test]
    fn log_det_matches_dense() {
        let a = spd_path(6);
        let f = SparseCholesky::factor(&a, Ordering::Rcm).unwrap();
        // determinant via dense LU on the same matrix
        let dense = a.to_dense();
        let lu = crate::lu::DenseLu::factor(&dense).unwrap();
        assert!((f.log_det() - lu.det().abs().ln()).abs() < 1e-9);
    }

    #[test]
    fn ordering_changes_fill_but_not_solution() {
        let a = spd_grid(10, 10);
        let b = vec![1.0; 100];
        let f1 = SparseCholesky::factor(&a, Ordering::Natural).unwrap();
        let f2 = SparseCholesky::factor(&a, Ordering::MinDegree).unwrap();
        let x1 = f1.solve(&b);
        let x2 = f2.solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8);
        }
        // Min-degree should not be drastically worse than natural on a grid.
        assert!(f2.l_nnz() <= 2 * f1.l_nnz());
    }

    /// Same-pattern matrix with different values (the session-cache case).
    fn scale_values(a: &CsrMat, s: f64) -> CsrMat {
        CsrMat::from_raw(
            a.nrows(),
            a.ncols(),
            a.indptr().to_vec(),
            a.indices().to_vec(),
            a.data().iter().map(|v| v * s).collect(),
        )
    }

    #[test]
    fn refactor_is_bitwise_identical_to_fresh() {
        let a = spd_grid(9, 8);
        let b = scale_values(&a, 1.75);
        for ord in ALL_ORDERINGS {
            let (f0, diag0, sym) =
                SparseCholesky::factor_analyzed(&a, ord, PivotPolicy::Error).unwrap();
            assert!(sym.matches(&a) && sym.matches(&b));
            assert_eq!(sym.n(), a.nrows());
            assert_eq!(sym.l_nnz(), f0.l_nnz());
            assert!(sym.memory_bytes() > 0);
            assert!(diag0.perturbed.is_empty());

            // Refactor on the *same* values reproduces the factor exactly.
            let (f1, _) = sym.refactor(&a, PivotPolicy::Error).unwrap();
            assert_eq!(f0.factor_values(), f1.factor_values());
            assert_eq!(f0.pivots(), f1.pivots());
            assert_eq!(f0.permutation(), f1.permutation());

            // Refactor on new values matches a fresh factorization with the
            // same ordering bit-for-bit, both allocating and in place.
            let (fresh, _) = SparseCholesky::factor_diagnosed(&b, ord, PivotPolicy::Error).unwrap();
            let (f2, _) = sym.refactor(&b, PivotPolicy::Error).unwrap();
            assert_eq!(fresh.factor_values(), f2.factor_values());
            assert_eq!(fresh.pivots(), f2.pivots());
            let mut reused = f1;
            sym.refactor_into(&b, PivotPolicy::Error, &mut reused)
                .unwrap();
            assert_eq!(fresh.factor_values(), reused.factor_values());
            assert_eq!(fresh.pivots(), reused.pivots());
            assert_eq!(fresh.sqrt_d, reused.sqrt_d);
        }
    }

    #[test]
    fn refactor_rejects_different_structure() {
        let a = spd_grid(6, 6);
        let other = spd_path(36);
        let (_, _, sym) =
            SparseCholesky::factor_analyzed(&a, Ordering::NestedDissection, PivotPolicy::Error)
                .unwrap();
        assert!(!sym.matches(&other));
        assert_eq!(
            sym.refactor(&other, PivotPolicy::Error).unwrap_err(),
            FactorError::StructureMismatch
        );
    }

    #[test]
    fn refactor_replays_perturbation_decisions() {
        // A quasi-singular diagonal entry must be perturbed identically on
        // the fresh and the replayed path.
        let mut t = TripletMat::new(3, 3);
        t.stamp_conductance(Some(0), Some(1), 1.0);
        t.push(0, 0, 1e-30);
        t.push(1, 1, 0.5);
        t.push(2, 2, 1e-30);
        let a = t.to_csr();
        let policy = PivotPolicy::Perturb {
            rel_threshold: 1e-12,
        };
        let (fresh, diag_fresh, sym) =
            SparseCholesky::factor_analyzed(&a, Ordering::Natural, policy).unwrap();
        assert!(!diag_fresh.perturbed.is_empty());
        let (replay, diag_replay) = sym.refactor(&a, policy).unwrap();
        assert_eq!(diag_fresh, diag_replay);
        assert_eq!(fresh.d, replay.d);
    }

    #[test]
    fn nan_pivot_is_a_typed_error_not_a_silent_floor() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, f64::NAN);
        t.push(1, 1, 1.0);
        let a = t.to_csr();
        // Under the strict policy a NaN is reported as non-finite, not as
        // an ordinary indefinite pivot.
        let err = SparseCholesky::factor_diagnosed(&a, Ordering::Natural, PivotPolicy::Error)
            .unwrap_err();
        assert!(
            matches!(err, FactorError::NonFinitePivot { index: 0, .. }),
            "unexpected error: {err:?}"
        );
        // Pivot relief must refuse to "repair" a NaN: that is poisoned
        // input, not a quasi-singular but physical network.
        let err = SparseCholesky::factor_diagnosed(
            &a,
            Ordering::Natural,
            PivotPolicy::Perturb {
                rel_threshold: 1e-12,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, FactorError::NonFinitePivot { .. }),
            "perturb policy floored a NaN: {err:?}"
        );
        assert_eq!(err.failed_index(), Some(0));
    }
}
