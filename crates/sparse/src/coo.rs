//! Triplet (coordinate) matrix builder.
//!
//! Circuit stamping naturally produces duplicate `(row, col, value)`
//! contributions; [`TripletMat`] accumulates them and compresses to
//! [`crate::CsrMat`] with duplicates summed, exactly the "stamping" step of
//! RCFIT's flow (Figure 1 of the paper).

use crate::csr::CsrMat;

/// A coordinate-format sparse matrix under construction.
///
/// ```
/// use pact_sparse::TripletMat;
/// let mut t = TripletMat::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates are summed on compression
/// let m = t.to_csr();
/// assert_eq!(m.get(0, 0), 3.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TripletMat {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMat {
    /// An empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMat {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// An empty builder with preallocated capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletMat {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (pre-compression) entries pushed so far.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Adds `v` at `(i, j)`. Duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols, "triplet out of bounds");
        if v == 0.0 {
            return;
        }
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Stamps a two-terminal admittance `g` between nodes `i` and `j`
    /// (both in-bounds ⇒ adds the familiar `[+g, -g; -g, +g]` pattern).
    ///
    /// Passing `None` for a node means that terminal is the ground/common
    /// node and only the diagonal of the other node is stamped.
    pub fn stamp_conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        match (a, b) {
            (Some(i), Some(j)) if i == j => {} // both terminals on same node: no-op
            (Some(i), Some(j)) => {
                self.push(i, i, g);
                self.push(j, j, g);
                self.push(i, j, -g);
                self.push(j, i, -g);
            }
            (Some(i), None) | (None, Some(i)) => self.push(i, i, g),
            (None, None) => {}
        }
    }

    /// Compresses to CSR, summing duplicates and dropping exact zeros.
    pub fn to_csr(&self) -> CsrMat {
        CsrMat::from_triplets(self.nrows, self.ncols, &self.rows, &self.cols, &self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_sum() {
        let mut t = TripletMat::new(3, 3);
        t.push(1, 2, 1.0);
        t.push(1, 2, 2.5);
        t.push(0, 0, -1.0);
        let m = t.to_csr();
        assert_eq!(m.get(1, 2), 3.5);
        assert_eq!(m.get(0, 0), -1.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn zeros_are_skipped() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 1, 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn stamp_conductance_pattern() {
        let mut t = TripletMat::new(2, 2);
        t.stamp_conductance(Some(0), Some(1), 2.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), -2.0);
        assert_eq!(m.get(1, 0), -2.0);
    }

    #[test]
    fn stamp_grounded_only_diagonal() {
        let mut t = TripletMat::new(2, 2);
        t.stamp_conductance(Some(1), None, 4.0);
        t.stamp_conductance(None, None, 9.0);
        let m = t.to_csr();
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn self_loop_is_noop() {
        let mut t = TripletMat::new(2, 2);
        t.stamp_conductance(Some(0), Some(0), 5.0);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = TripletMat::new(2, 2);
        t.push(2, 0, 1.0);
    }
}
