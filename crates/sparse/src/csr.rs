//! Compressed sparse row matrices.
//!
//! For the symmetric matrices of RC networks, CSR and CSC coincide, so one
//! format serves matrix–vector products, submatrix extraction (network
//! partitioning), permutation, and conversion into the factorization
//! routines.

use std::fmt;

use crate::dense::DMat;

/// Below this nonzero count a parallel `matvec` is not worth the spawn
/// overhead (scheduling only — per-row values are partition-independent).
const PAR_MATVEC_MIN_NNZ: usize = 1 << 14;

/// Fixed stripe count of the deterministic parallel `matvec_t`: partial
/// vectors are combined in stripe order, so this must depend only on the
/// problem, never on the thread count.
const MATVEC_T_STRIPES: usize = 8;

/// Row count below which `matvec_t` always runs the plain serial scatter
/// (again a problem-size gate, identical at every thread count).
const MATVEC_T_STRIPE_MIN_ROWS: usize = 2048;

/// A compressed-sparse-row matrix of `f64`.
///
/// Invariants: `indptr.len() == nrows + 1`, column indices within each row
/// are strictly increasing, and no explicit zeros are stored by the
/// constructors in this crate.
///
/// ```
/// use pact_sparse::{TripletMat, CsrMat};
/// let mut t = TripletMat::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 0, -1.0);
/// let m: CsrMat = t.to_csr();
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![2.0, -1.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct CsrMat {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
    /// Fingerprint of `(nrows, ncols, indptr, indices)`, computed once at
    /// construction so pattern-identity checks are O(1). Equal patterns
    /// always hash equal; a hash match is *almost certainly* a pattern
    /// match (64-bit FNV — collision odds are negligible, and the
    /// factorization caches verify exactly in debug builds).
    pattern_key: u64,
}

/// Word-at-a-time FNV-1a over the structural arrays of a CSR pattern.
///
/// The dimensions and array lengths are folded in first so patterns that
/// differ only in shape or concatenation boundaries cannot collide
/// trivially.
fn pattern_fingerprint(nrows: usize, ncols: usize, indptr: &[usize], indices: &[usize]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let eat = |h: u64, w: u64| (h ^ w).wrapping_mul(PRIME);
    h = eat(h, nrows as u64);
    h = eat(h, ncols as u64);
    h = eat(h, indptr.len() as u64);
    h = eat(h, indices.len() as u64);
    for &w in indptr {
        h = eat(h, w as u64);
    }
    for &w in indices {
        h = eat(h, w as u64);
    }
    h
}

impl CsrMat {
    /// Internal constructor: every path that assembles raw CSR arrays goes
    /// through here so the pattern fingerprint is always populated.
    fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Self {
        let pattern_key = pattern_fingerprint(nrows, ncols, &indptr, &indices);
        CsrMat {
            nrows,
            ncols,
            indptr,
            indices,
            data,
            pattern_key,
        }
    }

    /// An `nrows × ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self::from_parts(nrows, ncols, vec![0; nrows + 1], Vec::new(), Vec::new())
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_parts(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent (wrong lengths,
    /// non-monotone `indptr`, unsorted or out-of-range column indices).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1, "indptr length");
        assert_eq!(indices.len(), data.len(), "indices/data length");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr tail");
        for i in 0..nrows {
            assert!(indptr[i] <= indptr[i + 1], "indptr monotonicity");
            let row = &indices[indptr[i]..indptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "unsorted columns in row {i}");
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "column index out of range in row {i}");
            }
        }
        Self::from_parts(nrows, ncols, indptr, indices, data)
    }

    /// Builds from parallel triplet arrays, summing duplicates and dropping
    /// entries that cancel to exactly zero.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        // Count entries per row, prefix-sum, scatter, then sort+dedup rows.
        let mut counts = vec![0usize; nrows];
        for &r in rows {
            counts[r] += 1;
        }
        let mut indptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            indptr[i + 1] = indptr[i] + counts[i];
        }
        let total = indptr[nrows];
        let mut icol = vec![0usize; total];
        let mut ival = vec![0f64; total];
        let mut next = indptr.clone();
        for k in 0..rows.len() {
            let p = next[rows[k]];
            icol[p] = cols[k];
            ival[p] = vals[k];
            next[rows[k]] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_indptr = vec![0usize; nrows + 1];
        let mut out_icol = Vec::with_capacity(total);
        let mut out_val = Vec::with_capacity(total);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..nrows {
            scratch.clear();
            for p in indptr[i]..indptr[i + 1] {
                scratch.push((icol[p], ival[p]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < scratch.len() {
                let c = scratch[k].0;
                let mut v = 0.0;
                while k < scratch.len() && scratch[k].0 == c {
                    v += scratch[k].1;
                    k += 1;
                }
                if v != 0.0 {
                    out_icol.push(c);
                    out_val.push(v);
                }
            }
            out_indptr[i + 1] = out_icol.len();
        }
        Self::from_parts(nrows, ncols, out_indptr, out_icol, out_val)
    }

    /// Builds from a dense matrix, skipping entries with magnitude ≤ `tol`.
    pub fn from_dense(m: &DMat<f64>, tol: f64) -> Self {
        let mut indptr = vec![0usize; m.nrows() + 1];
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for i in 0..m.nrows() {
            for j in 0..m.ncols() {
                let v = m[(i, j)];
                if v.abs() > tol {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr[i + 1] = indices.len();
        }
        Self::from_parts(m.nrows(), m.ncols(), indptr, indices, data)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column-index array.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Value array, parallel to [`CsrMat::indices`].
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// O(1) fingerprint of the sparsity pattern (shape + `indptr` +
    /// `indices`, values excluded), precomputed at construction.
    ///
    /// Two matrices with the same pattern always report the same key;
    /// matrices with different patterns collide with probability ~2⁻⁶⁴.
    /// Symbolic-factorization caches use this to verify cache hits in
    /// O(1) instead of re-walking the full index arrays.
    #[inline]
    pub fn pattern_key(&self) -> u64 {
        self.pattern_key
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.indptr[i]..self.indptr[i + 1];
        self.indices[r.clone()]
            .iter()
            .copied()
            .zip(self.data[r].iter().copied())
    }

    /// Value at `(i, j)`, 0 when not stored. O(log nnz(row)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let row = &self.indices[self.indptr[i]..self.indptr[i + 1]];
        match row.binary_search(&j) {
            Ok(p) => self.data[self.indptr[i] + p],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer (hot path of the
    /// Lanczos iteration — avoids per-iteration allocation).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.nrows, "output dimension mismatch");
        for i in 0..self.nrows {
            let mut acc = 0.0;
            for p in self.indptr[i]..self.indptr[i + 1] {
                acc += self.data[p] * x[self.indices[p]];
            }
            y[i] = acc;
        }
    }

    /// Transposed product `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for p in self.indptr[i]..self.indptr[i + 1] {
                y[self.indices[p]] += self.data[p] * xi;
            }
        }
        y
    }

    /// Transposed product into a caller-provided buffer.
    pub fn matvec_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.ncols, "output dimension mismatch");
        y.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for p in self.indptr[i]..self.indptr[i + 1] {
                y[self.indices[p]] += self.data[p] * xi;
            }
        }
    }

    /// Row-partitioned parallel [`CsrMat::matvec_into`].
    ///
    /// Each worker computes a contiguous range of output rows with the
    /// serial per-row loop, so the result is bit-identical to the serial
    /// product for every thread count (each `y[i]` never depends on the
    /// partition).
    pub fn matvec_into_ctx(&self, x: &[f64], y: &mut [f64], ctx: &crate::ParCtx) {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.nrows, "output dimension mismatch");
        if ctx.threads() == 1 || self.nnz() < PAR_MATVEC_MIN_NNZ {
            self.matvec_into(x, y);
            return;
        }
        ctx.for_each_chunk_mut(y, 1, |rows, chunk| {
            for (k, i) in rows.enumerate() {
                let mut acc = 0.0;
                for p in self.indptr[i]..self.indptr[i + 1] {
                    acc += self.data[p] * x[self.indices[p]];
                }
                chunk[k] = acc;
            }
        });
    }

    /// Parallel transposed product `y = Aᵀ x` with deterministic
    /// partial-sum combination.
    ///
    /// The scatter `y[col] += a[i, col]·x[i]` carries a cross-row
    /// reduction, so the rows are split into a **fixed** number of
    /// stripes derived from the row count alone; each stripe's partial
    /// vector is accumulated with the serial scatter loop and the
    /// partials are summed in stripe order. Both the striping decision
    /// and the stripe boundaries are independent of the thread count, so
    /// results are bit-identical whether the stripes run on one thread
    /// or many.
    pub fn matvec_t_into_ctx(&self, x: &[f64], y: &mut [f64], ctx: &crate::ParCtx) {
        assert_eq!(x.len(), self.nrows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.ncols, "output dimension mismatch");
        if self.nrows < MATVEC_T_STRIPE_MIN_ROWS {
            self.matvec_t_into(x, y);
            return;
        }
        let stripes = crate::split_ranges(self.nrows, MATVEC_T_STRIPES);
        let partials = ctx.map_items(
            stripes.len(),
            || (),
            |_, s| {
                let mut part = vec![0.0; self.ncols];
                for i in stripes[s].clone() {
                    let xi = x[i];
                    if xi == 0.0 {
                        continue;
                    }
                    for p in self.indptr[i]..self.indptr[i + 1] {
                        part[self.indices[p]] += self.data[p] * xi;
                    }
                }
                part
            },
        );
        y.iter_mut().for_each(|v| *v = 0.0);
        for part in partials {
            for (yi, pi) in y.iter_mut().zip(part) {
                *yi += pi;
            }
        }
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMat {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.indices {
            counts[c] += 1;
        }
        let mut indptr = vec![0usize; self.ncols + 1];
        for j in 0..self.ncols {
            indptr[j + 1] = indptr[j] + counts[j];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![0f64; self.nnz()];
        let mut next = indptr.clone();
        for i in 0..self.nrows {
            for p in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[p];
                let q = next[j];
                indices[q] = i;
                data[q] = self.data[p];
                next[j] += 1;
            }
        }
        Self::from_parts(self.ncols, self.nrows, indptr, indices, data)
    }

    /// Extracts the submatrix selecting `rows` and `cols` (relabelled in the
    /// order given). Used to slice the `A/B/D/E/Q/R` partitions out of the
    /// stamped `G` and `C` matrices.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> CsrMat {
        let mut colmap = vec![usize::MAX; self.ncols];
        for (newj, &j) in cols.iter().enumerate() {
            colmap[j] = newj;
        }
        let mut indptr = vec![0usize; rows.len() + 1];
        let mut indices = Vec::new();
        let mut data = Vec::new();
        let mut rowbuf: Vec<(usize, f64)> = Vec::new();
        for (newi, &i) in rows.iter().enumerate() {
            rowbuf.clear();
            for p in self.indptr[i]..self.indptr[i + 1] {
                let nj = colmap[self.indices[p]];
                if nj != usize::MAX {
                    rowbuf.push((nj, self.data[p]));
                }
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &rowbuf {
                indices.push(c);
                data.push(v);
            }
            indptr[newi + 1] = indices.len();
        }
        Self::from_parts(rows.len(), cols.len(), indptr, indices, data)
    }

    /// Symmetric permutation `P A Pᵀ` where row/col `i` of the result is
    /// row/col `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `perm` is not a permutation of
    /// `0..n`.
    pub fn permute_sym(&self, perm: &[usize]) -> CsrMat {
        assert_eq!(self.nrows, self.ncols, "permute_sym needs a square matrix");
        assert_eq!(perm.len(), self.nrows);
        let rows: Vec<usize> = perm.to_vec();
        self.submatrix(&rows, &rows)
    }

    /// The main diagonal as a dense vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Converts to a dense matrix (small matrices only — used in tests and
    /// for reduced models).
    pub fn to_dense(&self) -> DMat<f64> {
        let mut m = DMat::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (j, v) in self.row_iter(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Sum of two matrices with the same shape.
    pub fn add(&self, rhs: &CsrMat) -> CsrMat {
        self.linear_comb(1.0, rhs, 1.0)
    }

    /// `alpha * self + beta * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear_comb(&self, alpha: f64, rhs: &CsrMat, beta: f64) -> CsrMat {
        assert_eq!((self.nrows, self.ncols), (rhs.nrows, rhs.ncols));
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::with_capacity(self.nnz() + rhs.nnz());
        let mut data = Vec::with_capacity(self.nnz() + rhs.nnz());
        for i in 0..self.nrows {
            let mut pa = self.indptr[i];
            let mut pb = rhs.indptr[i];
            let ea = self.indptr[i + 1];
            let eb = rhs.indptr[i + 1];
            while pa < ea || pb < eb {
                let ca = if pa < ea {
                    self.indices[pa]
                } else {
                    usize::MAX
                };
                let cb = if pb < eb { rhs.indices[pb] } else { usize::MAX };
                let (c, v) = if ca < cb {
                    let v = alpha * self.data[pa];
                    pa += 1;
                    (ca, v)
                } else if cb < ca {
                    let v = beta * rhs.data[pb];
                    pb += 1;
                    (cb, v)
                } else {
                    let v = alpha * self.data[pa] + beta * rhs.data[pb];
                    pa += 1;
                    pb += 1;
                    (ca, v)
                };
                if v != 0.0 {
                    indices.push(c);
                    data.push(v);
                }
            }
            indptr[i + 1] = indices.len();
        }
        Self::from_parts(self.nrows, self.ncols, indptr, indices, data)
    }

    /// Checks symmetry within tolerance `tol` (absolute, entrywise).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            // Patterns may legitimately differ by explicitly-stored zeros;
            // fall back to value comparison.
            for i in 0..self.nrows {
                for (j, v) in self.row_iter(i) {
                    if (v - self.get(j, i)).abs() > tol {
                        return false;
                    }
                }
                for (j, v) in t.row_iter(i) {
                    if (v - t.get(j, i)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.data
            .iter()
            .zip(&t.data)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// `true` when every row is weakly diagonally dominant:
    /// `a_ii ≥ Σ_{j≠i} |a_ij|` (the paper's sufficient condition for
    /// non-negative definiteness of stamped RC matrices).
    pub fn is_diag_dominant(&self, slack: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (j, v) in self.row_iter(i) {
                if j == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            if diag + slack < off {
                return false;
            }
        }
        true
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl fmt::Debug for CsrMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CsrMat {}x{} nnz={}", self.nrows, self.ncols, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMat;

    fn sample() -> CsrMat {
        // [ 4 -1  0]
        // [-1  4 -2]
        // [ 0 -2  5]
        let mut t = TripletMat::new(3, 3);
        t.stamp_conductance(Some(0), Some(1), 1.0);
        t.stamp_conductance(Some(1), Some(2), 2.0);
        t.push(0, 0, 3.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 3.0);
        t.to_csr()
    }

    #[test]
    fn matvec_correct() {
        let m = sample();
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0, 1.0, 11.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let m = sample();
        let x = [0.5, -1.0, 2.0];
        assert_eq!(m.matvec_t(&x), m.transpose().matvec(&x));
    }

    #[test]
    fn matvec_t_into_matches_matvec_t() {
        let m = sample();
        let x = [0.5, -1.0, 2.0];
        let mut y = vec![9.0; 3]; // stale contents must be overwritten
        m.matvec_t_into(&x, &mut y);
        assert_eq!(y, m.matvec_t(&x));
    }

    /// A large sparse band matrix plus some scattered entries, big enough
    /// to pass both parallel-path gates.
    fn large_banded(n: usize) -> CsrMat {
        let mut t = crate::TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + (i % 7) as f64);
            if i + 1 < n {
                t.push(i, i + 1, -1.0 + 0.001 * (i % 13) as f64);
                t.push(i + 1, i, -0.5);
            }
            t.push(i, (i * 37) % n, 0.25);
        }
        t.to_csr()
    }

    #[test]
    fn parallel_matvec_bit_identical_across_thread_counts() {
        let n = 5000;
        let m = large_banded(n);
        let x: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
        let serial = m.matvec(&x);
        for threads in [1usize, 2, 4, 8] {
            let ctx = crate::ParCtx::new(Some(threads));
            let mut y = vec![0.0; n];
            m.matvec_into_ctx(&x, &mut y, &ctx);
            assert_eq!(y, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matvec_t_bit_identical_across_thread_counts() {
        let n = 5000;
        let m = large_banded(n);
        let mut x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.2).collect();
        // Exercise the zero-skip too.
        for i in (0..n).step_by(17) {
            x[i] = 0.0;
        }
        let ctx1 = crate::ParCtx::new(Some(1));
        let mut base = vec![0.0; n];
        m.matvec_t_into_ctx(&x, &mut base, &ctx1);
        for threads in [2usize, 4, 8] {
            let ctx = crate::ParCtx::new(Some(threads));
            let mut y = vec![0.0; n];
            m.matvec_t_into_ctx(&x, &mut y, &ctx);
            assert_eq!(y, base, "threads={threads}");
        }
        // And the striped result stays close to the plain serial scatter.
        let plain = m.matvec_t(&x);
        for (a, b) in base.iter().zip(&plain) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let m = sample();
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn submatrix_partitions() {
        let m = sample();
        let d = m.submatrix(&[1, 2], &[1, 2]);
        assert_eq!(d.get(0, 0), 4.0);
        assert_eq!(d.get(0, 1), -2.0);
        assert_eq!(d.get(1, 1), 5.0);
        let q = m.submatrix(&[1, 2], &[0]);
        assert_eq!(q.get(0, 0), -1.0);
        assert_eq!(q.get(1, 0), 0.0);
    }

    #[test]
    fn permute_sym_preserves_values() {
        let m = sample();
        let p = [2usize, 0, 1];
        let mp = m.permute_sym(&p);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(mp.get(i, j), m.get(p[i], p[j]));
            }
        }
    }

    #[test]
    fn linear_comb_cancels() {
        let m = sample();
        let z = m.linear_comb(1.0, &m, -1.0);
        assert_eq!(z.nnz(), 0);
        let two = m.add(&m);
        assert_eq!(two.get(1, 1), 8.0);
    }

    #[test]
    fn diag_dominance_detected() {
        let m = sample();
        assert!(m.is_diag_dominant(0.0));
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, -3.0);
        t.push(1, 0, -3.0);
        t.push(1, 1, 1.0);
        assert!(!t.to_csr().is_diag_dominant(0.0));
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMat::from_dense(&d, 0.0);
        assert_eq!(back, m);
    }

    #[test]
    fn from_raw_validates() {
        let m = CsrMat::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "unsorted")]
    fn from_raw_rejects_unsorted() {
        let _ = CsrMat::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    fn identity_matvec() {
        let idn = CsrMat::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(idn.matvec(&x), x.to_vec());
    }

    #[test]
    fn pattern_key_tracks_structure_not_values() {
        let m = sample();
        // Same pattern, different values: identical key.
        let scaled = CsrMat::from_raw(
            m.nrows(),
            m.ncols(),
            m.indptr().to_vec(),
            m.indices().to_vec(),
            m.data().iter().map(|v| v * 3.0).collect(),
        );
        assert_eq!(m.pattern_key(), scaled.pattern_key());
        // Different pattern: different key (no collision on this pair).
        let other = CsrMat::identity(3);
        assert_ne!(m.pattern_key(), other.pattern_key());
        // Derived matrices carry a freshly computed key.
        assert_eq!(m.transpose().pattern_key(), m.pattern_key()); // symmetric
        assert_ne!(m.submatrix(&[0, 1], &[0, 1]).pattern_key(), m.pattern_key());
        // Shape is part of the key even with no stored entries.
        assert_ne!(
            CsrMat::zeros(2, 3).pattern_key(),
            CsrMat::zeros(3, 2).pattern_key()
        );
    }
}
