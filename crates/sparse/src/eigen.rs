//! Dense symmetric eigendecomposition.
//!
//! PACT's second congruence transform diagonalizes the internal
//! susceptance matrix `E'`. For small networks (and as the test oracle for
//! the Lanczos path) a full dense decomposition is used: Householder
//! tridiagonalization followed by the implicit-shift QL iteration — the
//! classic EISPACK `tred2`/`tql2` pair.
//!
//! The tridiagonal-only entry point [`eig_tridiagonal`] is also the
//! workhorse the Lanczos solver uses to extract Ritz values/vectors from
//! its tridiagonal matrix `T` (eq. 17 of the paper).

use crate::dense::DMat;

/// Error from the dense symmetric eigensolver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EigenError {
    /// The QL iteration failed to converge (more than 50 sweeps for one
    /// eigenvalue — essentially impossible for finite symmetric input).
    NotConverged {
        /// Index of the eigenvalue whose QL iteration exceeded the limit.
        index: usize,
    },
    /// The input matrix contains a NaN or infinite entry. Detected before
    /// iterating: the QL deflation floor is derived from the matrix norm,
    /// and a NaN norm makes every deflation comparison silently false.
    NonFinite {
        /// Row (for [`sym_eig`]) or tridiagonal index (for
        /// [`eig_tridiagonal`]) of the first non-finite entry.
        index: usize,
    },
}

impl std::fmt::Display for EigenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigenError::NotConverged { index } => {
                write!(f, "QL iteration failed to converge at eigenvalue {index}")
            }
            EigenError::NonFinite { index } => {
                write!(f, "non-finite entry at row {index} of the eigenproblem")
            }
        }
    }
}

impl std::error::Error for EigenError {}

/// Result of a symmetric eigendecomposition `A = Z Λ Zᵀ`.
#[derive(Clone, Debug)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, ordered like `values`.
    pub vectors: DMat<f64>,
}

/// Full eigendecomposition of a dense symmetric matrix.
///
/// Only the lower triangle is referenced.
///
/// # Errors
///
/// Returns [`EigenError`] if the QL iteration fails to converge (more than
/// 50 sweeps for one eigenvalue — essentially impossible for symmetric
/// input).
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// ```
/// use pact_sparse::{DMat, sym_eig};
/// let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = sym_eig(&a)?;
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), pact_sparse::EigenError>(())
/// ```
pub fn sym_eig(a: &DMat<f64>) -> Result<SymEig, EigenError> {
    assert_eq!(a.nrows(), a.ncols(), "sym_eig needs a square matrix");
    let n = a.nrows();
    if n == 0 {
        return Ok(SymEig {
            values: Vec::new(),
            vectors: DMat::zeros(0, 0),
        });
    }
    // Only the lower triangle is referenced; reject poisoned input up
    // front so a NaN cannot defeat the deflation floor inside tql2.
    for i in 0..n {
        for j in 0..=i {
            if !a[(i, j)].is_finite() {
                return Err(EigenError::NonFinite { index: i });
            }
        }
    }
    let (mut d, mut e, mut z) = tred2(a);
    tql2(&mut d, &mut e, &mut z)?;
    sort_ascending(&mut d, &mut z);
    Ok(SymEig {
        values: d,
        vectors: z,
    })
}

/// Eigendecomposition of a symmetric tridiagonal matrix with diagonal `d`
/// and off-diagonal `e` (`e.len() == d.len() - 1`; pass `&[]` for 1×1).
///
/// Returns eigenvalues ascending and, when `want_vectors`, the orthonormal
/// eigenvector matrix (otherwise an empty matrix).
///
/// # Errors
///
/// Returns [`EigenError`] on QL non-convergence.
pub fn eig_tridiagonal(
    d: &[f64],
    e: &[f64],
    want_vectors: bool,
) -> Result<(Vec<f64>, DMat<f64>), EigenError> {
    let n = d.len();
    assert!(n == 0 || e.len() == n - 1, "off-diagonal length mismatch");
    if n == 0 {
        return Ok((Vec::new(), DMat::zeros(0, 0)));
    }
    for (i, v) in d.iter().enumerate() {
        if !v.is_finite() {
            return Err(EigenError::NonFinite { index: i });
        }
    }
    for (i, v) in e.iter().enumerate() {
        if !v.is_finite() {
            return Err(EigenError::NonFinite { index: i });
        }
    }
    let mut dd = d.to_vec();
    // tql2 wants e shifted: e[i] = subdiagonal below d[i], with e[n-1] = 0.
    let mut ee = vec![0.0; n];
    ee[..n - 1].copy_from_slice(e);
    let mut z = if want_vectors {
        DMat::identity(n)
    } else {
        DMat::zeros(0, 0)
    };
    tql2_raw(&mut dd, &mut ee, &mut z, want_vectors)?;
    if want_vectors {
        sort_ascending(&mut dd, &mut z);
    } else {
        dd.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    Ok((dd, z))
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (EISPACK `tred2`). Returns `(d, e, z)` where `d` is the diagonal, `e`
/// the subdiagonal (`e[0]` unused, length n), and `z` the accumulated
/// orthogonal transformation with `zᵀ a z = tridiag(d, e)`.
fn tred2(a: &DMat<f64>) -> (Vec<f64>, Vec<f64>, DMat<f64>) {
    let n = a.nrows();
    let mut z = a.clone();
    // Use lower triangle only: force symmetry from the lower part.
    for j in 0..n {
        for i in 0..j {
            z[(i, j)] = z[(j, i)];
        }
    }
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 0 {
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in j + 1..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        let l = i;
        if d[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0;
                for k in 0..l {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..l {
                    z[(k, j)] -= g * z[(k, i)];
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..l {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
    (d, e, z)
}

/// Implicit-shift QL on a tridiagonal matrix with eigenvector accumulation
/// (EISPACK `tql2`). `e[0]` unused on entry; eigenvalues land in `d`.
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut DMat<f64>) -> Result<(), EigenError> {
    let n = d.len();
    // Shift e for the loop convention used in tql2_raw: e[i] below d[i].
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    tql2_raw(d, e, z, true)
}

/// Core QL iteration. `e[i]` is the subdiagonal entry coupling `d[i]` and
/// `d[i+1]`; `e[n-1]` must be zero. When `with_z`, plane rotations are
/// accumulated into `z`.
fn tql2_raw(
    d: &mut [f64],
    e: &mut [f64],
    z: &mut DMat<f64>,
    with_z: bool,
) -> Result<(), EigenError> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    // Absolute deflation floor: inside a cluster of near-zero eigenvalues
    // the relative test `|e| ≤ ε(|d_m|+|d_{m+1}|)` can never fire (the
    // right-hand side is itself ~0) and the iteration stalls. Couplings
    // at rounding level of the overall matrix scale are converged for any
    // backward-stable purpose, so deflate them too.
    let anorm = (0..n)
        .map(|i| d[i].abs() + e[i].abs())
        .fold(0.0f64, f64::max);
    let floor = f64::EPSILON * anorm;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small subdiagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON.mul_add(dd, floor) {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(EigenError::NotConverged { index: l });
            }
            // Form shift (Wilkinson).
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if with_z {
                    for k in 0..z.nrows() {
                        f = z[(k, i + 1)];
                        z[(k, i + 1)] = s * z[(k, i)] + c * f;
                        z[(k, i)] = c * z[(k, i)] - s * f;
                    }
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Sorts eigenvalues ascending, permuting eigenvector columns to match.
fn sort_ascending(d: &mut [f64], z: &mut DMat<f64>) {
    let n = d.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let sorted_d: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    d.copy_from_slice(&sorted_d);
    if z.ncols() == n && z.nrows() > 0 {
        let zn = z.nrows();
        let mut sorted = DMat::zeros(zn, n);
        for (newj, &oldj) in idx.iter().enumerate() {
            sorted.col_mut(newj).copy_from_slice(z.col(oldj));
        }
        *z = sorted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEig) -> DMat<f64> {
        let lam = DMat::from_diag(&e.values);
        e.vectors.matmul(&lam).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = DMat::from_diag(&[3.0, 1.0, 2.0]);
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_by_two_known() {
        let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        // A dense SPD-ish symmetric matrix.
        let n = 12;
        let a = DMat::from_fn(n, n, |i, j| {
            let x = (i as f64 - j as f64).abs();
            (-x / 3.0).exp() + if i == j { 2.0 } else { 0.0 }
        });
        let e = sym_eig(&a).unwrap();
        let rec = reconstruct(&e);
        assert!((&rec - &a).norm_max() < 1e-10, "reconstruction failed");
        let qtq = e.vectors.transpose().matmul(&e.vectors);
        assert!((&qtq - &DMat::identity(n)).norm_max() < 1e-10);
        // ascending order
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        let a = DMat::identity(5);
        let e = sym_eig(&a).unwrap();
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn tridiagonal_matches_dense() {
        let d = [2.0, 3.0, 4.0, 5.0];
        let e = [1.0, 0.5, 0.25];
        let (vals, vecs) = eig_tridiagonal(&d, &e, true).unwrap();
        // Compare against the dense path.
        let mut a = DMat::zeros(4, 4);
        for i in 0..4 {
            a[(i, i)] = d[i];
        }
        for i in 0..3 {
            a[(i, i + 1)] = e[i];
            a[(i + 1, i)] = e[i];
        }
        let dense = sym_eig(&a).unwrap();
        for (u, v) in vals.iter().zip(&dense.values) {
            assert!((u - v).abs() < 1e-10);
        }
        // Residual check A z = λ z.
        for k in 0..4 {
            let zk: Vec<f64> = (0..4).map(|i| vecs[(i, k)]).collect();
            let az = a.matvec(&zk);
            for i in 0..4 {
                assert!((az[i] - vals[k] * zk[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn tridiagonal_values_only() {
        let (vals, vecs) = eig_tridiagonal(&[1.0, 2.0], &[0.0], false).unwrap();
        assert_eq!(vals, vec![1.0, 2.0]);
        assert_eq!(vecs.nrows(), 0);
    }

    #[test]
    fn empty_and_single() {
        let e = sym_eig(&DMat::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        let (vals, _) = eig_tridiagonal(&[7.0], &[], true).unwrap();
        assert_eq!(vals, vec![7.0]);
    }

    #[test]
    fn negative_semidefinite_spectrum() {
        // Graph Laplacian of a triangle: eigenvalues {0, 3, 3}.
        let a = DMat::from_rows(&[&[2.0, -1.0, -1.0], &[-1.0, 2.0, -1.0], &[-1.0, -1.0, 2.0]]);
        let e = sym_eig(&a).unwrap();
        assert!(e.values[0].abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }
}
