//! Dense LU factorization with partial pivoting, generic over [`Scalar`].
//!
//! Used for the small dense systems of reduced-order models (AC evaluation
//! of `Y(s)` needs `(I + sΛ)⁻¹`-style solves and general dense solves for
//! baselines) and as an oracle for the sparse solvers in tests.

use crate::complex::Scalar;
use crate::dense::DMat;

/// Error from factoring a singular dense matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Column at which no acceptable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrixError {}

/// A dense LU factorization `P A = L U` with partial pivoting.
///
/// ```
/// use pact_sparse::{DMat, DenseLu};
/// let a = DMat::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]]);
/// let lu = DenseLu::factor(&a)?;
/// let x = lu.solve(&[2.0, 4.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), pact_sparse::SingularMatrixError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DenseLu<S: Scalar = f64> {
    n: usize,
    /// Packed LU: strictly-lower holds L (unit diagonal implied), upper
    /// holds U.
    lu: DMat<S>,
    /// Row-swap record: at step k, rows `k` and `piv[k]` were swapped.
    piv: Vec<usize>,
    /// Sign of the permutation (+1/−1) for determinants.
    perm_sign: f64,
}

impl<S: Scalar> DenseLu<S> {
    /// Factors a square dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot column is entirely zero
    /// (to machine precision, compared against the scale of the matrix).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &DMat<S>) -> Result<Self, SingularMatrixError> {
        assert_eq!(a.nrows(), a.ncols(), "LU needs a square matrix");
        let n = a.nrows();
        let mut lu = a.clone();
        let mut piv = vec![0usize; n];
        let mut perm_sign = 1.0;
        let scale = lu.as_slice().iter().fold(0.0f64, |m, v| m.max(v.modulus()));
        let tiny = scale * 1e-300 + f64::MIN_POSITIVE;
        for k in 0..n {
            // Partial pivoting: largest modulus in column k at/below row k.
            let mut best = k;
            let mut best_mag = lu[(k, k)].modulus();
            for i in k + 1..n {
                let m = lu[(i, k)].modulus();
                if m > best_mag {
                    best = i;
                    best_mag = m;
                }
            }
            if best_mag <= tiny {
                return Err(SingularMatrixError { column: k });
            }
            piv[k] = best;
            if best != k {
                perm_sign = -perm_sign;
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(best, j)];
                    lu[(best, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != S::zero() {
                    for j in k + 1..n {
                        let sub = m * lu[(k, j)];
                        lu[(i, j)] -= sub;
                    }
                }
            }
        }
        Ok(DenseLu {
            n,
            lu,
            piv,
            perm_sign,
        })
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[S]) -> Vec<S> {
        assert_eq!(b.len(), self.n);
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A x = b` overwriting `b` with `x`.
    pub fn solve_in_place(&self, x: &mut [S]) {
        let n = self.n;
        // Apply row swaps.
        for k in 0..n {
            let p = self.piv[k];
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward: L y = Pb (unit lower).
        for k in 0..n {
            let xk = x[k];
            if xk != S::zero() {
                for i in k + 1..n {
                    let sub = self.lu[(i, k)] * xk;
                    x[i] -= sub;
                }
            }
        }
        // Backward: U x = y.
        for k in (0..n).rev() {
            let mut acc = x[k];
            for j in k + 1..n {
                let sub = self.lu[(k, j)] * x[j];
                acc -= sub;
            }
            x[k] = acc / self.lu[(k, k)];
        }
    }

    /// Solves for several right-hand sides given as a dense matrix of
    /// columns, returning `A⁻¹ B`.
    pub fn solve_mat(&self, b: &DMat<S>) -> DMat<S> {
        assert_eq!(b.nrows(), self.n);
        let mut out = b.clone();
        for j in 0..b.ncols() {
            self.solve_in_place(out.col_mut(j));
        }
        out
    }

    /// The determinant `det(A)` (product of pivots times permutation sign).
    pub fn det(&self) -> S {
        let mut d = S::from_f64(self.perm_sign);
        for k in 0..self.n {
            d = d * self.lu[(k, k)];
        }
        d
    }
}

/// The inverse of a small dense matrix (convenience built on [`DenseLu`]).
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if `a` is singular.
pub fn invert<S: Scalar>(a: &DMat<S>) -> Result<DMat<S>, SingularMatrixError> {
    let lu = DenseLu::factor(a)?;
    Ok(lu.solve_mat(&DMat::identity(a.nrows())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    #[test]
    fn solves_real_system() {
        let a = DMat::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let b = [5.0, -2.0, 9.0];
        let x = lu.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn det_matches_known() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(DenseLu::factor(&a).is_err());
    }

    #[test]
    fn complex_system() {
        let j = Complex64::J;
        let one = Complex64::ONE;
        let a = DMat::from_rows(&[&[one + j, j], &[j, one - j.scale(2.0)]]);
        let lu = DenseLu::factor(&a).unwrap();
        let b = [Complex64::new(1.0, 1.0), Complex64::new(0.0, -2.0)];
        let x = lu.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((*ri - *bi).abs() < 1e-12);
        }
    }

    #[test]
    fn invert_roundtrip() {
        let a = DMat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!((&prod - &DMat::identity(2)).norm_max() < 1e-12);
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = DMat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let b = DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = lu.solve_mat(&b);
        let check = a.matmul(&x);
        assert!((&check - &b).norm_max() < 1e-12);
    }
}
