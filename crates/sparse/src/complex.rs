//! A minimal double-precision complex number, built from scratch so the
//! workspace stays within its approved dependency set.
//!
//! Only the operations needed by AC circuit analysis and admittance
//! evaluation are provided: field arithmetic, conjugation, magnitude and
//! polar construction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use pact_sparse::Complex64;
/// let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * 1e9);
/// let y = Complex64::new(1e-3, 0.0) + s * Complex64::new(1e-12, 0.0);
/// assert!(y.abs() > 1e-3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const J: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `(magnitude, phase)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// The magnitude (Euclidean norm), computed with `hypot` for robustness
    /// against overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse `1/self`.
    ///
    /// Uses Smith's algorithm to avoid intermediate overflow/underflow.
    #[inline]
    pub fn recip(self) -> Self {
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Complex64::new(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Complex64::new(r / d, -1.0 / d)
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `true` when either part is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// The principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return Complex64::ZERO;
        }
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Complex64::new(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

/// Scalar abstraction letting the LU factorizations work over both `f64`
/// (DC/transient) and [`Complex64`] (AC analysis).
///
/// Implementors form a field with a magnitude function used for pivoting.
pub trait Scalar:
    Copy
    + PartialEq
    + fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection.
    fn modulus(self) -> f64;
    /// Squared magnitude. Pivot admissibility compares squared
    /// magnitudes (the decision is identical to comparing magnitudes,
    /// while skipping a `hypot` per candidate in the factorization hot
    /// loop); values beyond `≈1e±154` saturate the squares and are
    /// treated as singular.
    fn modulus_sq(self) -> f64;
    /// Lift a real number into the scalar type.
    fn from_f64(x: f64) -> Self;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn modulus_sq(self) -> f64 {
        self * self
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
}

impl Scalar for Complex64 {
    #[inline]
    fn zero() -> Self {
        Complex64::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex64::ONE
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn modulus_sq(self) -> f64 {
        self.norm_sqr()
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex64::from_real(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        let c = Complex64::new(4.0, 0.5);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + c), a * b + a * c));
        assert!(close((a / b) * b, a));
    }

    #[test]
    fn recip_is_inverse() {
        let a = Complex64::new(3.0, -4.0);
        assert!(close(a * a.recip(), Complex64::ONE));
        // branch where |im| > |re|
        let b = Complex64::new(1.0, -40.0);
        assert!(close(b * b.recip(), Complex64::ONE));
    }

    #[test]
    fn abs_and_polar_roundtrip() {
        let a = Complex64::from_polar(2.0, 0.7);
        assert!((a.abs() - 2.0).abs() < 1e-12);
        assert!((a.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0)] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z), "sqrt({z}) = {r}");
        }
    }

    #[test]
    fn conj_mul_gives_norm_sqr() {
        let a = Complex64::new(2.0, -7.0);
        let p = a * a.conj();
        assert!((p.re - a.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn scalar_trait_for_both_types() {
        fn generic_sum<S: Scalar>(xs: &[S]) -> S {
            let mut acc = S::zero();
            for &x in xs {
                acc += x;
            }
            acc
        }
        assert_eq!(generic_sum(&[1.0, 2.0, 3.0]), 6.0);
        let z = generic_sum(&[Complex64::new(1.0, 1.0), Complex64::new(2.0, -1.0)]);
        assert!(close(z, Complex64::new(3.0, 0.0)));
    }
}
