//! Sparse LU factorization with partial pivoting (Gilbert–Peierls),
//! generic over [`Scalar`] so the same kernel serves real MNA systems
//! (DC/transient) and complex ones (AC sweeps).
//!
//! This is the linear-solver core of the `pact-circuit` HSPICE stand-in.
//! The algorithm factors one column at a time: a depth-first search over
//! the partially-built `L` finds the nonzero pattern of `L⁻¹ a_j`
//! (topologically ordered), the numeric sparse triangular solve fills it
//! in, and a threshold partial pivot (diagonal preferred) is chosen.
//!
//! ## One symbolic, many numerics
//!
//! Sweep loops (AC frequency grids, Newton iterations, transient
//! timesteps) factor many matrices that share one sparsity pattern. The
//! per-column DFS, the pattern emission and the pivot search are all
//! pattern work that can be done **once**: [`SparseLu::factor_analyzed`]
//! captures a [`SymbolicLu`] — the `L`/`U` patterns, the row permutation
//! and (implicitly, in the stored `U` column order) the topological
//! update order — and [`SymbolicLu::refactor`] replays only the numeric
//! pass for a new matrix with the same structure. When the cached pivot
//! sequence is still admissible under threshold partial pivoting the
//! replay is **bit-identical** to a fresh factorization; when values
//! drift far enough that a cached pivot is rejected, `refactor` reports
//! it and the caller falls back to a fresh full factorization (see
//! [`LuCache`], which packages that policy).

use crate::complex::Scalar;

/// Error from factoring a numerically singular sparse matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseLuError {
    /// Column at which no acceptable pivot existed.
    pub column: usize,
}

impl std::fmt::Display for SparseLuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sparse matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SparseLuError {}

/// A sparse matrix in compressed-sparse-column form with generic scalar
/// values — the input format for [`SparseLu`].
///
/// Build one from triplets with [`CscMat::from_triplets`]; duplicate
/// entries are summed (circuit stamping relies on this).
#[derive(Clone, Debug)]
pub struct CscMat<S> {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<S>,
}

impl<S: Scalar> CscMat<S> {
    /// Compresses `(row, col, value)` triplets into CSC, summing
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_triplets(n_rows: usize, n_cols: usize, triplets: &[(usize, usize, S)]) -> Self {
        let mut counts = vec![0usize; n_cols];
        for &(r, c, _) in triplets {
            assert!(r < n_rows && c < n_cols, "triplet out of bounds");
            counts[c] += 1;
        }
        let mut indptr = vec![0usize; n_cols + 1];
        for j in 0..n_cols {
            indptr[j + 1] = indptr[j] + counts[j];
        }
        let mut rows = vec![0usize; triplets.len()];
        let mut vals = vec![S::zero(); triplets.len()];
        let mut next = indptr.clone();
        for &(r, c, v) in triplets {
            rows[next[c]] = r;
            vals[next[c]] = v;
            next[c] += 1;
        }
        // Sort each column and merge duplicates.
        let mut out_indptr = vec![0usize; n_cols + 1];
        let mut out_rows = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(usize, S)> = Vec::new();
        for j in 0..n_cols {
            scratch.clear();
            for p in indptr[j]..indptr[j + 1] {
                scratch.push((rows[p], vals[p]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < scratch.len() {
                let r = scratch[k].0;
                let mut v = S::zero();
                while k < scratch.len() && scratch[k].0 == r {
                    v += scratch[k].1;
                    k += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
            }
            out_indptr[j + 1] = out_rows.len();
        }
        CscMat {
            n_rows,
            n_cols,
            indptr: out_indptr,
            indices: out_rows,
            data: out_vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.n_cols
    }

    /// Assembles a CSC matrix directly from its raw compressed parts.
    ///
    /// Columns must be sorted by row with no duplicates — the layout
    /// [`CscMat::from_triplets`] produces. Used by value-refresh paths
    /// (e.g. [`crate::CscPencil`]) that keep one structure and rewrite
    /// `data` per evaluation point.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent (lengths, monotonicity,
    /// out-of-bounds or unsorted row indices).
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<S>,
    ) -> Self {
        assert_eq!(indptr.len(), n_cols + 1, "indptr length");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr end");
        assert_eq!(indices.len(), data.len(), "indices/data length");
        for j in 0..n_cols {
            assert!(indptr[j] <= indptr[j + 1], "indptr must be monotone");
            for p in indptr[j]..indptr[j + 1] {
                assert!(indices[p] < n_rows, "row index out of bounds");
                if p > indptr[j] {
                    assert!(indices[p - 1] < indices[p], "rows must be sorted, unique");
                }
            }
        }
        CscMat {
            n_rows,
            n_cols,
            indptr,
            indices,
            data,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Column pointers (length `ncols + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Row indices, column-major.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, aligned with [`CscMat::indices`].
    pub fn values(&self) -> &[S] {
        &self.data
    }

    /// Mutable stored values — rewrite these to change the matrix without
    /// touching its structure (the basis of numeric refactorization).
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// `true` when `other` has exactly the same sparsity structure
    /// (dimensions, column pointers and row indices).
    pub fn structure_eq<T: Scalar>(&self, other: &CscMat<T>) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.indptr == other.indptr
            && self.indices == other.indices
    }

    /// Matrix–vector product `A x` (columns scatter into the result).
    pub fn matvec(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![S::zero(); self.n_rows];
        for j in 0..self.n_cols {
            let xj = x[j];
            if xj == S::zero() {
                continue;
            }
            for p in self.indptr[j]..self.indptr[j + 1] {
                y[self.indices[p]] += self.data[p] * xj;
            }
        }
        y
    }
}

/// Sparse LU factors `P A = L U` produced by Gilbert–Peierls with
/// threshold partial pivoting.
#[derive(Clone, Debug)]
pub struct SparseLu<S> {
    n: usize,
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<S>,
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<S>,
    /// `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
}

impl<S: Scalar> SparseLu<S> {
    /// Factors a square sparse matrix with the default diagonal-preference
    /// threshold (0.1), appropriate for MNA matrices.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if the matrix is singular.
    pub fn factor(a: &CscMat<S>) -> Result<Self, SparseLuError> {
        Self::factor_with_threshold(a, 0.1)
    }

    /// Factors with an explicit pivot threshold in `(0, 1]`: the diagonal
    /// entry is accepted as pivot when its magnitude is at least
    /// `threshold` times the column maximum. `1.0` forces strict partial
    /// pivoting.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if some column has no nonzero candidate pivot.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor_with_threshold(a: &CscMat<S>, threshold: f64) -> Result<Self, SparseLuError> {
        assert_eq!(a.n_rows, a.n_cols, "sparse LU needs a square matrix");
        let n = a.n_rows;
        let mut lp = vec![0usize; n + 1];
        let mut up = vec![0usize; n + 1];
        let mut li: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut lx: Vec<S> = Vec::with_capacity(4 * a.nnz() + n);
        let mut ui: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut ux: Vec<S> = Vec::with_capacity(4 * a.nnz() + n);
        let mut pinv = vec![usize::MAX; n];
        let mut x = vec![S::zero(); n];
        let mut xi = vec![0usize; n]; // topological pattern stack
        let mut mark = vec![usize::MAX; n];
        let mut node_stack: Vec<usize> = Vec::with_capacity(n);
        let mut iter_stack: Vec<usize> = Vec::with_capacity(n);

        for j in 0..n {
            // ---- symbolic: DFS reach of A(:,j) through columns of L ----
            let mut top = n;
            for p in a.indptr[j]..a.indptr[j + 1] {
                let start = a.indices[p];
                if mark[start] == j {
                    continue;
                }
                // Iterative DFS.
                node_stack.clear();
                iter_stack.clear();
                node_stack.push(start);
                mark[start] = j;
                iter_stack.push(if pinv[start] == usize::MAX {
                    usize::MAX
                } else {
                    lp[pinv[start]] + 1 // skip unit diagonal
                });
                while let Some(&i) = node_stack.last() {
                    let k = pinv[i];
                    let mut pos = *iter_stack.last().unwrap();
                    let end = if k == usize::MAX { 0 } else { lp[k + 1] };
                    let mut descended = false;
                    if k != usize::MAX {
                        while pos < end {
                            let child = li[pos];
                            pos += 1;
                            if mark[child] != j {
                                mark[child] = j;
                                *iter_stack.last_mut().unwrap() = pos;
                                node_stack.push(child);
                                iter_stack.push(if pinv[child] == usize::MAX {
                                    usize::MAX
                                } else {
                                    lp[pinv[child]] + 1
                                });
                                descended = true;
                                break;
                            }
                        }
                    }
                    if !descended {
                        node_stack.pop();
                        iter_stack.pop();
                        top -= 1;
                        xi[top] = i;
                    }
                }
            }

            // ---- numeric: scatter A(:,j), sparse lower triangular solve ----
            for p in a.indptr[j]..a.indptr[j + 1] {
                x[a.indices[p]] = a.data[p];
            }
            for idx in top..n {
                let i = xi[idx];
                let k = pinv[i];
                if k == usize::MAX {
                    continue;
                }
                let xj = x[i]; // unit diagonal: no division
                if xj == S::zero() {
                    continue;
                }
                for p in lp[k] + 1..lp[k + 1] {
                    let sub = lx[p] * xj;
                    x[li[p]] -= sub;
                }
            }

            // ---- pivot selection ----
            // Magnitudes are compared squared: the decision is the same
            // (the map is monotone) and it saves a `hypot` per candidate
            // in the hot loop. The refactorization path uses the same
            // metric so its admissibility test reproduces this choice
            // exactly.
            let mut best = usize::MAX;
            let mut best_sq = 0.0f64;
            for idx in top..n {
                let i = xi[idx];
                if pinv[i] == usize::MAX {
                    let m = x[i].modulus_sq();
                    // A NaN candidate compares false against every
                    // threshold; report it as a typed error instead of
                    // silently skipping it (it would poison L either way).
                    if !m.is_finite() {
                        return Err(SparseLuError { column: j });
                    }
                    if m > best_sq {
                        best_sq = m;
                        best = i;
                    }
                }
            }
            if best == usize::MAX || best_sq == 0.0 || !best_sq.is_finite() {
                return Err(SparseLuError { column: j });
            }
            // Prefer the diagonal when acceptable (sparsity preservation).
            if pinv[j] == usize::MAX && x[j].modulus_sq() >= threshold * threshold * best_sq {
                best = j;
            }
            let pivot = x[best];
            pinv[best] = j;

            // ---- emit column j of U (pivoted rows) and L (unpivoted) ----
            for idx in top..n {
                let i = xi[idx];
                if pinv[i] != usize::MAX && i != best {
                    let k = pinv[i];
                    if k < j {
                        ui.push(k);
                        ux.push(x[i]);
                    }
                }
            }
            ui.push(j);
            ux.push(pivot); // diagonal of U, stored last in the column
            up[j + 1] = ui.len();

            li.push(best);
            lx.push(S::one()); // unit diagonal first
            for idx in top..n {
                let i = xi[idx];
                if pinv[i] == usize::MAX {
                    li.push(i);
                    lx.push(x[i] / pivot);
                }
                x[i] = S::zero();
            }
            x[best] = S::zero();
            lp[j + 1] = li.len();
        }

        // Map L's row indices into pivot coordinates.
        for r in li.iter_mut() {
            *r = pinv[*r];
        }
        // U's columns must be sorted? usolve only needs the diagonal last,
        // which the construction guarantees.
        Ok(SparseLu {
            n,
            lp,
            li,
            lx,
            up,
            ui,
            ux,
            pinv,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (fill-in measure).
    pub fn factor_nnz(&self) -> usize {
        self.lx.len() + self.ux.len()
    }

    /// Modelled memory footprint in bytes of the factors.
    pub fn memory_bytes(&self) -> usize {
        self.factor_nnz() * (std::mem::size_of::<S>() + 8) + (self.lp.len() + self.up.len()) * 8
    }

    /// Cheap conditioning probe over the `U` diagonal: the column with
    /// the smallest pivot modulus, that modulus, and the largest pivot
    /// modulus. A ratio `min / max` near zero means the factored matrix
    /// is numerically singular — for a shifted pencil `G + sC`, that the
    /// shift `s` sits (to working precision) on a pole of the pencil.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty (`n == 0`).
    pub fn diag_extremes(&self) -> (usize, f64, f64) {
        assert!(self.n > 0, "diag_extremes on empty factorization");
        let mut argmin = 0usize;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for j in 0..self.n {
            // The U diagonal is stored last in each column.
            let d = self.ux[self.up[j + 1] - 1].modulus();
            if d < min {
                min = d;
                argmin = j;
            }
            if d > max {
                max = d;
            }
        }
        (argmin, min, max)
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[S]) -> Vec<S> {
        let mut x = vec![S::zero(); self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into(&self, b: &[S], x: &mut [S]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(x.len(), self.n);
        // Apply the row permutation: x[pinv[i]] = b[i].
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i]] = bi;
        }
        // L y = Pb (unit lower, diagonal first per column).
        for j in 0..self.n {
            let xj = x[j];
            if xj == S::zero() {
                continue;
            }
            for p in self.lp[j] + 1..self.lp[j + 1] {
                let sub = self.lx[p] * xj;
                x[self.li[p]] -= sub;
            }
        }
        // U x = y (diagonal last per column).
        for j in (0..self.n).rev() {
            let dpos = self.up[j + 1] - 1;
            let xj = x[j] / self.ux[dpos];
            x[j] = xj;
            if xj == S::zero() {
                continue;
            }
            for p in self.up[j]..dpos {
                let sub = self.ux[p] * xj;
                x[self.ui[p]] -= sub;
            }
        }
    }

    /// Solves `A X = B` for `k = xs.len() / n` right-hand sides stored
    /// column-major in `xs`, overwriting them with the solutions.
    ///
    /// The triangular sweeps run factor-column-outer and RHS-inner, so
    /// each `L`/`U` column's indices and values are loaded once and
    /// applied to every right-hand side — the blocked multi-RHS form the
    /// admittance evaluator uses for its `m` port columns. Per right-hand
    /// side the arithmetic sequence is exactly [`SparseLu::solve`]'s, so
    /// blocking never changes results bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len()` is not a multiple of `n`.
    pub fn solve_block_in_place(&self, xs: &mut [S], scratch: &mut Vec<S>) {
        let n = self.n;
        if n == 0 {
            return;
        }
        assert_eq!(xs.len() % n, 0, "xs must hold whole n-vectors");
        let k = xs.len() / n;
        // Row permutation per RHS, staged through scratch.
        scratch.clear();
        scratch.resize(n, S::zero());
        for c in 0..k {
            let col = &mut xs[c * n..(c + 1) * n];
            for i in 0..n {
                scratch[self.pinv[i]] = col[i];
            }
            col.copy_from_slice(scratch);
        }
        // L sweep: column j of L applied to all right-hand sides.
        for j in 0..n {
            for p in self.lp[j] + 1..self.lp[j + 1] {
                let (row, lij) = (self.li[p], self.lx[p]);
                for c in 0..k {
                    let xj = xs[c * n + j];
                    if xj == S::zero() {
                        continue;
                    }
                    let sub = lij * xj;
                    xs[c * n + row] -= sub;
                }
            }
        }
        // U sweep.
        for j in (0..n).rev() {
            let dpos = self.up[j + 1] - 1;
            let d = self.ux[dpos];
            for c in 0..k {
                let xj = xs[c * n + j] / d;
                xs[c * n + j] = xj;
            }
            for p in self.up[j]..dpos {
                let (row, uij) = (self.ui[p], self.ux[p]);
                for c in 0..k {
                    let xj = xs[c * n + j];
                    if xj == S::zero() {
                        continue;
                    }
                    let sub = uij * xj;
                    xs[c * n + row] -= sub;
                }
            }
        }
    }

    /// Factors and also captures the symbolic analysis (pattern, pivot
    /// sequence, update order) for later numeric-only refactorization
    /// with [`SymbolicLu::refactor`]. Default pivot threshold (0.1).
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if the matrix is singular.
    pub fn factor_analyzed(a: &CscMat<S>) -> Result<(Self, SymbolicLu), SparseLuError> {
        Self::factor_analyzed_with_threshold(a, 0.1)
    }

    /// [`SparseLu::factor_analyzed`] with an explicit pivot threshold.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if the matrix is singular.
    pub fn factor_analyzed_with_threshold(
        a: &CscMat<S>,
        threshold: f64,
    ) -> Result<(Self, SymbolicLu), SparseLuError> {
        let lu = Self::factor_with_threshold(a, threshold)?;
        let sym = SymbolicLu {
            n: lu.n,
            a_indptr: a.indptr.clone(),
            a_indices: a.indices.clone(),
            lp: lu.lp.clone(),
            li: lu.li.clone(),
            up: lu.up.clone(),
            ui: lu.ui.clone(),
            pinv: lu.pinv.clone(),
            threshold,
        };
        Ok((lu, sym))
    }

    /// Values of `L` (unit diagonal stored explicitly, column-major) —
    /// exposed so tests can assert bit-identity between `factor` and
    /// `refactor` outputs.
    pub fn l_values(&self) -> &[S] {
        &self.lx
    }

    /// Values of `U` (diagonal last per column), see
    /// [`SparseLu::l_values`].
    pub fn u_values(&self) -> &[S] {
        &self.ux
    }

    /// The row permutation `pinv[original_row] = pivot position`.
    pub fn row_permutation(&self) -> &[usize] {
        &self.pinv
    }
}

/// Why a numeric refactorization could not reuse a cached symbolic
/// analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefactorError {
    /// The matrix's sparsity structure differs from the analyzed one;
    /// the symbolic analysis does not apply.
    StructureMismatch,
    /// Threshold partial pivoting rejected the cached pivot at this
    /// column — the values drifted too far from the analyzed matrix.
    /// Fall back to a fresh full factorization.
    PivotRejected {
        /// Column (pivot position) at which the cached pivot failed.
        column: usize,
    },
    /// The matrix is numerically singular at this column.
    Singular {
        /// Column (pivot position) with no usable pivot.
        column: usize,
    },
}

impl std::fmt::Display for RefactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefactorError::StructureMismatch => {
                write!(f, "matrix structure differs from the symbolic analysis")
            }
            RefactorError::PivotRejected { column } => {
                write!(f, "cached pivot rejected at column {column}")
            }
            RefactorError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
        }
    }
}

impl std::error::Error for RefactorError {}

/// The reusable symbolic half of a sparse LU: column elimination
/// structure, `L`/`U` patterns and the pivot sequence, captured once by
/// [`SparseLu::factor_analyzed`] and replayed by
/// [`SymbolicLu::refactor`] for every matrix that shares the structure.
///
/// The struct is value-free (`usize` patterns only), so one analysis —
/// captured from a real factorization — can serve complex
/// refactorizations and vice versa, as long as the sparsity structure
/// matches.
///
/// The stored `U` column order doubles as the topological update order:
/// Gilbert–Peierls emits each `U` column in the exact DFS-topological
/// order its numeric update loop consumed, so replaying `U`'s entries
/// in storage order reproduces the fresh factorization's floating-point
/// sequence operation for operation. That is what makes `refactor`
/// bit-identical to `factor` whenever the pivot sequence is accepted.
#[derive(Clone, Debug)]
pub struct SymbolicLu {
    n: usize,
    a_indptr: Vec<usize>,
    a_indices: Vec<usize>,
    lp: Vec<usize>,
    li: Vec<usize>,
    up: Vec<usize>,
    ui: Vec<usize>,
    /// `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
    threshold: f64,
}

impl SymbolicLu {
    /// Matrix dimension this analysis applies to.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total `L` + `U` pattern entries (fill-in measure).
    pub fn factor_nnz(&self) -> usize {
        self.li.len() + self.ui.len()
    }

    /// The pivot threshold the analysis was captured with.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// `true` when `a` has exactly the analyzed sparsity structure.
    pub fn matches<S: Scalar>(&self, a: &CscMat<S>) -> bool {
        a.n_rows == self.n
            && a.n_cols == self.n
            && a.indptr == self.a_indptr
            && a.indices == self.a_indices
    }

    /// An empty factorization with this analysis' patterns and zeroed
    /// values — the reusable target buffer for
    /// [`SymbolicLu::refactor_into`].
    pub fn prepared<S: Scalar>(&self) -> SparseLu<S> {
        SparseLu {
            n: self.n,
            lp: self.lp.clone(),
            li: self.li.clone(),
            lx: vec![S::zero(); self.li.len()],
            up: self.up.clone(),
            ui: self.ui.clone(),
            ux: vec![S::zero(); self.ui.len()],
            pinv: self.pinv.clone(),
        }
    }

    /// Numeric-only refactorization: factors `a` by replaying the cached
    /// elimination, skipping the per-column DFS, pattern emission and
    /// pivot search.
    ///
    /// # Errors
    ///
    /// [`RefactorError`] when the structure differs, a cached pivot is
    /// rejected by threshold partial pivoting, or `a` is singular. The
    /// caller should then fall back to [`SparseLu::factor`].
    pub fn refactor<S: Scalar>(&self, a: &CscMat<S>) -> Result<SparseLu<S>, RefactorError> {
        let mut out = self.prepared();
        self.refactor_into(a, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`SymbolicLu::refactor`]: writes the numeric
    /// factors into `out`, which must come from [`SymbolicLu::prepared`]
    /// (or a previous `refactor` of this analysis).
    ///
    /// # Errors
    ///
    /// See [`SymbolicLu::refactor`]. On error `out`'s values are
    /// unspecified but its patterns remain valid for another attempt.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s patterns do not belong to this analysis.
    pub fn refactor_into<S: Scalar>(
        &self,
        a: &CscMat<S>,
        out: &mut SparseLu<S>,
    ) -> Result<(), RefactorError> {
        if !self.matches(a) {
            return Err(RefactorError::StructureMismatch);
        }
        assert_eq!(out.n, self.n, "refactor target from a different analysis");
        assert_eq!(out.lx.len(), self.li.len(), "L pattern mismatch");
        assert_eq!(out.ux.len(), self.ui.len(), "U pattern mismatch");
        let n = self.n;
        // Dense workspace in pivot coordinates, cleared per column.
        let mut x = vec![S::zero(); n];
        for j in 0..n {
            // Scatter A(:, j) (mapped through the row permutation).
            for p in self.a_indptr[j]..self.a_indptr[j + 1] {
                x[self.pinv[self.a_indices[p]]] = a.data[p];
            }
            // Numeric sparse triangular solve, replayed in the captured
            // topological order = the stored U column order (sans the
            // diagonal, which is stored last).
            let dpos = self.up[j + 1] - 1;
            for t in self.up[j]..dpos {
                let k = self.ui[t];
                let xj = x[k]; // unit diagonal: no division
                if xj == S::zero() {
                    continue;
                }
                for p in self.lp[k] + 1..self.lp[k + 1] {
                    let sub = out.lx[p] * xj;
                    x[self.li[p]] -= sub;
                }
            }
            // Emit the numeric values into the fixed patterns, zeroing
            // the workspace as it is gathered (one pass instead of an
            // emit pass plus a clear pass), and re-validate the cached
            // pivot against the column maximum of the not-yet-pivoted
            // candidates on the way (threshold partial pivoting with the
            // same squared-magnitude metric the fresh factorization
            // applied, so the accept/reject boundary is identical).
            // `out`'s values are unspecified on error, so emitting before
            // the checks is safe; by check time the workspace is already
            // clean for another attempt.
            for t in self.up[j]..dpos {
                let k = self.ui[t];
                out.ux[t] = x[k];
                x[k] = S::zero();
            }
            let pivot = x[j];
            x[j] = S::zero();
            let pivot_sq = pivot.modulus_sq();
            let mut best_sq = pivot_sq;
            // `f64::max` silently drops NaN operands and `NaN < t` is
            // false, so a poisoned column could slip past both checks
            // below; track finiteness explicitly instead.
            let mut all_finite = pivot_sq.is_finite();
            out.ux[dpos] = pivot;
            out.lx[self.lp[j]] = S::one();
            for p in self.lp[j] + 1..self.lp[j + 1] {
                let v = x[self.li[p]];
                x[self.li[p]] = S::zero();
                let m = v.modulus_sq();
                all_finite &= m.is_finite();
                best_sq = best_sq.max(m);
                out.lx[p] = v / pivot;
            }
            if !all_finite || best_sq == 0.0 || !best_sq.is_finite() {
                return Err(RefactorError::Singular { column: j });
            }
            if pivot_sq < self.threshold * self.threshold * best_sq {
                return Err(RefactorError::PivotRejected { column: j });
            }
        }
        Ok(())
    }
}

/// Factor-or-refactor policy in one place: holds the most recent
/// [`SymbolicLu`] and serves every factorization request with a cheap
/// numeric refactor when the cached analysis applies, transparently
/// falling back to (and re-capturing from) a fresh full factorization
/// when the structure changed or partial pivoting rejected the cached
/// pivots.
///
/// The returned flag distinguishes the two paths so callers can feed
/// `refactorizations` vs `factorizations` telemetry.
#[derive(Clone, Debug)]
pub struct LuCache {
    sym: Option<SymbolicLu>,
    threshold: f64,
}

impl Default for LuCache {
    fn default() -> Self {
        LuCache::new()
    }
}

impl LuCache {
    /// An empty cache with the default pivot threshold (0.1).
    pub fn new() -> Self {
        LuCache {
            sym: None,
            threshold: 0.1,
        }
    }

    /// An empty cache with an explicit pivot threshold in `(0, 1]`.
    pub fn with_threshold(threshold: f64) -> Self {
        LuCache {
            sym: None,
            threshold,
        }
    }

    /// The cached symbolic analysis, when one has been captured.
    pub fn symbolic(&self) -> Option<&SymbolicLu> {
        self.sym.as_ref()
    }

    /// Drops the cached analysis.
    pub fn clear(&mut self) {
        self.sym = None;
    }

    /// Factors `a`, refactoring numerically when the cached symbolic
    /// analysis applies. Returns the factorization and `true` when it
    /// was a numeric-only refactor (`false` = fresh full factorization,
    /// whose analysis is captured for subsequent calls).
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if `a` is singular.
    pub fn factor<S: Scalar>(
        &mut self,
        a: &CscMat<S>,
    ) -> Result<(SparseLu<S>, bool), SparseLuError> {
        if let Some(sym) = &self.sym {
            if let Ok(lu) = sym.refactor(a) {
                return Ok((lu, true));
            }
        }
        let (lu, sym) = SparseLu::factor_analyzed_with_threshold(a, self.threshold)?;
        self.sym = Some(sym);
        Ok((lu, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    fn residual_inf<S: Scalar>(a: &CscMat<S>, x: &[S], b: &[S]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(p, q)| (*p - *q).modulus())
            .fold(0.0, f64::max)
    }

    #[test]
    fn dense_small_system() {
        let trip = vec![
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ];
        let a = CscMat::from_triplets(3, 3, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero diagonal entry forces an off-diagonal pivot.
        let trip = vec![(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1e-30)];
        let a = CscMat::from_triplets(2, 2, &trip);
        let lu = SparseLu::factor_with_threshold(&a, 1.0).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert!(residual_inf(&a, &x, &[5.0, 7.0]) < 1e-9);
    }

    #[test]
    fn detects_singular() {
        let trip = vec![(0, 0, 1.0), (1, 0, 2.0)]; // column 1 empty
        let a = CscMat::from_triplets(2, 2, &trip);
        assert!(SparseLu::factor(&a).is_err());
    }

    #[test]
    fn random_sparse_system_matches_dense() {
        // Deterministic pseudo-random pattern, diagonally dominated.
        let n = 40;
        let mut trip = Vec::new();
        let mut state = 12345u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            trip.push((i, i, 4.0 + rnd()));
            for _ in 0..3 {
                let j = ((rnd() + 0.5) * n as f64) as usize % n;
                if j != i {
                    trip.push((i, j, rnd()));
                }
            }
        }
        let a = CscMat::from_triplets(n, n, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn complex_ac_style_system() {
        // (G + jwC) pattern: 2x2 RC divider at some frequency.
        let g = 1e-3;
        let wc = 2.0 * std::f64::consts::PI * 1e9 * 1e-12;
        let trip = vec![
            (0, 0, Complex64::new(2.0 * g, wc)),
            (0, 1, Complex64::new(-g, 0.0)),
            (1, 0, Complex64::new(-g, 0.0)),
            (1, 1, Complex64::new(g, wc)),
        ];
        let a = CscMat::from_triplets(2, 2, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        let b = [Complex64::new(1e-3, 0.0), Complex64::ZERO];
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-15);
    }

    #[test]
    fn duplicate_triplets_sum() {
        let trip = vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)];
        let a = CscMat::from_triplets(2, 2, &trip);
        assert_eq!(a.nnz(), 2);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 1.0]);
        assert!((x[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn permuted_identity() {
        // A = permutation matrix: solve must invert the permutation.
        let trip = vec![(2, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)];
        let a = CscMat::from_triplets(3, 3, &trip);
        let lu = SparseLu::factor_with_threshold(&a, 1.0).unwrap();
        let x = lu.solve(&[10.0, 20.0, 30.0]);
        // A x = b with A e0 = e2 etc: x = [b1, b2, b0]? verify by residual
        assert!(residual_inf(&a, &x, &[10.0, 20.0, 30.0]) < 1e-15);
    }

    #[test]
    fn fill_in_counted() {
        let trip = vec![
            (0, 0, 4.0),
            (1, 1, 4.0),
            (2, 2, 4.0),
            (0, 2, 1.0),
            (2, 0, 1.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
        ];
        let a = CscMat::from_triplets(3, 3, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.factor_nnz() >= a.nnz());
        assert!(lu.memory_bytes() > 0);
    }

    /// The deterministic pseudo-random fixture from
    /// `random_sparse_system_matches_dense`, with a tweakable seed so
    /// refactor tests get "same structure, different values" pairs.
    fn random_csc(n: usize, seed: u64, shift: f64) -> CscMat<f64> {
        let mut trip = Vec::new();
        let mut state = seed;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            trip.push((i, i, 4.0 + shift + rnd()));
            for _ in 0..3 {
                let j = ((rnd() + 0.5) * n as f64) as usize % n;
                if j != i {
                    trip.push((i, j, rnd()));
                }
            }
        }
        CscMat::from_triplets(n, n, &trip)
    }

    #[test]
    fn refactor_bit_identical_to_fresh_factor() {
        let a = random_csc(60, 999, 0.0);
        let (lu0, sym) = SparseLu::factor_analyzed(&a).unwrap();
        // Same structure, different values: refresh the data in place.
        let mut b = a.clone();
        for (k, v) in b.values_mut().iter_mut().enumerate() {
            *v += 1e-3 * ((k as f64) * 0.61).sin();
        }
        let fresh = SparseLu::factor(&b).unwrap();
        let refac = sym.refactor(&b).unwrap();
        assert_eq!(refac.l_values(), fresh.l_values());
        assert_eq!(refac.u_values(), fresh.u_values());
        assert_eq!(refac.row_permutation(), fresh.row_permutation());
        // And refactoring the original reproduces the original exactly.
        let back = sym.refactor(&a).unwrap();
        assert_eq!(back.l_values(), lu0.l_values());
        assert_eq!(back.u_values(), lu0.u_values());
    }

    #[test]
    fn refactor_complex_from_real_analysis() {
        // One value-free analysis serves both scalar types.
        let a = random_csc(40, 7, 0.0);
        let (_, sym) = SparseLu::factor_analyzed(&a).unwrap();
        let trips_c: Vec<(usize, usize, Complex64)> = {
            let mut t = Vec::new();
            for j in 0..40 {
                for p in a.indptr()[j]..a.indptr()[j + 1] {
                    let i = a.indices()[p];
                    t.push((i, j, Complex64::new(a.values()[p], 0.25 * a.values()[p])));
                }
            }
            t
        };
        let ac = CscMat::from_triplets(40, 40, &trips_c);
        assert!(sym.matches(&ac));
        let fresh = SparseLu::factor(&ac).unwrap();
        let refac = sym.refactor(&ac).unwrap();
        assert_eq!(refac.l_values(), fresh.l_values());
        assert_eq!(refac.u_values(), fresh.u_values());
    }

    #[test]
    fn refactor_rejects_structure_mismatch_and_bad_pivots() {
        let a = random_csc(30, 42, 0.0);
        let (_, sym) = SparseLu::factor_analyzed(&a).unwrap();
        // Different pattern -> StructureMismatch.
        let other = random_csc(30, 43, 0.0);
        if !sym.matches(&other) {
            assert_eq!(
                sym.refactor(&other).unwrap_err(),
                RefactorError::StructureMismatch
            );
        }
        // Same pattern, pivot-hostile values: kill a diagonal so the
        // cached pivot fails the threshold test.
        let mut hostile = a.clone();
        let dj = 15;
        for p in hostile.indptr()[dj]..hostile.indptr()[dj + 1] {
            if hostile.indices()[p] == dj {
                let vals = hostile.values_mut();
                vals[p] = 1e-30;
            }
        }
        match sym.refactor(&hostile) {
            Err(RefactorError::PivotRejected { .. }) => {}
            Ok(_) => {
                // Fill-in can rescue the pivot; force total singularity
                // instead to exercise the other arm.
                let mut singular = a.clone();
                let nnz = singular.nnz();
                for v in singular.values_mut().iter_mut().take(nnz) {
                    *v = 0.0;
                }
                assert!(matches!(
                    sym.refactor(&singular),
                    Err(RefactorError::Singular { .. })
                ));
            }
            Err(e) => panic!("unexpected refactor error: {e}"),
        }
        // After any rejection the prepared buffer still works.
        let again = sym.refactor(&a).unwrap();
        let fresh = SparseLu::factor(&a).unwrap();
        assert_eq!(again.u_values(), fresh.u_values());
    }

    #[test]
    fn lu_cache_falls_back_and_recaptures() {
        let mut cache = LuCache::new();
        let a = random_csc(30, 1, 0.0);
        let (_, first_refac) = cache.factor(&a).unwrap();
        assert!(!first_refac, "first factorization cannot be a refactor");
        let (_, second_refac) = cache.factor(&a).unwrap();
        assert!(second_refac, "same matrix must hit the cached analysis");
        // A different structure forces a fresh factorization + recapture.
        let b = random_csc(30, 2, 0.0);
        let (_, refac_b) = cache.factor(&b).unwrap();
        if sym_matches(&cache, &b) {
            let (_, again) = cache.factor(&b).unwrap();
            assert!(again);
        }
        // Whether b's first call refactored depends only on pattern equality.
        assert_eq!(refac_b, cache_structure_matched(&a, &b));
    }

    fn sym_matches(cache: &LuCache, m: &CscMat<f64>) -> bool {
        cache.symbolic().is_some_and(|s| s.matches(m))
    }

    fn cache_structure_matched(a: &CscMat<f64>, b: &CscMat<f64>) -> bool {
        a.structure_eq(b)
    }

    #[test]
    fn block_solve_matches_sequential_solves_bitwise() {
        let a = random_csc(50, 77, 0.0);
        let lu = SparseLu::factor(&a).unwrap();
        let n = 50;
        let k = 4;
        let mut block = vec![0.0f64; n * k];
        let mut singles = Vec::new();
        for c in 0..k {
            let b: Vec<f64> = (0..n).map(|i| ((i + c * 13) as f64 * 0.29).sin()).collect();
            block[c * n..(c + 1) * n].copy_from_slice(&b);
            singles.push(lu.solve(&b));
        }
        let mut scratch = Vec::new();
        lu.solve_block_in_place(&mut block, &mut scratch);
        for c in 0..k {
            assert_eq!(&block[c * n..(c + 1) * n], singles[c].as_slice());
        }
        // Complex path too.
        let trips_c: Vec<(usize, usize, Complex64)> = (0..n)
            .flat_map(|j| (a.indptr()[j]..a.indptr()[j + 1]).map(move |p| (p, j)))
            .map(|(p, j)| (a.indices()[p], j, Complex64::new(a.values()[p], 0.1)))
            .collect();
        let ac = CscMat::from_triplets(n, n, &trips_c);
        let luc = SparseLu::factor(&ac).unwrap();
        let bc: Vec<Complex64> = (0..n).map(|i| Complex64::new(1.0, i as f64)).collect();
        let mut blockc = bc.clone();
        let mut scratchc = Vec::new();
        luc.solve_block_in_place(&mut blockc, &mut scratchc);
        assert_eq!(blockc, luc.solve(&bc));
    }

    #[test]
    fn from_parts_validates() {
        let a = random_csc(10, 5, 0.0);
        let rebuilt = CscMat::from_parts(
            10,
            10,
            a.indptr().to_vec(),
            a.indices().to_vec(),
            a.values().to_vec(),
        );
        assert!(rebuilt.structure_eq(&a));
        assert_eq!(rebuilt.values(), a.values());
    }
}
