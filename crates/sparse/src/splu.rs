//! Sparse LU factorization with partial pivoting (Gilbert–Peierls),
//! generic over [`Scalar`] so the same kernel serves real MNA systems
//! (DC/transient) and complex ones (AC sweeps).
//!
//! This is the linear-solver core of the `pact-circuit` HSPICE stand-in.
//! The algorithm factors one column at a time: a depth-first search over
//! the partially-built `L` finds the nonzero pattern of `L⁻¹ a_j`
//! (topologically ordered), the numeric sparse triangular solve fills it
//! in, and a threshold partial pivot (diagonal preferred) is chosen.

use crate::complex::Scalar;

/// Error from factoring a numerically singular sparse matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseLuError {
    /// Column at which no acceptable pivot existed.
    pub column: usize,
}

impl std::fmt::Display for SparseLuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sparse matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SparseLuError {}

/// A sparse matrix in compressed-sparse-column form with generic scalar
/// values — the input format for [`SparseLu`].
///
/// Build one from triplets with [`CscMat::from_triplets`]; duplicate
/// entries are summed (circuit stamping relies on this).
#[derive(Clone, Debug)]
pub struct CscMat<S> {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<S>,
}

impl<S: Scalar> CscMat<S> {
    /// Compresses `(row, col, value)` triplets into CSC, summing
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_triplets(n_rows: usize, n_cols: usize, triplets: &[(usize, usize, S)]) -> Self {
        let mut counts = vec![0usize; n_cols];
        for &(r, c, _) in triplets {
            assert!(r < n_rows && c < n_cols, "triplet out of bounds");
            counts[c] += 1;
        }
        let mut indptr = vec![0usize; n_cols + 1];
        for j in 0..n_cols {
            indptr[j + 1] = indptr[j] + counts[j];
        }
        let mut rows = vec![0usize; triplets.len()];
        let mut vals = vec![S::zero(); triplets.len()];
        let mut next = indptr.clone();
        for &(r, c, v) in triplets {
            rows[next[c]] = r;
            vals[next[c]] = v;
            next[c] += 1;
        }
        // Sort each column and merge duplicates.
        let mut out_indptr = vec![0usize; n_cols + 1];
        let mut out_rows = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(usize, S)> = Vec::new();
        for j in 0..n_cols {
            scratch.clear();
            for p in indptr[j]..indptr[j + 1] {
                scratch.push((rows[p], vals[p]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < scratch.len() {
                let r = scratch[k].0;
                let mut v = S::zero();
                while k < scratch.len() && scratch[k].0 == r {
                    v += scratch[k].1;
                    k += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
            }
            out_indptr[j + 1] = out_rows.len();
        }
        CscMat {
            n_rows,
            n_cols,
            indptr: out_indptr,
            indices: out_rows,
            data: out_vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Matrix–vector product `A x` (columns scatter into the result).
    pub fn matvec(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![S::zero(); self.n_rows];
        for j in 0..self.n_cols {
            let xj = x[j];
            if xj == S::zero() {
                continue;
            }
            for p in self.indptr[j]..self.indptr[j + 1] {
                y[self.indices[p]] += self.data[p] * xj;
            }
        }
        y
    }
}

/// Sparse LU factors `P A = L U` produced by Gilbert–Peierls with
/// threshold partial pivoting.
#[derive(Clone, Debug)]
pub struct SparseLu<S> {
    n: usize,
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<S>,
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<S>,
    /// `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
}

impl<S: Scalar> SparseLu<S> {
    /// Factors a square sparse matrix with the default diagonal-preference
    /// threshold (0.1), appropriate for MNA matrices.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if the matrix is singular.
    pub fn factor(a: &CscMat<S>) -> Result<Self, SparseLuError> {
        Self::factor_with_threshold(a, 0.1)
    }

    /// Factors with an explicit pivot threshold in `(0, 1]`: the diagonal
    /// entry is accepted as pivot when its magnitude is at least
    /// `threshold` times the column maximum. `1.0` forces strict partial
    /// pivoting.
    ///
    /// # Errors
    ///
    /// [`SparseLuError`] if some column has no nonzero candidate pivot.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor_with_threshold(a: &CscMat<S>, threshold: f64) -> Result<Self, SparseLuError> {
        assert_eq!(a.n_rows, a.n_cols, "sparse LU needs a square matrix");
        let n = a.n_rows;
        let mut lp = vec![0usize; n + 1];
        let mut up = vec![0usize; n + 1];
        let mut li: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut lx: Vec<S> = Vec::with_capacity(4 * a.nnz() + n);
        let mut ui: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut ux: Vec<S> = Vec::with_capacity(4 * a.nnz() + n);
        let mut pinv = vec![usize::MAX; n];
        let mut x = vec![S::zero(); n];
        let mut xi = vec![0usize; n]; // topological pattern stack
        let mut mark = vec![usize::MAX; n];
        let mut node_stack: Vec<usize> = Vec::with_capacity(n);
        let mut iter_stack: Vec<usize> = Vec::with_capacity(n);

        for j in 0..n {
            // ---- symbolic: DFS reach of A(:,j) through columns of L ----
            let mut top = n;
            for p in a.indptr[j]..a.indptr[j + 1] {
                let start = a.indices[p];
                if mark[start] == j {
                    continue;
                }
                // Iterative DFS.
                node_stack.clear();
                iter_stack.clear();
                node_stack.push(start);
                mark[start] = j;
                iter_stack.push(if pinv[start] == usize::MAX {
                    usize::MAX
                } else {
                    lp[pinv[start]] + 1 // skip unit diagonal
                });
                while let Some(&i) = node_stack.last() {
                    let k = pinv[i];
                    let mut pos = *iter_stack.last().unwrap();
                    let end = if k == usize::MAX { 0 } else { lp[k + 1] };
                    let mut descended = false;
                    if k != usize::MAX {
                        while pos < end {
                            let child = li[pos];
                            pos += 1;
                            if mark[child] != j {
                                mark[child] = j;
                                *iter_stack.last_mut().unwrap() = pos;
                                node_stack.push(child);
                                iter_stack.push(if pinv[child] == usize::MAX {
                                    usize::MAX
                                } else {
                                    lp[pinv[child]] + 1
                                });
                                descended = true;
                                break;
                            }
                        }
                    }
                    if !descended {
                        node_stack.pop();
                        iter_stack.pop();
                        top -= 1;
                        xi[top] = i;
                    }
                }
            }

            // ---- numeric: scatter A(:,j), sparse lower triangular solve ----
            for p in a.indptr[j]..a.indptr[j + 1] {
                x[a.indices[p]] = a.data[p];
            }
            for idx in top..n {
                let i = xi[idx];
                let k = pinv[i];
                if k == usize::MAX {
                    continue;
                }
                let xj = x[i]; // unit diagonal: no division
                if xj == S::zero() {
                    continue;
                }
                for p in lp[k] + 1..lp[k + 1] {
                    let sub = lx[p] * xj;
                    x[li[p]] -= sub;
                }
            }

            // ---- pivot selection ----
            let mut best = usize::MAX;
            let mut best_mag = 0.0f64;
            for idx in top..n {
                let i = xi[idx];
                if pinv[i] == usize::MAX {
                    let m = x[i].modulus();
                    if m > best_mag {
                        best_mag = m;
                        best = i;
                    }
                }
            }
            if best == usize::MAX || best_mag == 0.0 || !best_mag.is_finite() {
                return Err(SparseLuError { column: j });
            }
            // Prefer the diagonal when acceptable (sparsity preservation).
            if pinv[j] == usize::MAX && x[j].modulus() >= threshold * best_mag {
                best = j;
            }
            let pivot = x[best];
            pinv[best] = j;

            // ---- emit column j of U (pivoted rows) and L (unpivoted) ----
            for idx in top..n {
                let i = xi[idx];
                if pinv[i] != usize::MAX && i != best {
                    let k = pinv[i];
                    if k < j {
                        ui.push(k);
                        ux.push(x[i]);
                    }
                }
            }
            ui.push(j);
            ux.push(pivot); // diagonal of U, stored last in the column
            up[j + 1] = ui.len();

            li.push(best);
            lx.push(S::one()); // unit diagonal first
            for idx in top..n {
                let i = xi[idx];
                if pinv[i] == usize::MAX {
                    li.push(i);
                    lx.push(x[i] / pivot);
                }
                x[i] = S::zero();
            }
            x[best] = S::zero();
            lp[j + 1] = li.len();
        }

        // Map L's row indices into pivot coordinates.
        for r in li.iter_mut() {
            *r = pinv[*r];
        }
        // U's columns must be sorted? usolve only needs the diagonal last,
        // which the construction guarantees.
        Ok(SparseLu {
            n,
            lp,
            li,
            lx,
            up,
            ui,
            ux,
            pinv,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (fill-in measure).
    pub fn factor_nnz(&self) -> usize {
        self.lx.len() + self.ux.len()
    }

    /// Modelled memory footprint in bytes of the factors.
    pub fn memory_bytes(&self) -> usize {
        self.factor_nnz() * (std::mem::size_of::<S>() + 8) + (self.lp.len() + self.up.len()) * 8
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[S]) -> Vec<S> {
        assert_eq!(b.len(), self.n);
        let mut x = vec![S::zero(); self.n];
        // Apply the row permutation: x[pinv[i]] = b[i].
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i]] = bi;
        }
        // L y = Pb (unit lower, diagonal first per column).
        for j in 0..self.n {
            let xj = x[j];
            if xj == S::zero() {
                continue;
            }
            for p in self.lp[j] + 1..self.lp[j + 1] {
                let sub = self.lx[p] * xj;
                x[self.li[p]] -= sub;
            }
        }
        // U x = y (diagonal last per column).
        for j in (0..self.n).rev() {
            let dpos = self.up[j + 1] - 1;
            let xj = x[j] / self.ux[dpos];
            x[j] = xj;
            if xj == S::zero() {
                continue;
            }
            for p in self.up[j]..dpos {
                let sub = self.ux[p] * xj;
                x[self.ui[p]] -= sub;
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    fn residual_inf<S: Scalar>(a: &CscMat<S>, x: &[S], b: &[S]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(p, q)| (*p - *q).modulus())
            .fold(0.0, f64::max)
    }

    #[test]
    fn dense_small_system() {
        let trip = vec![
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ];
        let a = CscMat::from_triplets(3, 3, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero diagonal entry forces an off-diagonal pivot.
        let trip = vec![(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1e-30)];
        let a = CscMat::from_triplets(2, 2, &trip);
        let lu = SparseLu::factor_with_threshold(&a, 1.0).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert!(residual_inf(&a, &x, &[5.0, 7.0]) < 1e-9);
    }

    #[test]
    fn detects_singular() {
        let trip = vec![(0, 0, 1.0), (1, 0, 2.0)]; // column 1 empty
        let a = CscMat::from_triplets(2, 2, &trip);
        assert!(SparseLu::factor(&a).is_err());
    }

    #[test]
    fn random_sparse_system_matches_dense() {
        // Deterministic pseudo-random pattern, diagonally dominated.
        let n = 40;
        let mut trip = Vec::new();
        let mut state = 12345u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            trip.push((i, i, 4.0 + rnd()));
            for _ in 0..3 {
                let j = ((rnd() + 0.5) * n as f64) as usize % n;
                if j != i {
                    trip.push((i, j, rnd()));
                }
            }
        }
        let a = CscMat::from_triplets(n, n, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn complex_ac_style_system() {
        // (G + jwC) pattern: 2x2 RC divider at some frequency.
        let g = 1e-3;
        let wc = 2.0 * std::f64::consts::PI * 1e9 * 1e-12;
        let trip = vec![
            (0, 0, Complex64::new(2.0 * g, wc)),
            (0, 1, Complex64::new(-g, 0.0)),
            (1, 0, Complex64::new(-g, 0.0)),
            (1, 1, Complex64::new(g, wc)),
        ];
        let a = CscMat::from_triplets(2, 2, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        let b = [Complex64::new(1e-3, 0.0), Complex64::ZERO];
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-15);
    }

    #[test]
    fn duplicate_triplets_sum() {
        let trip = vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)];
        let a = CscMat::from_triplets(2, 2, &trip);
        assert_eq!(a.nnz(), 2);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 1.0]);
        assert!((x[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn permuted_identity() {
        // A = permutation matrix: solve must invert the permutation.
        let trip = vec![(2, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)];
        let a = CscMat::from_triplets(3, 3, &trip);
        let lu = SparseLu::factor_with_threshold(&a, 1.0).unwrap();
        let x = lu.solve(&[10.0, 20.0, 30.0]);
        // A x = b with A e0 = e2 etc: x = [b1, b2, b0]? verify by residual
        assert!(residual_inf(&a, &x, &[10.0, 20.0, 30.0]) < 1e-15);
    }

    #[test]
    fn fill_in_counted() {
        let trip = vec![
            (0, 0, 4.0),
            (1, 1, 4.0),
            (2, 2, 4.0),
            (0, 2, 1.0),
            (2, 0, 1.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
        ];
        let a = CscMat::from_triplets(3, 3, &trip);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.factor_nnz() >= a.nnz());
        assert!(lu.memory_bytes() > 0);
    }
}
