//! # pact-sparse
//!
//! Sparse and dense linear-algebra kernels for the PACT RC-network
//! reduction workspace — everything the algorithm of Kerns & Yang
//! (*Stable and Efficient Reduction of Large, Multiport RC Networks by
//! Pole Analysis via Congruence Transformations*, DAC 1996) needs,
//! implemented from scratch:
//!
//! - [`TripletMat`] / [`CsrMat`]: sparse matrix construction ("stamping")
//!   and symmetric sparse operations (products, partition extraction,
//!   symmetric permutation);
//! - [`SparseCholesky`]: supernodal (blocked) LDLᵀ with elimination tree
//!   and fill-reducing [`Ordering`], exposing the Cholesky-factor solves
//!   `F⁻¹`/`F⁻ᵀ` used by the paper's first congruence transform (a
//!   scalar up-looking reference kernel stays behind [`CholKernel`]);
//! - [`sym_eig`] / [`eig_tridiagonal`]: dense symmetric eigensolver
//!   (Householder + implicit-shift QL), the oracle behind pole analysis
//!   and the extractor for Lanczos' tridiagonal `T`;
//! - [`DenseLu`] and [`SparseLu`]: LU with partial pivoting, generic over
//!   real/complex [`Scalar`]s, powering the circuit simulator's MNA solves;
//!   [`SymbolicLu`] / [`LuCache`] factor once symbolically and refactor
//!   numerically across sweeps, and [`CscPencil`] re-evaluates `G + jωC`
//!   in place so frequency sweeps never rebuild structure;
//! - [`Complex64`]: minimal complex arithmetic for AC analysis.
//!
//! ## Example
//!
//! ```
//! use pact_sparse::{TripletMat, SparseCholesky, Ordering};
//!
//! // Stamp a 3-resistor network's conductance matrix and solve.
//! let mut g = TripletMat::new(2, 2);
//! g.stamp_conductance(Some(0), Some(1), 1e-3); // 1 kΩ between nodes 0,1
//! g.stamp_conductance(Some(0), None, 1e-3);    // 1 kΩ node 0 to ground
//! g.stamp_conductance(Some(1), None, 1e-3);    // 1 kΩ node 1 to ground
//! let chol = SparseCholesky::factor(&g.to_csr(), Ordering::Rcm)?;
//! let v = chol.solve(&[1e-3, 0.0]); // inject 1 mA into node 0
//! assert!(v[0] > v[1]);
//! # Ok::<(), pact_sparse::FactorError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Indexed loops are the house style in these numerical kernels: the
// index couples multiple arrays (values/indices/solution) and iterator
// rewrites obscure the linear-algebra correspondence.
#![allow(clippy::needless_range_loop)]
// Complex division implements z/w = z·w⁻¹ (Smith's algorithm) — the `*`
// inside `Div` is the algorithm, not a typo.
#![allow(clippy::suspicious_arithmetic_impl)]

mod cholesky;
mod complex;
mod coo;
mod csr;
mod dense;
mod eigen;
mod factor;
mod lu;
mod ordering;
mod par;
mod pcg;
mod pencil;
mod rng;
mod splu;
mod supernodal;

pub use cholesky::{
    CholKernel, FactorDiagnostics, FactorError, PerturbedPivot, PivotPolicy, SparseCholesky,
    SymbolicCholesky, LANES,
};
pub use complex::{Complex64, Scalar};
pub use coo::TripletMat;
pub use csr::CsrMat;
pub use dense::{axpy, dot, ldl_update_trapezoid, norm2, norm_inf, scale, DMat, DMatF};
pub use eigen::{eig_tridiagonal, sym_eig, EigenError, SymEig};
pub use factor::Factorization;
pub use lu::{invert, DenseLu, SingularMatrixError};
pub use ordering::{
    etree_postorder, invert_permutation, is_permutation, nested_dissection_partition, profile,
    NdPartition, Ordering,
};
pub use par::{split_ranges, ParCtx};
pub use pcg::{pcg, IncompleteCholesky, PcgResult};
pub use pencil::CscPencil;
pub use rng::XorShiftRng;
pub use splu::{CscMat, LuCache, RefactorError, SparseLu, SparseLuError, SymbolicLu};
