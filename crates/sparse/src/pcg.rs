//! Preconditioned conjugate gradients with an IC(0) incomplete-Cholesky
//! preconditioner.
//!
//! For meshes beyond what a direct factorization's fill-in allows, the
//! internal conductance solves `D x = b` at the heart of PACT can run
//! matrix-free: IC(0) keeps exactly the sparsity of `D`'s lower triangle
//! (zero fill), and CG converges in `O(√κ)` iterations on the
//! well-conditioned diagonally dominant matrices RC networks produce.
//! This is an extension beyond the paper (which factors directly);
//! DESIGN.md §5 records it as an ablation axis.

use crate::cholesky::FactorError;
use crate::csr::CsrMat;
use crate::dense::{axpy, dot, norm2};

/// An IC(0) incomplete Cholesky factorization: a lower-triangular `L`
/// with the sparsity of the input's lower triangle and `L Lᵀ ≈ A`.
#[derive(Clone, Debug)]
pub struct IncompleteCholesky {
    n: usize,
    // CSC of L (columns), diagonal stored separately.
    colptr: Vec<usize>,
    rows: Vec<usize>,
    vals: Vec<f64>,
    diag: Vec<f64>,
}

impl IncompleteCholesky {
    /// Computes IC(0) of a symmetric positive-definite matrix.
    ///
    /// When a pivot would go non-positive (IC(0) can break down even for
    /// SPD input), the pivot is lifted by a diagonal shift — the standard
    /// "modified" rescue that keeps the preconditioner SPD.
    ///
    /// # Errors
    ///
    /// [`FactorError::NotSquare`] for rectangular input;
    /// [`FactorError::NotPositiveDefinite`] if a diagonal entry is
    /// non-positive (the input itself cannot be SPD).
    pub fn factor(a: &CsrMat) -> Result<Self, FactorError> {
        if a.nrows() != a.ncols() {
            return Err(FactorError::NotSquare);
        }
        let n = a.nrows();
        // Extract the strict lower triangle in column-major form: for CSR
        // symmetric input, column j of the strict lower triangle is the
        // set of (i > j) with a_ij ≠ 0 — read from row j's upper entries
        // by symmetry.
        let mut colptr = vec![0usize; n + 1];
        let mut rows: Vec<usize> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut diag = vec![0.0; n];
        for j in 0..n {
            for (i, v) in a.row_iter(j) {
                if i == j {
                    diag[j] = v;
                } else if i > j {
                    rows.push(i);
                    vals.push(v);
                }
            }
            colptr[j + 1] = rows.len();
        }
        for (j, &d) in diag.iter().enumerate() {
            if d <= 0.0 {
                return Err(FactorError::NotPositiveDefinite {
                    step: j,
                    index: j,
                    pivot: d,
                });
            }
        }
        // Up-looking IC(0): process columns left to right; for column j,
        // subtract the contributions of earlier columns k where l_jk ≠ 0,
        // restricted to the existing pattern.
        // We use the standard row-oriented formulation on the CSC arrays.
        let mut l_diag = diag.clone();
        for j in 0..n {
            let dj = l_diag[j];
            let piv = if dj <= 0.0 {
                // Breakdown rescue: shift to a safe positive pivot.
                (diag[j] * 1e-3).max(1e-300)
            } else {
                dj
            };
            let piv_sqrt = piv.sqrt();
            l_diag[j] = piv_sqrt;
            let (cs, ce) = (colptr[j], colptr[j + 1]);
            for p in cs..ce {
                vals[p] /= piv_sqrt;
            }
            // Update later columns within the pattern: for each pair
            // (i, k) in column j with i, k > j, subtract l_ij·l_kj from
            // a_ik if that position exists in the pattern.
            for p in cs..ce {
                let k = rows[p];
                let ljk = vals[p];
                // diagonal update
                l_diag[k] -= ljk * ljk;
                // off-diagonal updates in column k
                let (ks, ke) = (colptr[k], colptr[k + 1]);
                for q in p + 1..ce {
                    let i = rows[q];
                    // find (i, k) in column k
                    if let Ok(pos) = rows[ks..ke].binary_search(&i) {
                        vals[ks + pos] -= vals[q] * ljk;
                    }
                }
            }
        }
        Ok(IncompleteCholesky {
            n,
            colptr,
            rows,
            vals,
            diag: l_diag,
        })
    }

    /// Applies the preconditioner: solves `L Lᵀ z = r`.
    pub fn solve(&self, r: &[f64]) -> Vec<f64> {
        let mut z = r.to_vec();
        // Forward: L y = r.
        for j in 0..self.n {
            z[j] /= self.diag[j];
            let zj = z[j];
            for p in self.colptr[j]..self.colptr[j + 1] {
                z[self.rows[p]] -= self.vals[p] * zj;
            }
        }
        // Backward: Lᵀ z = y.
        for j in (0..self.n).rev() {
            let mut acc = z[j];
            for p in self.colptr[j]..self.colptr[j + 1] {
                acc -= self.vals[p] * z[self.rows[p]];
            }
            z[j] = acc / self.diag[j];
        }
        z
    }

    /// Stored nonzeros (diagonal + strict lower) — by construction equal
    /// to the input's lower-triangle count (zero fill).
    pub fn nnz(&self) -> usize {
        self.n + self.vals.len()
    }
}

/// Outcome of a [`pcg`] solve.
#[derive(Clone, Debug)]
pub struct PcgResult {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖/‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Solves `A x = b` (SPD `A`) by preconditioned conjugate gradients.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn pcg(
    a: &CsrMat,
    b: &[f64],
    precond: &IncompleteCholesky,
    rel_tol: f64,
    max_iters: usize,
) -> PcgResult {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(b.len(), n);
    let bnorm = norm2(b).max(1e-300);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = precond.solve(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        let rnorm = norm2(&r);
        if rnorm / bnorm <= rel_tol {
            return PcgResult {
                x,
                iterations: it,
                relative_residual: rnorm / bnorm,
                converged: true,
            };
        }
        a.matvec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            break; // A not SPD (or severe rounding): bail with best x
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        z = precond.solve(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rnorm = norm2(&r);
    PcgResult {
        x,
        iterations: max_iters,
        relative_residual: rnorm / bnorm,
        converged: rnorm / bnorm <= rel_tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::SparseCholesky;
    use crate::coo::TripletMat;
    use crate::ordering::Ordering;

    fn grid(nx: usize, ny: usize) -> CsrMat {
        let n = nx * ny;
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMat::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    t.stamp_conductance(Some(id(x, y)), Some(id(x + 1, y)), 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(Some(id(x, y)), Some(id(x, y + 1)), 1.0);
                }
                t.push(id(x, y), id(x, y), 0.05);
            }
        }
        t.to_csr()
    }

    #[test]
    fn pcg_matches_direct_solve() {
        let a = grid(12, 11);
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 13) % 7) as f64 - 3.0)
            .collect();
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let res = pcg(&a, &b, &pre, 1e-10, 1000);
        assert!(res.converged, "residual {}", res.relative_residual);
        let direct = SparseCholesky::factor(&a, Ordering::NestedDissection)
            .unwrap()
            .solve(&b);
        for (u, v) in res.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-7 * v.abs().max(1.0));
        }
    }

    #[test]
    fn preconditioner_accelerates_convergence() {
        let a = grid(20, 20);
        // A rough right-hand side (the all-ones vector is an exact
        // eigenvector of the grounded grid Laplacian — useless here).
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 31 + 7) % 13) as f64 - 6.0)
            .collect();
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let with = pcg(&a, &b, &pre, 1e-9, 5000);
        // Identity "preconditioner" = plain CG, emulated by an IC(0) of
        // the identity matrix.
        let mut idt = TripletMat::new(a.nrows(), a.nrows());
        for i in 0..a.nrows() {
            idt.push(i, i, 1.0);
        }
        let ident = IncompleteCholesky::factor(&idt.to_csr()).unwrap();
        let without = pcg(&a, &b, &ident, 1e-9, 5000);
        assert!(with.converged && without.converged);
        assert!(
            with.iterations * 2 <= without.iterations,
            "IC(0) should at least halve iterations: {} vs {}",
            with.iterations,
            without.iterations
        );
    }

    #[test]
    fn ic0_has_zero_fill() {
        let a = grid(8, 8);
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let lower_nnz = (a.nnz() - a.nrows()) / 2 + a.nrows();
        assert_eq!(pre.nnz(), lower_nnz);
    }

    #[test]
    fn rejects_nonpositive_diagonal() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -2.0);
        assert!(matches!(
            IncompleteCholesky::factor(&t.to_csr()),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn exact_on_tridiagonal() {
        // On a tridiagonal matrix IC(0) IS the exact Cholesky, so PCG
        // converges in one iteration.
        let n = 30;
        let mut t = TripletMat::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(Some(i), Some(i + 1), 1.0);
        }
        for i in 0..n {
            t.push(i, i, 0.3);
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let res = pcg(&a, &b, &pre, 1e-12, 10);
        assert!(res.converged);
        assert!(res.iterations <= 2, "iterations = {}", res.iterations);
    }
}
