//! Column-major dense matrices and vector helpers.
//!
//! Reduced-order models in PACT are small and dense (ports + retained
//! poles), so dense storage and O(n³) kernels are appropriate there; the
//! large original networks never touch these types except through
//! factorizations in [`crate::cholesky`].

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::complex::Scalar;

/// A dense, column-major matrix over any [`Scalar`] (used with `f64` and
/// [`crate::Complex64`]).
///
/// ```
/// use pact_sparse::DMat;
/// let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.matmul(&DMat::identity(2));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, PartialEq)]
pub struct DMat<S = f64> {
    nrows: usize,
    ncols: usize,
    /// Column-major storage: element `(i, j)` lives at `j * nrows + i`.
    data: Vec<S>,
}

/// A dense matrix of `f64` (the common case).
pub type DMatF = DMat<f64>;

impl<S: Scalar> DMat<S> {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMat {
            nrows,
            ncols,
            data: vec![S::zero(); nrows * ncols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::one();
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[S]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut m = Self::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "row {i} has inconsistent length");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// A diagonal matrix with the given diagonal entries.
    pub fn from_diag(diag: &[S]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` when the matrix has zero extent in either dimension.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nrows == 0 || self.ncols == 0
    }

    /// Immutable view of the raw column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable view of the raw column-major storage (element `(i, j)` at
    /// `j * nrows + i`), for kernels that partition columns across
    /// workers.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// A borrowed column as a slice (columns are contiguous).
    #[inline]
    pub fn col(&self, j: usize) -> &[S] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// A mutable column slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Copies row `i` into a new vector.
    pub fn row(&self, i: usize) -> Vec<S> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.ncols, rhs.nrows, "matmul dimension mismatch");
        let mut out = Self::zeros(self.nrows, rhs.ncols);
        for j in 0..rhs.ncols {
            let rcol = rhs.col(j);
            let ocol = out.col_mut(j);
            for (k, &r) in rcol.iter().enumerate() {
                if r == S::zero() {
                    continue;
                }
                let acol = &self.data[k * self.nrows..(k + 1) * self.nrows];
                for i in 0..self.nrows {
                    let add = acol[i] * r;
                    ocol[i] += add;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![S::zero(); self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == S::zero() {
                continue;
            }
            for (i, &a) in self.col(j).iter().enumerate() {
                y[i] += a * xj;
            }
        }
        y
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    pub fn matvec_t(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.nrows, "matvec_t dimension mismatch");
        (0..self.ncols)
            .map(|j| {
                let mut acc = S::zero();
                for (i, &a) in self.col(j).iter().enumerate() {
                    acc += a * x[i];
                }
                acc
            })
            .collect()
    }

    /// In-place scaling by a scalar.
    pub fn scale_mut(&mut self, k: S) {
        for v in &mut self.data {
            *v = *v * k;
        }
    }

    /// Extracts the contiguous sub-matrix with the given half-open ranges.
    pub fn submatrix(&self, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Self {
        Self::from_fn(rows.len(), cols.len(), |i, j| {
            self[(rows.start + i, cols.start + j)]
        })
    }

    /// The main diagonal as a vector.
    pub fn diag(&self) -> Vec<S> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self[(i, i)])
            .collect()
    }
}

impl DMat<f64> {
    /// The congruence transform `Vᵀ · self · V`.
    ///
    /// This is the fundamental operation of PACT: it preserves symmetry and
    /// definiteness of `self` for any (even rectangular) `V`.
    pub fn congruence(&self, v: &DMat<f64>) -> DMat<f64> {
        v.transpose().matmul(&self.matmul(v))
    }

    /// Maximum absolute difference from the transpose; 0 for exactly
    /// symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for j in 0..self.ncols {
            for i in 0..j {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Forces exact symmetry by averaging with the transpose, cleaning up
    /// rounding drift after chains of congruence transforms.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for i in 0..j {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }
}

impl<S: Scalar> Index<(usize, usize)> for DMat<S> {
    type Output = S;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for DMat<S> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

impl<S: Scalar> Add for &DMat<S> {
    type Output = DMat<S>;
    fn add(self, rhs: Self) -> DMat<S> {
        assert_eq!((self.nrows, self.ncols), (rhs.nrows, rhs.ncols));
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        out
    }
}

impl<S: Scalar> Sub for &DMat<S> {
    type Output = DMat<S>;
    fn sub(self, rhs: Self) -> DMat<S> {
        assert_eq!((self.nrows, self.ncols), (rhs.nrows, rhs.ncols));
        let mut out = self.clone();
        for (o, &r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        out
    }
}

impl<S: Scalar> Mul<S> for &DMat<S> {
    type Output = DMat<S>;
    fn mul(self, k: S) -> DMat<S> {
        let mut out = self.clone();
        out.scale_mut(k);
        out
    }
}

impl<S: Scalar> fmt::Debug for DMat<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(12) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(12) {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

// ---------------------------------------------------------------------------
// Vector helpers (free functions over &[f64])
// ---------------------------------------------------------------------------

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Maximum absolute entry of a slice (0 for empty input).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Dense trapezoidal update kernel of the supernodal Cholesky:
/// `out = L₂ · D · L₁ᵀ` where both factors are row blocks of one
/// column-major panel.
///
/// `panel` holds a dense `ld × width` column-major block (`panel[t * ld + i]`
/// is row `i` of column `t`). With `L₁ = panel[row0 .. row0+nc, 0..width]`
/// and `L₂ = panel[row0 .. row0+m, 0..width]` (so `L₁` is the leading `nc`
/// rows of `L₂`, `nc ≤ m`), the kernel accumulates the lower trapezoid of
/// the `m × nc` product into `out` column-major:
///
/// `out[c * m + r] = Σ_t panel[t·ld + row0 + r] · dvals[t] · panel[t·ld + row0 + c]`
///
/// for `r ≥ c` only — entries above the diagonal of the update block are
/// never referenced by the caller's scatter and are left untouched after
/// the initial zero-fill of the `m · nc` prefix. All three inner loops run
/// over contiguous memory, which is the entire point: this one routine is
/// where the supernodal factorization spends its floating-point budget.
///
/// # Panics
///
/// Panics (via slice indexing) when `panel`, `dvals`, or `out` are too
/// short for the requested shape.
#[allow(clippy::too_many_arguments)]
pub fn ldl_update_trapezoid(
    panel: &[f64],
    ld: usize,
    row0: usize,
    m: usize,
    nc: usize,
    width: usize,
    dvals: &[f64],
    out: &mut [f64],
) {
    debug_assert!(row0 + m <= ld);
    debug_assert!(nc <= m);
    out[..m * nc].fill(0.0);
    for t in 0..width {
        let dt = dvals[t];
        let colt = &panel[t * ld + row0..t * ld + row0 + m];
        for c in 0..nc {
            let coef = dt * colt[c];
            if coef == 0.0 {
                // Padded (relaxed-supernode) slots hold exact zeros; the
                // skip changes at most the sign of a produced zero.
                continue;
            }
            let ob = c * m;
            for r in c..m {
                out[ob + r] += coef * colt[r];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&DMat::identity(3)), a);
        assert_eq!(DMat::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_agrees_with_manual() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DMat::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let x = vec![1.0, -2.0, 0.5];
        let y = a.matvec(&x);
        for (i, yi) in y.iter().enumerate() {
            let manual: f64 = (0..3).map(|j| a[(i, j)] * x[j]).sum();
            assert!((yi - manual).abs() < 1e-14);
        }
        let yt = a.matvec_t(&[1.0, 0.0, -1.0, 2.0]);
        assert_eq!(yt.len(), 3);
    }

    #[test]
    fn congruence_preserves_symmetry() {
        let w = DMat::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 0.5], &[0.0, 0.5, 1.0]]);
        let v = DMat::from_fn(3, 2, |i, j| ((i + j) as f64).sin());
        let x = w.congruence(&v);
        assert_eq!(x.nrows(), 2);
        assert!(x.asymmetry() < 1e-14);
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = DMat::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let s = a.submatrix(1..3, 2..4);
        assert_eq!(s[(0, 0)], 12.0);
        assert_eq!(s[(1, 1)], 23.0);
    }

    #[test]
    fn vector_helpers() {
        let a = [3.0, 4.0];
        assert_eq!(norm2(&a), 5.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
        assert_eq!(norm_inf(&y), 4.5);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn symmetrize_cleans_drift() {
        let mut a = DMat::from_rows(&[&[1.0, 2.0 + 1e-13], &[2.0, 5.0]]);
        assert!(a.asymmetry() > 0.0);
        a.symmetrize();
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn ldl_update_trapezoid_matches_reference() {
        // A 6×3 panel; update block starts at row 2 with m=4 rows, the
        // first nc=2 of which are the target columns.
        let ld = 6;
        let width = 3;
        let (m, nc, row0) = (4usize, 2usize, 2usize);
        let panel: Vec<f64> = (0..ld * width)
            .map(|k| ((k * 7 + 3) % 11) as f64 - 5.0)
            .collect();
        let dvals = [2.0, -0.5, 3.0];
        let mut out = vec![f64::NAN; m * nc + 1];
        out[m * nc] = 42.0; // sentinel: untouched past the prefix
        ldl_update_trapezoid(&panel, ld, row0, m, nc, width, &dvals, &mut out);
        for c in 0..nc {
            for r in c..m {
                let want: f64 = (0..width)
                    .map(|t| panel[t * ld + row0 + r] * dvals[t] * panel[t * ld + row0 + c])
                    .sum();
                assert!(
                    (out[c * m + r] - want).abs() < 1e-12,
                    "mismatch at r={r} c={c}"
                );
            }
        }
        assert_eq!(out[m * nc], 42.0);
    }
}
