//! Fill-reducing orderings for sparse symmetric factorization.
//!
//! The paper factors the internal conductance matrix `D` of 3-D mesh
//! networks; ordering quality determines the dominant memory term
//! (19.5 of 25.8 MB in Table 4). Reverse Cuthill–McKee gives banded
//! factors well suited to meshes; a naive minimum-degree ordering is
//! provided for the ablation benches on smaller networks.

use crate::csr::CsrMat;

/// Ordering strategy for [`crate::SparseCholesky`] and the sparse LU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// Keep the input order.
    Natural,
    /// Reverse Cuthill–McKee: bandwidth-reducing, robust on meshes.
    Rcm,
    /// Greedy exact minimum degree (quadratic worst case; for ablations and
    /// moderate sizes).
    MinDegree,
    /// Nested dissection with BFS level-set separators: asymptotically the
    /// best fill for 2-D/3-D mesh graphs (`O(n log n)` vs RCM's banded
    /// `O(n^{5/3})` on a 3-D grid). The default — substrate meshes are
    /// exactly its sweet spot.
    #[default]
    NestedDissection,
}

impl Ordering {
    /// Computes the permutation for a symmetric matrix pattern.
    ///
    /// The result `perm` is used as `P A Pᵀ` with
    /// [`CsrMat::permute_sym`]: row `i` of the permuted matrix is row
    /// `perm[i]` of the original.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn permutation(self, a: &CsrMat) -> Vec<usize> {
        assert_eq!(a.nrows(), a.ncols(), "ordering needs a square matrix");
        match self {
            Ordering::Natural => (0..a.nrows()).collect(),
            Ordering::Rcm => rcm(a),
            Ordering::MinDegree => min_degree(a),
            Ordering::NestedDissection => nested_dissection(a),
        }
    }
}

/// Nested dissection: recursively split the graph with a BFS level-set
/// separator, order the two halves first and the separator last. Small
/// subgraphs fall back to minimum degree.
fn nested_dissection(a: &CsrMat) -> Vec<usize> {
    let n = a.nrows();
    let mut order = Vec::with_capacity(n);
    let all: Vec<usize> = (0..n).collect();
    dissect(a, &all, &mut order);
    debug_assert_eq!(order.len(), n);
    order
}

/// Threshold below which subgraphs are ordered by local minimum degree.
const ND_LEAF: usize = 64;

/// Subgraphs above this size that expose no separator (quasi-dense
/// blobs — e.g. the union of leaf-boundary cliques a hierarchical
/// stitch produces) are ordered by local RCM instead of the quadratic
/// local minimum degree, which spends seconds re-cliquing a dense
/// elimination front for no fill benefit.
const ND_BLOB_RCM: usize = 512;

fn dissect(a: &CsrMat, nodes: &[usize], order: &mut Vec<usize>) {
    if nodes.len() <= ND_LEAF {
        order.extend(local_min_degree(a, nodes));
        return;
    }
    let Some((part_a, sep, part_b)) = level_set_bisect(a, nodes) else {
        // No meaningful separator (graph is a clique-ish blob or a
        // short path): fall back to a local ordering — minimum degree
        // while it is cheap, RCM once the blob is big enough that
        // min-degree's dense elimination front turns quadratic.
        if nodes.len() > ND_BLOB_RCM {
            order.extend(local_rcm(a, nodes));
        } else {
            order.extend(local_min_degree(a, nodes));
        }
        return;
    };
    dissect(a, &part_a, order);
    dissect(a, &part_b, order);
    order.extend(sep);
}

/// BFS level sets of the subgraph of `a` induced by `nodes`, from a
/// pseudo-peripheral seed. Levels only connect consecutively, so any
/// single level is a vertex separator of the reached component;
/// `unreached` holds the other components (touched by no edge at all).
struct LevelSets {
    /// `levels[l]` = vertices at BFS depth `l`, in visit order.
    levels: Vec<Vec<usize>>,
    /// Vertices outside the seed's component, in `nodes` order.
    unreached: Vec<usize>,
}

fn bfs_level_sets(a: &CsrMat, nodes: &[usize]) -> LevelSets {
    // Membership map for this subgraph.
    let mut local = std::collections::BTreeMap::new();
    for (k, &v) in nodes.iter().enumerate() {
        local.insert(v, k);
    }
    let start = pseudo_peripheral(a, nodes, &local);
    let mut level = vec![usize::MAX; nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    let mut levels: Vec<Vec<usize>> = Vec::new();
    level[local[&start]] = 0;
    queue.push_back(start);
    levels.push(vec![start]);
    while let Some(u) = queue.pop_front() {
        let lu = level[local[&u]];
        for (w, _) in a.row_iter(u) {
            if let Some(&lw) = local.get(&w) {
                if level[lw] == usize::MAX {
                    level[lw] = lu + 1;
                    if levels.len() <= lu + 1 {
                        levels.push(Vec::new());
                    }
                    levels[lu + 1].push(w);
                    queue.push_back(w);
                }
            }
        }
    }
    let unreached: Vec<usize> = nodes
        .iter()
        .copied()
        .filter(|v| level[local[v]] == usize::MAX)
        .collect();
    LevelSets { levels, unreached }
}

/// Splits level sets at `sep_level`: levels below form `part_a`, the
/// chosen level is the separator, levels above plus the unreached
/// components form `part_b`.
fn split_at_level(ls: &LevelSets, sep_level: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut part_a: Vec<usize> = Vec::new();
    let mut part_b: Vec<usize> = Vec::new();
    let mut sep: Vec<usize> = Vec::new();
    for (li, lv) in ls.levels.iter().enumerate() {
        match li.cmp(&sep_level) {
            std::cmp::Ordering::Less => part_a.extend(lv),
            std::cmp::Ordering::Equal => sep.extend(lv),
            std::cmp::Ordering::Greater => part_b.extend(lv),
        }
    }
    part_b.extend(&ls.unreached);
    (part_a, sep, part_b)
}

/// Shared preamble of the bisection variants: degenerate-size and
/// too-few-levels handling. `Err(Some(split))` is an early answer (the
/// disconnected reached-vs-unreached split), `Err(None)` means no
/// useful separator exists, `Ok(ls)` hands the level sets on.
type Bisection = (Vec<usize>, Vec<usize>, Vec<usize>);

fn bisect_levels(a: &CsrMat, nodes: &[usize]) -> Result<LevelSets, Option<Bisection>> {
    if nodes.len() < 3 {
        return Err(None);
    }
    let ls = bfs_level_sets(a, nodes);
    if ls.levels.len() < 3 {
        if ls.unreached.is_empty() {
            return Err(None);
        }
        // The reached component is too small to bisect, but the
        // subgraph is disconnected: split reached from unreached with
        // an empty separator (no edge joins them).
        let reached: Vec<usize> = ls.levels.iter().flatten().copied().collect();
        return Err(Some((reached, Vec::new(), ls.unreached)));
    }
    Ok(ls)
}

/// BFS level-set vertex bisection of the subgraph of `a` induced by
/// `nodes`: breadth-first levels from a pseudo-peripheral seed, the
/// median level as separator. Returns `(part_a, separator, part_b)`
/// where no edge of `a` joins `part_a` to `part_b` (BFS levels only
/// connect consecutively; disconnected remainders land in `part_b`,
/// which they touch by no edge at all). Returns `None` when the
/// subgraph has fewer than three levels or a side would be empty —
/// i.e. there is no useful separator.
fn level_set_bisect(a: &CsrMat, nodes: &[usize]) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let ls = match bisect_levels(a, nodes) {
        Ok(ls) => ls,
        Err(early) => return early,
    };
    let (part_a, sep, part_b) = split_at_level(&ls, median_mass_level(&ls));
    if part_a.is_empty() || part_b.is_empty() {
        return None;
    }
    Some((part_a, sep, part_b))
}

/// The level at which cumulative reached mass first crosses one half,
/// clamped to keep both sides nonempty.
fn median_mass_level(ls: &LevelSets) -> usize {
    let total: usize = ls.levels.iter().map(Vec::len).sum();
    let mut acc = 0usize;
    let mut sep_level = ls.levels.len() / 2;
    for (li, lv) in ls.levels.iter().enumerate() {
        acc += lv.len();
        if acc * 2 >= total {
            sep_level = li.clamp(1, ls.levels.len() - 2);
            break;
        }
    }
    sep_level
}

/// Level-set bisection tuned for the hierarchical partitioner
/// ([`nested_dissection_partition`]): every separator vertex becomes an
/// interface port whose boundary block the downstream reduction pays
/// for *densely*, so separator thickness — not just balance — is the
/// cost driver. Two refinements over [`level_set_bisect`]:
///
/// 1. the separator is the *thinnest* BFS level whose cut keeps at
///    least a quarter of the reached mass on each side (the ordering
///    pass keeps the plain median-mass cut, where balance matters more
///    than thickness), tie-broken toward the median then the lower
///    level;
/// 2. separator vertices touching only one side are shaved back into
///    that side — BFS levels on non-tensor meshes routinely carry such
///    one-sided fat.
///
/// Shaving preserves the separator invariant (no edge joins `part_a`
/// to `part_b`): a vertex moved into `part_a` had no `part_b` neighbor
/// when it moved, a vertex moved into `part_b` had no neighbor in the
/// *already-grown* `part_a`, and two shaved vertices that were
/// neighbors can only both move toward the same side (the `part_b`
/// check runs against post-shave `part_a`, so it sees the other mover).
/// Same return contract as [`level_set_bisect`].
fn level_set_bisect_thin(
    a: &CsrMat,
    nodes: &[usize],
) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let ls = match bisect_levels(a, nodes) {
        Ok(ls) => ls,
        Err(early) => return early,
    };
    let total: usize = ls.levels.iter().map(Vec::len).sum();
    let median = median_mass_level(&ls);
    // Thinnest level keeping ≥ 25% of reached mass strictly below and
    // strictly above the cut, clamped to interior levels.
    let mut best = median;
    let mut best_size = usize::MAX;
    let mut below = 0usize;
    for (li, lv) in ls.levels.iter().enumerate() {
        let above = total - below - lv.len();
        if li >= 1 && li + 1 < ls.levels.len() && 4 * below >= total && 4 * above >= total {
            // Ascending scan: equal size and distance keeps the lower
            // level automatically.
            let better = lv.len() < best_size
                || (lv.len() == best_size && li.abs_diff(median) < best.abs_diff(median));
            if better {
                best = li;
                best_size = lv.len();
            }
        }
        below += lv.len();
    }
    let (mut part_a, sep, mut part_b) = split_at_level(&ls, best);
    if part_a.is_empty() || part_b.is_empty() {
        return None;
    }

    // Two-phase shave. Sides are tracked on the original vertex ids so
    // neighbor probes are O(1).
    const SIDE_A: u8 = 0;
    const SIDE_SEP: u8 = 1;
    const SIDE_B: u8 = 2;
    const OUTSIDE: u8 = 3;
    let mut side = vec![OUTSIDE; a.nrows()];
    for &v in &part_a {
        side[v] = SIDE_A;
    }
    for &v in &sep {
        side[v] = SIDE_SEP;
    }
    for &v in &part_b {
        side[v] = SIDE_B;
    }
    // Phase 1: separator vertices with no part_b neighbor fold into
    // part_a (their edges all stay on the a-side of the cut).
    for &v in &sep {
        if a.row_iter(v).all(|(w, _)| side[w] != SIDE_B) {
            side[v] = SIDE_A;
            part_a.push(v);
        }
    }
    // Phase 2: remaining separator vertices with no neighbor in the
    // *grown* part_a fold into part_b.
    let mut thin_sep = Vec::with_capacity(sep.len());
    for &v in &sep {
        if side[v] != SIDE_SEP {
            continue;
        }
        if a.row_iter(v).all(|(w, _)| side[w] != SIDE_A) {
            side[v] = SIDE_B;
            part_b.push(v);
        } else {
            thin_sep.push(v);
        }
    }
    Some((part_a, thin_sep, part_b))
}

/// A vertex partition produced by recursive nested dissection
/// ([`nested_dissection_partition`]): disjoint leaf blocks plus the
/// vertex separators removed at each dissection step.
///
/// Invariants (asserted by the partitioner's tests):
///
/// - every graph vertex appears in exactly one leaf or one separator;
/// - no edge of the graph joins two distinct leaves — every inter-leaf
///   path passes through a separator vertex. This is what lets a
///   divide-and-conquer reduction treat leaves independently once the
///   separator vertices are promoted to interface ports.
#[derive(Clone, Debug, Default)]
pub struct NdPartition {
    /// Disjoint leaf blocks, in deterministic dissection order.
    pub leaves: Vec<Vec<usize>>,
    /// One separator per dissection step, outermost first.
    pub separators: Vec<Vec<usize>>,
    /// Depth of the deepest dissection (0 when the graph was small
    /// enough to stay a single leaf).
    pub depth: usize,
}

impl NdPartition {
    /// Total vertices across all separators.
    pub fn separator_nodes(&self) -> usize {
        self.separators.iter().map(Vec::len).sum()
    }

    /// Size of the largest leaf block (0 when there are none).
    pub fn max_leaf(&self) -> usize {
        self.leaves.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Size of the largest separator (0 when there are none).
    pub fn max_separator(&self) -> usize {
        self.separators.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Partitions the adjacency graph of the symmetric pattern `a` by
/// recursive BFS vertex separators until every leaf block has at most
/// `max_block` vertices or `max_depth` dissection levels have been
/// spent. Deterministic: depends only on the matrix pattern and the
/// two budgets.
///
/// Subgraphs that expose no useful separator (cliques, short paths)
/// stay whole as leaves even above `max_block`, so callers must treat
/// `max_block` as a target, not a guarantee.
///
/// # Panics
///
/// Panics if `a` is not square or `max_block` is zero.
pub fn nested_dissection_partition(a: &CsrMat, max_block: usize, max_depth: usize) -> NdPartition {
    assert_eq!(a.nrows(), a.ncols(), "partitioning needs a square matrix");
    assert!(max_block > 0, "max_block must be positive");
    let mut part = NdPartition::default();
    if a.nrows() == 0 {
        return part;
    }
    let all: Vec<usize> = (0..a.nrows()).collect();
    partition_rec(a, all, max_block, max_depth, 0, &mut part);
    part
}

fn partition_rec(
    a: &CsrMat,
    nodes: Vec<usize>,
    max_block: usize,
    max_depth: usize,
    depth: usize,
    out: &mut NdPartition,
) {
    out.depth = out.depth.max(depth);
    if nodes.len() <= max_block || depth >= max_depth {
        if !nodes.is_empty() {
            out.leaves.push(nodes);
        }
        return;
    }
    match level_set_bisect_thin(a, &nodes) {
        Some((part_a, sep, part_b)) => {
            out.separators.push(sep);
            partition_rec(a, part_a, max_block, max_depth, depth + 1, out);
            partition_rec(a, part_b, max_block, max_depth, depth + 1, out);
        }
        None => out.leaves.push(nodes),
    }
}

/// Farthest node from an arbitrary start — one BFS pass, good enough as
/// a pseudo-peripheral seed.
fn pseudo_peripheral(
    a: &CsrMat,
    nodes: &[usize],
    local: &std::collections::BTreeMap<usize, usize>,
) -> usize {
    let start = nodes[0];
    let mut dist = vec![usize::MAX; nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[local[&start]] = 0;
    queue.push_back(start);
    let mut far = start;
    let mut far_d = 0;
    while let Some(u) = queue.pop_front() {
        let du = dist[local[&u]];
        if du > far_d {
            far_d = du;
            far = u;
        }
        for (w, _) in a.row_iter(u) {
            if let Some(&lw) = local.get(&w) {
                if dist[lw] == usize::MAX {
                    dist[lw] = du + 1;
                    queue.push_back(w);
                }
            }
        }
    }
    far
}

/// Reverse Cuthill–McKee restricted to a node subset: the dissection
/// fallback for large blobs where [`local_min_degree`] would go
/// quadratic. One BFS per component from a minimum-subset-degree seed,
/// neighbors visited in ascending subset-degree order, result reversed
/// — `O(nnz log nnz)` regardless of how dense the blob is.
fn local_rcm(a: &CsrMat, nodes: &[usize]) -> Vec<usize> {
    // Subset membership / visit marker on original ids.
    let mut state = vec![0u8; a.nrows()]; // 0 outside, 1 member, 2 visited
    for &v in nodes {
        state[v] = 1;
    }
    let degree = |v: usize| {
        a.row_iter(v)
            .filter(|&(w, _)| w != v && state[w] != 0)
            .count()
    };
    let degrees: std::collections::BTreeMap<usize, usize> =
        nodes.iter().map(|&v| (v, degree(v))).collect();
    let mut order = Vec::with_capacity(nodes.len());
    let mut queue = std::collections::VecDeque::new();
    let mut neighbors: Vec<usize> = Vec::new();
    let mut seeds: Vec<usize> = nodes.to_vec();
    seeds.sort_unstable_by_key(|&v| (degrees[&v], v));
    for &seed in &seeds {
        if state[seed] == 2 {
            continue;
        }
        state[seed] = 2;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbors.clear();
            neighbors.extend(a.row_iter(u).map(|(w, _)| w).filter(|&w| state[w] == 1));
            neighbors.sort_unstable_by_key(|&w| (degrees[&w], w));
            for &w in &neighbors {
                if state[w] == 1 {
                    state[w] = 2;
                    queue.push_back(w);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Minimum-degree ordering restricted to a node subset (used as the
/// nested-dissection leaf ordering).
fn local_min_degree(a: &CsrMat, nodes: &[usize]) -> Vec<usize> {
    use std::collections::BTreeSet;
    let set: BTreeSet<usize> = nodes.iter().copied().collect();
    let mut adj: std::collections::BTreeMap<usize, BTreeSet<usize>> = nodes
        .iter()
        .map(|&v| {
            (
                v,
                a.row_iter(v)
                    .map(|(w, _)| w)
                    .filter(|w| *w != v && set.contains(w))
                    .collect(),
            )
        })
        .collect();
    let mut out = Vec::with_capacity(nodes.len());
    let mut remaining: BTreeSet<usize> = set;
    while !remaining.is_empty() {
        let v = *remaining
            .iter()
            .min_by_key(|v| adj[v].len())
            .expect("nonempty");
        remaining.remove(&v);
        out.push(v);
        let nbrs: Vec<usize> = adj[&v]
            .iter()
            .copied()
            .filter(|u| remaining.contains(u))
            .collect();
        for (ai, &u) in nbrs.iter().enumerate() {
            let au = adj.get_mut(&u).expect("adjacency");
            au.remove(&v);
            for &w in &nbrs[ai + 1..] {
                au.insert(w);
            }
            for &w in &nbrs[ai + 1..] {
                adj.get_mut(&w).expect("adjacency").insert(u);
            }
        }
    }
    out
}

/// Returns the inverse permutation: `inv[perm[i]] == i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Validates that `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Reverse Cuthill–McKee ordering of the adjacency graph of `a`.
///
/// Handles disconnected graphs by restarting BFS from the minimum-degree
/// unvisited node of each component.
fn rcm(a: &CsrMat) -> Vec<usize> {
    let n = a.nrows();
    let degree: Vec<usize> = (0..n)
        .map(|i| a.row_iter(i).filter(|&(j, _)| j != i).count())
        .collect();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut neighbors: Vec<usize> = Vec::new();

    // Pick an unvisited node of minimum degree as the next seed for each
    // component (pseudo-peripheral heuristic: min degree works well on
    // meshes).
    while let Some(seed) = (0..n).filter(|&i| !visited[i]).min_by_key(|&i| degree[i]) {
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbors.clear();
            neighbors.extend(a.row_iter(u).map(|(j, _)| j).filter(|&j| !visited[j]));
            neighbors.sort_unstable_by_key(|&j| degree[j]);
            for &j in &neighbors {
                if !visited[j] {
                    visited[j] = true;
                    queue.push_back(j);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Greedy exact minimum-degree ordering using adjacency sets.
///
/// At each step the node of minimum current degree is eliminated and its
/// neighborhood is turned into a clique. Worst-case quadratic time/space;
/// intended for moderate `n` and for comparing fill against RCM.
fn min_degree(a: &CsrMat) -> Vec<usize> {
    use std::collections::BTreeSet;
    let n = a.nrows();
    let mut adj: Vec<BTreeSet<usize>> = (0..n)
        .map(|i| a.row_iter(i).map(|(j, _)| j).filter(|&j| j != i).collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| adj[i].len())
            .expect("nodes remain");
        eliminated[v] = true;
        order.push(v);
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        // Form the elimination clique among remaining neighbors.
        for (ai, &u) in nbrs.iter().enumerate() {
            adj[u].remove(&v);
            for &w in &nbrs[ai + 1..] {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
    }
    order
}

/// Postorder of an elimination tree given as a parent array (roots hold
/// `usize::MAX`).
///
/// Returns `post` such that `post[k]` is the node visited `k`-th in a
/// depth-first postorder traversal; children (and roots) are visited in
/// ascending node order, so the result is deterministic. Relabelling
/// columns by an etree postorder leaves the fill pattern, the column
/// counts, and the tree itself invariant (it is a topological reorder of
/// the elimination), while making every parent chain — and therefore every
/// supernode — occupy *contiguous* column indices. The supernodal
/// Cholesky composes this with the fill-reducing permutation.
pub fn etree_postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Child lists in ascending order: descending construction order makes
    // the intrusive list head the smallest child.
    let mut head = vec![usize::MAX; n];
    let mut next = vec![usize::MAX; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != usize::MAX {
            debug_assert!(p > j, "etree parent must be larger than the child");
            next[j] = head[p];
            head[p] = j;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<usize> = Vec::new();
    for r in 0..n {
        if parent[r] != usize::MAX {
            continue;
        }
        stack.push(r);
        while let Some(&top) = stack.last() {
            let c = head[top];
            if c == usize::MAX {
                post.push(top);
                stack.pop();
            } else {
                head[top] = next[c]; // consume child c
                stack.push(c);
            }
        }
    }
    debug_assert_eq!(post.len(), n);
    post
}

/// Profile (sum of row bandwidths) of a symmetric pattern under a
/// permutation; a cheap proxy for Cholesky fill under envelope methods.
pub fn profile(a: &CsrMat, perm: &[usize]) -> usize {
    let inv = invert_permutation(perm);
    let mut total = 0usize;
    for i in 0..a.nrows() {
        let pi = inv[i];
        let mut lo = pi;
        for (j, _) in a.row_iter(i) {
            lo = lo.min(inv[j]);
        }
        total += pi - lo;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMat;

    /// 1-D chain graph with a "bad" scrambled numbering.
    fn scrambled_chain(n: usize) -> CsrMat {
        let mut t = TripletMat::new(n, n);
        // chain in a scrambled labelling: node order is bit-reversed-ish
        let label: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
        for w in label.windows(2) {
            t.stamp_conductance(Some(w[0]), Some(w[1]), 1.0);
        }
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        t.to_csr()
    }

    #[test]
    fn permutations_are_valid() {
        let a = scrambled_chain(20);
        for ord in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::MinDegree,
            Ordering::NestedDissection,
        ] {
            let p = ord.permutation(&a);
            assert!(is_permutation(&p), "{ord:?} produced invalid permutation");
        }
    }

    /// 3-D grid Laplacian: the target workload of nested dissection.
    fn grid3d(nx: usize, ny: usize, nz: usize) -> CsrMat {
        let n = nx * ny * nz;
        let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        let mut t = TripletMat::new(n, n);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if x + 1 < nx {
                        t.stamp_conductance(Some(id(x, y, z)), Some(id(x + 1, y, z)), 1.0);
                    }
                    if y + 1 < ny {
                        t.stamp_conductance(Some(id(x, y, z)), Some(id(x, y + 1, z)), 1.0);
                    }
                    if z + 1 < nz {
                        t.stamp_conductance(Some(id(x, y, z)), Some(id(x, y, z + 1)), 1.0);
                    }
                    t.push(id(x, y, z), id(x, y, z), 0.5);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn nested_dissection_beats_rcm_fill_on_3d_grid() {
        let a = grid3d(10, 10, 6);
        let fill = |ord: Ordering| {
            crate::cholesky::SparseCholesky::factor(&a, ord)
                .expect("factor")
                .l_nnz()
        };
        let rcm = fill(Ordering::Rcm);
        let nd = fill(Ordering::NestedDissection);
        assert!(
            nd < rcm,
            "nested dissection should reduce fill on a 3-D grid: nd={nd} rcm={rcm}"
        );
    }

    #[test]
    fn nested_dissection_is_valid_on_disconnected_graph() {
        let mut t = TripletMat::new(100, 100);
        for i in 0..49 {
            t.stamp_conductance(Some(i), Some(i + 1), 1.0);
        }
        for i in 50..99 {
            t.stamp_conductance(Some(i), Some(i + 1), 1.0);
        }
        for i in 0..100 {
            t.push(i, i, 1.0);
        }
        let a = t.to_csr();
        let p = Ordering::NestedDissection.permutation(&a);
        assert!(is_permutation(&p));
    }

    #[test]
    fn rcm_reduces_profile_on_chain() {
        let a = scrambled_chain(40);
        let natural = profile(&a, &Ordering::Natural.permutation(&a));
        let rcm = profile(&a, &Ordering::Rcm.permutation(&a));
        assert!(
            rcm < natural,
            "RCM should reduce profile: rcm={rcm} natural={natural}"
        );
        // A chain perfectly ordered has profile n-1.
        assert_eq!(rcm, 39);
    }

    #[test]
    fn min_degree_orders_chain_perfectly() {
        // On a chain min-degree eliminates endpoints first: no fill at all.
        let a = scrambled_chain(15);
        let p = Ordering::MinDegree.permutation(&a);
        assert!(is_permutation(&p));
    }

    #[test]
    fn invert_roundtrip() {
        let p = vec![2usize, 0, 3, 1];
        let inv = invert_permutation(&p);
        for i in 0..4 {
            assert_eq!(inv[p[i]], i);
        }
    }

    #[test]
    fn empty_matrix_permutations_are_valid() {
        let a = TripletMat::new(0, 0).to_csr();
        for ord in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::MinDegree,
            Ordering::NestedDissection,
        ] {
            let p = ord.permutation(&a);
            assert!(p.is_empty(), "{ord:?} must return an empty permutation");
            assert!(is_permutation(&p), "{ord:?} invalid on the empty matrix");
        }
    }

    #[test]
    fn single_node_permutations_are_valid() {
        let mut t = TripletMat::new(1, 1);
        t.push(0, 0, 2.0);
        let a = t.to_csr();
        for ord in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::MinDegree,
            Ordering::NestedDissection,
        ] {
            let p = ord.permutation(&a);
            assert_eq!(p, vec![0], "{ord:?} wrong on a single-node graph");
        }
        // A 1x1 matrix with no stored entries (isolated vertex) too.
        let empty_single = TripletMat::new(1, 1).to_csr();
        for ord in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::MinDegree,
            Ordering::NestedDissection,
        ] {
            let p = ord.permutation(&empty_single);
            assert_eq!(p, vec![0], "{ord:?} wrong on an isolated vertex");
        }
    }

    #[test]
    fn etree_postorder_is_a_valid_topological_order() {
        // A small forest:   4        6
        //                  / \       |
        //                 1   3      5
        //                 |   |
        //                 0   2      and an isolated root 7.
        let m = usize::MAX;
        let parent = [1usize, 4, 3, 4, m, 6, m, m];
        let post = etree_postorder(&parent);
        assert_eq!(post.len(), 8);
        // A permutation…
        let mut seen = [false; 8];
        for &p in &post {
            assert!(!seen[p]);
            seen[p] = true;
        }
        // …where every child appears before its parent.
        let pos = invert_permutation(&post);
        for (j, &p) in parent.iter().enumerate() {
            if p != m {
                assert!(pos[j] < pos[p], "child {j} after parent {p}");
            }
        }
        // Chains already in order stay the identity.
        assert_eq!(etree_postorder(&[1, 2, m]), vec![0, 1, 2]);
        assert_eq!(etree_postorder(&[]), Vec::<usize>::new());
    }

    #[test]
    fn invert_and_validate_degenerate_permutations() {
        // Empty: inverse of the empty permutation is empty and valid.
        assert_eq!(invert_permutation(&[]), Vec::<usize>::new());
        assert!(is_permutation(&[]));
        // Single node.
        assert_eq!(invert_permutation(&[0]), vec![0]);
        assert!(is_permutation(&[0]));
        // Out-of-range and duplicate entries are rejected.
        assert!(!is_permutation(&[1]));
        assert!(!is_permutation(&[0, 0]));
    }

    fn partition_invariants(a: &CsrMat, part: &NdPartition) {
        // Every vertex appears exactly once across leaves + separators.
        let mut seen = vec![false; a.nrows()];
        for group in part.leaves.iter().chain(&part.separators) {
            for &v in group {
                assert!(!seen[v], "vertex {v} assigned twice");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "vertex left unassigned");
        // No edge joins two distinct leaves.
        let mut leaf_of = vec![usize::MAX; a.nrows()];
        for (k, leaf) in part.leaves.iter().enumerate() {
            for &v in leaf {
                leaf_of[v] = k;
            }
        }
        for i in 0..a.nrows() {
            for (j, _) in a.row_iter(i) {
                if leaf_of[i] != usize::MAX && leaf_of[j] != usize::MAX {
                    assert_eq!(
                        leaf_of[i], leaf_of[j],
                        "edge ({i},{j}) crosses leaves — separator property violated"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_respects_block_budget_on_grid() {
        let a = grid3d(12, 12, 4);
        let part = nested_dissection_partition(&a, 100, 16);
        assert!(part.leaves.len() >= 4, "expected several leaves");
        assert!(part.max_leaf() <= 100, "leaf over budget");
        assert!(part.separator_nodes() > 0);
        assert!(part.depth > 0);
        partition_invariants(&a, &part);
    }

    #[test]
    fn partition_depth_budget_caps_recursion() {
        let a = grid3d(12, 12, 4);
        let part = nested_dissection_partition(&a, 1, 2);
        assert!(part.depth <= 2);
        assert!(part.separators.len() <= 3, "at most 2 levels of cuts");
        partition_invariants(&a, &part);
    }

    #[test]
    fn partition_handles_degenerate_graphs() {
        // Empty graph: no leaves, no separators.
        let empty = TripletMat::new(0, 0).to_csr();
        let p = nested_dissection_partition(&empty, 8, 8);
        assert!(p.leaves.is_empty() && p.separators.is_empty());
        assert_eq!(p.separator_nodes(), 0);
        assert_eq!(p.max_leaf(), 0);
        // Single node: one single-vertex leaf even with max_block=1.
        let mut t = TripletMat::new(1, 1);
        t.push(0, 0, 1.0);
        let single = t.to_csr();
        let p = nested_dissection_partition(&single, 1, 8);
        assert_eq!(p.leaves, vec![vec![0]]);
        assert!(p.separators.is_empty());
        partition_invariants(&single, &p);
        // Two-node graph under budget pressure: no 3-level BFS exists,
        // so the pair stays one leaf rather than looping forever.
        let mut t = TripletMat::new(2, 2);
        t.stamp_conductance(Some(0), Some(1), 1.0);
        let pair = t.to_csr();
        let p = nested_dissection_partition(&pair, 1, 8);
        assert_eq!(p.leaves.len(), 1);
        partition_invariants(&pair, &p);
    }

    #[test]
    fn partition_of_disconnected_graph_covers_all_components() {
        let mut t = TripletMat::new(60, 60);
        for i in 0..29 {
            t.stamp_conductance(Some(i), Some(i + 1), 1.0);
        }
        for i in 30..59 {
            t.stamp_conductance(Some(i), Some(i + 1), 1.0);
        }
        let a = t.to_csr();
        let part = nested_dissection_partition(&a, 10, 16);
        partition_invariants(&a, &part);
        assert!(part.max_leaf() <= 10);
    }

    #[test]
    fn handles_disconnected_graph() {
        let mut t = TripletMat::new(4, 4);
        t.stamp_conductance(Some(0), Some(1), 1.0);
        t.stamp_conductance(Some(2), Some(3), 1.0);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let a = t.to_csr();
        let p = Ordering::Rcm.permutation(&a);
        assert!(is_permutation(&p));
        assert_eq!(p.len(), 4);
    }
}
