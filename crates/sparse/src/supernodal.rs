//! Supernodal (blocked) storage and kernels for the sparse LDLᵀ factor.
//!
//! A *supernode* is a maximal run of consecutive factor columns that form
//! a chain in the elimination tree (`parent[j-1] == j`) and share — up to
//! a bounded amount of relaxation padding — the same sparsity below the
//! diagonal. Along such a chain the pattern of each column nests into the
//! pattern of the last one, so the whole run can be stored as one dense
//! column-major *panel*:
//!
//! ```text
//!         w cols
//!       ┌───────┐
//!   w   │ I \ · │   unit-diagonal block (upper part unused)
//!       ├───────┤
//!   b   │  L21  │   below-rows: struct(L(:, last column))
//!       └───────┘
//! ```
//!
//! The panel keeps the factor values contiguous (no per-entry row index),
//! which converts both the numeric factorization and the triangular
//! solves from indexed scalar scatter into streaming dense loops — the
//! cache-blocking pass the PACT hot path needs. Detection is counts-only
//! (Liu's fundamental-supernode criterion plus CHOLMOD-style staged
//! relaxation); the padding slots introduced by relaxed merges hold exact
//! zeros and never change computed values beyond the sign of a zero.
//!
//! Everything here is crate-internal machinery orchestrated by
//! [`crate::cholesky`]; the public surface stays on `SparseCholesky` /
//! `SymbolicCholesky`.

use std::sync::Arc;

use crate::cholesky::{FactorDiagnostics, FactorError, PerturbedPivot, LANES};
use crate::csr::CsrMat;
use crate::dense::ldl_update_trapezoid;

/// Hard cap on supernode width: panels stay small enough that the active
/// diagonal block and a stripe of update rows fit in L1/L2 cache.
pub(crate) const MAX_PANEL_COLS: usize = 48;
/// Chains up to this many columns merge unconditionally (padding on such
/// narrow panels is negligible and the blocking win is not).
pub(crate) const RELAX_ALWAYS: usize = 4;
/// Up to this width a merge may pad at most 10% of the panel's value
/// slots with explicit zeros; beyond it (up to [`MAX_PANEL_COLS`]) the
/// budget tightens to 5%.
pub(crate) const RELAX_MID: usize = 16;

/// The value-free supernode partition of a factor pattern: column ranges,
/// below-diagonal row lists, and panel offsets. Built once per symbolic
/// analysis and shared (via `Arc`) by every numeric factor refreshed from
/// it.
#[derive(Clone, Debug)]
pub(crate) struct SupernodePlan {
    /// Matrix dimension.
    pub n: usize,
    /// Supernode `s` spans permuted columns `sn_ptr[s] .. sn_ptr[s+1]`
    /// (`nsup + 1` entries, partition of `0..n`).
    pub sn_ptr: Vec<usize>,
    /// Supernode owning each permuted column.
    pub col_to_sn: Vec<usize>,
    /// Below-diagonal rows of supernode `s`:
    /// `rows[rows_ptr[s] .. rows_ptr[s+1]]`, ascending permuted indices —
    /// exactly `struct(L(:, last column of s))`.
    pub rows_ptr: Vec<usize>,
    /// Concatenated below-row lists.
    pub rows: Vec<usize>,
    /// Offset of supernode `s`'s dense panel in the value array; panel `s`
    /// is `(w + b) × w` column-major with leading dimension `w + b`.
    pub panel_ptr: Vec<usize>,
    /// Structural below-diagonal entry count of `L` (what the scalar
    /// kernel would store) — the fill measure reported by `l_nnz`.
    pub struct_nnz: usize,
    /// Widest panel (columns).
    pub max_width: usize,
    /// Largest below-row count over supernodes (solve workspace sizing).
    pub max_below: usize,
}

impl SupernodePlan {
    /// Number of supernodes.
    #[inline]
    pub fn nsup(&self) -> usize {
        self.sn_ptr.len().saturating_sub(1)
    }

    /// Total stored panel values (structural entries + relaxation padding
    /// + the unused upper triangle of each diagonal block).
    #[inline]
    pub fn panel_values(&self) -> usize {
        *self.panel_ptr.last().unwrap_or(&0)
    }

    /// Modelled bytes of the plan's index arrays.
    pub fn index_bytes(&self) -> usize {
        (self.sn_ptr.len()
            + self.col_to_sn.len()
            + self.rows_ptr.len()
            + self.rows.len()
            + self.panel_ptr.len())
            * 8
    }
}

/// Detects the supernode partition from the elimination tree and column
/// counts, then collects each supernode's below-row list with one
/// flag-walk over the (permuted) input pattern — O(n + nnz(L)) total.
///
/// `parent`/`lnz` are the etree and below-diagonal column counts computed
/// by the symbolic analysis for `ap = P A Pᵀ`.
pub(crate) fn build_plan(parent: &[usize], lnz: &[usize], ap: &CsrMat) -> SupernodePlan {
    let n = parent.len();
    debug_assert_eq!(lnz.len(), n);
    debug_assert_eq!(ap.nrows(), n);

    // --- staged detection over column chains (counts only) ---
    let mut sn_ptr = Vec::with_capacity(n / 2 + 2);
    sn_ptr.push(0usize);
    let mut c0 = 0usize; // first column of the open supernode
    let mut sum_lnz = if n > 0 { lnz[0] } else { 0 };
    for j in 1..n {
        let w = j - c0 + 1;
        let merge = parent[j - 1] == j && w <= MAX_PANEL_COLS && {
            let sum = sum_lnz + lnz[j];
            // Value slots of the merged panel below each diagonal:
            // rows i+1..=j of the chain plus the last column's below-rows.
            let slots = w * (w - 1) / 2 + w * lnz[j];
            // Chain nesting guarantees slots ≥ sum; the difference is the
            // explicit-zero padding this merge would carry.
            debug_assert!(slots >= sum, "column nesting violated");
            let z = slots.saturating_sub(sum);
            w <= RELAX_ALWAYS || (10 * z <= slots && w <= RELAX_MID) || 20 * z <= slots
        };
        if merge {
            sum_lnz += lnz[j];
        } else {
            sn_ptr.push(j);
            c0 = j;
            sum_lnz = lnz[j];
        }
    }
    if n > 0 {
        sn_ptr.push(n);
    }
    let nsup = sn_ptr.len() - 1;

    let mut col_to_sn = vec![0usize; n];
    let mut max_width = 0usize;
    for s in 0..nsup {
        max_width = max_width.max(sn_ptr[s + 1] - sn_ptr[s]);
        for j in sn_ptr[s]..sn_ptr[s + 1] {
            col_to_sn[j] = s;
        }
    }

    // --- below-row lists: struct(L(:, last col of s)) per supernode ---
    let mut rows_ptr = vec![0usize; nsup + 1];
    let mut max_below = 0usize;
    for s in 0..nsup {
        let b = lnz[sn_ptr[s + 1] - 1];
        max_below = max_below.max(b);
        rows_ptr[s + 1] = rows_ptr[s] + b;
    }
    let mut rows = vec![0usize; rows_ptr[nsup]];
    let mut cursor = rows_ptr[..nsup].to_vec();
    let mut last_col = vec![false; n];
    for s in 0..nsup {
        last_col[sn_ptr[s + 1] - 1] = true;
    }
    // The same etree flag-walk the symbolic pass uses: row k visits
    // column i exactly when L(k, i) is structural, in ascending k — so
    // appending k at visits of last columns yields each supernode's
    // below-rows already sorted.
    let mut flag = vec![usize::MAX; n];
    for k in 0..n {
        flag[k] = k;
        for (j, _) in ap.row_iter(k) {
            if j >= k {
                continue;
            }
            let mut i = j;
            while flag[i] != k {
                flag[i] = k;
                if last_col[i] {
                    let s = col_to_sn[i];
                    rows[cursor[s]] = k;
                    cursor[s] += 1;
                }
                i = parent[i];
            }
        }
    }
    debug_assert_eq!(cursor, rows_ptr[1..].to_vec());

    let mut panel_ptr = vec![0usize; nsup + 1];
    for s in 0..nsup {
        let w = sn_ptr[s + 1] - sn_ptr[s];
        let b = rows_ptr[s + 1] - rows_ptr[s];
        panel_ptr[s + 1] = panel_ptr[s] + (w + b) * w;
    }

    SupernodePlan {
        n,
        sn_ptr,
        col_to_sn,
        rows_ptr,
        rows,
        panel_ptr,
        struct_nnz: lnz.iter().sum(),
        max_width,
        max_below,
    }
}

/// The numeric half of a supernodal factor: concatenated dense panels
/// over a shared [`SupernodePlan`]. Pivots `D` live outside (on
/// `SparseCholesky`) exactly as for the scalar kernel.
#[derive(Clone, Debug)]
pub(crate) struct SupernodalFactor {
    /// Shared structure.
    pub plan: Arc<SupernodePlan>,
    /// Panel values, column-major per supernode
    /// (`px[panel_ptr[s] + c·(w+b) + r]`).
    pub px: Vec<f64>,
    /// Structural flop count of the numeric factorization — a function of
    /// the pattern only, identical across refactors and thread counts.
    pub flops: u64,
}

impl SupernodalFactor {
    /// Modelled bytes of the stored factor (values + plan indices).
    pub fn memory_bytes(&self) -> usize {
        self.px.len() * 8 + self.plan.index_bytes()
    }

    /// In-place forward solve with the unit-lower panel factor
    /// (permuted coordinates). Mirrors the scalar kernel's contract,
    /// including the skip of exactly-zero inputs.
    pub fn lsolve_unit(&self, x: &mut [f64]) {
        let p = &*self.plan;
        let mut ub = vec![0.0f64; p.max_below];
        for s in 0..p.nsup() {
            let c0 = p.sn_ptr[s];
            let w = p.sn_ptr[s + 1] - c0;
            let rs = &p.rows[p.rows_ptr[s]..p.rows_ptr[s + 1]];
            let b = rs.len();
            let nrow = w + b;
            let panel = &self.px[p.panel_ptr[s]..p.panel_ptr[s + 1]];
            for jj in 0..w {
                let xj = x[c0 + jj];
                if xj == 0.0 {
                    continue;
                }
                let col = &panel[jj * nrow..jj * nrow + w];
                for r in jj + 1..w {
                    x[c0 + r] = (-col[r]).mul_add(xj, x[c0 + r]);
                }
            }
            if b == 0 {
                continue;
            }
            let acc = &mut ub[..b];
            acc.fill(0.0);
            for jj in 0..w {
                let xj = x[c0 + jj];
                if xj == 0.0 {
                    continue;
                }
                let col = &panel[jj * nrow + w..(jj + 1) * nrow];
                for r in 0..b {
                    acc[r] = col[r].mul_add(xj, acc[r]);
                }
            }
            for r in 0..b {
                x[rs[r]] -= acc[r];
            }
        }
    }

    /// In-place backward solve with the unit-upper transpose of the panel
    /// factor (permuted coordinates).
    ///
    /// The below-rows inner product uses the shared 4-partial summation
    /// scheme (see [`below_dot`]) so the per-element chain has enough
    /// instruction-level parallelism to stream the panel; the lane solves
    /// use the identical scheme, keeping lanes-vs-single bitwise equal.
    pub fn ltsolve_unit(&self, x: &mut [f64]) {
        let p = &*self.plan;
        let mut ub = vec![0.0f64; p.max_below];
        for s in (0..p.nsup()).rev() {
            let c0 = p.sn_ptr[s];
            let w = p.sn_ptr[s + 1] - c0;
            let rs = &p.rows[p.rows_ptr[s]..p.rows_ptr[s + 1]];
            let b = rs.len();
            let nrow = w + b;
            let panel = &self.px[p.panel_ptr[s]..p.panel_ptr[s + 1]];
            let xb = &mut ub[..b];
            for r in 0..b {
                xb[r] = x[rs[r]];
            }
            for jj in (0..w).rev() {
                let col = &panel[jj * nrow..(jj + 1) * nrow];
                let mut acc = x[c0 + jj];
                for r in jj + 1..w {
                    acc = (-col[r]).mul_add(x[c0 + r], acc);
                }
                acc -= below_dot(&col[w..], xb);
                x[c0 + jj] = acc;
            }
        }
    }

    /// Forward solve over `width ≤ LANES` lanes held node-major in `wv`
    /// (`wv[i * width + r]` = lane `r` at node `i`). Per lane the
    /// floating-point sequence matches [`SupernodalFactor::lsolve_unit`];
    /// the zero-skip fires lane-wise — a panel column is skipped when
    /// *every* lane is zero there (same measure-zero caveat as the
    /// single-RHS skip), which is what lets a sparse multi-RHS block
    /// (the port fan-out's contact columns) bypass panels outside its
    /// union reach.
    pub fn lsolve_lanes(&self, wv: &mut [f64], width: usize) {
        debug_assert!((1..=LANES).contains(&width));
        match width {
            1 => self.lsolve_lanes_w::<1>(wv),
            2 => self.lsolve_lanes_w::<2>(wv),
            3 => self.lsolve_lanes_w::<3>(wv),
            4 => self.lsolve_lanes_w::<4>(wv),
            5 => self.lsolve_lanes_w::<5>(wv),
            6 => self.lsolve_lanes_w::<6>(wv),
            7 => self.lsolve_lanes_w::<7>(wv),
            _ => self.lsolve_lanes_w::<LANES>(wv),
        }
    }

    fn lsolve_lanes_w<const W: usize>(&self, wv: &mut [f64]) {
        let p = &*self.plan;
        let mut ub = vec![0.0f64; p.max_below * W];
        let mut axj: Vec<f64> = Vec::with_capacity(p.max_width * W);
        let mut acols: Vec<usize> = Vec::with_capacity(p.max_width);
        for s in 0..p.nsup() {
            let c0 = p.sn_ptr[s];
            let w = p.sn_ptr[s + 1] - c0;
            let rs = &p.rows[p.rows_ptr[s]..p.rows_ptr[s + 1]];
            let b = rs.len();
            let nrow = w + b;
            let panel = &self.px[p.panel_ptr[s]..p.panel_ptr[s + 1]];
            // In-block unit-lower solve (sequential across columns).
            let blk = &mut wv[c0 * W..(c0 + w) * W];
            for jj in 0..w {
                let mut xj = [0.0f64; W];
                xj.copy_from_slice(&blk[jj * W..(jj + 1) * W]);
                if xj.iter().all(|v| *v == 0.0) {
                    continue;
                }
                let col = &panel[jj * nrow..jj * nrow + w];
                for (out, &l) in blk[(jj + 1) * W..w * W]
                    .chunks_exact_mut(W)
                    .zip(&col[jj + 1..])
                {
                    for r in 0..W {
                        out[r] = (-l).mul_add(xj[r], out[r]);
                    }
                }
            }
            if b == 0 {
                continue;
            }
            // Compact the columns still active after the in-block solve
            // (the skip fires only when every lane is zero — same
            // measure-zero caveat as the single-RHS skip).
            acols.clear();
            axj.clear();
            for (jj, xs) in blk.chunks_exact(W).enumerate() {
                if xs.iter().any(|v| *v != 0.0) {
                    acols.push(jj);
                    axj.extend_from_slice(xs);
                }
            }
            if acols.is_empty() {
                continue;
            }
            let acc = &mut ub[..b * W];
            acc.fill(0.0);
            // Active columns in groups of four: each accumulator row is
            // loaded and stored once per group instead of once per
            // column, which is what the update is throughput-bound on.
            // Per lane the contributions still land in increasing-column
            // order, so the sums associate exactly as in `lsolve_unit`.
            let mut g = 0;
            while g + 4 <= acols.len() {
                let (j0, j1, j2, j3) = (acols[g], acols[g + 1], acols[g + 2], acols[g + 3]);
                let cs0 = &panel[j0 * nrow + w..(j0 + 1) * nrow];
                let cs1 = &panel[j1 * nrow + w..(j1 + 1) * nrow];
                let cs2 = &panel[j2 * nrow + w..(j2 + 1) * nrow];
                let cs3 = &panel[j3 * nrow + w..(j3 + 1) * nrow];
                let xjs = &axj[g * W..(g + 4) * W];
                let (x0, x1) = (&xjs[..W], &xjs[W..2 * W]);
                let (x2, x3) = (&xjs[2 * W..3 * W], &xjs[3 * W..4 * W]);
                let rows = acc.chunks_exact_mut(W).zip(cs0).zip(cs1).zip(cs2).zip(cs3);
                for ((((a, &l0), &l1), &l2), &l3) in rows {
                    for r in 0..W {
                        let t = l0.mul_add(x0[r], a[r]);
                        let t = l1.mul_add(x1[r], t);
                        let t = l2.mul_add(x2[r], t);
                        a[r] = l3.mul_add(x3[r], t);
                    }
                }
                g += 4;
            }
            while g < acols.len() {
                let jj = acols[g];
                let col = &panel[jj * nrow + w..(jj + 1) * nrow];
                let xj = &axj[g * W..(g + 1) * W];
                for (a, &l) in acc.chunks_exact_mut(W).zip(col) {
                    for r in 0..W {
                        a[r] = l.mul_add(xj[r], a[r]);
                    }
                }
                g += 1;
            }
            for (a, &row) in acc.chunks_exact(W).zip(rs) {
                let out = &mut wv[row * W..row * W + W];
                for r in 0..W {
                    out[r] -= a[r];
                }
            }
        }
    }

    /// Backward solve over `width ≤ LANES` lanes (see
    /// [`SupernodalFactor::lsolve_lanes`]); per lane the summation
    /// scheme — including the 4-partial below-rows reduction — matches
    /// [`SupernodalFactor::ltsolve_unit`] exactly.
    pub fn ltsolve_lanes(&self, wv: &mut [f64], width: usize) {
        debug_assert!((1..=LANES).contains(&width));
        match width {
            1 => self.ltsolve_lanes_w::<1>(wv),
            2 => self.ltsolve_lanes_w::<2>(wv),
            3 => self.ltsolve_lanes_w::<3>(wv),
            4 => self.ltsolve_lanes_w::<4>(wv),
            5 => self.ltsolve_lanes_w::<5>(wv),
            6 => self.ltsolve_lanes_w::<6>(wv),
            7 => self.ltsolve_lanes_w::<7>(wv),
            _ => self.ltsolve_lanes_w::<LANES>(wv),
        }
    }

    fn ltsolve_lanes_w<const W: usize>(&self, wv: &mut [f64]) {
        let p = &*self.plan;
        let mut ub = vec![0.0f64; p.max_below * W];
        for s in (0..p.nsup()).rev() {
            let c0 = p.sn_ptr[s];
            let w = p.sn_ptr[s + 1] - c0;
            let rs = &p.rows[p.rows_ptr[s]..p.rows_ptr[s + 1]];
            let b = rs.len();
            let nrow = w + b;
            let panel = &self.px[p.panel_ptr[s]..p.panel_ptr[s + 1]];
            let xb = &mut ub[..b * W];
            for (x, &row) in xb.chunks_exact_mut(W).zip(rs) {
                x.copy_from_slice(&wv[row * W..row * W + W]);
            }
            for jj in (0..w).rev() {
                let col = &panel[jj * nrow..(jj + 1) * nrow];
                let base = (c0 + jj) * W;
                let mut acc = [0.0f64; W];
                acc.copy_from_slice(&wv[base..base + W]);
                for (xr, &l) in wv[(jj + 1 + c0) * W..(c0 + w) * W]
                    .chunks_exact(W)
                    .zip(&col[jj + 1..w])
                {
                    for r in 0..W {
                        acc[r] = (-l).mul_add(xr[r], acc[r]);
                    }
                }
                // 4-partial below-rows reduction, lane-wise the same
                // association as `below_dot`. Rows are walked in groups
                // of four so each partial is addressed with a constant
                // index and stays in registers across the sweep.
                let mut part = [[0.0f64; W]; 4];
                let mut c4 = col[w..].chunks_exact(4);
                let mut x4 = xb.chunks_exact(4 * W);
                for (c, x) in (&mut c4).zip(&mut x4) {
                    for k in 0..4 {
                        let l = c[k];
                        let xr = &x[k * W..(k + 1) * W];
                        let pk = &mut part[k];
                        for r in 0..W {
                            pk[r] = l.mul_add(xr[r], pk[r]);
                        }
                    }
                }
                let ctail = c4.remainder().iter().zip(x4.remainder().chunks_exact(W));
                for (k, (&l, xr)) in ctail.enumerate() {
                    let pk = &mut part[k];
                    for r in 0..W {
                        pk[r] = l.mul_add(xr[r], pk[r]);
                    }
                }
                let out = &mut wv[base..base + W];
                for r in 0..W {
                    out[r] = acc[r] - ((part[0][r] + part[1][r]) + (part[2][r] + part[3][r]));
                }
            }
        }
    }
}

/// Inner product of a panel's below-rows column with the gathered
/// below-rows solution, summed as four stride-4 partials combined as
/// `(p0 + p1) + (p2 + p3)`, each accumulated with a fused multiply-add.
/// A single running sum would serialize one FMA-latency chain per
/// element; four independent chains keep the backward solve streaming.
/// Both the single-RHS and lane solves use this exact association (and
/// the same fused rounding), so they stay bitwise interchangeable.
#[inline]
fn below_dot(col: &[f64], xb: &[f64]) -> f64 {
    debug_assert_eq!(col.len(), xb.len());
    let mut p = [0.0f64; 4];
    let mut c4 = col.chunks_exact(4);
    let mut x4 = xb.chunks_exact(4);
    for (c, x) in (&mut c4).zip(&mut x4) {
        p[0] = c[0].mul_add(x[0], p[0]);
        p[1] = c[1].mul_add(x[1], p[1]);
        p[2] = c[2].mul_add(x[2], p[2]);
        p[3] = c[3].mul_add(x[3], p[3]);
    }
    for (k, (c, x)) in c4.remainder().iter().zip(x4.remainder()).enumerate() {
        p[k] = c.mul_add(*x, p[k]);
    }
    (p[0] + p[1]) + (p[2] + p[3])
}

/// Left-looking supernodal numeric factorization of `ap = P A Pᵀ` over a
/// prebuilt plan. Writes pivots into `d` (length `n`) and panels into
/// `fac.px`; pivot policy semantics (NaN check first, then floor or
/// strict error, indices reported through `perm`) replicate the scalar
/// kernel exactly. Serial by design: the summation order is fixed, so
/// fresh-vs-refactor results are bit-identical at any thread count.
pub(crate) fn refactor_numeric(
    ap: &CsrMat,
    perm: &[usize],
    pivot_floor: Option<f64>,
    d: &mut [f64],
    fac: &mut SupernodalFactor,
    diag: &mut FactorDiagnostics,
) -> Result<(), FactorError> {
    let plan = fac.plan.clone();
    let p = &*plan;
    let n = p.n;
    debug_assert_eq!(d.len(), n);
    let nsup = p.nsup();
    fac.px.clear();
    fac.px.resize(p.panel_values(), 0.0);
    fac.flops = 0;
    let px = &mut fac.px;
    let mut flops = 0u64;

    // Per-supernode descendant lists: head/next form intrusive linked
    // lists of descendants whose next unapplied below-rows start in the
    // list owner's columns; dptr[d] is that position in d's row list.
    let mut head = vec![usize::MAX; nsup];
    let mut next = vec![usize::MAX; nsup];
    let mut dptr = vec![0usize; nsup];
    // Global row → local panel row of the supernode being assembled.
    let mut row_pos = vec![usize::MAX; n];
    // Trapezoidal update buffer (largest descendant contribution).
    let mut ubuf = vec![0.0f64; p.max_below * p.max_width];

    for s in 0..nsup {
        let c0 = p.sn_ptr[s];
        let c1 = p.sn_ptr[s + 1];
        let w = c1 - c0;
        let rs = &p.rows[p.rows_ptr[s]..p.rows_ptr[s + 1]];
        let b = rs.len();
        let nrow = w + b;
        // Panels of descendants live strictly left of panel s.
        let (done, rest) = px.split_at_mut(p.panel_ptr[s]);
        let panel = &mut rest[..nrow * w];

        for t in 0..w {
            row_pos[c0 + t] = t;
        }
        for (r, &gi) in rs.iter().enumerate() {
            row_pos[gi] = w + r;
        }

        // Scatter the lower triangle of A's columns c0..c1 (row_iter of a
        // numerically symmetric matrix yields column entries).
        for j in c0..c1 {
            let jb = (j - c0) * nrow;
            for (i, v) in ap.row_iter(j) {
                if i < j {
                    continue;
                }
                debug_assert!(row_pos[i] != usize::MAX, "A entry outside panel rows");
                panel[jb + row_pos[i]] = v;
            }
        }

        // Apply every descendant with pending rows in [c0, c1).
        let mut dn = head[s];
        while dn != usize::MAX {
            let dn_next = next[dn];
            let dc0 = p.sn_ptr[dn];
            let dw = p.sn_ptr[dn + 1] - dc0;
            let dr = &p.rows[p.rows_ptr[dn]..p.rows_ptr[dn + 1]];
            let db = dr.len();
            let dld = dw + db;
            let k1 = dptr[dn];
            let k2 = k1 + dr[k1..].partition_point(|&r| r < c1);
            let nc = k2 - k1;
            let m = db - k1;
            debug_assert!(nc >= 1 && nc <= m);
            let dpanel = &done[p.panel_ptr[dn]..p.panel_ptr[dn + 1]];
            ldl_update_trapezoid(
                dpanel,
                dld,
                dw + k1,
                m,
                nc,
                dw,
                &d[dc0..dc0 + dw],
                &mut ubuf,
            );
            flops += 2 * (dw as u64) * ((nc * m - nc * (nc - 1) / 2) as u64);
            for c in 0..nc {
                let jcol = dr[k1 + c] - c0;
                debug_assert!(jcol < w);
                let jb = jcol * nrow;
                let cb = c * m;
                for r in c..m {
                    let lr = row_pos[dr[k1 + r]];
                    debug_assert!(lr != usize::MAX);
                    panel[jb + lr] -= ubuf[cb + r];
                }
            }
            dptr[dn] = k2;
            if k2 < db {
                let sn = p.col_to_sn[dr[k2]];
                debug_assert!(sn > s);
                next[dn] = head[sn];
                head[sn] = dn;
            }
            dn = dn_next;
        }
        head[s] = usize::MAX;

        // Dense left-looking LDLᵀ inside the panel.
        for jj in 0..w {
            let (left, cur) = panel.split_at_mut(jj * nrow);
            let colj = &mut cur[..nrow];
            for tt in 0..jj {
                let tb = tt * nrow;
                let coef = left[tb + jj] * d[c0 + tt];
                if coef == 0.0 {
                    // Padded slots are exact zeros; skipping them can only
                    // change the sign of a produced zero.
                    continue;
                }
                let colt = &left[tb..tb + nrow];
                for r in jj..nrow {
                    colj[r] -= coef * colt[r];
                }
            }
            flops += (2 * jj * (nrow - jj) + (nrow - jj)) as u64;
            let mut dj = colj[jj];
            if !dj.is_finite() {
                return Err(FactorError::NonFinitePivot {
                    step: c0 + jj,
                    index: perm[c0 + jj],
                    pivot: dj,
                });
            }
            match pivot_floor {
                Some(floor) if dj < floor => {
                    diag.perturbed.push(PerturbedPivot {
                        index: perm[c0 + jj],
                        original: dj,
                        replaced_with: floor,
                    });
                    dj = floor;
                }
                Some(_) => {}
                None => {
                    if dj <= 0.0 {
                        return Err(FactorError::NotPositiveDefinite {
                            step: c0 + jj,
                            index: perm[c0 + jj],
                            pivot: dj,
                        });
                    }
                }
            }
            d[c0 + jj] = dj;
            for r in jj + 1..nrow {
                colj[r] /= dj;
            }
        }

        // Seed this supernode into the list of whichever supernode owns
        // its first below-row.
        if b > 0 {
            dptr[s] = 0;
            let sn = p.col_to_sn[rs[0]];
            debug_assert!(sn > s);
            next[s] = head[sn];
            head[sn] = s;
        }
    }
    fac.flops = flops;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::{PivotPolicy, SparseCholesky, SymbolicCholesky};
    use crate::coo::TripletMat;
    use crate::ordering::Ordering;

    fn spd_random(n: usize, rng: &mut crate::XorShiftRng) -> CsrMat {
        let mut t = TripletMat::new(n, n);
        for _ in 0..3 * n {
            let i = rng.gen_index(n);
            let j = rng.gen_index(n);
            if i != j {
                t.stamp_conductance(Some(i), Some(j), rng.gen_range_f64(0.01, 10.0));
            }
        }
        for i in 0..n {
            t.push(i, i, rng.gen_range_f64(0.1, 5.0));
        }
        t.to_csr()
    }

    fn spd_grid(nx: usize, ny: usize) -> CsrMat {
        let n = nx * ny;
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMat::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    t.stamp_conductance(Some(id(x, y)), Some(id(x + 1, y)), 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(Some(id(x, y)), Some(id(x, y + 1)), 1.0);
                }
                t.push(id(x, y), id(x, y), 0.1);
            }
        }
        t.to_csr()
    }

    /// Supernode partition invariants on the analysis of real patterns:
    /// contiguous coverage, chain property, width cap, and the documented
    /// staged relaxation bound on explicit-zero padding.
    #[test]
    fn plan_partition_properties() {
        let mut rng = crate::XorShiftRng::seed_from_u64(0x5109);
        for trial in 0..6 {
            let a = if trial % 2 == 0 {
                spd_grid(8 + trial, 9)
            } else {
                spd_random(40 + 13 * trial, &mut rng)
            };
            let sym = SymbolicCholesky::analyze_with_kernel(
                &a,
                Ordering::NestedDissection,
                crate::cholesky::CholKernel::Supernodal,
            )
            .unwrap();
            let ranges = sym.supernode_col_ranges();
            assert!(!ranges.is_empty());
            let lnz = sym.column_counts();
            let parent = sym.etree();
            // Contiguous partition of all columns.
            let mut expect = 0usize;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, expect, "gap before supernode at {lo}");
                assert!(hi > lo);
                expect = hi;
            }
            assert_eq!(expect, a.nrows());
            for &(lo, hi) in &ranges {
                let w = hi - lo;
                assert!(w <= MAX_PANEL_COLS);
                // Every merged column extends an etree chain.
                for j in lo + 1..hi {
                    assert_eq!(parent[j - 1], j, "non-chain column {j} merged");
                }
                // Staged relaxation bound on padding.
                let last = hi - 1;
                let slots = w * (w - 1) / 2 + w * lnz[last];
                let sum: usize = (lo..hi).map(|j| lnz[j]).sum();
                assert!(slots >= sum, "nesting violated at supernode {lo}..{hi}");
                let z = slots - sum;
                assert!(
                    w <= RELAX_ALWAYS || (w <= RELAX_MID && 10 * z <= slots) || 20 * z <= slots,
                    "padding bound violated: w={w} z={z} slots={slots}"
                );
            }
        }
    }

    /// The panel representation must agree with the scalar kernel's
    /// factorization of the same matrix to fp-roundoff (solve-level
    /// comparison; summation orders differ between kernels).
    #[test]
    fn supernodal_factor_matches_scalar_solutions() {
        let mut rng = crate::XorShiftRng::seed_from_u64(0x51f2);
        for trial in 0..4 {
            let a = if trial % 2 == 0 {
                spd_grid(10, 7 + trial)
            } else {
                spd_random(60 + 11 * trial, &mut rng)
            };
            let n = a.nrows();
            let b: Vec<f64> = (0..n).map(|i| ((i * 3 + trial) as f64).sin()).collect();
            let fs = SparseCholesky::factor_analyzed_with_kernel(
                &a,
                Ordering::NestedDissection,
                PivotPolicy::Error,
                crate::cholesky::CholKernel::Scalar,
            )
            .unwrap()
            .0;
            let fp = SparseCholesky::factor_analyzed_with_kernel(
                &a,
                Ordering::NestedDissection,
                PivotPolicy::Error,
                crate::cholesky::CholKernel::Supernodal,
            )
            .unwrap()
            .0;
            assert!(fp.is_supernodal() && !fs.is_supernodal());
            assert_eq!(fs.l_nnz(), fp.l_nnz(), "structural fill must agree");
            assert!(fp.supernode_count() > 0);
            assert!(fp.panel_flops() > 0);
            let xs = fs.solve(&b);
            let xp = fp.solve(&b);
            for i in 0..n {
                assert!(
                    (xs[i] - xp[i]).abs() <= 1e-9 * xs[i].abs().max(1.0),
                    "trial {trial} row {i}: scalar {} vs supernodal {}",
                    xs[i],
                    xp[i]
                );
            }
            // Both kernels share the same (postordered) permutation, so
            // the pivots agree to roundoff as well.
            assert_eq!(fs.permutation(), fp.permutation());
            for (ps, pp) in fs.pivots().iter().zip(fp.pivots()) {
                assert!((ps - pp).abs() <= 1e-9 * ps.abs());
            }
        }
    }
}
