//! A unified lifecycle over the two sparse factorizations.
//!
//! PACT's reduction paths need the same four-step lifecycle from both the
//! SPD Cholesky factorization (congruence transforms, flat/hier/matrix-free
//! reduction) and the threshold-pivoting LU (AC sweeps, transient solves):
//! *analyze* a sparsity pattern once, *factor* numerically, *refactor*
//! cheaply when only values changed, and *solve* single or blocked
//! right-hand sides. [`Factorization`] names that lifecycle so generic
//! harnesses (session caches, benches, equivalence tests) can be written
//! once and instantiated for either decomposition.
//!
//! The trait deliberately exposes the *default-configuration* entry points
//! only: ordering choices, pivot policies, and pivot thresholds stay on the
//! inherent APIs ([`SparseCholesky::factor_diagnosed`],
//! [`SparseLu::factor_analyzed_with_threshold`], …) where their types can
//! differ. Refactoring through the trait is bit-identical to fresh
//! factorization for both implementations, which is the property the
//! reduction session relies on.

use crate::cholesky::{FactorError, PivotPolicy, SparseCholesky, SymbolicCholesky};
use crate::complex::Scalar;
use crate::csr::CsrMat;
use crate::ordering::Ordering;
use crate::splu::{CscMat, RefactorError, SparseLu, SparseLuError, SymbolicLu};

/// Analyze → factor → refactor → solve, abstracted over the concrete
/// decomposition.
///
/// Implemented by [`SparseCholesky`] (SPD, `LDLᵀ`, CSR input) and
/// [`SparseLu`] (threshold partial pivoting, CSC input, real or complex).
pub trait Factorization: Sized {
    /// Element type of right-hand sides and solutions.
    type Scalar: Copy;
    /// Matrix type consumed by the factorization.
    type Matrix;
    /// Reusable value-free analysis of a sparsity pattern.
    type Symbolic: Clone;
    /// Failure of a fresh factorization.
    type FactorError: std::error::Error;
    /// Failure of a numeric-only refactorization.
    type RefactorError: std::error::Error;

    /// Factors `a` under the implementation's default configuration and
    /// returns the factor together with its reusable symbolic analysis.
    ///
    /// # Errors
    ///
    /// The implementation's factorization error (singular / not positive
    /// definite / not square input).
    fn factor_analyzed(a: &Self::Matrix) -> Result<(Self, Self::Symbolic), Self::FactorError>;

    /// Whether `a` has the sparsity pattern `sym` was analyzed from.
    fn symbolic_matches(sym: &Self::Symbolic, a: &Self::Matrix) -> bool;

    /// Numeric-only factorization of `a` through a previous analysis;
    /// bit-identical to the fresh factorization of the same values.
    ///
    /// # Errors
    ///
    /// The implementation's refactorization error (structure mismatch or
    /// pivot failure).
    fn refactor(sym: &Self::Symbolic, a: &Self::Matrix) -> Result<Self, Self::RefactorError>;

    /// Allocation-reusing [`Factorization::refactor`] into an existing
    /// factor.
    ///
    /// # Errors
    ///
    /// Same as [`Factorization::refactor`]; `out` is unspecified but
    /// safe to reuse on error.
    fn refactor_into(
        sym: &Self::Symbolic,
        a: &Self::Matrix,
        out: &mut Self,
    ) -> Result<(), Self::RefactorError>;

    /// Matrix dimension.
    fn dim(&self) -> usize;

    /// Stored nonzeros of the factor (fill measure).
    fn factor_nnz(&self) -> usize;

    /// Modelled memory footprint of the factor in bytes.
    fn memory_bytes(&self) -> usize;

    /// Solves `A x = b`.
    fn solve(&self, b: &[Self::Scalar]) -> Vec<Self::Scalar>;

    /// Solves `A X = B` for `k` right-hand sides stored column-major in
    /// `b` (`b[c * n + i]` = RHS `c` at row `i`). Per right-hand side the
    /// result is bitwise the scalar [`Factorization::solve`] answer.
    fn solve_block(&self, b: &[Self::Scalar], k: usize) -> Vec<Self::Scalar>;
}

impl Factorization for SparseCholesky {
    type Scalar = f64;
    type Matrix = CsrMat;
    type Symbolic = SymbolicCholesky;
    type FactorError = FactorError;
    type RefactorError = FactorError;

    fn factor_analyzed(a: &CsrMat) -> Result<(Self, SymbolicCholesky), FactorError> {
        let (factor, _diag, sym) =
            SparseCholesky::factor_analyzed(a, Ordering::default(), PivotPolicy::Error)?;
        Ok((factor, sym))
    }

    fn symbolic_matches(sym: &SymbolicCholesky, a: &CsrMat) -> bool {
        sym.matches(a)
    }

    fn refactor(sym: &SymbolicCholesky, a: &CsrMat) -> Result<Self, FactorError> {
        sym.refactor(a, PivotPolicy::Error).map(|(f, _)| f)
    }

    fn refactor_into(
        sym: &SymbolicCholesky,
        a: &CsrMat,
        out: &mut Self,
    ) -> Result<(), FactorError> {
        sym.refactor_into(a, PivotPolicy::Error, out).map(|_| ())
    }

    fn dim(&self) -> usize {
        self.n()
    }

    fn factor_nnz(&self) -> usize {
        self.l_nnz()
    }

    fn memory_bytes(&self) -> usize {
        SparseCholesky::memory_bytes(self)
    }

    fn solve(&self, b: &[f64]) -> Vec<f64> {
        SparseCholesky::solve(self, b)
    }

    fn solve_block(&self, b: &[f64], k: usize) -> Vec<f64> {
        SparseCholesky::solve_block(self, b, k)
    }
}

impl<S: Scalar> Factorization for SparseLu<S> {
    type Scalar = S;
    type Matrix = CscMat<S>;
    type Symbolic = SymbolicLu;
    type FactorError = SparseLuError;
    type RefactorError = RefactorError;

    fn factor_analyzed(a: &CscMat<S>) -> Result<(Self, SymbolicLu), SparseLuError> {
        SparseLu::factor_analyzed(a)
    }

    fn symbolic_matches(sym: &SymbolicLu, a: &CscMat<S>) -> bool {
        sym.matches(a)
    }

    fn refactor(sym: &SymbolicLu, a: &CscMat<S>) -> Result<Self, RefactorError> {
        sym.refactor(a)
    }

    fn refactor_into(sym: &SymbolicLu, a: &CscMat<S>, out: &mut Self) -> Result<(), RefactorError> {
        sym.refactor_into(a, out)
    }

    fn dim(&self) -> usize {
        self.n()
    }

    fn factor_nnz(&self) -> usize {
        SparseLu::factor_nnz(self)
    }

    fn memory_bytes(&self) -> usize {
        SparseLu::memory_bytes(self)
    }

    fn solve(&self, b: &[S]) -> Vec<S> {
        SparseLu::solve(self, b)
    }

    fn solve_block(&self, b: &[S], k: usize) -> Vec<S> {
        assert_eq!(b.len(), self.n() * k);
        let mut xs = b.to_vec();
        let mut scratch = Vec::new();
        self.solve_block_in_place(&mut xs, &mut scratch);
        xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMat;

    /// A small SPD pentadiagonal test matrix as symmetric triplets.
    fn spd_triplets(n: usize) -> Vec<(usize, usize, f64)> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + (i % 3) as f64));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
            if i + 2 < n {
                t.push((i, i + 2, -0.5));
                t.push((i + 2, i, -0.5));
            }
        }
        t
    }

    /// The generic lifecycle exercised once per implementation: factor,
    /// solve, refactor scaled values (same pattern), solve again, and
    /// check both the residuals and the refactor-vs-fresh bit identity.
    fn lifecycle<F>(a1: &F::Matrix, a2: &F::Matrix, b: &[F::Scalar], check: impl Fn(&F, &F))
    where
        F: Factorization,
        F::Scalar: std::fmt::Debug,
    {
        let (f1, sym) = F::factor_analyzed(a1).expect("factor");
        assert!(F::symbolic_matches(&sym, a1));
        assert!(F::symbolic_matches(&sym, a2));
        assert_eq!(f1.dim(), b.len());
        assert!(f1.factor_nnz() > 0);
        assert!(f1.memory_bytes() > 0);

        let refat = F::refactor(&sym, a2).expect("refactor");
        let (fresh, _) = F::factor_analyzed(a2).expect("fresh factor");
        check(&refat, &fresh);

        let mut reused = f1;
        F::refactor_into(&sym, a2, &mut reused).expect("refactor_into");
        check(&reused, &fresh);

        // Blocked solve must match k scalar solves bitwise.
        let n = b.len();
        let mut rhs = Vec::with_capacity(2 * n);
        rhs.extend_from_slice(b);
        rhs.extend_from_slice(b);
        let blocked = fresh.solve_block(&rhs, 2);
        let single = fresh.solve(b);
        for c in 0..2 {
            for i in 0..n {
                let got: F::Scalar = blocked[c * n + i];
                let want: F::Scalar = single[i];
                // Compare through the debug representation to stay
                // generic over real and complex scalars.
                assert_eq!(format!("{got:?}"), format!("{want:?}"));
            }
        }
    }

    #[test]
    fn cholesky_lifecycle_through_trait() {
        let n = 24;
        let mut t = TripletMat::new(n, n);
        for (i, j, v) in spd_triplets(n) {
            t.push(i, j, v);
        }
        let a1 = t.to_csr();
        let mut t2 = TripletMat::new(n, n);
        for (i, j, v) in spd_triplets(n) {
            t2.push(i, j, v * 1.5);
        }
        let a2 = t2.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        lifecycle::<SparseCholesky>(&a1, &a2, &b, |x, y| {
            assert_eq!(x.pivots(), y.pivots());
            assert_eq!(x.permutation(), y.permutation());
        });
    }

    #[test]
    fn lu_lifecycle_through_trait() {
        let n = 24;
        let a1 = CscMat::from_triplets(n, n, &spd_triplets(n));
        let scaled: Vec<(usize, usize, f64)> = spd_triplets(n)
            .into_iter()
            .map(|(i, j, v)| (i, j, v * 1.5))
            .collect();
        let a2 = CscMat::from_triplets(n, n, &scaled);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos() + 2.0).collect();
        lifecycle::<SparseLu<f64>>(&a1, &a2, &b, |x, y| {
            assert_eq!(x.l_values(), y.l_values());
            assert_eq!(x.u_values(), y.u_values());
        });
    }
}
