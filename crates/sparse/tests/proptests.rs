//! Property-based tests of the linear-algebra kernels against each other
//! and against mathematical invariants: the factorizations must agree
//! with the dense oracle, eigendecompositions must reconstruct, and the
//! sparse structures must round-trip.

use proptest::prelude::*;

use pact_sparse::{
    eig_tridiagonal, sym_eig, CscMat, CsrMat, DMat, DenseLu, Ordering, SparseCholesky, SparseLu,
    TripletMat,
};

/// Strategy: a random symmetric positive-definite matrix, built as a
/// Laplacian plus positive diagonal from random edges.
fn spd_matrix(n: usize) -> impl Strategy<Value = CsrMat> {
    let edges = proptest::collection::vec(((0..n), (0..n), 0.01f64..10.0), 1..4 * n);
    let diag = proptest::collection::vec(0.1f64..5.0, n);
    (edges, diag).prop_map(move |(edges, diag)| {
        let mut t = TripletMat::new(n, n);
        for (a, b, g) in edges {
            if a != b {
                t.stamp_conductance(Some(a), Some(b), g);
            }
        }
        for (i, d) in diag.into_iter().enumerate() {
            t.push(i, i, d);
        }
        t.to_csr()
    })
}

/// Strategy: a random well-conditioned unsymmetric matrix (diagonally
/// dominated) as triplets.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    let offdiag = proptest::collection::vec(((0..n), (0..n), -1.0f64..1.0), 0..4 * n);
    let diag = proptest::collection::vec(5.0f64..20.0, n);
    (offdiag, diag).prop_map(move |(off, diag)| {
        let mut trips: Vec<(usize, usize, f64)> = off
            .into_iter()
            .filter(|&(a, b, _)| a != b)
            .collect();
        for (i, d) in diag.into_iter().enumerate() {
            trips.push((i, i, d));
        }
        trips
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cholesky_solve_matches_dense_lu(a in spd_matrix(12), b in proptest::collection::vec(-5.0f64..5.0, 12)) {
        let chol = SparseCholesky::factor(&a, Ordering::Rcm).unwrap();
        let x_sparse = chol.solve(&b);
        let lu = DenseLu::factor(&a.to_dense()).unwrap();
        let x_dense = lu.solve(&b);
        for (u, v) in x_sparse.iter().zip(&x_dense) {
            prop_assert!((u - v).abs() < 1e-8 * v.abs().max(1.0));
        }
    }

    #[test]
    fn cholesky_orderings_agree(a in spd_matrix(10), b in proptest::collection::vec(-1.0f64..1.0, 10)) {
        let x1 = SparseCholesky::factor(&a, Ordering::Natural).unwrap().solve(&b);
        let x2 = SparseCholesky::factor(&a, Ordering::Rcm).unwrap().solve(&b);
        let x3 = SparseCholesky::factor(&a, Ordering::MinDegree).unwrap().solve(&b);
        for i in 0..10 {
            prop_assert!((x1[i] - x2[i]).abs() < 1e-8 * x1[i].abs().max(1.0));
            prop_assert!((x1[i] - x3[i]).abs() < 1e-8 * x1[i].abs().max(1.0));
        }
    }

    #[test]
    fn sparse_lu_residual_small(trips in dominant_matrix(15), b in proptest::collection::vec(-3.0f64..3.0, 15)) {
        let a = CscMat::from_triplets(15, 15, &trips);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-9, "residual {}", (ri - bi).abs());
        }
    }

    #[test]
    fn sym_eig_reconstructs(a in spd_matrix(9)) {
        let d = a.to_dense();
        let e = sym_eig(&d).unwrap();
        // Eigenvalues of an SPD matrix are positive.
        for &v in &e.values {
            prop_assert!(v > -1e-10);
        }
        // Reconstruction A = ZΛZᵀ.
        let lam = DMat::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        prop_assert!((&rec - &d).norm_max() < 1e-9 * d.norm_max().max(1.0));
    }

    #[test]
    fn eig_tridiagonal_matches_full(d in proptest::collection::vec(-3.0f64..3.0, 6),
                                    e in proptest::collection::vec(-2.0f64..2.0, 5)) {
        let (vals, vecs) = eig_tridiagonal(&d, &e, true).unwrap();
        let mut a = DMat::zeros(6, 6);
        for i in 0..6 {
            a[(i, i)] = d[i];
        }
        for i in 0..5 {
            a[(i, i + 1)] = e[i];
            a[(i + 1, i)] = e[i];
        }
        let oracle = sym_eig(&a).unwrap();
        for (u, v) in vals.iter().zip(&oracle.values) {
            prop_assert!((u - v).abs() < 1e-9);
        }
        // Residual of each pair.
        for k in 0..6 {
            let zk: Vec<f64> = (0..6).map(|i| vecs[(i, k)]).collect();
            let az = a.matvec(&zk);
            for i in 0..6 {
                prop_assert!((az[i] - vals[k] * zk[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn csr_transpose_involution(a in spd_matrix(8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn csr_matvec_linear(a in spd_matrix(8),
                         x in proptest::collection::vec(-2.0f64..2.0, 8),
                         y in proptest::collection::vec(-2.0f64..2.0, 8),
                         alpha in -3.0f64..3.0) {
        // A(αx + y) = αAx + Ay
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(a_, b_)| alpha * a_ + b_).collect();
        let lhs = a.matvec(&mixed);
        let ax = a.matvec(&x);
        let ay = a.matvec(&y);
        for i in 0..8 {
            prop_assert!((lhs[i] - (alpha * ax[i] + ay[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn permute_sym_preserves_spectrum(a in spd_matrix(7)) {
        let perm = Ordering::Rcm.permutation(&a);
        let pap = a.permute_sym(&perm);
        let e1 = sym_eig(&a.to_dense()).unwrap();
        let e2 = sym_eig(&pap.to_dense()).unwrap();
        for (u, v) in e1.values.iter().zip(&e2.values) {
            prop_assert!((u - v).abs() < 1e-9 * u.abs().max(1.0));
        }
    }

    #[test]
    fn log_det_consistent_with_lu(a in spd_matrix(8)) {
        let chol = SparseCholesky::factor(&a, Ordering::MinDegree).unwrap();
        let lu = DenseLu::factor(&a.to_dense()).unwrap();
        let det = lu.det();
        prop_assume!(det > 0.0);
        prop_assert!((chol.log_det() - det.ln()).abs() < 1e-7 * det.ln().abs().max(1.0));
    }
}
