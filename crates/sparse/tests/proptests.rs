//! Randomized property tests of the linear-algebra kernels against each
//! other and against mathematical invariants: the factorizations must
//! agree with the dense oracle, eigendecompositions must reconstruct, and
//! the sparse structures must round-trip.
//!
//! Each property sweeps a deterministic set of [`XorShiftRng`] seeds, so
//! failures reproduce exactly. The default sweep is small enough for the
//! tier-1 suite; the `slow-tests` feature widens it.

use pact_sparse::{
    eig_tridiagonal, sym_eig, CscMat, CsrMat, DMat, DenseLu, Ordering, SparseCholesky, SparseLu,
    TripletMat, XorShiftRng,
};

#[cfg(feature = "slow-tests")]
const CASES: u64 = 64;
#[cfg(not(feature = "slow-tests"))]
const CASES: u64 = 12;

fn seeds() -> impl Iterator<Item = u64> {
    (0..CASES).map(|k| 0x5ca1e * 1000 + k)
}

/// A random symmetric positive-definite matrix, built as a Laplacian plus
/// positive diagonal from random edges.
fn spd_matrix(n: usize, rng: &mut XorShiftRng) -> CsrMat {
    let mut t = TripletMat::new(n, n);
    let edges = 1 + rng.gen_index(4 * n);
    for _ in 0..edges {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        if a != b {
            t.stamp_conductance(Some(a), Some(b), rng.gen_range_f64(0.01, 10.0));
        }
    }
    for i in 0..n {
        t.push(i, i, rng.gen_range_f64(0.1, 5.0));
    }
    t.to_csr()
}

/// A random well-conditioned unsymmetric matrix (diagonally dominated)
/// as triplets.
fn dominant_matrix(n: usize, rng: &mut XorShiftRng) -> Vec<(usize, usize, f64)> {
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    let off = rng.gen_index(4 * n);
    for _ in 0..off {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        if a != b {
            trips.push((a, b, rng.gen_range_f64(-1.0, 1.0)));
        }
    }
    for i in 0..n {
        trips.push((i, i, rng.gen_range_f64(5.0, 20.0)));
    }
    trips
}

fn random_vec(n: usize, lo: f64, hi: f64, rng: &mut XorShiftRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range_f64(lo, hi)).collect()
}

#[test]
fn cholesky_solve_matches_dense_lu() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let a = spd_matrix(12, &mut rng);
        let b = random_vec(12, -5.0, 5.0, &mut rng);
        let chol = SparseCholesky::factor(&a, Ordering::Rcm).unwrap();
        let x_sparse = chol.solve(&b);
        let lu = DenseLu::factor(&a.to_dense()).unwrap();
        let x_dense = lu.solve(&b);
        for (u, v) in x_sparse.iter().zip(&x_dense) {
            assert!(
                (u - v).abs() < 1e-8 * v.abs().max(1.0),
                "seed {seed}: {u} vs {v}"
            );
        }
    }
}

#[test]
fn cholesky_orderings_agree() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let a = spd_matrix(10, &mut rng);
        let b = random_vec(10, -1.0, 1.0, &mut rng);
        let x1 = SparseCholesky::factor(&a, Ordering::Natural)
            .unwrap()
            .solve(&b);
        let x2 = SparseCholesky::factor(&a, Ordering::Rcm).unwrap().solve(&b);
        let x3 = SparseCholesky::factor(&a, Ordering::MinDegree)
            .unwrap()
            .solve(&b);
        for i in 0..10 {
            assert!(
                (x1[i] - x2[i]).abs() < 1e-8 * x1[i].abs().max(1.0),
                "seed {seed}"
            );
            assert!(
                (x1[i] - x3[i]).abs() < 1e-8 * x1[i].abs().max(1.0),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn sparse_lu_residual_small() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let trips = dominant_matrix(15, &mut rng);
        let b = random_vec(15, -3.0, 3.0, &mut rng);
        let a = CscMat::from_triplets(15, 15, &trips);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!(
                (ri - bi).abs() < 1e-9,
                "seed {seed}: residual {}",
                (ri - bi).abs()
            );
        }
    }
}

#[test]
fn sym_eig_reconstructs() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let a = spd_matrix(9, &mut rng);
        let d = a.to_dense();
        let e = sym_eig(&d).unwrap();
        // Eigenvalues of an SPD matrix are positive.
        for &v in &e.values {
            assert!(v > -1e-10, "seed {seed}");
        }
        // Reconstruction A = ZΛZᵀ.
        let lam = DMat::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(
            (&rec - &d).norm_max() < 1e-9 * d.norm_max().max(1.0),
            "seed {seed}"
        );
    }
}

#[test]
fn eig_tridiagonal_matches_full() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let d = random_vec(6, -3.0, 3.0, &mut rng);
        let e = random_vec(5, -2.0, 2.0, &mut rng);
        let (vals, vecs) = eig_tridiagonal(&d, &e, true).unwrap();
        let mut a = DMat::zeros(6, 6);
        for i in 0..6 {
            a[(i, i)] = d[i];
        }
        for i in 0..5 {
            a[(i, i + 1)] = e[i];
            a[(i + 1, i)] = e[i];
        }
        let oracle = sym_eig(&a).unwrap();
        for (u, v) in vals.iter().zip(&oracle.values) {
            assert!((u - v).abs() < 1e-9, "seed {seed}: {u} vs {v}");
        }
        // Residual of each pair.
        for k in 0..6 {
            let zk: Vec<f64> = (0..6).map(|i| vecs[(i, k)]).collect();
            let az = a.matvec(&zk);
            for i in 0..6 {
                assert!((az[i] - vals[k] * zk[i]).abs() < 1e-8, "seed {seed}");
            }
        }
    }
}

#[test]
fn csr_transpose_involution() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let a = spd_matrix(8, &mut rng);
        assert_eq!(a.transpose().transpose(), a, "seed {seed}");
    }
}

#[test]
fn csr_matvec_linear() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let a = spd_matrix(8, &mut rng);
        let x = random_vec(8, -2.0, 2.0, &mut rng);
        let y = random_vec(8, -2.0, 2.0, &mut rng);
        let alpha = rng.gen_range_f64(-3.0, 3.0);
        // A(αx + y) = αAx + Ay
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(a_, b_)| alpha * a_ + b_).collect();
        let lhs = a.matvec(&mixed);
        let ax = a.matvec(&x);
        let ay = a.matvec(&y);
        for i in 0..8 {
            assert!(
                (lhs[i] - (alpha * ax[i] + ay[i])).abs() < 1e-10,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn permute_sym_preserves_spectrum() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let a = spd_matrix(7, &mut rng);
        let perm = Ordering::Rcm.permutation(&a);
        let pap = a.permute_sym(&perm);
        let e1 = sym_eig(&a.to_dense()).unwrap();
        let e2 = sym_eig(&pap.to_dense()).unwrap();
        for (u, v) in e1.values.iter().zip(&e2.values) {
            assert!((u - v).abs() < 1e-9 * u.abs().max(1.0), "seed {seed}");
        }
    }
}

#[test]
fn log_det_consistent_with_lu() {
    for seed in seeds() {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let a = spd_matrix(8, &mut rng);
        let chol = SparseCholesky::factor(&a, Ordering::MinDegree).unwrap();
        let lu = DenseLu::factor(&a.to_dense()).unwrap();
        let det = lu.det();
        if det <= 0.0 {
            continue;
        }
        assert!(
            (chol.log_det() - det.ln()).abs() < 1e-7 * det.ln().abs().max(1.0),
            "seed {seed}"
        );
    }
}
