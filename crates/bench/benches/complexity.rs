//! Section-4 complexity bench: PACT vs the block-Krylov Padé baseline as
//! the port count grows, on a fixed-size substrate mesh. Complements the
//! `section4_complexity` binary with statistically sampled timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pact::{CutoffSpec, EigenStrategy, ReduceOptions};
use pact_baselines::block_krylov_reduce;
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_sparse::Ordering;

fn bench_ports_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity_ports_sweep");
    group.sample_size(10);
    for &m in &[8usize, 24, 64] {
        let spec = MeshSpec {
            nx: 16,
            ny: 16,
            nz: 4,
            num_contacts: m,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let parts = pact::Partitions::split(&net.stamp());
        let ports: Vec<String> = net.node_names[..net.num_ports].to_vec();

        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(1e9, 0.05).expect("spec"),
            eigen: EigenStrategy::Laso(LanczosConfig::default()),
            ordering: Ordering::Rcm,
            dense_threshold: 0,
        };
        group.bench_with_input(BenchmarkId::new("pact", m), &net, |b, n| {
            b.iter(|| pact::reduce_network(n, &opts).expect("pact"));
        });
        group.bench_with_input(BenchmarkId::new("pade_block", m), &parts, |b, p| {
            b.iter(|| block_krylov_reduce(p, &ports, 2, Ordering::Rcm).expect("krylov"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ports_sweep);
criterion_main!(benches);
