//! Section-4 complexity bench: PACT vs the block-Krylov Padé baseline as
//! the port count grows, on a fixed-size substrate mesh. Complements the
//! `section4_complexity` binary with repeated-sample timings.
//!
//! Plain `main()` harness (no external bench framework); run with
//! `cargo bench -p pact-bench --bench complexity`.

use pact::{CutoffSpec, EigenSelect, ReduceOptions};
use pact_baselines::block_krylov_reduce;
use pact_bench::{min_median, print_table, sample_secs, secs};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_sparse::Ordering;

const SAMPLES: usize = 10;

fn main() {
    let mut rows = Vec::new();
    for &m in &[8usize, 24, 64] {
        let spec = MeshSpec {
            nx: 16,
            ny: 16,
            nz: 4,
            num_contacts: m,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let parts = pact::Partitions::split(&net.stamp());
        let ports: Vec<String> = net.node_names[..net.num_ports].to_vec();

        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(1e9, 0.05).expect("spec"),
            eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
            ordering: Ordering::Rcm,
            dense_threshold: 0,
            threads: None,
            pivot_relief: None,
            strategy: pact::ReduceStrategy::Flat,
            expansion_points: None,
            chol_kernel: pact::CholKernel::Auto,
        };
        let s = sample_secs(SAMPLES, || pact::reduce_network(&net, &opts).expect("pact"));
        let (min, med) = min_median(&s);
        rows.push(vec![format!("pact/m_{m}"), secs(min), secs(med)]);

        let s = sample_secs(SAMPLES, || {
            block_krylov_reduce(&parts, &ports, 2, Ordering::Rcm).expect("krylov")
        });
        let (min, med) = min_median(&s);
        rows.push(vec![format!("pade_block/m_{m}"), secs(min), secs(med)]);
    }
    print_table(
        "Complexity: port sweep",
        &["case", "min (s)", "median (s)"],
        &rows,
    );
}
