//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! Lanczos orthogonalization policy, Cholesky ordering, dense vs LASO
//! pole analysis, and the sparsification heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pact::{CutoffSpec, EigenStrategy, ReduceOptions, Transform1};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::{eigs_above, LanczosConfig, Reorthogonalization};
use pact_netlist::sparsify_preserving_passivity;
use pact_sparse::{Ordering, SparseCholesky};

fn mesh(nx: usize, ny: usize, nz: usize, m: usize) -> pact_netlist::RcNetwork {
    substrate_mesh(&MeshSpec {
        nx,
        ny,
        nz,
        num_contacts: m,
        ..MeshSpec::table2()
    })
}

fn bench_reorthogonalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reorth");
    group.sample_size(10);
    let net = mesh(12, 12, 5, 16);
    let parts = pact::Partitions::split(&net.stamp());
    let t1 = Transform1::compute(&parts, Ordering::Rcm).expect("t1");
    let lambda_c = CutoffSpec::new(1e9, 0.05).expect("spec").lambda_c();
    for reorth in [
        Reorthogonalization::None,
        Reorthogonalization::Selective,
        Reorthogonalization::Full,
    ] {
        let cfg = LanczosConfig {
            reorth,
            ..LanczosConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{reorth:?}")),
            &cfg,
            |b, cfg| {
                let op = t1.e_prime_operator(&parts);
                b.iter(|| eigs_above(&op, lambda_c, cfg).expect("laso"));
            },
        );
    }
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ordering");
    group.sample_size(10);
    let net = mesh(12, 12, 6, 16);
    let parts = pact::Partitions::split(&net.stamp());
    for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree, Ordering::NestedDissection] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ord:?}")),
            &ord,
            |b, &o| {
                b.iter(|| SparseCholesky::factor(&parts.d, o).expect("factor"));
            },
        );
    }
    group.finish();
}

fn bench_eigen_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dense_vs_laso");
    group.sample_size(10);
    let net = mesh(8, 8, 5, 12); // n ≈ 300: both strategies feasible
    for (label, eigen) in [
        ("dense", EigenStrategy::Dense),
        ("laso", EigenStrategy::Laso(LanczosConfig::default())),
    ] {
        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(1e9, 0.05).expect("spec"),
            eigen,
            ordering: Ordering::Rcm,
            dense_threshold: 0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, o| {
            b.iter(|| pact::reduce_network(&net, o).expect("reduce"));
        });
    }
    group.finish();
}

fn bench_sparsify(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sparsify");
    let net = mesh(12, 12, 5, 25);
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(3e9, 0.05).expect("spec"),
        eigen: EigenStrategy::Laso(LanczosConfig::default()),
        ordering: Ordering::Rcm,
        dense_threshold: 0,
    };
    let red = pact::reduce_network(&net, &opts).expect("reduce");
    let (g, _) = red.model.to_matrices_normalized();
    for &tol in &[0.0, 1e-9, 1e-6, 1e-3] {
        group.bench_with_input(BenchmarkId::from_parameter(tol), &tol, |b, &t| {
            b.iter(|| {
                let mut gg = g.clone();
                if t > 0.0 {
                    sparsify_preserving_passivity(&mut gg, t);
                }
                gg
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reorthogonalization,
    bench_ordering,
    bench_eigen_strategy,
    bench_sparsify
);
criterion_main!(benches);
