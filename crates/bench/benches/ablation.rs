//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! Lanczos orthogonalization policy, Cholesky ordering, dense vs LASO
//! pole analysis, and the sparsification heuristic.
//!
//! Plain `main()` harness (no external bench framework); run with
//! `cargo bench -p pact-bench --bench ablation`.

use pact::{CutoffSpec, EigenSelect, ReduceOptions, Transform1};
use pact_bench::{min_median, print_table, sample_secs, secs};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::{eigs_above, LanczosConfig, Reorthogonalization};
use pact_netlist::sparsify_preserving_passivity;
use pact_sparse::{Ordering, SparseCholesky};

const SAMPLES: usize = 10;

fn mesh(nx: usize, ny: usize, nz: usize, m: usize) -> pact_netlist::RcNetwork {
    substrate_mesh(&MeshSpec {
        nx,
        ny,
        nz,
        num_contacts: m,
        ..MeshSpec::table2()
    })
}

fn row(label: String, samples: &[f64]) -> Vec<String> {
    let (min, med) = min_median(samples);
    vec![label, secs(min), secs(med)]
}

fn bench_reorthogonalization(rows: &mut Vec<Vec<String>>) {
    let net = mesh(12, 12, 5, 16);
    let parts = pact::Partitions::split(&net.stamp());
    let t1 = Transform1::compute(&parts, Ordering::Rcm).expect("t1");
    let lambda_c = CutoffSpec::new(1e9, 0.05).expect("spec").lambda_c();
    let op = t1.e_prime_operator(&parts);
    for reorth in [
        Reorthogonalization::None,
        Reorthogonalization::Selective,
        Reorthogonalization::Full,
    ] {
        let cfg = LanczosConfig {
            reorth,
            ..LanczosConfig::default()
        };
        let s = sample_secs(SAMPLES, || eigs_above(&op, lambda_c, &cfg).expect("laso"));
        rows.push(row(format!("reorth/{reorth:?}"), &s));
    }
}

fn bench_ordering(rows: &mut Vec<Vec<String>>) {
    let net = mesh(12, 12, 6, 16);
    let parts = pact::Partitions::split(&net.stamp());
    for ord in [
        Ordering::Natural,
        Ordering::Rcm,
        Ordering::MinDegree,
        Ordering::NestedDissection,
    ] {
        let s = sample_secs(SAMPLES, || {
            SparseCholesky::factor(&parts.d, ord).expect("factor")
        });
        rows.push(row(format!("ordering/{ord:?}"), &s));
    }
}

fn bench_eigen_strategy(rows: &mut Vec<Vec<String>>) {
    let net = mesh(8, 8, 5, 12); // n ≈ 300: both strategies feasible
    for (label, eigen) in [
        ("dense", EigenSelect::LowRank),
        ("laso", EigenSelect::Lanczos(LanczosConfig::default())),
    ] {
        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(1e9, 0.05).expect("spec"),
            eigen_backend: eigen,
            ordering: Ordering::Rcm,
            dense_threshold: 0,
            threads: None,
            pivot_relief: None,
            strategy: pact::ReduceStrategy::Flat,
            expansion_points: None,
            chol_kernel: pact::CholKernel::Auto,
        };
        let s = sample_secs(SAMPLES, || {
            pact::reduce_network(&net, &opts).expect("reduce")
        });
        rows.push(row(format!("eigen/{label}"), &s));
    }
}

fn bench_sparsify(rows: &mut Vec<Vec<String>>) {
    let net = mesh(12, 12, 5, 25);
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(3e9, 0.05).expect("spec"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::Rcm,
        dense_threshold: 0,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let red = pact::reduce_network(&net, &opts).expect("reduce");
    let (g, _) = red.model.to_matrices_normalized();
    for &tol in &[0.0, 1e-9, 1e-6, 1e-3] {
        let s = sample_secs(SAMPLES, || {
            let mut gg = g.clone();
            if tol > 0.0 {
                sparsify_preserving_passivity(&mut gg, tol);
            }
            gg
        });
        rows.push(row(format!("sparsify/{tol:e}"), &s));
    }
}

fn main() {
    let mut rows = Vec::new();
    bench_reorthogonalization(&mut rows);
    bench_ordering(&mut rows);
    bench_eigen_strategy(&mut rows);
    bench_sparsify(&mut rows);
    print_table(
        "Ablation timings",
        &["case", "min (s)", "median (s)"],
        &rows,
    );
}
