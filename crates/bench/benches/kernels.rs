//! Timing bench for the numerical kernels underlying PACT: sparse
//! Cholesky factorization of `D`, LASO pole analysis, the first
//! congruence transform, and the end-to-end reduction.
//!
//! Plain `main()` harness (no external bench framework): each case runs a
//! warm-up pass plus a fixed number of timed iterations and reports
//! min/median wall-clock seconds.
//!
//! Run with `cargo bench -p pact-bench --bench kernels`.

use pact::{CutoffSpec, EigenSelect, Partitions, ReduceOptions, Transform1};
use pact_bench::{min_median, print_table, sample_secs, secs};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::{eigs_above, LanczosConfig};
use pact_sparse::{ldl_update_trapezoid, CholKernel, Ordering, PivotPolicy, SparseCholesky};

const SAMPLES: usize = 10;

fn mesh_parts(
    nx: usize,
    ny: usize,
    nz: usize,
    contacts: usize,
) -> (pact_netlist::RcNetwork, Partitions) {
    let spec = MeshSpec {
        nx,
        ny,
        nz,
        num_contacts: contacts,
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    let parts = Partitions::split(&net.stamp());
    (net, parts)
}

fn row(label: &str, samples: &[f64]) -> Vec<String> {
    let (min, med) = min_median(samples);
    vec![label.to_owned(), secs(min), secs(med)]
}

fn bench_cholesky(rows: &mut Vec<Vec<String>>) {
    for (label, dims) in [
        ("cholesky/mesh_500", (10, 10, 5)),
        ("cholesky/mesh_2k", (16, 16, 8)),
    ] {
        let (_, parts) = mesh_parts(dims.0, dims.1, dims.2, 16);
        // A/B the two numeric kernels over the same ordering: the
        // supernodal blocked panels vs the scalar up-looking reference.
        for kernel in [CholKernel::Supernodal, CholKernel::Scalar] {
            let s = sample_secs(SAMPLES, || {
                SparseCholesky::factor_analyzed_with_kernel(
                    &parts.d,
                    Ordering::Rcm,
                    PivotPolicy::Error,
                    kernel,
                )
                .expect("factor")
            });
            rows.push(row(&format!("{label}/{kernel:?}"), &s));
        }
    }
}

/// The supernodal hot loop in isolation: one trapezoidal panel-panel
/// update `out = L_panel · D · L_blockᵀ` at representative panel shapes
/// (descendant rows × supernode width), the cache-blocked kernel that
/// replaces the scalar dot-product inner loop.
fn bench_panel_update(rows: &mut Vec<Vec<String>>) {
    for (m, width) in [(64usize, 8usize), (256, 16), (1024, 32)] {
        let ld = m + width;
        let mut panel = vec![0.0f64; ld * width];
        for (i, v) in panel.iter_mut().enumerate() {
            *v = ((i % 97) as f64 - 48.0) * 1e-2;
        }
        let dvals: Vec<f64> = (0..width).map(|t| 1.0 + t as f64).collect();
        let nc = width.min(m);
        let mut out = vec![0.0f64; m * nc];
        let s = sample_secs(SAMPLES, || {
            ldl_update_trapezoid(&panel, ld, width, m, nc, width, &dvals, &mut out);
            out[0]
        });
        rows.push(row(&format!("panel_update/{m}x{width}"), &s));
    }
}

fn bench_transform1(rows: &mut Vec<Vec<String>>) {
    for &m in &[8usize, 32] {
        let (_, parts) = mesh_parts(14, 14, 5, m);
        let s = sample_secs(SAMPLES, || {
            Transform1::compute(&parts, Ordering::Rcm).expect("t1")
        });
        rows.push(row(&format!("transform1/ports_{m}"), &s));
    }
}

fn bench_laso(rows: &mut Vec<Vec<String>>) {
    let (_, parts) = mesh_parts(14, 14, 5, 16);
    let t1 = Transform1::compute(&parts, Ordering::Rcm).expect("t1");
    let lambda_c = CutoffSpec::new(1e9, 0.05).expect("spec").lambda_c();
    let op = t1.e_prime_operator(&parts);
    let s = sample_secs(SAMPLES, || {
        eigs_above(&op, lambda_c, &LanczosConfig::default()).expect("laso")
    });
    rows.push(row("laso/mesh_1k_cutoff_1GHz", &s));
}

fn bench_reduce(rows: &mut Vec<Vec<String>>) {
    for (label, dims) in [
        ("reduce/mesh_500", (10, 10, 5)),
        ("reduce/mesh_1k", (14, 14, 5)),
    ] {
        let spec = MeshSpec {
            nx: dims.0,
            ny: dims.1,
            nz: dims.2,
            num_contacts: 25,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(1e9, 0.05).expect("spec"),
            eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
            ordering: Ordering::Rcm,
            dense_threshold: 0,
            threads: None,
            pivot_relief: None,
            strategy: pact::ReduceStrategy::Flat,
            expansion_points: None,
            chol_kernel: pact::CholKernel::Auto,
        };
        let s = sample_secs(SAMPLES, || {
            pact::reduce_network(&net, &opts).expect("reduce")
        });
        rows.push(row(label, &s));
    }
}

fn main() {
    let mut rows = Vec::new();
    bench_cholesky(&mut rows);
    bench_panel_update(&mut rows);
    bench_transform1(&mut rows);
    bench_laso(&mut rows);
    bench_reduce(&mut rows);
    print_table("Kernel timings", &["case", "min (s)", "median (s)"], &rows);
}
