//! Criterion benches for the numerical kernels underlying PACT:
//! sparse Cholesky factorization of `D`, LASO pole analysis, the first
//! congruence transform, and the end-to-end reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pact::{CutoffSpec, EigenStrategy, Partitions, ReduceOptions, Transform1};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::{eigs_above, LanczosConfig};
use pact_sparse::{Ordering, SparseCholesky};

fn mesh_parts(
    nx: usize,
    ny: usize,
    nz: usize,
    contacts: usize,
) -> (pact_netlist::RcNetwork, Partitions) {
    let spec = MeshSpec {
        nx,
        ny,
        nz,
        num_contacts: contacts,
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    let parts = Partitions::split(&net.stamp());
    (net, parts)
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factor_D");
    group.sample_size(10);
    for (label, dims) in [("mesh_500", (10, 10, 5)), ("mesh_2k", (16, 16, 8))] {
        let (_, parts) = mesh_parts(dims.0, dims.1, dims.2, 16);
        group.bench_with_input(BenchmarkId::from_parameter(label), &parts, |b, p| {
            b.iter(|| SparseCholesky::factor(&p.d, Ordering::Rcm).expect("factor"));
        });
    }
    group.finish();
}

fn bench_transform1(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform1_moments");
    group.sample_size(10);
    for &m in &[8usize, 32] {
        let (_, parts) = mesh_parts(14, 14, 5, m);
        group.bench_with_input(BenchmarkId::new("ports", m), &parts, |b, p| {
            b.iter(|| Transform1::compute(p, Ordering::Rcm).expect("t1"));
        });
    }
    group.finish();
}

fn bench_laso(c: &mut Criterion) {
    let mut group = c.benchmark_group("laso_eigs_above");
    group.sample_size(10);
    let (_, parts) = mesh_parts(14, 14, 5, 16);
    let t1 = Transform1::compute(&parts, Ordering::Rcm).expect("t1");
    let lambda_c = CutoffSpec::new(1e9, 0.05).expect("spec").lambda_c();
    group.bench_function("mesh_1k_cutoff_1GHz", |b| {
        let op = t1.e_prime_operator(&parts);
        b.iter(|| eigs_above(&op, lambda_c, &LanczosConfig::default()).expect("laso"));
    });
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_end_to_end");
    group.sample_size(10);
    for (label, dims) in [("mesh_500", (10, 10, 5)), ("mesh_1k", (14, 14, 5))] {
        let spec = MeshSpec {
            nx: dims.0,
            ny: dims.1,
            nz: dims.2,
            num_contacts: 25,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(1e9, 0.05).expect("spec"),
            eigen: EigenStrategy::Laso(LanczosConfig::default()),
            ordering: Ordering::Rcm,
            dense_threshold: 0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &net, |b, n| {
            b.iter(|| pact::reduce_network(n, &opts).expect("reduce"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_transform1,
    bench_laso,
    bench_reduce
);
criterion_main!(benches);
