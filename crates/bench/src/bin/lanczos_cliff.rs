//! Probe for the Lanczos capacitor-scale cost cliff.
//!
//! Rescaling every capacitor in a deck by ±1% — a change with no
//! structural meaning, the kind a process-corner sweep applies — has
//! been observed to move the flat eigen phase by an order of magnitude
//! (~16× in the worst sighting): the scaling shifts where Ritz values
//! fall relative to the cutoff and to each other, and the restart
//! logic's path through the spectrum is chaotic in those gaps. The
//! effect is perf-only — models stay correct — but it poisons A/B
//! timing comparisons made across decks that differ only in cap scale.
//!
//! This bench times the eigen phase on a 16×16×4 substrate mesh at cap
//! scales {0.99, 0.995, 1.0, 1.005, 1.01} and reports the max/min
//! eigen-time ratio. Past [`WARN_RATIO`] it prints a `WARN` line — it
//! never fails: the cliff is a known sensitivity being *tracked*, not a
//! regression gate (chaotic-in-mesh-size timings cannot gate CI).
//!
//! ```text
//! cargo run --release -p pact-bench --bin lanczos_cliff
//! ```

use pact::{CutoffSpec, EigenSelect, ReduceOptions, ReduceStrategy};
use pact_bench::print_table;
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::RcNetwork;

/// Eigen-time spread (max/min over the cap-scale sweep) above which the
/// bench warns. 4× leaves room for host noise while still catching the
/// order-of-magnitude cliff.
const WARN_RATIO: f64 = 4.0;

const SCALES: [f64; 5] = [0.99, 0.995, 1.0, 1.005, 1.01];

fn cap_scaled(base: &RcNetwork, scale: f64) -> RcNetwork {
    let mut net = base.clone();
    for c in &mut net.capacitors {
        c.value *= scale;
    }
    net
}

fn eigen_seconds(net: &RcNetwork) -> (f64, u64) {
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(500e6, 0.10).expect("cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: pact_sparse::Ordering::NestedDissection,
        dense_threshold: 400,
        threads: Some(1),
        pivot_relief: None,
        strategy: ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let red = pact::reduce_network(net, &opts).expect("reduce");
    let eigen = red
        .telemetry
        .phases
        .iter()
        .find(|p| p.name == "eigen")
        .map_or(0.0, |p| p.seconds);
    (eigen, red.telemetry.counters.lanczos_matvecs)
}

fn main() {
    println!("# Lanczos eigen-phase sensitivity to capacitor scale");
    let base = substrate_mesh(&MeshSpec {
        nx: 16,
        ny: 16,
        nz: 4,
        num_contacts: 24,
        ..MeshSpec::table4()
    });
    println!(
        "mesh 16x16x4, 24 contacts, {} nodes; flat Lanczos, fmax 500 MHz",
        base.num_nodes()
    );

    let mut rows = Vec::new();
    let mut times = Vec::new();
    for &s in &SCALES {
        let net = cap_scaled(&base, s);
        // Min of two runs per scale: the phase under test is tens of
        // milliseconds, well inside 1-core scheduler noise.
        let (e1, mv) = eigen_seconds(&net);
        let (e2, _) = eigen_seconds(&net);
        let eigen = e1.min(e2);
        times.push(eigen);
        rows.push(vec![
            format!("{s:.3}"),
            format!("{:.1}", eigen * 1e3),
            format!("{mv}"),
        ]);
        println!(
            "PERF lanczos_cliff scale={s:.3} eigen_ms={:.1} matvecs={mv}",
            eigen * 1e3
        );
    }
    print_table(
        "Eigen phase vs cap scale",
        &["cap scale", "eigen (ms)", "matvecs"],
        &rows,
    );

    let min = times.iter().cloned().fold(f64::MAX, f64::min).max(1e-9);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let ratio = max / min;
    println!("PERF lanczos_cliff ratio={ratio:.2}");
    if ratio > WARN_RATIO {
        println!(
            "WARN lanczos_cliff: eigen phase spreads {ratio:.1}x across a ±1% cap-scale sweep \
             (threshold {WARN_RATIO}x) — cap-scale cost cliff is active on this host/mesh"
        );
    } else {
        println!("lanczos_cliff OK (ratio {ratio:.2}x <= {WARN_RATIO}x)");
    }
}
