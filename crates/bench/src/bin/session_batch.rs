//! Warm-session amortization study: reduces a batch of same-topology
//! decks twice — once with a fresh `ReductionSession` per deck (cold,
//! the pre-session behaviour) and once through a single session's
//! `reduce_batch` (warm, one symbolic analysis shared by the whole
//! batch) — and writes the comparison to `BENCH_session.json`.
//!
//! The two runs produce bit-identical models (asserted here and in the
//! `backend_equivalence` suite); only the symbolic-analysis work and
//! the wall clock differ.
//!
//! ```text
//! cargo run --release -p pact-bench --bin session_batch [--smoke] [DECKS]
//! ```
//!
//! Defaults to 8 decks on a 30×30×6 substrate mesh; `--smoke` shrinks
//! the mesh for CI.

use pact::{CutoffSpec, EigenSelect, ReduceOptions, Reduction, ReductionSession};
use pact_bench::{print_table, secs, timed};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::RcNetwork;
use pact_sparse::Ordering;

fn options() -> ReduceOptions {
    ReduceOptions {
        cutoff: CutoffSpec::new(5e8, 0.05).expect("cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: Some(1),
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    }
}

/// `count` same-topology decks: identical resistor/capacitor structure,
/// per-deck capacitor values (a process-corner sweep, the motivating
/// batch workload).
fn decks(base: &RcNetwork, count: usize) -> Vec<RcNetwork> {
    (0..count)
        .map(|k| {
            let mut net = base.clone();
            let scale = 1.0 + 0.05 * k as f64;
            for c in &mut net.capacitors {
                c.value *= scale;
            }
            net
        })
        .collect()
}

fn assert_bits_equal(a: &Reduction, b: &Reduction, k: usize) {
    assert_eq!(a.model.a1, b.model.a1, "deck {k}: A' differs");
    assert_eq!(a.model.b1, b.model.b1, "deck {k}: B' differs");
    assert_eq!(a.model.lambdas, b.model.lambdas, "deck {k}: poles differ");
    assert_eq!(a.model.r2, b.model.r2, "deck {k}: R'' differs");
}

fn main() {
    let mut smoke = false;
    let mut count = 8usize;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => count = other.parse().expect("args: [--smoke] [DECKS]"),
        }
    }
    // Few ports and a low cutoff keep the moment and eigen phases small,
    // so the per-deck cost is dominated by the factorization the warm
    // session amortizes — the workload `reduce_batch` exists for.
    let (nx, ny, nz, contacts) = if smoke {
        (10, 10, 4, 8)
    } else {
        (30, 30, 6, 8)
    };
    let base = substrate_mesh(&MeshSpec {
        nx,
        ny,
        nz,
        num_contacts: contacts,
        ..MeshSpec::table2()
    });
    let batch = decks(&base, count);
    println!(
        "# Session batch amortization: {count} decks, {nx}x{ny}x{nz} mesh, \
         {} ports, {} internal nodes",
        base.num_ports,
        base.num_internal()
    );

    // Cold: a fresh session per deck — every deck pays ordering +
    // elimination-tree construction.
    let (cold, cold_s) = timed(|| {
        batch
            .iter()
            .map(|net| {
                ReductionSession::new(options())
                    .reduce_network(net)
                    .expect("cold reduce")
            })
            .collect::<Vec<_>>()
    });
    let cold_factor: u64 = cold
        .iter()
        .map(|r| r.telemetry.counters.factorizations)
        .sum();

    // Warm: one session, one symbolic analysis for the whole batch.
    let mut session = ReductionSession::new(options());
    let (warm, warm_s) = timed(|| session.reduce_batch(&batch).expect("warm reduce"));
    let warm_factor: u64 = warm
        .iter()
        .map(|r| r.telemetry.counters.factorizations)
        .sum();
    let warm_refactor: u64 = warm
        .iter()
        .map(|r| r.telemetry.counters.refactorizations)
        .sum();

    for (k, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_bits_equal(c, w, k);
    }
    assert_eq!(
        session.cached_patterns(),
        1,
        "same-topology batch must share one symbolic analysis"
    );

    let speedup = cold_s / warm_s;
    print_table(
        "Session batch amortization",
        &["mode", "seconds", "fresh factors", "refactors", "speedup"],
        &[
            vec![
                "cold (session per deck)".into(),
                secs(cold_s),
                format!("{cold_factor}"),
                "0".into(),
                "1.00".into(),
            ],
            vec![
                "warm (reduce_batch)".into(),
                secs(warm_s),
                format!("{warm_factor}"),
                format!("{warm_refactor}"),
                format!("{speedup:.2}"),
            ],
        ],
    );
    println!("PERF cold_s={cold_s:.6} warm_s={warm_s:.6} batch_speedup={speedup:.3}");

    let json = render_json(
        nx,
        ny,
        nz,
        &base,
        count,
        cold_s,
        warm_s,
        cold_factor,
        warm_factor,
        warm_refactor,
    );
    std::fs::write("BENCH_session.json", &json).expect("write BENCH_session.json");
    println!("wrote BENCH_session.json");
    if smoke {
        println!("smoke OK");
    }
}

/// Hand-rolled JSON (the workspace has no serializer dependency);
/// strings go through the shared `pact::json::escape` helper.
#[allow(clippy::too_many_arguments)]
fn render_json(
    nx: usize,
    ny: usize,
    nz: usize,
    base: &RcNetwork,
    count: usize,
    cold_s: f64,
    warm_s: f64,
    cold_factor: u64,
    warm_factor: u64,
    warm_refactor: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  {}: {},\n",
        pact::json::escape("bench"),
        pact::json::escape("session_batch")
    ));
    out.push_str(&format!(
        "  {}: {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"ports\": {}, \"internal\": {}}},\n",
        pact::json::escape("mesh"),
        base.num_ports,
        base.num_internal()
    ));
    out.push_str(&format!("  \"decks\": {count},\n"));
    out.push_str(&format!(
        "  \"cold\": {{\"seconds\": {cold_s:.6}, \"factorizations\": {cold_factor}, \"refactorizations\": 0}},\n"
    ));
    out.push_str(&format!(
        "  \"warm\": {{\"seconds\": {warm_s:.6}, \"factorizations\": {warm_factor}, \"refactorizations\": {warm_refactor}}},\n"
    ));
    out.push_str(&format!("  \"batch_speedup\": {:.4}\n", cold_s / warm_s));
    out.push_str("}\n");
    out
}
