//! Supernodal-vs-scalar Cholesky kernel A/B on the Table-4 mesh: times
//! the full PACT reduction and the isolated factor/refactor under both
//! numeric kernels, checks the retained poles agree, and reports the
//! speedup. `ci/check.sh` runs it with `--smoke` (a much smaller mesh,
//! seconds not minutes) and archives the output as
//! `results/supernodal_perf.txt`; run without arguments for the full
//! Table-4 measurement.

use pact::{CholKernel, CutoffSpec, EigenSelect, ReduceOptions};
use pact_bench::{print_table, secs, timed};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_sparse::{Ordering, PivotPolicy, SparseCholesky};

/// Relative pole-agreement tolerance between the two kernels (they share
/// the postordered permutation, so retained poles differ only by
/// summation order inside the panels).
const POLE_TOL: f64 = 1e-10;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (label, spec, fmax, tol) = if smoke {
        (
            "smoke mesh (16x16x6)",
            MeshSpec {
                nx: 16,
                ny: 16,
                nz: 6,
                num_contacts: 48,
                ..MeshSpec::table2()
            },
            1e9,
            0.05,
        )
    } else {
        ("Table 4 mesh (469 ports)", MeshSpec::table4(), 500e6, 0.10)
    };
    println!("# Supernodal vs scalar Cholesky kernel — {label}");

    let net = substrate_mesh(&spec);
    let parts = pact::Partitions::split(&net.stamp());
    println!(
        "\n{} ports, {} internal nodes, D nnz {}",
        net.num_ports,
        net.num_internal(),
        parts.d.nnz()
    );

    // Isolated factorization A/B over the same nested-dissection order.
    let mut rows = Vec::new();
    let mut factors = Vec::new();
    for kernel in [CholKernel::Supernodal, CholKernel::Scalar] {
        let ((chol, _, sym), t_factor) = timed(|| {
            SparseCholesky::factor_analyzed_with_kernel(
                &parts.d,
                Ordering::NestedDissection,
                PivotPolicy::Error,
                kernel,
            )
            .expect("factor")
        });
        let (_, t_refactor) = timed(|| sym.refactor(&parts.d, PivotPolicy::Error).expect("refac"));
        rows.push(vec![
            format!("{kernel:?}"),
            format!("{}", chol.l_nnz()),
            format!("{}", chol.supernode_count()),
            format!("{}", chol.max_panel_cols()),
            secs(t_factor),
            secs(t_refactor),
        ]);
        factors.push(chol);
    }
    print_table(
        "Factorization of D (analyze+numeric, then numeric-only refactor)",
        &[
            "kernel",
            "L nnz",
            "supernodes",
            "max panel",
            "factor (s)",
            "refactor (s)",
        ],
        &rows,
    );
    assert_eq!(
        factors[0].l_nnz(),
        factors[1].l_nnz(),
        "kernels disagree on structural fill"
    );

    // End-to-end reduction A/B.
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(fmax, tol).expect("cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: CholKernel::Supernodal,
    };
    let (sup, t_sup) = timed(|| pact::reduce_network(&net, &opts).expect("reduce"));
    let scalar_opts = ReduceOptions {
        expansion_points: None,
        chol_kernel: CholKernel::Scalar,
        ..opts
    };
    let (sca, t_sca) = timed(|| pact::reduce_network(&net, &scalar_opts).expect("reduce"));

    let c = &sup.telemetry.counters;
    print_table(
        "End-to-end PACT reduction",
        &["kernel", "poles", "time (s)"],
        &[
            vec![
                "Supernodal".into(),
                format!("{}", sup.model.num_poles()),
                secs(t_sup),
            ],
            vec![
                "Scalar".into(),
                format!("{}", sca.model.num_poles()),
                secs(t_sca),
            ],
        ],
    );
    println!(
        "supernodal: {} supernodes, widest panel {} cols, {:.3e} panel flops",
        c.supernode_count, c.max_panel_cols, c.panel_flops as f64
    );
    println!(
        "reduction-time speedup (scalar / supernodal): {:.2}x",
        t_sca / t_sup.max(1e-12)
    );

    // Parity gate: the two kernels must retain the same poles.
    assert_eq!(
        sup.model.num_poles(),
        sca.model.num_poles(),
        "kernels retained different pole counts"
    );
    let mut worst = 0.0f64;
    for (a, b) in sup.model.lambdas.iter().zip(&sca.model.lambdas) {
        let rel = (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
        worst = worst.max(rel);
    }
    println!("worst relative pole deviation: {worst:.3e} (gate {POLE_TOL:.0e})");
    assert!(
        worst <= POLE_TOL,
        "retained poles diverge between kernels: {worst:.3e} > {POLE_TOL:.0e}"
    );
    println!("parity: OK");
}
