//! Figure 5: magnitude of the small-signal transimpedance between the
//! monitor port and an NMOS port of the substrate mesh, for the original
//! network and the three reductions of Table 2, over 10 MHz–10 GHz.
//! The paper's error bars assert ≤5 % error below each reduction's
//! maximum frequency.

use pact::{CutoffSpec, EigenSelect, ReduceOptions};
use pact_bench::print_table;
use pact_circuit::{log_frequencies, AcExcitation, Circuit};
use pact_gen::{network_to_elements, substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::Netlist;
use pact_sparse::Ordering;

fn main() {
    println!("# Figure 5: substrate transimpedance |Z(monitor, nmos)| vs frequency");
    let spec = MeshSpec::table2();
    let net = substrate_mesh(&spec);
    let freqs = log_frequencies(27, 1e7, 1e10);
    let monitor = "port24";
    let inject = "port3";

    let run_ac = |deck: &Netlist| -> Vec<f64> {
        let ckt = Circuit::from_netlist(deck).expect("compile");
        let ac = ckt
            .ac_sweep(&freqs, &AcExcitation::CurrentInto(inject.into()))
            .expect("ac");
        ac.voltage(monitor)
            .expect("monitor")
            .iter()
            .map(|z| z.abs())
            .collect()
    };

    let mut deck = Netlist::new("original mesh");
    deck.elements = network_to_elements(&net, "sub");
    let z_orig = run_ac(&deck);

    let mut curves: Vec<(String, Vec<f64>)> = vec![("original".into(), z_orig.clone())];
    let mut rows = Vec::new();
    for &fmax in &[3e9, 1e9, 300e6] {
        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(fmax, 0.05).expect("cutoff"),
            eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
            ordering: Ordering::NestedDissection,
            dense_threshold: 400,
            threads: None,
            pivot_relief: None,
            strategy: pact::ReduceStrategy::Flat,
            expansion_points: None,
            chol_kernel: pact::CholKernel::Auto,
        };
        let red = pact::reduce_network(&net, &opts).expect("reduce");
        let mut rdeck = Netlist::new("reduced mesh");
        rdeck.elements = red.model.to_netlist_elements("red", 1e-9);
        let z = run_ac(&rdeck);
        let mut worst_below: f64 = 0.0;
        let mut worst_any: f64 = 0.0;
        for (k, &f) in freqs.iter().enumerate() {
            let rel = (z[k] - z_orig[k]).abs() / z_orig[k];
            worst_any = worst_any.max(rel);
            if f <= fmax {
                worst_below = worst_below.max(rel);
            }
        }
        rows.push(vec![
            format!("{:.1} GHz", fmax / 1e9),
            format!("{}", red.model.num_poles()),
            format!("{:.2} %", worst_below * 100.0),
            format!("{:.2} %", worst_any * 100.0),
        ]);
        curves.push((format!("reduced {:.1} GHz", fmax / 1e9), z));
    }
    print_table(
        "error vs original (paper's bars: ≤5 % below each fmax; above fmax the model may diverge)",
        &[
            "max freq",
            "poles",
            "worst err ≤ fmax",
            "worst err full band",
        ],
        &rows,
    );

    println!("### |Z| in ohms (CSV)\n");
    print!("freq_hz");
    for (name, _) in &curves {
        print!(",{name}");
    }
    println!();
    for (k, &f) in freqs.iter().enumerate() {
        print!("{f:.4e}");
        for (_, z) in &curves {
            print!(",{:.3}", z[k]);
        }
        println!();
    }
}
