//! Figure 6: substrate voltage fluctuations at the monitor port during
//! full-adder switching activity — original mesh vs the 1 GHz reduced
//! network. The reduced network must track the noise waveform.

use pact_bench::{print_table, print_waveforms, reduce_deck_laso};
use pact_circuit::Circuit;
use pact_gen::{full_adder_deck, MeshSpec};

fn main() {
    println!("# Figure 6: substrate voltage fluctuations (monitor port)");
    let deck = full_adder_deck(&MeshSpec::table2());
    let (reduced_nl, red, _) = reduce_deck_laso(&deck.netlist, 1e9, 0.05, 1e-9);
    println!("\nreduction kept {} poles", red.model.num_poles());

    let tstep = 50e-12;
    let tstop = 12e-9;
    let monitor = deck.monitor_port.as_str();

    let mut curves = Vec::new();
    for (name, d) in [("original", &deck.netlist), ("reduced 1 GHz", &reduced_nl)] {
        let ckt = Circuit::from_netlist(d).expect("compile");
        let tr = ckt.transient(tstep, tstop).expect("transient");
        let v = tr.voltage(monitor).expect("monitor waveform");
        curves.push((name.to_owned(), tr.times, v));
    }

    // Compare: peak amplitude and max deviation.
    let (to, vo) = (&curves[0].1, &curves[0].2);
    let (tr_, vr) = (&curves[1].1, &curves[1].2);
    let peak_o = vo.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let peak_r = vr.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let mut worst: f64 = 0.0;
    for (k, &t) in to.iter().enumerate() {
        let mut vi = *vr.last().unwrap();
        for kk in 1..tr_.len() {
            if t <= tr_[kk] {
                let f = (t - tr_[kk - 1]) / (tr_[kk] - tr_[kk - 1]).max(1e-30);
                vi = vr[kk - 1] + f * (vr[kk] - vr[kk - 1]);
                break;
            }
        }
        worst = worst.max((vi - vo[k]).abs());
    }
    print_table(
        "noise summary (paper: 'the reduced network gives a very good approximation')",
        &["quantity", "original", "reduced", "abs diff"],
        &[vec![
            "peak |v(monitor)| (mV)".into(),
            format!("{:.2}", peak_o * 1e3),
            format!("{:.2}", peak_r * 1e3),
            format!("{:.2}", (peak_o - peak_r).abs() * 1e3),
        ]],
    );
    println!("max waveform deviation: {:.3} mV", worst * 1e3);

    let series: Vec<(&str, &[f64])> = curves
        .iter()
        .map(|(n, _, v)| (n.as_str(), v.as_slice()))
        .collect();
    print_waveforms("v(monitor) in volts", &curves[0].1, &series, 2);
}
