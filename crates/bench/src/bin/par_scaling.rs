//! Thread-scaling study of the parallel execution layer: times the first
//! congruence transform (`Transform1::compute_ctx`, the port fan-out /
//! blocked-solve hot path), the full flat reduction, and the
//! hierarchical reduction (whose leaf fan-out is the coarse-grained
//! parallel axis) at 1/2/4/8 worker threads on a Table-4-like substrate
//! mesh, and writes the measurements to `BENCH_par_scaling.json`.
//!
//! The reduced models are bit-identical at every thread count (see the
//! `par_determinism` test); this binary measures only the wall clock.
//!
//! ```text
//! cargo run --release -p pact-bench --bin par_scaling [NX NY NZ CONTACTS]
//! ```
//!
//! Defaults to a 40×40×7 mesh with 64 contacts (≈11k nodes). Pass smaller
//! dimensions for a quick smoke run, e.g. `par_scaling 16 16 4 16`.

use pact::{CutoffSpec, EigenSelect, Partitions, ReduceOptions, Transform1};
use pact_bench::{print_table, secs, timed};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_sparse::{Ordering, ParCtx};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Sample {
    threads: usize,
    transform1_s: f64,
    reduce_s: f64,
    hier_s: f64,
}

fn main() {
    let argv: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| {
            a.parse()
                .expect("args: NX NY NZ CONTACTS (positive integers)")
        })
        .collect();
    let (nx, ny, nz, contacts) = match argv.as_slice() {
        [] => (40, 40, 7, 64),
        [nx, ny, nz, m] => (*nx, *ny, *nz, *m),
        _ => panic!("args: NX NY NZ CONTACTS (all four or none)"),
    };

    println!("# Thread scaling: {nx}x{ny}x{nz} mesh, {contacts} contacts");
    println!(
        "host reports {} available core(s)",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    let net = substrate_mesh(&MeshSpec {
        nx,
        ny,
        nz,
        num_contacts: contacts,
        ..MeshSpec::table4()
    });
    let parts = Partitions::split(&net.stamp());
    println!("mesh: {} ports, {} internal nodes", parts.m, parts.n);

    let cutoff = CutoffSpec::new(500e6, 0.10).expect("cutoff");
    let mut samples = Vec::new();
    for &t in &THREAD_COUNTS {
        let ctx = ParCtx::new(Some(t));
        // Warm-up pass at each thread count so allocator state is steady.
        let _ = Transform1::compute_ctx(&parts, Ordering::NestedDissection, &ctx).expect("t1");
        let (_, transform1_s) = timed(|| {
            Transform1::compute_ctx(&parts, Ordering::NestedDissection, &ctx).expect("t1")
        });
        let opts = ReduceOptions {
            cutoff,
            eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
            ordering: Ordering::NestedDissection,
            dense_threshold: 400,
            threads: Some(t),
            pivot_relief: None,
            strategy: pact::ReduceStrategy::Flat,
            expansion_points: None,
            chol_kernel: pact::CholKernel::Auto,
        };
        let (red, reduce_s) = timed(|| pact::reduce_network(&net, &opts).expect("reduce"));
        let hier_opts = ReduceOptions {
            strategy: pact::ReduceStrategy::Hierarchical {
                max_block: 2000,
                max_depth: 16,
            },
            ..opts.clone()
        };
        let (hred, hier_s) = timed(|| pact::reduce_network(&net, &hier_opts).expect("reduce hier"));
        println!(
            "threads={t}: transform1 {} s, full reduce {} s ({} poles), hier {} s ({} poles, {} blocks)",
            secs(transform1_s),
            secs(reduce_s),
            red.model.num_poles(),
            secs(hier_s),
            hred.model.num_poles(),
            hred.telemetry.counters.hier_blocks
        );
        samples.push(Sample {
            threads: t,
            transform1_s,
            reduce_s,
            hier_s,
        });
    }

    let base_t1 = samples[0].transform1_s;
    let base_red = samples[0].reduce_s;
    let base_hier = samples[0].hier_s;
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.threads),
                secs(s.transform1_s),
                format!("{:.2}", base_t1 / s.transform1_s),
                secs(s.reduce_s),
                format!("{:.2}", base_red / s.reduce_s),
                secs(s.hier_s),
                format!("{:.2}", base_hier / s.hier_s),
            ]
        })
        .collect();
    print_table(
        "Thread scaling",
        &[
            "threads",
            "transform1 (s)",
            "speedup",
            "reduce (s)",
            "speedup",
            "hier (s)",
            "speedup",
        ],
        &rows,
    );

    let json = render_json(nx, ny, nz, parts.m, parts.n, &samples);
    std::fs::write("BENCH_par_scaling.json", &json).expect("write BENCH_par_scaling.json");
    println!("wrote BENCH_par_scaling.json");
}

/// Hand-rolled JSON (the workspace has no serializer dependency).
fn render_json(
    nx: usize,
    ny: usize,
    nz: usize,
    ports: usize,
    internal: usize,
    samples: &[Sample],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"par_scaling\",\n");
    out.push_str(&format!(
        "  \"mesh\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"ports\": {ports}, \"internal\": {internal}}},\n"
    ));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str("  \"samples\": [\n");
    for (k, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"transform1_seconds\": {:.6}, \"reduce_seconds\": {:.6}, \"hier_seconds\": {:.6}}}{}\n",
            s.threads,
            s.transform1_s,
            s.reduce_s,
            s.hier_s,
            if k + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
