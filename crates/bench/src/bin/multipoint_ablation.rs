//! Multipoint ablation: accuracy versus retained poles, flat PACT
//! against the `pact::multipoint` expansion backend, on the Table 2
//! substrate (25 ports, 3 GHz / 5 %) and the Table 4-style mesh
//! (500 MHz / 10 %).
//!
//! ```text
//! cargo run --release -p pact-bench --bin multipoint_ablation [--smoke]
//! ```
//!
//! For each mesh the harness reduces flat and multipoint, measures the
//! worst in-band `|Z|` error of each model against a reference sweep
//! (Figure 5's criterion: an 81-point log AC sweep, error taken below
//! `f_max`; the reference is the original network, except on the full
//! Table 4 mesh where it is the flat model — see `Section`), then
//! ablates the multipoint model pole by pole — dropping `(r̃ᵢ, λ̃ᵢ)`
//! rows in ascending order of their worst in-band contribution, which
//! is passivity-safe — to trace the full accuracy-versus-poles curve.
//! The headline numbers are the smallest multipoint pole counts whose
//! error still beats flat's (`poles_at_flat_accuracy`) and still meets
//! the tolerance spec (`poles_at_spec`), written to
//! `BENCH_multipoint.json`. `--smoke` shrinks both meshes for CI.

use pact::{
    CutoffSpec, EigenSelect, ReduceOptions, ReduceStrategy, ReducedModel, ReductionSession,
};
use pact_bench::{print_table, secs, timed};
use pact_circuit::{log_frequencies, AcExcitation, Circuit};
use pact_gen::{network_to_elements, substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::{Element, Netlist};
use pact_sparse::{DMat, Ordering};

struct Section {
    name: &'static str,
    spec: MeshSpec,
    f_max: f64,
    tolerance: f64,
    /// Measure errors against an AC sweep of the *original* network.
    /// The full Table 4 mesh turns this off — 81 complex factorizations
    /// of a 20k-node 3-D mesh dominate the whole bench (the repo's
    /// `table4_large_mesh` bench never sweeps the original either) —
    /// and measures against the flat reduced model instead, which the
    /// smoke section pins to the original within 0.05 %.
    orig_reference: bool,
}

/// One model's measured accuracy: retained poles and the worst in-band
/// relative `|Z|` error against the original network.
struct Measured {
    poles: usize,
    worst_err: f64,
    seconds: f64,
}

struct SectionResult {
    name: &'static str,
    nodes: usize,
    ports: usize,
    flat: Measured,
    multipoint: Measured,
    /// Accuracy-versus-poles curve for the multipoint model, one entry
    /// per truncation (descending pole count).
    curve: Vec<(usize, f64)>,
    /// Smallest multipoint pole count whose error is no worse than
    /// flat's full model (usize::MAX when the curve never gets there).
    poles_at_flat_accuracy: usize,
    /// Smallest multipoint pole count still inside the section's error
    /// tolerance (usize::MAX when even the full model misses it).
    poles_at_spec: usize,
    /// What the errors are measured against: "original" or "flat".
    reference: &'static str,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# Multipoint ablation: accuracy vs poles, flat vs multipoint");

    let sections = if smoke {
        vec![
            Section {
                name: "table2_smoke",
                spec: MeshSpec {
                    nx: 10,
                    ny: 10,
                    nz: 4,
                    num_contacts: 16,
                    ..MeshSpec::table2()
                },
                f_max: 3e9,
                tolerance: 0.05,
                orig_reference: true,
            },
            Section {
                name: "table4_smoke",
                spec: MeshSpec {
                    nx: 14,
                    ny: 14,
                    nz: 5,
                    num_contacts: 24,
                    ..MeshSpec::table4()
                },
                f_max: 500e6,
                tolerance: 0.10,
                orig_reference: true,
            },
        ]
    } else {
        vec![
            Section {
                name: "table2",
                spec: MeshSpec::table2(),
                f_max: 3e9,
                tolerance: 0.05,
                orig_reference: true,
            },
            Section {
                name: "table4",
                spec: MeshSpec::table4(),
                f_max: 500e6,
                tolerance: 0.10,
                orig_reference: false,
            },
        ]
    };

    let results: Vec<SectionResult> = sections.iter().map(run_section).collect();

    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.name.to_owned(),
            format!("{}", r.flat.poles),
            format!("{:.3}", r.flat.worst_err * 100.0),
            format!("{}", r.multipoint.poles),
            format!("{:.3}", r.multipoint.worst_err * 100.0),
            if r.poles_at_flat_accuracy == usize::MAX {
                "-".into()
            } else {
                format!("{}", r.poles_at_flat_accuracy)
            },
            if r.poles_at_spec == usize::MAX {
                "-".into()
            } else {
                format!("{}", r.poles_at_spec)
            },
            r.reference.to_owned(),
        ]);
    }
    print_table(
        "Accuracy vs poles (worst in-band |Z| error, % of original)",
        &[
            "mesh",
            "flat poles",
            "flat err %",
            "mp poles",
            "mp err %",
            "mp poles @ flat acc",
            "mp poles @ spec",
            "reference",
        ],
        &rows,
    );

    for r in &results {
        println!(
            "PERF {name}_flat_poles={fp} {name}_flat_err={fe:.6} \
             {name}_mp_poles={mp} {name}_mp_err={me:.6}",
            name = r.name,
            fp = r.flat.poles,
            fe = r.flat.worst_err,
            mp = r.multipoint.poles,
            me = r.multipoint.worst_err
        );
    }

    let json = render_json(&results, smoke);
    std::fs::write("BENCH_multipoint.json", &json).expect("write BENCH_multipoint.json");
    println!("wrote BENCH_multipoint.json");
    if smoke {
        println!("smoke OK");
    }
}

fn run_section(section: &Section) -> SectionResult {
    let net = substrate_mesh(&section.spec);
    let (r0, c0) = net.element_counts();
    println!(
        "\n## {}: {} nodes ({} ports), {} R, {} C, fmax {:.1e} Hz, tol {:.0} %",
        section.name,
        net.num_nodes(),
        net.num_ports,
        r0,
        c0,
        section.f_max,
        section.tolerance * 100.0
    );

    // The |Z| reference on the standard 81-point log sweep (monitor
    // and injection ports as in the Table 2 bench, clamped to the
    // contact count so the smoke meshes stay valid).
    let freqs = log_frequencies(27, 1e7, 1e10);
    let inject = "port3".to_owned();
    let monitor = format!("port{}", section.spec.num_contacts.min(25) - 1);
    let sweep_z = |deck: &Netlist| -> Vec<pact_sparse::Complex64> {
        let ckt = Circuit::from_netlist(deck).expect("compile for sweep");
        let ac = ckt
            .ac_sweep(&freqs, &AcExcitation::CurrentInto(inject.clone()))
            .expect("AC sweep");
        ac.voltage(&monitor).expect("monitor voltage")
    };

    let (flat_red, flat_t) = timed(|| {
        ReductionSession::new(options(section, ReduceStrategy::Flat))
            .reduce_network(&net)
            .expect("flat reduce")
    });

    let (reference, ref_z) = if section.orig_reference {
        let z = sweep_z(&deck_of(network_to_elements(&net, "sub")));
        ("original", z)
    } else {
        let z = sweep_z(&deck_of(flat_red.model.to_netlist_elements("red", 1e-9)));
        ("flat", z)
    };

    let measure = |model: &ReducedModel| -> f64 {
        let z = sweep_z(&deck_of(model.to_netlist_elements("red", 1e-9)));
        let mut worst: f64 = 0.0;
        for (k, &f) in freqs.iter().enumerate() {
            if f > section.f_max {
                break;
            }
            worst = worst.max((z[k].abs() - ref_z[k].abs()).abs() / ref_z[k].abs());
        }
        worst
    };

    let flat = Measured {
        poles: flat_red.model.num_poles(),
        worst_err: measure(&flat_red.model),
        seconds: flat_t,
    };
    println!(
        "flat:       {} poles, worst in-band error {:.3} % vs {reference}, {}",
        flat.poles,
        flat.worst_err * 100.0,
        secs(flat.seconds)
    );

    let (mp_red, mp_t) = timed(|| {
        ReductionSession::new(options(
            section,
            ReduceStrategy::Multipoint {
                num_points: pact::multipoint::DEFAULT_NUM_POINTS,
            },
        ))
        .reduce_network(&net)
        .expect("multipoint reduce")
    });
    let multipoint = Measured {
        poles: mp_red.model.num_poles(),
        worst_err: measure(&mp_red.model),
        seconds: mp_t,
    };
    println!(
        "multipoint: {} poles, worst in-band error {:.3} %, {} \
         ({} basis columns from {} shifted candidates)",
        multipoint.poles,
        multipoint.worst_err * 100.0,
        secs(multipoint.seconds),
        mp_red.telemetry.counters.multipoint_basis_columns,
        mp_red.telemetry.counters.multipoint_moment_poles
    );

    // Ablation: re-measure with the weakest poles dropped one at a
    // time. Dropping rows of `(r̃, λ̃)` is a principal submatrix of the
    // diagonalized model — passivity-safe by construction.
    let (ranked, dropped_contributions) = ranked_truncations(&mp_red.model, section.f_max);
    let mut curve = Vec::new();
    for model in &ranked {
        curve.push((model.num_poles(), measure(model)));
    }
    for ((poles, err), c) in curve.iter().zip(&dropped_contributions) {
        println!(
            "  mp truncated to {poles:2} poles: worst in-band error {:.3} % \
             (next drop's est. contribution {:.3e} of tol)",
            err * 100.0,
            c / section.tolerance
        );
    }
    let poles_at_flat_accuracy = curve
        .iter()
        .rev()
        .find(|(_, err)| *err <= flat.worst_err)
        .map_or(usize::MAX, |(p, _)| *p);
    let poles_at_spec = curve
        .iter()
        .rev()
        .find(|(_, err)| *err <= section.tolerance)
        .map_or(usize::MAX, |(p, _)| *p);

    SectionResult {
        name: section.name,
        nodes: net.num_nodes(),
        ports: net.num_ports,
        flat,
        multipoint,
        curve,
        poles_at_flat_accuracy,
        poles_at_spec,
        reference,
    }
}

fn options(section: &Section, strategy: ReduceStrategy) -> ReduceOptions {
    ReduceOptions {
        cutoff: CutoffSpec::new(section.f_max, section.tolerance).expect("cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    }
}

fn deck_of(elements: Vec<Element>) -> Netlist {
    let mut nl = Netlist::new("multipoint ablation");
    nl.elements = elements;
    nl
}

/// The full model followed by progressively truncated copies: poles
/// leave in ascending order of their worst *per-port* in-band
/// contribution `ω² r̃ᵢⱼ² / √(1 + (ωλ̃)²) / (|A'ⱼⱼ| + ω B'ⱼⱼ)` at
/// `ω = 2π f_max` — the same ranking the reducer's keep rule uses.
fn ranked_truncations(model: &ReducedModel, f_max: f64) -> (Vec<ReducedModel>, Vec<f64>) {
    let k = model.num_poles();
    let m = model.num_ports();
    let omega = 2.0 * std::f64::consts::PI * f_max;
    let port_scale: Vec<f64> = (0..m)
        .map(|j| model.a1[(j, j)].abs() + omega * model.b1[(j, j)].abs())
        .collect();
    let mut order: Vec<usize> = (0..k).collect();
    let contribution = |i: usize| {
        let band = omega * omega / (1.0 + (omega * model.lambdas[i]).powi(2)).sqrt();
        (0..m)
            .map(|j| band * model.r2[(i, j)] * model.r2[(i, j)] / port_scale[j])
            .fold(0.0f64, f64::max)
    };
    order.sort_by(|&a, &b| contribution(b).total_cmp(&contribution(a)));
    // For the j-pole truncation, the next pole to go is order[j-1] (the
    // weakest survivor); its estimated contribution contextualizes the
    // measured error jump at j-1 poles.
    let next_drop: Vec<f64> = (0..=k)
        .rev()
        .map(|j| {
            if j == 0 {
                0.0
            } else {
                contribution(order[j - 1])
            }
        })
        .collect();
    // keep[0..j] are the j strongest poles, in the model's native order.
    let models = (0..=k)
        .rev()
        .map(|j| {
            let mut keep: Vec<usize> = order[..j].to_vec();
            keep.sort_unstable();
            let mut r2 = DMat::zeros(j, m);
            for (row, &i) in keep.iter().enumerate() {
                for col in 0..m {
                    r2[(row, col)] = model.r2[(i, col)];
                }
            }
            ReducedModel {
                a1: model.a1.clone(),
                b1: model.b1.clone(),
                r2,
                lambdas: keep.iter().map(|&i| model.lambdas[i]).collect(),
                port_names: model.port_names.clone(),
            }
        })
        .collect();
    (models, next_drop)
}

/// Hand-rolled JSON (the workspace has no serializer dependency).
fn render_json(results: &[SectionResult], smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  {}: {},\n",
        pact::json::escape("bench"),
        pact::json::escape("multipoint_ablation")
    ));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sections\": [\n");
    for (si, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      {}: {},\n",
            pact::json::escape("name"),
            pact::json::escape(r.name)
        ));
        out.push_str(&format!(
            "      \"nodes\": {}, \"ports\": {},\n",
            r.nodes, r.ports
        ));
        out.push_str(&format!(
            "      {}: {},\n",
            pact::json::escape("reference"),
            pact::json::escape(r.reference)
        ));
        out.push_str(&format!(
            "      \"flat\": {{\"poles\": {}, \"worst_in_band_err\": {:.6e}, \"seconds\": {:.6}}},\n",
            r.flat.poles, r.flat.worst_err, r.flat.seconds
        ));
        out.push_str(&format!(
            "      \"multipoint\": {{\"poles\": {}, \"worst_in_band_err\": {:.6e}, \"seconds\": {:.6}}},\n",
            r.multipoint.poles, r.multipoint.worst_err, r.multipoint.seconds
        ));
        out.push_str("      \"curve\": [");
        for (ci, (poles, err)) in r.curve.iter().enumerate() {
            if ci > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"poles\": {poles}, \"worst_in_band_err\": {err:.6e}}}"
            ));
        }
        out.push_str("],\n");
        if r.poles_at_flat_accuracy == usize::MAX {
            out.push_str("      \"poles_at_flat_accuracy\": null,\n");
        } else {
            out.push_str(&format!(
                "      \"poles_at_flat_accuracy\": {},\n",
                r.poles_at_flat_accuracy
            ));
        }
        if r.poles_at_spec == usize::MAX {
            out.push_str("      \"poles_at_spec\": null\n");
        } else {
            out.push_str(&format!("      \"poles_at_spec\": {}\n", r.poles_at_spec));
        }
        out.push_str(if si + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
