//! Figure 4: critical-path output waveform of the multiplier-like
//! circuit — no parasitics vs full RC network vs PACT-reduced. The
//! parasitics visibly delay the critical path; the reduced network must
//! track the full one.

use pact_bench::{crossing_delay, print_table, print_waveforms, reduce_deck};
use pact_circuit::Circuit;
use pact_gen::{multiplier_like_deck, multiplier_like_deck_no_parasitics, MultiplierSpec};

fn main() {
    println!("# Figure 4: effect of RC parasitics on the critical path");
    let spec = MultiplierSpec::scaled_down();
    let (deck_none, _) = multiplier_like_deck_no_parasitics(&spec);
    let (deck_full, _) = multiplier_like_deck(&spec);
    let (deck_red, _, _) = reduce_deck(&deck_full, 500e6, 0.05, 1e-9);

    let mut curves = Vec::new();
    let mut rows = Vec::new();
    for (name, deck) in [
        ("no parasitics", &deck_none),
        ("full parasitics", &deck_full),
        ("PACT reduced", &deck_red),
    ] {
        let ckt = Circuit::from_netlist(deck).expect("compile");
        let tr = ckt.transient(50e-12, 10e-9).expect("transient");
        let v = tr.voltage("out0").expect("v(out0)");
        let d = crossing_delay(&tr.times, &v, 2.5, 0.3e-9, tr_direction(&v));
        rows.push(vec![
            name.to_owned(),
            d.map_or("-".into(), |x| format!("{:.0}", x * 1e12)),
        ]);
        curves.push((name.to_owned(), tr.times, v));
    }
    print_table(
        "critical-path 50 % delay (paper: parasitics significantly delay the path; reduced tracks full)",
        &["netlist", "delay (ps)"],
        &rows,
    );
    let series: Vec<(&str, &[f64])> = curves
        .iter()
        .map(|(n, _, v)| (n.as_str(), v.as_slice()))
        .collect();
    print_waveforms("v(out0)", &curves[1].1, &series, 4);
}

fn tr_direction(v: &[f64]) -> bool {
    // Rising if the waveform ends higher than it starts.
    v.last().unwrap_or(&0.0) > v.first().unwrap_or(&0.0)
}
