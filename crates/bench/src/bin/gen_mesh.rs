//! Writes a 3-D substrate-mesh SPICE deck to a file, for driving the
//! `rcfit` CLI from scripts (CI smoke/perf runs) without hand-building
//! decks. Contacts become nodes `port0..port{M-1}`, so callers can pass
//! `--port portK` flags without parsing this tool's output.
//!
//! ```text
//! cargo run --release -p pact-bench --bin gen_mesh -- NX NY NZ CONTACTS OUT.sp
//! ```

use pact_gen::{network_to_elements, substrate_mesh, MeshSpec};
use pact_netlist::Netlist;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let [nx, ny, nz, contacts, out] = argv.as_slice() else {
        eprintln!("usage: gen_mesh NX NY NZ CONTACTS OUT.sp");
        std::process::exit(2);
    };
    let parse = |s: &String| -> usize {
        s.parse()
            .unwrap_or_else(|_| panic!("not a positive integer: {s}"))
    };
    let spec = MeshSpec {
        nx: parse(nx),
        ny: parse(ny),
        nz: parse(nz),
        num_contacts: parse(contacts),
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    let (r, c) = net.element_counts();
    let mut deck = Netlist::new(format!(
        "substrate mesh {}x{}x{} with {} contacts",
        spec.nx, spec.ny, spec.nz, net.num_ports
    ));
    deck.elements = network_to_elements(&net, "m");
    std::fs::write(out, deck.to_string()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "wrote {out}: {} ports, {} internal nodes, {} R, {} C",
        net.num_ports,
        net.num_internal(),
        r,
        c
    );
}
