//! §6 illustrative example / eq. (20): reduce the 100-segment RC
//! transmission line (250 Ω, 1.35 pF) at 5 % tolerance, 5 GHz maximum
//! frequency. The paper finds a single pole at 4.7 GHz and prints the
//! 3×3 reduced G and C matrices (two ports + one internal node).

use pact::{CutoffSpec, EigenSelect, Partitions, ReduceOptions};
use pact_bench::{mb, print_table, secs, timed};
use pact_gen::{add_default_models, inverter, rc_line_elements, LineSpec};
use pact_netlist::{extract_rc, Element, ElementKind, Netlist, Waveform};
use pact_sparse::Ordering;

/// The Figure 2 circuit without an explicit output load, so the RC
/// network has exactly the paper's two ports (line_in, line_out).
fn deck() -> Netlist {
    let mut nl = Netlist::new("fig2 inverter pair, line only");
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".into(),
        kind: ElementKind::VSource {
            p: "vdd".into(),
            n: "0".into(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".into(),
        kind: ElementKind::VSource {
            p: "in".into(),
            n: "0".into(),
            wave: Waveform::Dc(0.0),
        },
    });
    nl.elements.extend(inverter(
        "drv", "in", "line_in", "vdd", "0", "vdd", 100e-6, 200e-6,
    ));
    nl.elements.extend(rc_line_elements(
        &LineSpec::default(),
        "line_in",
        "line_out",
        "ln",
    ));
    nl.elements.extend(inverter(
        "rcv", "line_out", "out", "vdd", "0", "vdd", 4e-6, 8e-6,
    ));
    nl
}

fn main() {
    println!("# Example 1 (paper §6, eq. 20): 100-segment RC line, 5 %, 5 GHz");
    let nl = deck();
    let ex = extract_rc(&nl, &[]).expect("extraction");
    let net = &ex.network;
    println!(
        "\nextracted network: {} ports, {} internal nodes, {} R, {} C (paper: 2 ports, 99 internal)",
        net.num_ports,
        net.num_internal(),
        net.resistors.len(),
        net.capacitors.len()
    );

    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(5e9, 0.05).expect("cutoff"),
        eigen_backend: EigenSelect::LowRank,
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let (red, elapsed) = timed(|| pact::reduce_network(net, &opts).expect("reduce"));
    let model = &red.model;
    println!(
        "cutoff frequency f_c = {:.3} GHz (ratio {:.3} × f_max; paper quotes 3.04)",
        opts.cutoff.cutoff_frequency() / 1e9,
        opts.cutoff.cutoff_ratio()
    );
    println!(
        "retained poles: {} (paper: 1), reduction time {} s, modelled memory {} MB",
        model.num_poles(),
        secs(elapsed),
        mb(red.stats.modelled_memory_bytes)
    );
    for f in model.pole_frequencies() {
        println!("pole at {:.2} GHz (paper: 4.7 GHz)", f / 1e9);
    }

    // Reduced matrices with the paper's internal-row normalization,
    // printed in the paper's units (mS and fF).
    let (g, c) = model.to_matrices_normalized();
    let dim = g.nrows();
    let fmt_mat = |m: &pact_sparse::DMat<f64>, scale: f64| -> Vec<Vec<String>> {
        (0..dim)
            .map(|i| {
                (0..dim)
                    .map(|j| format!("{:.1}", m[(i, j)] * scale))
                    .collect()
            })
            .collect()
    };
    let hdr: Vec<&str> = (0..dim).map(|_| "·").collect();
    print_table(
        "G'' in mS (paper eq. 20: [[4,-4,0],[-4,4,0],[0,0,32]])",
        &hdr,
        &fmt_mat(&g, 1e3),
    );
    print_table(
        "C'' in fF (paper eq. 20: [[443,225,-547],[225,457,-547],[-547,-547,1094]])",
        &hdr,
        &fmt_mat(&c, 1e15),
    );

    // Accuracy versus the exact admittance below f_max.
    let parts = Partitions::split(&net.stamp());
    let full = pact::FullAdmittance::new(&parts);
    // Error relative to the admittance scale ‖Y(f)‖_max at each
    // frequency (entrywise relative error on the exponentially decaying
    // transfer term Y12 is not what the tolerance bounds).
    let mut worst: f64 = 0.0;
    for k in 1..=20 {
        let f = 5e9 * k as f64 / 20.0;
        let ye = full.y_at(f).expect("exact Y");
        let yr = model.y_at(f);
        let scale = (0..net.num_ports)
            .flat_map(|i| (0..net.num_ports).map(move |j| (i, j)))
            .map(|(i, j)| ye[(i, j)].abs())
            .fold(1e-300, f64::max);
        for i in 0..net.num_ports {
            for j in 0..net.num_ports {
                worst = worst.max((yr[(i, j)] - ye[(i, j)]).abs() / scale);
            }
        }
    }
    println!(
        "worst-case error below 5 GHz, relative to ||Y(f)||: {:.2} % (tolerance 5 %)",
        worst * 100.0
    );
    assert!(model.is_passive(1e-8), "reduced model must be passive");
    println!("passivity check: PASS (G'', C'' non-negative definite)");
}
