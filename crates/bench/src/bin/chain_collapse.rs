//! Chain-collapse before/after study: reduces the embedded RC content of
//! a long transmission-line deck with and without the degree-2
//! chain-collapse pre-pass and writes the comparison to
//! `BENCH_extract.json` (Table 1/3-style before/after timings).
//!
//! The pre-pass replaces each degree-2 RC chain with an `m`-segment
//! equivalent chosen from the collapse spec's `(f_max, tol)` budget, so
//! PACT's eigendecomposition runs on the collapsed island instead of the
//! full one. The bench asserts the properties CI gates on:
//!
//! - collapse eliminates at least half of the island's internal nodes
//!   (`--smoke` uses the 2000-segment deck CI specifies);
//! - the pipeline is deterministic: two independent runs emit
//!   byte-identical re-stitched decks, hence bit-identical port
//!   responses;
//! - the re-stitched deck's in-band AC response matches the unreduced
//!   deck within the collapse budget;
//! - the mixed R/C/L/diode/MOSFET deck runs end-to-end through
//!   extraction (the acceptance workload).
//!
//! ```text
//! cargo run --release -p pact-bench --bin chain_collapse [--smoke] [SEGMENTS]
//! ```
//!
//! Defaults to a 2000-segment line; `--smoke` keeps the same deck but
//! skips nothing — the workload is already CI-sized.

use pact::{
    reduce_embedded, ChainCollapseSpec, CutoffSpec, EmbeddedReduction, ExtractOptions,
    ReduceOptions, ReductionSession,
};
use pact_bench::{print_table, secs, timed};
use pact_circuit::{log_frequencies, AcExcitation, Circuit};
use pact_gen::{inverter_pair_deck, rich_mixed_deck, LineSpec, RichDeckSpec};
use pact_netlist::Netlist;

/// In-band analysis ceiling and the collapse error budget against it.
const F_MAX: f64 = 1e9;
const COLLAPSE_TOL: f64 = 1e-4;

fn session() -> ReductionSession {
    // The cutoff tolerance is PACT's in-band truncation budget; match it
    // to the collapse budget so the asserted deviation bound reflects
    // both halves of the pipeline.
    let mut opts = ReduceOptions::new(CutoffSpec::new(F_MAX, COLLAPSE_TOL).expect("cutoff"));
    opts.threads = Some(1);
    ReductionSession::new(opts)
}

fn run(deck: &Netlist, collapse: bool) -> (EmbeddedReduction, f64) {
    let opts = ExtractOptions {
        collapse: collapse
            .then(|| ChainCollapseSpec::new(F_MAX, COLLAPSE_TOL).expect("collapse spec")),
        ..ExtractOptions::default()
    };
    let mut s = session();
    timed(|| reduce_embedded(deck, &mut s, &opts).expect("reduce_embedded"))
}

/// Worst relative in-band AC deviation between two decks at every node
/// they share, normalized per point by `max(|v|, 1)`.
fn worst_ac_deviation(a: &Netlist, b: &Netlist, source: &str, freqs: &[f64]) -> f64 {
    let ca = Circuit::from_netlist(a).expect("compile a");
    let cb = Circuit::from_netlist(b).expect("compile b");
    let ex = AcExcitation::VSource(source.to_owned());
    let ra = ca.ac_sweep(freqs, &ex).expect("ac a");
    let rb = cb.ac_sweep(freqs, &ex).expect("ac b");
    let mut worst = 0.0f64;
    for name in ca.node_names() {
        if name == "0" || cb.node_names().iter().all(|n| n != name) {
            continue;
        }
        let va = ra.voltage(name).expect("node a");
        let vb = rb.voltage(name).expect("node b");
        for (x, y) in va.iter().zip(vb) {
            let d = (*x - y).norm_sqr().sqrt() / x.norm_sqr().sqrt().max(1.0);
            worst = worst.max(d);
        }
    }
    worst
}

fn main() {
    let mut smoke = false;
    let mut segments = 2000usize;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => segments = other.parse().expect("args: [--smoke] [SEGMENTS]"),
        }
    }
    let deck = inverter_pair_deck(&LineSpec {
        segments,
        ..LineSpec::default()
    });
    println!("# Chain collapse before/after: {segments}-segment line deck, fmax {F_MAX:.0e}");

    let (plain, plain_s) = run(&deck, false);
    let (collapsed, collapsed_s) = run(&deck, true);

    let eliminated = collapsed.telemetry.counters.nodes_eliminated;
    let chains = collapsed.telemetry.counters.chains_collapsed;
    assert!(eliminated > 0, "collapse eliminated no nodes");
    assert!(
        eliminated as f64 >= 0.5 * plain.nodes_before as f64,
        "collapse eliminated {eliminated} of {} internal nodes (< 50%)",
        plain.nodes_before
    );

    // Determinism: an independent run must reproduce the deck bytes, and
    // identical bytes compile to identical circuits — bit-identical port
    // responses.
    let (again, _) = run(&deck, true);
    assert_eq!(
        collapsed.deck.to_string(),
        again.deck.to_string(),
        "collapse pipeline must be deterministic"
    );

    // The re-stitched deck tracks the unreduced one within the collapse
    // budget across the band.
    let freqs = log_frequencies(16, F_MAX / 1e3, F_MAX);
    let dev = worst_ac_deviation(&deck, &collapsed.deck, "Vin", &freqs);
    assert!(
        dev <= 10.0 * COLLAPSE_TOL,
        "collapsed deck deviates by {dev:.3e} in band (budget {COLLAPSE_TOL:.0e})"
    );

    // Acceptance workload: the mixed-element deck extracts and re-stitches
    // end-to-end.
    let rich = rich_mixed_deck(&RichDeckSpec::default());
    let (rich_red, _) = run(&rich, true);
    assert!(
        rich_red.telemetry.counters.extract_subnets >= 2,
        "mixed deck must yield multiple RC islands"
    );
    let rich_dev = worst_ac_deviation(
        &rich,
        &rich_red.deck,
        "Vin",
        &log_frequencies(8, 1e6, F_MAX),
    );
    assert!(
        rich_dev <= 1e-3,
        "mixed deck deviates by {rich_dev:.3e} after extraction"
    );

    let speedup = plain_s / collapsed_s;
    print_table(
        "Chain collapse A/B (reduce_embedded wall clock)",
        &["mode", "seconds", "island nodes", "eliminated", "speedup"],
        &[
            vec![
                "extract only".into(),
                secs(plain_s),
                format!("{}", plain.nodes_before),
                "0".into(),
                "1.00".into(),
            ],
            vec![
                "collapse + extract".into(),
                secs(collapsed_s),
                format!("{}", collapsed.nodes_before),
                format!("{eliminated}"),
                format!("{speedup:.2}"),
            ],
        ],
    );
    println!(
        "PERF plain_s={plain_s:.6} collapsed_s={collapsed_s:.6} speedup={speedup:.3} \
         chains={chains} eliminated={eliminated} ac_dev={dev:.3e} rich_dev={rich_dev:.3e}"
    );

    let json = render_json(
        segments,
        &plain,
        &collapsed,
        plain_s,
        collapsed_s,
        dev,
        rich_dev,
    );
    std::fs::write("BENCH_extract.json", &json).expect("write BENCH_extract.json");
    println!("wrote BENCH_extract.json");
    if smoke {
        println!("chain collapse OK");
    }
}

/// Hand-rolled JSON (the workspace has no serializer dependency).
fn render_json(
    segments: usize,
    plain: &EmbeddedReduction,
    collapsed: &EmbeddedReduction,
    plain_s: f64,
    collapsed_s: f64,
    ac_dev: f64,
    rich_dev: f64,
) -> String {
    let c = &collapsed.telemetry.counters;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"chain_collapse\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"segments\": {segments}, \"fmax\": {F_MAX:e}, \
         \"collapse_tol\": {COLLAPSE_TOL:e}}},\n"
    ));
    out.push_str(&format!(
        "  \"extract_only\": {{\"seconds\": {plain_s:.6}, \"island_nodes\": {}, \
         \"nodes_after\": {}}},\n",
        plain.nodes_before, plain.nodes_after
    ));
    out.push_str(&format!(
        "  \"collapse_extract\": {{\"seconds\": {collapsed_s:.6}, \"island_nodes\": {}, \
         \"nodes_after\": {}, \"chains_collapsed\": {}, \"nodes_eliminated\": {}}},\n",
        collapsed.nodes_before, collapsed.nodes_after, c.chains_collapsed, c.nodes_eliminated
    ));
    out.push_str(&format!("  \"speedup\": {:.4},\n", plain_s / collapsed_s));
    out.push_str(&format!("  \"ac_deviation\": {ac_dev:e},\n"));
    out.push_str(&format!("  \"rich_deck_ac_deviation\": {rich_dev:e}\n"));
    out.push_str("}\n");
    out
}
