//! AC-sweep scaling study: points × threads with a factor-vs-refactor
//! ablation. One symbolic LU analysis serves the whole `G + jωC` grid
//! (numeric-only refactorization per point, fanned across worker
//! threads); the ablation re-runs the full symbolic + numeric
//! factorization at every frequency. Measurements go to
//! `BENCH_sweep.json`.
//!
//! The sweep voltages are bit-identical across thread counts *and*
//! across the reuse ablation (a refactorization reproduces a fresh
//! factorization exactly — see `tests/refactor_equivalence.rs`); this
//! binary measures only the wall clock.
//!
//! ```text
//! cargo run --release -p pact-bench --bin ac_sweep_scaling [NX NY NZ CONTACTS POINTS]
//! cargo run --release -p pact-bench --bin ac_sweep_scaling -- --smoke
//! ```
//!
//! Defaults to an 8×8×54 substrate mesh with 24 contacts (3456 nodes)
//! swept over 60 log-spaced points — the "large mesh" acceptance
//! configuration. The tall-thin aspect keeps the natural-order LU
//! bandwidth small so the sweep finishes quickly even on one core;
//! the reduction factors the same node count either way. `--smoke` runs a small deterministic self-check
//! (AC sweep at 1 vs 4 threads, reuse ablation, linear-transient
//! factorization accounting) and prints a `PERF` line for CI to record.

use pact_bench::{print_table, secs, timed};
use pact_circuit::{AcExcitation, AcOptions, Circuit};
use pact_gen::{network_to_elements, rc_line_elements, substrate_mesh, LineSpec, MeshSpec};
use pact_netlist::{Element, ElementKind, Netlist, Waveform};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Sample {
    threads: usize,
    seconds: f64,
    factorizations: usize,
    refactorizations: usize,
}

/// A substrate mesh as a simulatable deck: the generated RC network
/// plus an AC drive source at the first contact.
fn mesh_circuit(nx: usize, ny: usize, nz: usize, contacts: usize) -> (Circuit, usize) {
    let net = substrate_mesh(&MeshSpec {
        nx,
        ny,
        nz,
        num_contacts: contacts,
        ..MeshSpec::table4()
    });
    let nodes = net.num_nodes();
    let mut nl = Netlist::new(format!("ac sweep mesh {nx}x{ny}x{nz}"));
    nl.elements = network_to_elements(&net, "m");
    nl.elements.push(Element {
        name: "Vac".to_owned(),
        kind: ElementKind::VSource {
            p: net.node_names[0].clone(),
            n: "0".to_owned(),
            wave: Waveform::Dc(0.0),
        },
    });
    (Circuit::from_netlist(&nl).expect("mesh circuit"), nodes)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let nums: Vec<usize> = argv
        .iter()
        .map(|a| {
            a.parse()
                .expect("args: NX NY NZ CONTACTS POINTS (positive integers) or --smoke")
        })
        .collect();
    let (nx, ny, nz, contacts, points) = match nums.as_slice() {
        [] => (8, 8, 54, 24, 60),
        [nx, ny, nz, m, p] => (*nx, *ny, *nz, *m, *p),
        _ => panic!("args: NX NY NZ CONTACTS POINTS (all five or none)"),
    };

    println!("# AC sweep scaling: {nx}x{ny}x{nz} mesh, {contacts} contacts, {points} points");
    println!(
        "host reports {} available core(s)",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    let (ckt, nodes) = mesh_circuit(nx, ny, nz, contacts);
    println!("mesh: {nodes} nodes");
    let freqs = grid(points);
    let exc = AcExcitation::VSource("Vac".to_owned());

    // Thread scaling with symbolic reuse (the production path).
    let mut samples = Vec::new();
    for &t in &THREAD_COUNTS {
        let opt = AcOptions {
            threads: Some(t),
            reuse_symbolic: true,
        };
        // Warm-up at each thread count so allocator state is steady.
        let _ = ckt.ac_sweep_with(&freqs, &exc, &opt).expect("ac");
        let (ac, seconds) = timed(|| ckt.ac_sweep_with(&freqs, &exc, &opt).expect("ac"));
        println!(
            "threads={t}: {} s ({} factorizations, {} refactorizations)",
            secs(seconds),
            ac.stats.factorizations,
            ac.stats.refactorizations
        );
        samples.push(Sample {
            threads: t,
            seconds,
            factorizations: ac.stats.factorizations,
            refactorizations: ac.stats.refactorizations,
        });
    }

    // Ablation: full symbolic + numeric factorization at every point,
    // single-threaded — the pre-reuse baseline.
    let ablate_opt = AcOptions {
        threads: Some(1),
        reuse_symbolic: false,
    };
    let _ = ckt.ac_sweep_with(&freqs, &exc, &ablate_opt).expect("ac");
    let (ab, ablation_s) = timed(|| ckt.ac_sweep_with(&freqs, &exc, &ablate_opt).expect("ac"));
    println!(
        "ablation (reuse off, 1 thread): {} s ({} factorizations)",
        secs(ablation_s),
        ab.stats.factorizations
    );

    let base = samples[0].seconds;
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.threads),
                secs(s.seconds),
                format!("{:.2}", base / s.seconds),
                format!("{:.2}", ablation_s / s.seconds),
            ]
        })
        .collect();
    print_table(
        "AC sweep scaling (reuse on)",
        &["threads", "sweep (s)", "vs 1 thread", "vs no-reuse"],
        &rows,
    );
    println!(
        "symbolic reuse speedup at 1 thread: {:.2}x",
        ablation_s / base
    );

    let json = render_json(nx, ny, nz, nodes, points, &samples, ablation_s, &ab.stats);
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
}

fn grid(points: usize) -> Vec<f64> {
    (0..points.max(2))
        .map(|k| 1e6 * (1e10f64 / 1e6).powf(k as f64 / (points.max(2) - 1) as f64))
        .collect()
}

/// Small self-check for CI: sweep determinism across thread counts and
/// the reuse ablation, plus the linear-transient "one symbolic, one
/// numeric per step size" accounting, with a `PERF` line recording the
/// factor-vs-refactor wall clock.
fn smoke() {
    let (ckt, nodes) = mesh_circuit(8, 8, 3, 6);
    let freqs = grid(16);
    let exc = AcExcitation::VSource("Vac".to_owned());
    println!("# smoke: {nodes}-node mesh, {} points", freqs.len());

    let opt1 = AcOptions {
        threads: Some(1),
        reuse_symbolic: true,
    };
    let _ = ckt.ac_sweep_with(&freqs, &exc, &opt1).expect("ac");
    let (base, reuse_s) = timed(|| ckt.ac_sweep_with(&freqs, &exc, &opt1).expect("ac"));
    let par = ckt
        .ac_sweep_with(
            &freqs,
            &exc,
            &AcOptions {
                threads: Some(4),
                reuse_symbolic: true,
            },
        )
        .expect("ac");
    assert_eq!(
        base.voltages, par.voltages,
        "AC sweep not bit-identical at 1 vs 4 threads"
    );
    assert_eq!(
        (base.stats.factorizations, base.stats.refactorizations),
        (par.stats.factorizations, par.stats.refactorizations),
        "AC sweep work counters differ at 1 vs 4 threads"
    );
    println!(
        "ac sweep determinism OK (1 vs 4 threads, {} points)",
        freqs.len()
    );

    let ablate_opt = AcOptions {
        threads: Some(1),
        reuse_symbolic: false,
    };
    let _ = ckt.ac_sweep_with(&freqs, &exc, &ablate_opt).expect("ac");
    let (ablate, fresh_s) = timed(|| ckt.ac_sweep_with(&freqs, &exc, &ablate_opt).expect("ac"));
    assert_eq!(
        base.voltages, ablate.voltages,
        "symbolic reuse changed the sweep result"
    );
    assert!(
        ablate.stats.factorizations > base.stats.factorizations,
        "ablation did not disable symbolic reuse"
    );
    println!("reuse-vs-fresh equivalence OK");

    // Linear transient: one symbolic analysis, at most one numeric
    // factorization per distinct (gmin, step-size) key, and repeat runs
    // are bit-identical.
    let mut nl = Netlist::new("smoke line".to_owned());
    nl.elements = rc_line_elements(
        &LineSpec {
            segments: 40,
            ..LineSpec::default()
        },
        "in",
        "out",
        "ln",
    );
    // Current-source drive keeps the MNA diagonally dominant, so the
    // pivot order captured at the first gmin stage serves the whole run
    // and the "exactly one symbolic analysis" invariant is exact.
    nl.elements.push(Element {
        name: "Iin".to_owned(),
        kind: ElementKind::ISource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 1e-3,
                td: 0.1e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 1.0e-9,
                per: 4e-9,
            },
        },
    });
    let line = Circuit::from_netlist(&nl).expect("line circuit");
    let tr1 = line.transient(2e-11, 4e-9).expect("tran");
    let tr2 = line.transient(2e-11, 4e-9).expect("tran");
    assert_eq!(tr1.waves, tr2.waves, "transient runs not bit-identical");
    assert_eq!(
        tr1.stats.factorizations, 1,
        "linear transient must perform exactly one symbolic analysis"
    );
    assert!(
        tr1.stats.refactorizations <= 12,
        "linear transient must cache numerics per step size (got {} refactorizations)",
        tr1.stats.refactorizations
    );
    println!(
        "transient accounting OK ({} steps, {} factorization, {} refactorizations)",
        tr1.stats.steps, tr1.stats.factorizations, tr1.stats.refactorizations
    );

    println!(
        "PERF fresh_factor_sweep_s={fresh_s:.6} refactor_sweep_s={reuse_s:.6} reuse_speedup={:.2}",
        fresh_s / reuse_s
    );
    println!("smoke OK");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    nx: usize,
    ny: usize,
    nz: usize,
    nodes: usize,
    points: usize,
    samples: &[Sample],
    ablation_s: f64,
    ablation_stats: &pact_circuit::SimStats,
) -> String {
    // Hand-rolled JSON (the workspace has no serializer dependency).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"ac_sweep_scaling\",\n");
    out.push_str(&format!(
        "  \"mesh\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"nodes\": {nodes}}},\n"
    ));
    out.push_str(&format!("  \"points\": {points},\n"));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str("  \"samples\": [\n");
    for (k, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"seconds\": {:.6}, \"factorizations\": {}, \"refactorizations\": {}}}{}\n",
            s.threads,
            s.seconds,
            s.factorizations,
            s.refactorizations,
            if k + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"ablation\": {{\"threads\": 1, \"reuse_symbolic\": false, \"seconds\": {:.6}, \"factorizations\": {}, \"refactorizations\": {}}},\n",
        ablation_s, ablation_stats.factorizations, ablation_stats.refactorizations
    ));
    out.push_str(&format!(
        "  \"reuse_speedup_1_thread\": {:.4}\n",
        ablation_s / samples[0].seconds
    ));
    out.push_str("}\n");
    out
}
