//! Table 3 / prerequisite of Figure 6: transient simulation of the
//! one-bit full adder over the substrate mesh, original vs the
//! 1 GHz / 5 % PACT reduction. The paper reports a >300× simulation
//! speedup and two-orders-of-magnitude memory reduction.

use pact_bench::{mb, print_table, reduce_deck_laso, secs, timed};
use pact_circuit::Circuit;
use pact_gen::{full_adder_deck, MeshSpec};
use pact_netlist::Element;

fn main() {
    println!("# Table 3: full-adder transient, original vs reduced substrate");
    let deck = full_adder_deck(&MeshSpec::table2());
    let nl = &deck.netlist;
    let rc_orig = nl.count(Element::is_rc);
    println!(
        "\noriginal: {} RC elements, monitor = {} (paper: 1540 nodes, 5256 RC)",
        rc_orig, deck.monitor_port
    );

    let (reduced_nl, red, t_red) = reduce_deck_laso(nl, 1e9, 0.05, 1e-9);
    let rc_red = reduced_nl.count(Element::is_rc);
    println!(
        "reduction: {} poles retained across {} ports in {} s",
        red.model.num_poles(),
        red.model.num_ports(),
        secs(t_red)
    );

    let tstep = 100e-12;
    let tstop = 16e-9;
    let mut rows = Vec::new();
    for (name, d, red_info) in [
        ("original", nl, None),
        (
            "reduced, 1 GHz",
            &reduced_nl,
            Some((t_red, red.stats.modelled_memory_bytes)),
        ),
    ] {
        let ckt = Circuit::from_netlist(d).expect("compile");
        let (nodes, _, caps, mosfets) = ckt.device_counts();
        let (tr, sim_t) = timed(|| ckt.transient(tstep, tstop).expect("transient"));
        let (rt, rm) = red_info
            .map(|(t, m)| (secs(t), mb(m)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        rows.push(vec![
            name.to_owned(),
            format!("{nodes}"),
            format!("{}", d.count(Element::is_rc)),
            format!("{mosfets} / {caps}"),
            rt,
            rm,
            secs(sim_t),
            mb(tr.stats.modelled_memory_bytes),
        ]);
    }
    let speedup: f64 = {
        let a: f64 = rows[0][6].parse().unwrap_or(1.0);
        let b: f64 = rows[1][6].parse().unwrap_or(1.0);
        a / b.max(1e-9)
    };
    print_table(
        "Table 3 (paper: 12511.6 s → 40.0 s, >300×; memory 44.9 → 0.4 MB)",
        &[
            "substrate network",
            "nodes",
            "RC elements",
            "MOSFETs / caps",
            "RCFIT time (s)",
            "RCFIT mem (MB)",
            "sim time (s)",
            "sim mem (MB)",
        ],
        &rows,
    );
    println!("simulation speedup from reduction: {speedup:.0}x");
    println!("original RC count {rc_orig} -> reduced {rc_red}");
}
