//! Table 2: reduction of the 25-port substrate mesh at three maximum
//! frequencies (3 GHz / 1 GHz / 300 MHz, 5 % tolerance), plus the
//! 81-point AC sweep cost on the original and each reduced netlist.

use pact::{CutoffSpec, EigenSelect, ReduceOptions};
use pact_bench::{mb, print_table, secs, timed};
use pact_circuit::{log_frequencies, AcExcitation, Circuit};
use pact_gen::{network_to_elements, substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::{Element, Netlist};
use pact_sparse::Ordering;

fn main() {
    println!("# Table 2: substrate mesh with 25 ports (AC sweep, 81 frequencies)");
    let spec = MeshSpec::table2();
    let net = substrate_mesh(&spec);
    let (r0, c0) = net.element_counts();
    println!(
        "\noriginal mesh: {} nodes ({} ports), {} R, {} C  (paper: 1525 nodes, 25 ports, 4970 R, 253 C)",
        net.num_nodes(),
        net.num_ports,
        r0,
        c0
    );

    // Original-network AC reference (the paper's 1841.5 s / 47.6 MB row).
    let freqs = log_frequencies(27, 1e7, 1e10); // 81 points over 3 decades
    let monitor = "port24";
    let inject = "port3"; // an NMOS contact
    let deck_of = |elements: Vec<Element>| -> Netlist {
        let mut nl = Netlist::new("mesh ac");
        nl.elements = elements;
        nl
    };
    let orig_deck = deck_of(network_to_elements(&net, "sub"));
    let orig_ckt = Circuit::from_netlist(&orig_deck).expect("compile original");
    let (orig_ac, orig_t) = timed(|| {
        orig_ckt
            .ac_sweep(&freqs, &AcExcitation::CurrentInto(inject.into()))
            .expect("original AC")
    });
    let orig_z = orig_ac.voltage(monitor).expect("monitor voltage");

    let mut rows = vec![vec![
        "original".to_owned(),
        format!("{}", net.num_nodes()),
        format!("{r0}"),
        format!("{c0}"),
        "-".into(),
        "-".into(),
        "-".into(),
        secs(orig_t),
        mb(orig_ac.stats.modelled_memory_bytes),
    ]];

    // Flat PACT is the paper's Table 2; the multipoint rows show the
    // same cutoff spec served by the shifted-expansion backend
    // (`--strategy multipoint`) for a pole-count comparison at spec.
    let strategies = [
        ("flat", pact::ReduceStrategy::Flat),
        (
            "mp",
            pact::ReduceStrategy::Multipoint {
                num_points: pact::multipoint::DEFAULT_NUM_POINTS,
            },
        ),
    ];
    for &fmax in &[3e9, 1e9, 300e6] {
        for (tag, strategy) in &strategies {
            let opts = ReduceOptions {
                cutoff: CutoffSpec::new(fmax, 0.05).expect("cutoff"),
                eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
                ordering: Ordering::NestedDissection,
                dense_threshold: 400,
                threads: None,
                pivot_relief: None,
                strategy: *strategy,
                expansion_points: None,
                chol_kernel: pact::CholKernel::Auto,
            };
            let (red, t_red) = timed(|| pact::reduce_network(&net, &opts).expect("reduce"));
            let elements = red.model.to_netlist_elements("red", 1e-9);
            let (rr, rc) = count_rc(&elements);
            let red_deck = deck_of(elements);
            let red_ckt = Circuit::from_netlist(&red_deck).expect("compile reduced");
            let (red_ac, ac_t) = timed(|| {
                red_ckt
                    .ac_sweep(&freqs, &AcExcitation::CurrentInto(inject.into()))
                    .expect("reduced AC")
            });
            // Figure 5's error criterion: |Z| relative to the original
            // below fmax must stay within 5 %.
            let red_z = red_ac.voltage(monitor).expect("monitor voltage");
            let mut worst_below: f64 = 0.0;
            for (k, &f) in freqs.iter().enumerate() {
                if f > fmax {
                    break;
                }
                let rel = (red_z[k].abs() - orig_z[k].abs()).abs() / orig_z[k].abs();
                worst_below = worst_below.max(rel);
            }
            rows.push(vec![
                format!("{} GHz {tag}", fmax / 1e9),
                format!("{}", red.model.num_ports() + red.model.num_poles()),
                format!("{rr}"),
                format!("{rc}"),
                format!("{}", red.model.num_poles()),
                secs(t_red),
                mb(red.stats.modelled_memory_bytes),
                secs(ac_t),
                mb(red_ac.stats.modelled_memory_bytes),
            ]);
            println!(
                "fmax = {:.1} GHz [{tag}]: {} poles, worst |Z| error below fmax = {:.2} % (spec 5 %)",
                fmax / 1e9,
                red.model.num_poles(),
                worst_below * 100.0
            );
        }
    }
    print_table(
        "Table 2 (paper shape: poles 6/1/0 at 3/1/0.3 GHz; reduced AC orders faster than original)",
        &[
            "max freq",
            "total nodes",
            "R's",
            "C's",
            "poles",
            "RCFIT time (s)",
            "RCFIT mem (MB)",
            "AC time (s)",
            "AC mem (MB)",
        ],
        &rows,
    );
}

fn count_rc(els: &[Element]) -> (usize, usize) {
    let r = els
        .iter()
        .filter(|e| matches!(e.kind, pact_netlist::ElementKind::Resistor { .. }))
        .count();
    let c = els
        .iter()
        .filter(|e| matches!(e.kind, pact_netlist::ElementKind::Capacitor { .. }))
        .count();
    (r, c)
}
