//! Section 4: computational complexity of PACT versus the Padé-based
//! methods as the number of ports grows. Sweeps the contact count of a
//! fixed-size substrate mesh and reports measured time plus the
//! measured/modelled memory of both approaches — the paper's claim is
//! that the Padé block memory and orthogonalization work grow with `m`
//! while LASO's do not.

use pact::{CutoffSpec, EigenSelect, ReduceOptions};
use pact_baselines::{block_krylov_reduce, mpvl_memory, pact_lanczos_memory};
use pact_bench::{mb, print_table, secs, timed};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_sparse::Ordering;

fn main() {
    println!("# Section 4: complexity vs number of ports m (fixed mesh)");
    let mut rows = Vec::new();
    for &m in &[8usize, 16, 32, 64, 128] {
        let spec = MeshSpec {
            nx: 20,
            ny: 20,
            nz: 5,
            num_contacts: m,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let stamped = net.stamp();
        let parts = pact::Partitions::split(&stamped);
        let ports: Vec<String> = net.node_names[..net.num_ports].to_vec();
        let n = parts.n;

        let opts = ReduceOptions {
            cutoff: CutoffSpec::new(1e9, 0.05).expect("cutoff"),
            eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
            ordering: Ordering::NestedDissection,
            dense_threshold: 0,
            threads: None,
            pivot_relief: None,
            strategy: pact::ReduceStrategy::Flat,
            expansion_points: None,
            chol_kernel: pact::CholKernel::Auto,
        };
        let (pact_red, t_pact) = timed(|| pact::reduce_network(&net, &opts).expect("pact"));
        let laso = pact_red.stats.lanczos.unwrap_or_default();

        // Same reduction with the scalar up-looking Cholesky kernel:
        // isolates the supernodal speedup on the factorization hot path.
        let scalar_opts = ReduceOptions {
            expansion_points: None,
            chol_kernel: pact::CholKernel::Scalar,
            ..opts.clone()
        };
        let (_, t_scalar) =
            timed(|| pact::reduce_network(&net, &scalar_opts).expect("pact scalar"));

        let (krylov, t_kry) =
            timed(|| block_krylov_reduce(&parts, &ports, 2, Ordering::Rcm).expect("krylov"));

        rows.push(vec![
            format!("{m}"),
            format!("{n}"),
            format!("{}", pact_red.model.num_poles()),
            secs(t_pact),
            secs(t_scalar),
            format!("{}", laso.orthogonalizations),
            mb(pact_lanczos_memory(n, pact_red.model.num_poles())),
            secs(t_kry),
            format!("{}", krylov.orthogonalizations),
            mb(krylov.basis_memory_bytes),
            mb(mpvl_memory(m, n)),
        ]);
    }
    print_table(
        "PACT (LASO) vs block-Krylov Padé vs MPVL model — paper: Padé memory/ops grow as m², PACT's do not",
        &[
            "ports m",
            "internal n",
            "poles",
            "supernodal (s)",
            "scalar chol (s)",
            "PACT orth ops",
            "PACT eig mem (MB)",
            "Padé time (s)",
            "Padé orth ops",
            "Padé basis mem (MB)",
            "MPVL model mem (MB)",
        ],
        &rows,
    );
    println!(
        "(measured columns from the implementations; 'model' column from the Section-4 formulas)"
    );
}
