//! Ablation: the sparsification heuristic's element-count vs accuracy
//! trade-off (Section 5: "sparsity is enhanced using a heuristic which
//! drops very small off-diagonal elements while maintaining passivity").
//!
//! Sweeps the drop threshold on a reduced substrate-mesh model and
//! reports emitted element counts, worst admittance error below f_max,
//! and the passivity margin — which must stay non-negative at every
//! threshold.

use pact::{CutoffSpec, EigenSelect, Partitions, ReduceOptions};
use pact_bench::print_table;
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::sparsify_preserving_passivity;
use pact_sparse::{sym_eig, Ordering};

fn main() {
    println!("# Ablation: sparsification threshold vs element count / accuracy / passivity");
    let net = substrate_mesh(&MeshSpec::table2());
    let parts = Partitions::split(&net.stamp());
    let full = pact::FullAdmittance::new(&parts);
    let fmax = 1e9;
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(fmax, 0.05).expect("cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let red = pact::reduce_network(&net, &opts).expect("reduce");
    let m = red.model.num_ports();

    // Reference Y of the exact network at a few frequencies ≤ fmax.
    let freqs = [1e8, 4e8, 1e9];
    let exact: Vec<_> = freqs.iter().map(|&f| full.y_at(f).expect("Y")).collect();

    let mut rows = Vec::new();
    for &tol in &[0.0, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2] {
        let (mut g, mut c) = red.model.to_matrices_normalized();
        let dropped = if tol > 0.0 {
            sparsify_preserving_passivity(&mut g, tol) + sparsify_preserving_passivity(&mut c, tol)
        } else {
            0
        };
        // Element count of the netlist this would emit.
        let count_entries = |mat: &pact_sparse::DMat<f64>| -> usize {
            let mut n = 0;
            for i in 0..mat.nrows() {
                for j in i + 1..mat.ncols() {
                    if mat[(i, j)] != 0.0 {
                        n += 1;
                    }
                }
            }
            n
        };
        let elements = count_entries(&g) + count_entries(&c) + 2 * g.nrows();
        // Worst admittance error from the sparsified matrices: rebuild a
        // model-equivalent Y via the dense matrices (ports block + poles).
        let mut worst: f64 = 0.0;
        for (kf, &f) in freqs.iter().enumerate() {
            let y = y_from_matrices(&g, &c, m, f);
            let scale = (0..m)
                .flat_map(|i| (0..m).map(move |j| (i, j)))
                .map(|(i, j)| exact[kf][(i, j)].abs())
                .fold(1e-300, f64::max);
            for i in 0..m {
                for j in 0..m {
                    worst = worst.max((y[(i, j)] - exact[kf][(i, j)]).abs() / scale);
                }
            }
        }
        // Passivity margins after sparsification.
        let gmin = sym_eig(&g).expect("eig").values[0];
        let cmin = sym_eig(&c).expect("eig").values[0];
        rows.push(vec![
            format!("{tol:.0e}"),
            format!("{dropped}"),
            format!("{elements}"),
            format!("{:.2} %", worst * 100.0),
            format!("{gmin:.2e}"),
            format!("{cmin:.2e}"),
        ]);
    }
    print_table(
        "threshold sweep (passivity margins must stay ≥ ~0 at every row)",
        &[
            "drop tol",
            "entries dropped",
            "~elements",
            "worst err ≤ fmax",
            "λmin(G'')",
            "λmin(C'')",
        ],
        &rows,
    );
}

/// Evaluates the admittance of a reduced (G'', C'') pair by eliminating
/// the internal block at `s = j·2πf` — works on sparsified matrices where
/// the internal structure is no longer exactly (I, Λ).
fn y_from_matrices(
    g: &pact_sparse::DMat<f64>,
    c: &pact_sparse::DMat<f64>,
    m: usize,
    f: f64,
) -> pact_sparse::DMat<pact_sparse::Complex64> {
    use pact_sparse::{Complex64, DMat, DenseLu};
    let dim = g.nrows();
    let k = dim - m;
    let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
    let full = DMat::<Complex64>::from_fn(dim, dim, |i, j| {
        Complex64::from_real(g[(i, j)]) + s.scale(c[(i, j)])
    });
    if k == 0 {
        return full;
    }
    // Y = App − Apb Abb⁻¹ Abp (Schur complement onto the ports).
    let app = full.submatrix(0..m, 0..m);
    let apb = full.submatrix(0..m, m..dim);
    let abp = full.submatrix(m..dim, 0..m);
    let abb = full.submatrix(m..dim, m..dim);
    let lu = DenseLu::factor(&abb).expect("internal block invertible");
    let x = lu.solve_mat(&abp);
    let corr = apb.matmul(&x);
    let mut y = app;
    for i in 0..m {
        for j in 0..m {
            let v = y[(i, j)] - corr[(i, j)];
            y[(i, j)] = v;
        }
    }
    y
}
