//! Table 1 / Figure 4 workload: the multiplier-like array (the stand-in
//! for the paper's extracted 8-bit multiplier) simulated without
//! parasitics, with the full RC parasitics, and with the PACT-reduced
//! parasitics (5 %, 500 MHz). Reports the paper's Table 1 columns.

use pact_bench::{mb, print_table, reduce_deck, secs, timed};
use pact_circuit::Circuit;
use pact_gen::{multiplier_like_deck, multiplier_like_deck_no_parasitics, MultiplierSpec};
use pact_netlist::Element;

fn main() {
    println!("# Table 1: multiplier-like circuit with interconnect parasitics");
    println!("\n(workload scaled ~20x below the paper's 7264-transistor layout; see DESIGN.md §3)");
    let spec = MultiplierSpec::scaled_down();
    let (deck_none, stats_none) = multiplier_like_deck_no_parasitics(&spec);
    let (deck_full, stats_full) = multiplier_like_deck(&spec);
    let (deck_red, red, t_red) = reduce_deck(&deck_full, 500e6, 0.05, 1e-9);

    let tstep = 50e-12;
    let tstop = 10e-9;
    let mut rows = Vec::new();
    let mut observe: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (name, deck, rc_count, red_info) in [
        ("no parasitics", &deck_none, stats_none.rc_elements, None),
        ("full RC network", &deck_full, stats_full.rc_elements, None),
        (
            "PACT reduced (5 %, 500 MHz)",
            &deck_red,
            deck_red.count(Element::is_rc),
            Some((t_red, red.stats.modelled_memory_bytes)),
        ),
    ] {
        let ckt = Circuit::from_netlist(deck).expect("compile");
        let (nodes, _, _, mosfets) = ckt.device_counts();
        let (tr, sim_t) = timed(|| ckt.transient(tstep, tstop).expect("transient"));
        let (rcfit_t, rcfit_m) = red_info
            .map(|(t, m)| (secs(t), mb(m)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        rows.push(vec![
            name.to_owned(),
            format!("{nodes}"),
            format!("{mosfets}"),
            format!("{rc_count}"),
            rcfit_t,
            rcfit_m,
            secs(sim_t),
            mb(tr.stats.modelled_memory_bytes),
        ]);
        let v = tr.voltage("out0").expect("critical path output");
        observe.push((name.to_owned(), tr.times.clone(), v));
    }
    print_table(
        "Table 1 (paper: reduced network cuts sim time ~12 % because transistor cost dominates)",
        &[
            "netlist",
            "nodes",
            "MOSFETs",
            "RC elements",
            "RCFIT time (s)",
            "RCFIT mem (MB)",
            "sim time (s)",
            "sim mem (MB)",
        ],
        &rows,
    );
    println!(
        "retained poles: {} across {} ports",
        red.model.num_poles(),
        red.model.num_ports()
    );

    // Figure 4 check: reduced tracks full on the critical path.
    let reference = &observe[1];
    let mut worst: f64 = 0.0;
    let sampled = &observe[2];
    for (k, &t) in reference.1.iter().enumerate() {
        let mut vi = *sampled.2.last().unwrap();
        for kk in 1..sampled.1.len() {
            if t <= sampled.1[kk] {
                let f = (t - sampled.1[kk - 1]) / (sampled.1[kk] - sampled.1[kk - 1]).max(1e-30);
                vi = sampled.2[kk - 1] + f * (sampled.2[kk] - sampled.2[kk - 1]);
                break;
            }
        }
        worst = worst.max((vi - reference.2[k]).abs());
    }
    println!("max |v(out0)_reduced − v(out0)_full| = {worst:.3} V over 0–10 ns");
}
