//! Serving-grade load study: drives the `rcfitd` daemon with a stream of
//! mixed decks (substrate mesh, power grid, inverter line — each with a
//! per-deck capacitor value sweep on a fixed topology) from several
//! client threads, and compares it against a cold one-shot loop (a fresh
//! `ReductionSession` per deck, sequential — what scripting `rcfit` per
//! deck costs). Reports latency percentiles, warm-session hit rate and
//! the throughput ratio to `BENCH_serve.json`.
//!
//! Every daemon response is also byte-compared against the cold loop's
//! rendered deck, so the run doubles as a large-N check of the
//! scheduling-not-numerics contract.
//!
//! ```text
//! cargo run --release -p pact-bench --bin serve_load [--smoke] [DECKS]
//! ```
//!
//! Defaults to 1200 decks over 3 topology families; `--smoke` shrinks
//! the families and deck count for CI and skips the JSON report (the
//! committed `BENCH_serve.json` is always a full run).

use std::collections::HashMap;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pact::json::Value;
use pact::ReductionSession;
use pact_bench::{print_table, secs, timed};
use pact_gen::{
    inverter_pair_deck, network_to_elements, power_grid_deck, substrate_mesh, LineSpec, MeshSpec,
    PowerGridSpec,
};
use pact_netlist::{ElementKind, Netlist};
use pact_serve::{
    prepare_deck, reduce_prepared, render_reduced, Daemon, DeckOptions, ReplySink, ServeConfig,
};

/// One fixed-topology deck family of the mixed workload.
struct Family {
    name: &'static str,
    base: Netlist,
    /// Ports forced via the request's `ports` option (pure-RC decks have
    /// no port-forcing devices).
    ports: Vec<String>,
}

fn families(smoke: bool) -> Vec<Family> {
    // Full-mode sizes are picked so the symbolic phase (ordering +
    // elimination tree) is a real fraction of each reduction — that is
    // the work the daemon's warm sessions amortize.
    let (mesh_n, mesh_z, contacts, grid_n, taps, segments) = if smoke {
        (6, 2, 4, 6, 2, 20)
    } else {
        (14, 4, 6, 20, 4, 800)
    };
    let mesh = substrate_mesh(&MeshSpec {
        nx: mesh_n,
        ny: mesh_n,
        nz: mesh_z,
        num_contacts: contacts,
        num_wells: contacts / 2,
        ..MeshSpec::table2()
    });
    vec![
        Family {
            name: "mesh",
            base: Netlist {
                title: "* serve_load substrate mesh".to_owned(),
                elements: network_to_elements(&mesh, "m"),
                ..Netlist::default()
            },
            ports: (0..contacts).map(|k| format!("port{k}")).collect(),
        },
        Family {
            name: "grid",
            base: power_grid_deck(&PowerGridSpec {
                nx: grid_n,
                ny: grid_n,
                num_taps: taps,
                ..PowerGridSpec::default()
            })
            .netlist,
            ports: Vec::new(),
        },
        Family {
            name: "line",
            base: inverter_pair_deck(&LineSpec {
                segments,
                ..LineSpec::default()
            }),
            ports: Vec::new(),
        },
    ]
}

/// Variant `k` of a family: identical topology, capacitor values scaled
/// by a process-corner-style sweep factor. Same `topology_key`, so the
/// daemon's warm sessions apply; different numbers, so every deck is
/// real work.
fn variant_deck(fam: &Family, k: usize) -> String {
    let scale = 1.0 + 0.03 * (k % 9) as f64;
    let mut deck = fam.base.clone();
    for e in &mut deck.elements {
        if let ElementKind::Capacitor { farads, .. } = &mut e.kind {
            *farads *= scale;
        }
    }
    deck.to_string()
}

/// One request of the workload: the JSONL line a client sends plus the
/// raw deck text and ports (for the cold reference run).
struct Work {
    id: String,
    line: String,
    deck: String,
    ports: Vec<String>,
}

fn workload(families: &[Family], total: usize) -> Vec<Work> {
    (0..total)
        .map(|k| {
            let fam = &families[k % families.len()];
            let deck = variant_deck(fam, k / families.len());
            let id = format!("{}-{k}", fam.name);
            let mut options = vec![("threads".to_owned(), Value::num(1.0))];
            if !fam.ports.is_empty() {
                options.push((
                    "ports".to_owned(),
                    Value::Arr(fam.ports.iter().map(Value::str).collect()),
                ));
            }
            let line = Value::obj(vec![
                ("id".to_owned(), Value::str(&id)),
                ("deck".to_owned(), Value::str(&deck)),
                ("options".to_owned(), Value::obj(options)),
            ])
            .render();
            Work {
                id,
                line,
                deck,
                ports: fam.ports.clone(),
            }
        })
        .collect()
}

/// The cold baseline: a fresh session per deck, sequential — and the
/// bit-identity reference for every daemon response.
fn cold_loop(work: &[Work]) -> HashMap<String, String> {
    work.iter()
        .map(|w| {
            let opts = DeckOptions {
                threads: Some(1), // the daemon's per-request default
                extra_ports: w.ports.clone(),
                ..DeckOptions::default()
            };
            let prep = prepare_deck(&w.deck, &opts).expect("deck prepares");
            let mut session = ReductionSession::new(opts.reduce_options().unwrap());
            let red = reduce_prepared(&prep, &mut session, &opts).expect("deck reduces");
            let mut tel = prep.telemetry.clone();
            tel.absorb(&red.telemetry());
            let (text, _) = render_reduced(&prep, &red, "rcfit", opts.sparsify, &mut tel);
            (w.id.clone(), text)
        })
        .collect()
}

/// Submits the whole workload from `clients` threads; returns once every
/// submit call has returned. Responses keep arriving until the daemon is
/// drained — read `done` only after `Daemon::shutdown`.
fn submit_all(
    daemon: &Daemon,
    work: &[Work],
    clients: usize,
    starts: &Arc<Mutex<HashMap<String, Instant>>>,
    done: &Arc<Mutex<Vec<(Instant, String)>>>,
) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            let starts = Arc::clone(starts);
            let done = Arc::clone(done);
            scope.spawn(move || {
                let sink_done = Arc::clone(&done);
                let sink: ReplySink = Arc::new(move |l: &str| {
                    sink_done
                        .lock()
                        .unwrap()
                        .push((Instant::now(), l.to_owned()));
                });
                for w in work.iter().skip(c).step_by(clients) {
                    starts.lock().unwrap().insert(w.id.clone(), Instant::now());
                    daemon.submit(&w.line, &sink);
                }
            });
        }
    });
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted[idx]
}

fn main() {
    let mut smoke = false;
    let mut total = 1200usize;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => total = other.parse().expect("args: [--smoke] [DECKS]"),
        }
    }
    if smoke {
        total = total.min(60);
    }
    let clients = 2;
    let fams = families(smoke);
    let work = workload(&fams, total);
    println!(
        "# Serve load: {total} decks over {} families, {clients} clients",
        fams.len()
    );

    let (cold, cold_s) = timed(|| cold_loop(&work));

    let daemon = Daemon::new(ServeConfig {
        queue_cap: total.max(64),
        max_deck_bytes: 16 << 20,
        ..ServeConfig::default()
    });
    let workers = daemon.num_workers();
    let starts: Arc<Mutex<HashMap<String, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    // The sink records completion instants only; response parsing
    // happens after the clock stops.
    let done: Arc<Mutex<Vec<(Instant, String)>>> = Arc::new(Mutex::new(Vec::new()));
    // The daemon wall clock includes the drain-on-shutdown join, so
    // throughput counts every delivered response, not just the enqueues.
    let t0 = Instant::now();
    submit_all(&daemon, &work, clients, &starts, &done);
    let counters = daemon.shutdown();
    let daemon_s = t0.elapsed().as_secs_f64();

    let starts = starts.lock().unwrap();
    let mut latencies = HashMap::new();
    let mut lines = Vec::new();
    for (at, line) in done.lock().unwrap().drain(..) {
        let doc = Value::parse(&line).expect("response parses");
        let id = doc.get("id").unwrap().as_str().unwrap().to_owned();
        latencies.insert(id.clone(), (at - starts[&id]).as_secs_f64());
        lines.push(line);
    }

    assert_eq!(lines.len(), total, "every request answered exactly once");
    for line in &lines {
        let doc = Value::parse(line).unwrap();
        let id = doc.get("id").unwrap().as_str().unwrap();
        assert_eq!(
            doc.get("ok"),
            Some(&Value::Bool(true)),
            "{id} failed: {line}"
        );
        assert_eq!(
            doc.get("deck").unwrap().as_str().unwrap(),
            cold[id],
            "{id} drifted from the cold one-shot reduction"
        );
    }

    let mut lat_ms: Vec<f64> = latencies.values().map(|s| s * 1e3).collect();
    lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency"));
    let (p50, p95, p99) = (
        percentile(&lat_ms, 0.50),
        percentile(&lat_ms, 0.95),
        percentile(&lat_ms, 0.99),
    );

    let hits = counters.session_hits.load(AtomicOrdering::Relaxed);
    let misses = counters.session_misses.load(AtomicOrdering::Relaxed);
    let shed = counters.shed.load(AtomicOrdering::Relaxed);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let ratio = cold_s / daemon_s;

    print_table(
        "Serve load",
        &["mode", "seconds", "decks/s", "p50 ms", "p95 ms", "p99 ms"],
        &[
            vec![
                "cold (one-shot loop)".into(),
                secs(cold_s),
                format!("{:.1}", total as f64 / cold_s),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
            vec![
                format!("daemon ({workers} workers)"),
                secs(daemon_s),
                format!("{:.1}", total as f64 / daemon_s),
                format!("{p50:.2}"),
                format!("{p95:.2}"),
                format!("{p99:.2}"),
            ],
        ],
    );
    println!(
        "warm hit rate {:.1}% ({hits} hits, {misses} misses), {shed} shed",
        hit_rate * 100.0
    );
    println!(
        "PERF cold_s={cold_s:.6} daemon_s={daemon_s:.6} throughput_ratio={ratio:.3} \
         p50_ms={p50:.3} p95_ms={p95:.3} p99_ms={p99:.3} hit_rate={hit_rate:.4}"
    );

    if smoke {
        println!("smoke OK");
    } else {
        let json = render_json(
            total, workers, clients, cold_s, daemon_s, p50, p95, p99, hits, misses, shed,
        );
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }
}

/// Hand-rolled JSON (the workspace has no serializer dependency);
/// strings go through the shared `pact::json::escape` helper.
#[allow(clippy::too_many_arguments)]
fn render_json(
    total: usize,
    workers: usize,
    clients: usize,
    cold_s: f64,
    daemon_s: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    hits: u64,
    misses: u64,
    shed: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  {}: {},\n",
        pact::json::escape("bench"),
        pact::json::escape("serve_load")
    ));
    out.push_str(&format!("  \"decks\": {total},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"clients\": {clients},\n"));
    out.push_str(&format!(
        "  \"cold\": {{\"seconds\": {cold_s:.6}, \"decks_per_s\": {:.2}}},\n",
        total as f64 / cold_s
    ));
    out.push_str(&format!(
        "  \"daemon\": {{\"seconds\": {daemon_s:.6}, \"decks_per_s\": {:.2}, \
         \"p50_ms\": {p50:.3}, \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}}},\n",
        total as f64 / daemon_s
    ));
    out.push_str(&format!(
        "  \"sessions\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {:.4}, \
         \"shed\": {shed}}},\n",
        hits as f64 / (hits + misses).max(1) as f64
    ));
    out.push_str(&format!(
        "  \"throughput_ratio\": {:.4}\n",
        cold_s / daemon_s
    ));
    out.push_str("}\n");
    out
}
