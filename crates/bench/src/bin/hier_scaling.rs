//! Flat-vs-hierarchical A/B and hier thread-scaling study.
//!
//! Times `pact::reduce_network` (reduction work only — the deck is built
//! once per mesh, *outside* every timed region, unlike the retired
//! `ci/check.sh` perf section that timed the whole `rcfit` CLI pipeline
//! including parse and file I/O) on two substrate meshes:
//!
//! * `10k` — 32×32×10, 64 contacts (~10k internal nodes)
//! * `20k` — 40×40×13, 64 contacts (~20k internal nodes)
//!
//! Full mode reduces each mesh flat at 1 thread and hierarchically at
//! 1/2/4/8 threads, prints the phase breakdown of the 1-thread hier run,
//! and writes `BENCH_hier.json`. The hier models are bit-identical at
//! every thread count (see `hier_equivalence.rs`); only the wall clock
//! varies.
//!
//! `--smoke` is the CI gate: a 1-thread A/B on both meshes (min of two
//! runs per side, damping 1-core host noise) that asserts hierarchical
//! is strictly faster than flat on the 20k mesh, prints `PERF` lines
//! and `hier A/B OK`, and skips the JSON so a scratch-dir run never
//! clobbers the committed full-size artifact.
//!
//! ```text
//! cargo run --release -p pact-bench --bin hier_scaling [--smoke]
//! ```

use pact::{CutoffSpec, EigenSelect, ReduceOptions, ReduceStrategy, Reduction};
use pact_bench::{print_table, secs, timed};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::RcNetwork;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct MeshCase {
    label: &'static str,
    nx: usize,
    ny: usize,
    nz: usize,
    contacts: usize,
}

const MESHES: [MeshCase; 2] = [
    MeshCase {
        label: "10k",
        nx: 32,
        ny: 32,
        nz: 10,
        contacts: 64,
    },
    MeshCase {
        label: "20k",
        nx: 40,
        ny: 40,
        nz: 13,
        contacts: 64,
    },
];

struct MeshResult {
    label: &'static str,
    nodes: usize,
    flat_s: f64,
    flat_poles: usize,
    /// `(threads, seconds)` for the hier sweep; smoke mode records only
    /// the 1-thread entry.
    hier_s: Vec<(usize, f64)>,
    hier_poles: usize,
    hier_blocks: u64,
}

fn opts(threads: usize, strategy: ReduceStrategy) -> ReduceOptions {
    ReduceOptions {
        cutoff: CutoffSpec::new(500e6, 0.10).expect("cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: pact_sparse::Ordering::NestedDissection,
        dense_threshold: 400,
        threads: Some(threads),
        pivot_relief: None,
        strategy,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    }
}

fn hier_strategy() -> ReduceStrategy {
    // HIER_MAX_BLOCK is an experimentation override, not part of the
    // bench contract; the default matches the CLI/daemon default.
    let max_block = std::env::var("HIER_MAX_BLOCK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    ReduceStrategy::Hierarchical {
        max_block,
        max_depth: 16,
    }
}

fn run_mesh(case: &MeshCase, smoke: bool) -> MeshResult {
    // Deck construction stays outside every timed region.
    let net = substrate_mesh(&MeshSpec {
        nx: case.nx,
        ny: case.ny,
        nz: case.nz,
        num_contacts: case.contacts,
        ..MeshSpec::table4()
    });
    let nodes = net.num_nodes();
    println!(
        "## {} mesh: {}x{}x{}, {} contacts, {} nodes",
        case.label, case.nx, case.ny, case.nz, case.contacts, nodes
    );

    // Every configuration is timed twice and the minimum kept: on a
    // loaded host single runs swing by ±15%, and the min over repeats
    // estimates the noise floor both sides of the A/B the same way.
    let (flat, flat_s) = timed(|| reduce(&net, &opts(1, ReduceStrategy::Flat)));
    let (_, flat_s2) = timed(|| reduce(&net, &opts(1, ReduceStrategy::Flat)));
    let flat_s = flat_s.min(flat_s2);
    println!(
        "flat    threads=1: {} s ({} poles)",
        secs(flat_s),
        flat.model.num_poles()
    );
    let fb: Vec<String> = flat
        .telemetry
        .phases
        .iter()
        .map(|p| format!("{} {:.0}ms", p.name, p.seconds * 1e3))
        .collect();
    println!("  phases: {}", fb.join(", "));
    println!(
        "  lanczos_mv={} reorth={}",
        flat.telemetry.counters.lanczos_matvecs,
        flat.telemetry.counters.lanczos_reorthogonalizations
    );

    let threads: &[usize] = if smoke { &[1] } else { &THREAD_COUNTS };
    let mut hier_s = Vec::new();
    let mut hier_poles = 0;
    let mut hier_blocks = 0;
    for &t in threads {
        let (hier, s) = timed(|| reduce(&net, &opts(t, hier_strategy())));
        let (_, s2) = timed(|| reduce(&net, &opts(t, hier_strategy())));
        let s = s.min(s2);
        println!(
            "hier    threads={t}: {} s ({} poles, {} blocks)",
            secs(s),
            hier.model.num_poles(),
            hier.telemetry.counters.hier_blocks
        );
        if t == 1 {
            let breakdown: Vec<String> = hier
                .telemetry
                .phases
                .iter()
                .map(|p| format!("{} {:.0}ms", p.name, p.seconds * 1e3))
                .collect();
            println!("  phases: {}", breakdown.join(", "));
            let c = &hier.telemetry.counters;
            println!(
                "  separators={} max_sep={} max_block={} leaf_poles={} trimmed={} reuses={} lanczos_mv={} reorth={}",
                c.hier_separator_nodes,
                c.hier_max_separator_nodes,
                c.hier_max_block_nodes,
                c.hier_leaf_poles_retained,
                c.hier_leaf_trimmed_poles,
                c.hier_leaf_pattern_reuses,
                c.lanczos_matvecs,
                c.lanczos_reorthogonalizations
            );
        }
        hier_poles = hier.model.num_poles();
        hier_blocks = hier.telemetry.counters.hier_blocks;
        hier_s.push((t, s));
    }

    MeshResult {
        label: case.label,
        nodes,
        flat_s,
        flat_poles: flat.model.num_poles(),
        hier_s,
        hier_poles,
        hier_blocks,
    }
}

fn reduce(net: &RcNetwork, o: &ReduceOptions) -> Reduction {
    pact::reduce_network(net, o).expect("reduce")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# Flat vs hierarchical reduction, fmax 500 MHz");
    println!(
        "host reports {} available core(s)",
        std::thread::available_parallelism().map_or(1, usize::from)
    );

    let results: Vec<MeshResult> = MESHES.iter().map(|c| run_mesh(c, smoke)).collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let hier1 = r.hier_s[0].1;
            let hier_best = r.hier_s.iter().map(|&(_, s)| s).fold(f64::MAX, f64::min);
            vec![
                r.label.to_string(),
                format!("{}", r.nodes),
                secs(r.flat_s),
                secs(hier1),
                format!("{:.2}x", r.flat_s / hier1),
                secs(hier_best),
            ]
        })
        .collect();
    print_table(
        "Flat vs hier",
        &[
            "mesh",
            "nodes",
            "flat 1t (s)",
            "hier 1t (s)",
            "flat/hier",
            "hier best (s)",
        ],
        &rows,
    );
    for r in &results {
        for &(t, s) in &r.hier_s {
            println!(
                "PERF hier_scaling mesh={} threads={} hier_ms={:.1}",
                r.label,
                t,
                s * 1e3
            );
        }
        println!(
            "PERF hier_ab mesh={} flat_ms={:.1} hier_ms={:.1}",
            r.label,
            r.flat_s * 1e3,
            r.hier_s[0].1 * 1e3
        );
    }

    if smoke {
        let big = results.last().expect("meshes");
        assert!(
            big.hier_s[0].1 < big.flat_s,
            "hier ({:.1} ms) must beat flat ({:.1} ms) at 1 thread on the {} mesh",
            big.hier_s[0].1 * 1e3,
            big.flat_s * 1e3,
            big.label
        );
        println!("hier A/B OK");
        return;
    }

    let json = render_json(&results);
    std::fs::write("BENCH_hier.json", &json).expect("write BENCH_hier.json");
    println!("wrote BENCH_hier.json");
}

/// Hand-rolled JSON (the workspace has no serializer dependency).
fn render_json(results: &[MeshResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hier_scaling\",\n");
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str("  \"meshes\": [\n");
    for (k, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"nodes\": {}, \"flat_seconds\": {:.6}, \"flat_poles\": {}, \"hier_poles\": {}, \"hier_blocks\": {},\n",
            r.label, r.nodes, r.flat_s, r.flat_poles, r.hier_poles, r.hier_blocks
        ));
        out.push_str("     \"hier\": [");
        for (j, &(t, s)) in r.hier_s.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"threads\": {t}, \"seconds\": {s:.6}}}",
                if j == 0 { "" } else { ", " }
            ));
        }
        out.push_str("]}");
        out.push_str(if k + 1 == results.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
