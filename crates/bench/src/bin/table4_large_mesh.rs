//! Table 4: reduction of the very large 3-D substrate mesh
//! (469 ports, ≈20k internal nodes) at 500 MHz / 10 % tolerance, with
//! the paper's memory comparison against the Padé-based methods
//! ("469 × 19877 × 8 = 71.1 MB for the Lanczos vectors alone; MPVL
//! requires two of these blocks").

use pact::{CutoffSpec, EigenSelect, ReduceOptions};
use pact_baselines::{format_mb, mpvl_memory, pade_block_memory};
use pact_bench::{mb, print_table, secs, timed};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_sparse::Ordering;

fn main() {
    println!("# Table 4: large 3-D mesh (469 ports), 500 MHz, 10 % tolerance");
    let spec = MeshSpec::table4();
    let net = substrate_mesh(&spec);
    let (r0, c0) = net.element_counts();
    println!(
        "\noriginal: {} ports, {} internal nodes, {} R, {} C",
        net.num_ports,
        net.num_internal(),
        r0,
        c0
    );
    println!("paper:    469 ports, 19877 internal nodes, 65809 R, 3683 C");

    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(500e6, 0.10).expect("cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let (red, elapsed) = timed(|| pact::reduce_network(&net, &opts).expect("reduce"));
    // A/B the factorization hot path: same reduction with the scalar
    // up-looking Cholesky kernel instead of the supernodal panels.
    let scalar_opts = ReduceOptions {
        expansion_points: None,
        chol_kernel: pact::CholKernel::Scalar,
        ..opts.clone()
    };
    let (sred, selapsed) = timed(|| pact::reduce_network(&net, &scalar_opts).expect("reduce"));
    let hier_opts = ReduceOptions {
        strategy: pact::ReduceStrategy::Hierarchical {
            max_block: 2000,
            max_depth: 16,
        },
        ..opts.clone()
    };
    let (hred, helapsed) = timed(|| pact::reduce_network(&net, &hier_opts).expect("reduce hier"));
    // Aggressive sparsification, as the paper's Table 4 output counts imply.
    let elements = red.model.to_netlist_elements("red", 1e-5);
    let (rr, rc) = elements
        .iter()
        .fold((0usize, 0usize), |(r, c), e| match e.kind {
            pact_netlist::ElementKind::Resistor { .. } => (r + 1, c),
            pact_netlist::ElementKind::Capacitor { .. } => (r, c + 1),
            _ => (r, c),
        });

    print_table(
        "Table 4 (paper: 10 poles, 1792.6 s, 25.8 MB of which 19.5 MB is the Cholesky factor)",
        &[
            "network", "ports", "internal", "R's", "C's", "time (s)", "mem (MB)",
        ],
        &[
            vec![
                "original".into(),
                format!("{}", net.num_ports),
                format!("{}", net.num_internal()),
                format!("{r0}"),
                format!("{c0}"),
                "-".into(),
                "-".into(),
            ],
            vec![
                "reduced, 500 MHz".into(),
                format!("{}", red.model.num_ports()),
                format!("{}", red.model.num_poles()),
                format!("{rr}"),
                format!("{rc}"),
                secs(elapsed),
                mb(red.stats.modelled_memory_bytes),
            ],
            vec![
                "scalar chol kernel".into(),
                format!("{}", sred.model.num_ports()),
                format!("{}", sred.model.num_poles()),
                "-".into(),
                "-".into(),
                secs(selapsed),
                mb(sred.stats.modelled_memory_bytes),
            ],
            vec![
                "hier, block 2000".into(),
                format!("{}", hred.model.num_ports()),
                format!("{}", hred.model.num_poles()),
                "-".into(),
                "-".into(),
                secs(helapsed),
                mb(hred.stats.modelled_memory_bytes),
            ],
        ],
    );
    let hc = &hred.telemetry.counters;
    println!(
        "hier: {} blocks (depth {}), {} separator nodes, {} leaf poles kept, \
         largest block {} nodes; flat/hier wall-time ratio {:.2}",
        hc.hier_blocks,
        hc.hier_tree_depth,
        hc.hier_separator_nodes,
        hc.hier_leaf_poles_retained,
        hc.hier_max_block_nodes,
        elapsed / helapsed.max(1e-12)
    );
    let c = &red.telemetry.counters;
    println!(
        "supernodal kernel: {} supernodes, widest panel {} cols, {:.3e} panel flops; \
         scalar/supernodal reduction-time ratio {:.2}",
        c.supernode_count,
        c.max_panel_cols,
        c.panel_flops as f64,
        selapsed / elapsed.max(1e-12)
    );
    println!(
        "Cholesky factor: {} nnz = {} MB of the total (paper: 19.5 of 25.8 MB)",
        red.stats.chol_nnz,
        mb(red.stats.chol_memory_bytes)
    );
    if let Some(ls) = red.stats.lanczos {
        println!(
            "LASO: {} matvecs, {} iterations, {} restarts, peak {} length-n vectors",
            ls.matvecs, ls.iterations, ls.restarts, ls.peak_vectors
        );
    }

    let m = net.num_ports;
    let n = net.num_internal();
    println!("\n## Memory comparison with the Padé-based methods (paper §6 closing)");
    println!(
        "symmetric block-Lanczos Padé ([7]) Lanczos block: {}",
        format_mb(pade_block_memory(m, n))
    );
    println!(
        "MPVL ([6]) needs two blocks:                      {}",
        format_mb(mpvl_memory(m, n))
    );
    println!(
        "PACT working set beyond the factor:               {}",
        format_mb(red.stats.modelled_memory_bytes - red.stats.chol_memory_bytes)
    );
}
