//! Figure 3: effect of transmission-line models on the output voltage of
//! the inverter pair — no line vs 2-segment lumped vs 100-segment line
//! vs the PACT-reduced network (which the paper shows fits the
//! 100-segment reference better than the 2-segment model with the same
//! single internal node).

use pact_bench::{crossing_delay, print_table, print_waveforms, reduce_deck, secs};
use pact_circuit::Circuit;
use pact_gen::{inverter_pair_deck, no_line_deck, LineSpec};

fn main() {
    println!("# Figure 3: transmission-line model comparison (transient)");
    let tstep = 10e-12;
    let tstop = 5e-9;

    let full_spec = LineSpec::default(); // 100 segments, 250 Ω, 1.35 pF
    let two_seg = LineSpec {
        segments: 2,
        ..full_spec
    };

    let deck_none = no_line_deck();
    let deck_two = inverter_pair_deck(&two_seg);
    let deck_full = inverter_pair_deck(&full_spec);
    let (deck_red, red, t_red) = reduce_deck(&deck_full, 5e9, 0.05, 1e-9);
    println!(
        "\nPACT reduction: {} pole(s) retained in {} s — same internal node count as the 2-segment model",
        red.model.num_poles(),
        secs(t_red)
    );

    let mut rows = Vec::new();
    let mut curves: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (name, deck) in [
        ("no line", &deck_none),
        ("2-segment", &deck_two),
        ("100-segment", &deck_full),
        ("PACT reduced", &deck_red),
    ] {
        let ckt = Circuit::from_netlist(deck).expect("compile");
        let tr = ckt.transient(tstep, tstop).expect("transient");
        let v = tr.voltage("out").expect("v(out)");
        // The input pulse rises at 0.2 ns; the driver inverts, so the
        // receiver output rises. Measure the 2.5 V crossing delay.
        let delay = crossing_delay(&tr.times, &v, 2.5, 0.25e-9, true);
        rows.push(vec![
            name.to_owned(),
            format!("{}", ckt.dim()),
            delay.map_or("-".into(), |d| format!("{:.1}", d * 1e12)),
            secs(tr.stats.elapsed_seconds),
            format!("{}", tr.stats.steps),
        ]);
        curves.push((name.to_owned(), tr.times.clone(), v));
    }
    print_table(
        "Figure 3 summary",
        &[
            "model",
            "MNA unknowns",
            "50% delay (ps)",
            "sim time (s)",
            "steps",
        ],
        &rows,
    );

    // Accuracy of each compact model versus the 100-segment reference,
    // max |Δv(out)| over the window.
    let reference = &curves[2];
    let mut err_rows = Vec::new();
    for (name, times, v) in &curves {
        if name == "100-segment" {
            continue;
        }
        let mut worst: f64 = 0.0;
        for (k, &t) in reference.1.iter().enumerate() {
            // sample the candidate at the reference time points
            let vi = sample(times, v, t);
            worst = worst.max((vi - reference.2[k]).abs());
        }
        err_rows.push(vec![name.clone(), format!("{worst:.3}")]);
    }
    print_table(
        "max |v_out − v_out(100-seg)| over 0–5 ns (V) — the paper's claim: PACT < 2-segment",
        &["model", "max error (V)"],
        &err_rows,
    );

    let series: Vec<(&str, &[f64])> = curves
        .iter()
        .map(|(n, _, v)| (n.as_str(), v.as_slice()))
        .collect();
    print_waveforms("v(out)", &curves[2].1, &series, 8);
}

fn sample(times: &[f64], v: &[f64], t: f64) -> f64 {
    if t <= times[0] {
        return v[0];
    }
    for k in 1..times.len() {
        if t <= times[k] {
            let f = (t - times[k - 1]) / (times[k] - times[k - 1]).max(1e-30);
            return v[k - 1] + f * (v[k] - v[k - 1]);
        }
    }
    *v.last().unwrap()
}
