//! # pact-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`cargo run --release -p pact-bench --bin <name>`) plus
//! dependency-free timing benches for kernels, ablations and the
//! Section-4 complexity study, and the `par_scaling` thread-scaling
//! study. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded paper-vs-measured results.
//!
//! This library hosts the shared report plumbing: wall-clock timing,
//! markdown table rendering, waveform CSV output and common reduction /
//! simulation drivers used by several binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

use pact::{CutoffSpec, EigenSelect, ReduceOptions, Reduction};
use pact_lanczos::LanczosConfig;
use pact_netlist::{extract_rc, splice_reduced, Netlist};
use pact_sparse::Ordering;

/// Times a closure, returning its output and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Runs `f` once to warm up, then `samples` timed iterations, returning
/// per-iteration wall-clock seconds. The dependency-free replacement for
/// the statistical bench harness: the benches report min/median over a
/// small fixed sample count.
pub fn sample_secs<T>(samples: usize, mut f: impl FnMut() -> T) -> Vec<f64> {
    let _ = f();
    (0..samples.max(1)).map(|_| timed(&mut f).1).collect()
}

/// Minimum and median of a non-empty sample set, in seconds.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn min_median(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "no samples");
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN timing"));
    (s[0], s[s.len() / 2])
}

/// Formats bytes as MB with one decimal (the paper's table unit).
pub fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// Formats seconds with adaptive precision.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.2e}", s)
    } else if s < 1.0 {
        format!("{:.3}", s)
    } else {
        format!("{:.1}", s)
    }
}

/// Prints a markdown table.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        assert_eq!(row.len(), headers.len(), "table row width mismatch");
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Prints aligned CSV-style waveform columns (time + named series).
pub fn print_waveforms(title: &str, time: &[f64], series: &[(&str, &[f64])], stride: usize) {
    println!("\n### {title} (CSV)\n");
    print!("time");
    for (name, _) in series {
        print!(",{name}");
    }
    println!();
    for (k, &t) in time.iter().enumerate() {
        if k % stride != 0 && k + 1 != time.len() {
            continue;
        }
        print!("{t:.4e}");
        for (_, v) in series {
            print!(",{:.5}", v[k.min(v.len() - 1)]);
        }
        println!();
    }
    println!();
}

/// Extracts the RC network from a deck, reduces it with the given spec,
/// and splices the reduced elements back in. Returns the reduced deck,
/// the reduction record and the elapsed reduction seconds.
///
/// # Panics
///
/// Panics on extraction or reduction failure (experiment binaries treat
/// these as fatal).
pub fn reduce_deck(
    deck: &Netlist,
    f_max: f64,
    tolerance: f64,
    sparsify_tol: f64,
) -> (Netlist, Reduction, f64) {
    let ex = extract_rc(deck, &[]).expect("RC extraction failed");
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(f_max, tolerance).expect("bad cutoff"),
        eigen_backend: EigenSelect::Auto,
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let (red, elapsed) =
        timed(|| pact::reduce_network(&ex.network, &opts).expect("reduction failed"));
    let elements = red.model.to_netlist_elements("red", sparsify_tol);
    let reduced_deck = splice_reduced(deck, elements);
    (reduced_deck, red, elapsed)
}

/// Like [`reduce_deck`] but with LASO forced (for large meshes where the
/// auto threshold would pick it anyway; explicit for reproducibility).
pub fn reduce_deck_laso(
    deck: &Netlist,
    f_max: f64,
    tolerance: f64,
    sparsify_tol: f64,
) -> (Netlist, Reduction, f64) {
    let ex = extract_rc(deck, &[]).expect("RC extraction failed");
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(f_max, tolerance).expect("bad cutoff"),
        eigen_backend: EigenSelect::Lanczos(LanczosConfig::default()),
        ordering: Ordering::NestedDissection,
        dense_threshold: 400,
        threads: None,
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    let (red, elapsed) =
        timed(|| pact::reduce_network(&ex.network, &opts).expect("reduction failed"));
    let elements = red.model.to_netlist_elements("red", sparsify_tol);
    let reduced_deck = splice_reduced(deck, elements);
    (reduced_deck, red, elapsed)
}

/// 50 %-crossing delay of a rising waveform after `t_from`, in seconds.
pub fn crossing_delay(
    times: &[f64],
    wave: &[f64],
    level: f64,
    t_from: f64,
    rising: bool,
) -> Option<f64> {
    for k in 1..times.len() {
        if times[k] < t_from {
            continue;
        }
        let (a, b) = (wave[k - 1], wave[k]);
        let crossed = if rising {
            a < level && b >= level
        } else {
            a > level && b <= level
        };
        if crossed {
            let frac = if (b - a).abs() > 0.0 {
                (level - a) / (b - a)
            } else {
                0.0
            };
            return Some(times[k - 1] + frac * (times[k] - times[k - 1]) - t_from);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_delay_finds_edge() {
        let t = [0.0, 1.0, 2.0, 3.0];
        let v = [0.0, 0.0, 1.0, 1.0];
        let d = crossing_delay(&t, &v, 0.5, 0.0, true).unwrap();
        assert!((d - 1.5).abs() < 1e-12);
        assert!(crossing_delay(&t, &v, 0.5, 0.0, false).is_none());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(25_800_000), "25.8");
        assert_eq!(secs(1792.6), "1792.6");
        assert_eq!(secs(0.5), "0.500");
    }

    #[test]
    fn reduce_deck_end_to_end() {
        let deck = pact_gen::inverter_pair_deck(&pact_gen::LineSpec {
            segments: 20,
            ..pact_gen::LineSpec::default()
        });
        let (reduced, red, _) = reduce_deck(&deck, 5e9, 0.05, 0.0);
        assert!(red.model.num_poles() < 19);
        // Reduced deck keeps the transistors.
        let mos = reduced.count(|e| matches!(e.kind, pact_netlist::ElementKind::Mosfet { .. }));
        assert_eq!(mos, 4);
    }
}
