//! # pact-circuit
//!
//! A SPICE-class circuit simulator standing in for HSPICE in the PACT
//! paper's evaluation: DC operating point (Newton–Raphson with gmin
//! stepping), transient analysis (trapezoidal/backward-Euler companion
//! models with source-breakpoint alignment), and small-signal AC sweeps —
//! all over the sparse LU kernel of `pact-sparse`.
//!
//! Devices: resistors, capacitors, inductors, independent V/I sources
//! (DC, PULSE, PWL, SIN), linear controlled sources (E/G/F/H), junction
//! diodes, and level-1 MOSFETs with gate and drain/source-to-body
//! junction capacitances (the substrate-noise injection path of the
//! paper's Figure 6 experiment). Inductors, VCVS and CCVS elements add
//! branch-current unknowns to the MNA system; inductors and diodes use
//! companion models (backward-Euler/trapezoidal and Newton
//! linearization respectively) in transient and DC.
//!
//! The simulator exists so that every table and figure comparing
//! "HSPICE on the original network" vs "HSPICE on the reduced network"
//! can be regenerated: both netlists run through the same engine, so the
//! relative speed/memory/waveform comparisons are faithful.
//!
//! ```
//! use pact_circuit::Circuit;
//! use pact_netlist::parse;
//!
//! // RC low-pass step response: v(out) rises toward 1 V with τ = 1 ns.
//! let deck = "* rc\nV1 in 0 pwl(0 0 1p 1)\nR1 in out 1k\nC1 out 0 1p\n.end\n";
//! let ckt = Circuit::from_netlist(&parse(deck)?)?;
//! let tr = ckt.transient(10e-12, 5e-9)?;
//! let v = tr.voltage("out").unwrap();
//! assert!(*v.last().unwrap() > 0.98);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod diode;
mod mosfet;

use std::collections::BTreeMap;
use std::time::Instant;

use pact_netlist::{is_ground, ElementKind, Netlist, Waveform};
use pact_sparse::{Complex64, CscMat, CscPencil, LuCache, ParCtx, SparseLu};

pub use diode::{eval_diode, stamp_diode, Diode, DiodeOp, VTHERM};
pub use mosfet::{eval_level1, stamp_level1, MosOp, Mosfet};

/// Minimum conductance from every node to ground (SPICE `GMIN`).
const GMIN: f64 = 1e-12;
/// Newton voltage-update limit per iteration (V).
const STEP_LIMIT: f64 = 1.0;
/// Newton convergence: `|Δv| ≤ VNTOL + RELTOL·|v|`.
const VNTOL: f64 = 1e-6;
/// Relative part of the Newton convergence criterion.
const RELTOL: f64 = 1e-4;
/// Maximum Newton iterations per solve stage.
const MAX_NEWTON: usize = 100;

/// Error from building or simulating a circuit.
#[derive(Clone, Debug)]
pub enum CircuitError {
    /// A MOSFET references a model with no `.MODEL` card.
    UnknownModel {
        /// Element name.
        element: String,
        /// Missing model name.
        model: String,
    },
    /// A current-controlled source (F/H) references a voltage source
    /// that does not exist in the deck.
    UnknownControl {
        /// Element name.
        element: String,
        /// Missing controlling voltage-source name.
        ctrl: String,
    },
    /// A `.DC` sweep names a source that does not exist.
    UnknownSource {
        /// Missing source name.
        source: String,
    },
    /// The Newton iteration failed to converge.
    NoConvergence {
        /// Analysis phase that failed (e.g. "dc", "transient t=...").
        context: String,
    },
    /// The MNA matrix was singular.
    Singular {
        /// Analysis phase.
        context: String,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::UnknownModel { element, model } => {
                write!(f, "element {element} references unknown model `{model}`")
            }
            CircuitError::UnknownControl { element, ctrl } => {
                write!(
                    f,
                    "element {element} references unknown controlling source `{ctrl}`"
                )
            }
            CircuitError::UnknownSource { source } => {
                write!(f, ".dc sweep references unknown source `{source}`")
            }
            CircuitError::NoConvergence { context } => {
                write!(f, "newton iteration failed to converge ({context})")
            }
            CircuitError::Singular { context } => write!(f, "singular MNA matrix ({context})"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A two-terminal linear branch with `None` = ground terminals.
#[derive(Clone, Copy, Debug)]
struct Branch2 {
    a: Option<usize>,
    b: Option<usize>,
    value: f64,
}

/// Branch voltage `v_a − v_b` of a two-terminal element.
fn vab2(c: &Branch2, xx: &[f64]) -> f64 {
    let va = c.a.map_or(0.0, |i| xx[i]);
    let vb = c.b.map_or(0.0, |i| xx[i]);
    va - vb
}

/// An independent source instance.
#[derive(Clone, Debug)]
struct Source {
    p: Option<usize>,
    n: Option<usize>,
    wave: Waveform,
    name: String,
}

/// A voltage-controlled source (VCVS `E` / VCCS `G`): output pair plus a
/// sensed voltage pair and a gain (V/V or S).
#[derive(Clone, Copy, Debug)]
struct VoltCtl {
    p: Option<usize>,
    n: Option<usize>,
    cp: Option<usize>,
    cn: Option<usize>,
    gain: f64,
}

/// A current-controlled source (CCCS `F` / CCVS `H`): output pair plus
/// the index of the controlling voltage source whose branch current is
/// sensed, and a gain (A/A or Ω).
#[derive(Clone, Copy, Debug)]
struct CurrCtl {
    p: Option<usize>,
    n: Option<usize>,
    ctrl: usize,
    gain: f64,
}

/// A compiled circuit ready for analysis.
#[derive(Clone, Debug)]
pub struct Circuit {
    /// Non-ground node names, index = MNA unknown.
    nodes: Vec<String>,
    resistors: Vec<Branch2>,
    /// Physical + MOSFET parasitic + diode junction capacitors.
    capacitors: Vec<Branch2>,
    inductors: Vec<Branch2>,
    vsources: Vec<Source>,
    isources: Vec<Source>,
    vcvs: Vec<VoltCtl>,
    vccs: Vec<VoltCtl>,
    cccs: Vec<CurrCtl>,
    ccvs: Vec<CurrCtl>,
    diodes: Vec<Diode>,
    mosfets: Vec<Mosfet>,
}

/// Work statistics from an analysis, feeding the paper's tables.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Fresh full matrix factorizations (symbolic analysis + numerics).
    pub factorizations: usize,
    /// Numeric-only refactorizations that reused the cached symbolic
    /// analysis (the cheap path; see `pact_sparse::SymbolicLu`).
    pub refactorizations: usize,
    /// Total Newton iterations.
    pub newton_iterations: usize,
    /// Time steps (transient) or frequency points (AC).
    pub steps: usize,
    /// Steps rejected by adaptive LTE control.
    pub steps_rejected: usize,
    /// Nonzeros in the last LU factorization (fill-in).
    pub factor_nnz: usize,
    /// Largest LU fill-in seen across the whole run (peak, not last —
    /// adaptive-step runs factor at many step sizes).
    pub peak_factor_nnz: usize,
    /// Modelled peak memory in bytes: peak LU factors + solution storage.
    pub modelled_memory_bytes: usize,
    /// Wall-clock seconds.
    pub elapsed_seconds: f64,
}

impl SimStats {
    /// Records one factor-or-refactor event.
    fn record_factor(&mut self, nnz: usize, refactored: bool) {
        if refactored {
            self.refactorizations += 1;
        } else {
            self.factorizations += 1;
        }
        self.factor_nnz = nnz;
        self.peak_factor_nnz = self.peak_factor_nnz.max(nnz);
    }
}

/// Reusable solver state threaded through every Newton stage of a run:
/// one [`LuCache`] holding the symbolic analysis (the MNA structure is
/// fixed for the whole run — MOSFET stamps cover `{d,s}×{d,s,g}` in
/// every operating region, and capacitor companion patterns are always
/// stamped, with zero conductance at DC), plus, for linear circuits, a
/// small keyed store of numeric factorizations so repeating step sizes
/// skip even the numeric pass.
#[derive(Clone, Debug, Default)]
struct SolveCtx {
    cache: LuCache,
    /// Numeric factorizations of linear-circuit matrices, keyed by the
    /// exact bits of `(gmin, cap_geq)` — the only values the matrix
    /// depends on when no nonlinear devices (MOSFETs, diodes) are
    /// present; inductor companion resistances are `cap_geq · L`.
    /// Most-recently-used first.
    numeric: Vec<((u64, u64), SparseLu<f64>)>,
}

/// Bound on distinct `(gmin, step-size)` numeric factorizations kept by
/// the linear fast path (gmin stepping needs 5; adaptive runs churn).
const NUMERIC_CACHE_CAP: usize = 16;

impl Circuit {
    /// Compiles a parsed netlist into a simulatable circuit.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownModel`] for MOSFETs without a model card.
    pub fn from_netlist(nl: &Netlist) -> Result<Self, CircuitError> {
        // Hierarchical decks are flattened transparently.
        if !nl.instances.is_empty() {
            let flat = nl.flatten().map_err(|e| CircuitError::Singular {
                context: format!("flatten: {e}"),
            })?;
            return Self::from_netlist(&flat);
        }
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        let mut nodes = Vec::new();
        let mut lookup = |name: &str, nodes: &mut Vec<String>| -> Option<usize> {
            if is_ground(name) {
                return None;
            }
            if let Some(&i) = index.get(name) {
                return Some(i);
            }
            let i = nodes.len();
            nodes.push(name.to_owned());
            index.insert(name.to_owned(), i);
            Some(i)
        };
        let mut ckt = Circuit {
            nodes: Vec::new(),
            resistors: Vec::new(),
            capacitors: Vec::new(),
            inductors: Vec::new(),
            vsources: Vec::new(),
            isources: Vec::new(),
            vcvs: Vec::new(),
            vccs: Vec::new(),
            cccs: Vec::new(),
            ccvs: Vec::new(),
            diodes: Vec::new(),
            mosfets: Vec::new(),
        };
        // Pre-scan voltage-source names so F/H elements can reference a
        // controlling source defined later in the deck. Indexes match
        // `ckt.vsources` because both walk elements in deck order.
        let vnames: Vec<&str> = nl
            .elements
            .iter()
            .filter(|e| matches!(e.kind, ElementKind::VSource { .. }))
            .map(|e| e.name.as_str())
            .collect();
        let find_ctrl = |element: &str, ctrl: &str| -> Result<usize, CircuitError> {
            vnames
                .iter()
                .position(|v| v.eq_ignore_ascii_case(ctrl))
                .ok_or_else(|| CircuitError::UnknownControl {
                    element: element.to_owned(),
                    ctrl: ctrl.to_owned(),
                })
        };
        for e in &nl.elements {
            match &e.kind {
                ElementKind::Resistor { a, b, ohms } => {
                    let a = lookup(a, &mut nodes);
                    let b = lookup(b, &mut nodes);
                    ckt.resistors.push(Branch2 { a, b, value: *ohms });
                }
                ElementKind::Capacitor { a, b, farads } => {
                    let a = lookup(a, &mut nodes);
                    let b = lookup(b, &mut nodes);
                    ckt.capacitors.push(Branch2 {
                        a,
                        b,
                        value: *farads,
                    });
                }
                ElementKind::VSource { p, n, wave } => {
                    let p = lookup(p, &mut nodes);
                    let n = lookup(n, &mut nodes);
                    ckt.vsources.push(Source {
                        p,
                        n,
                        wave: wave.clone(),
                        name: e.name.clone(),
                    });
                }
                ElementKind::ISource { p, n, wave } => {
                    let p = lookup(p, &mut nodes);
                    let n = lookup(n, &mut nodes);
                    ckt.isources.push(Source {
                        p,
                        n,
                        wave: wave.clone(),
                        name: e.name.clone(),
                    });
                }
                ElementKind::Inductor { a, b, henries } => {
                    let a = lookup(a, &mut nodes);
                    let b = lookup(b, &mut nodes);
                    ckt.inductors.push(Branch2 {
                        a,
                        b,
                        value: *henries,
                    });
                }
                ElementKind::Vcvs { p, n, cp, cn, gain } => {
                    let ctl = VoltCtl {
                        p: lookup(p, &mut nodes),
                        n: lookup(n, &mut nodes),
                        cp: lookup(cp, &mut nodes),
                        cn: lookup(cn, &mut nodes),
                        gain: *gain,
                    };
                    ckt.vcvs.push(ctl);
                }
                ElementKind::Vccs { p, n, cp, cn, gm } => {
                    let ctl = VoltCtl {
                        p: lookup(p, &mut nodes),
                        n: lookup(n, &mut nodes),
                        cp: lookup(cp, &mut nodes),
                        cn: lookup(cn, &mut nodes),
                        gain: *gm,
                    };
                    ckt.vccs.push(ctl);
                }
                ElementKind::Cccs { p, n, ctrl, gain } => {
                    let ctl = CurrCtl {
                        p: lookup(p, &mut nodes),
                        n: lookup(n, &mut nodes),
                        ctrl: find_ctrl(&e.name, ctrl)?,
                        gain: *gain,
                    };
                    ckt.cccs.push(ctl);
                }
                ElementKind::Ccvs { p, n, ctrl, ohms } => {
                    let ctl = CurrCtl {
                        p: lookup(p, &mut nodes),
                        n: lookup(n, &mut nodes),
                        ctrl: find_ctrl(&e.name, ctrl)?,
                        gain: *ohms,
                    };
                    ckt.ccvs.push(ctl);
                }
                ElementKind::Diode { p, n, model, area } => {
                    let dm =
                        nl.diode_models
                            .get(model)
                            .ok_or_else(|| CircuitError::UnknownModel {
                                element: e.name.clone(),
                                model: model.clone(),
                            })?;
                    let p = lookup(p, &mut nodes);
                    let n = lookup(n, &mut nodes);
                    let d = Diode::from_model(dm, p, n, *area);
                    // The zero-bias junction capacitance becomes a plain
                    // capacitor, like MOSFET parasitics.
                    if d.cj > 0.0 && p != n {
                        ckt.capacitors.push(Branch2 {
                            a: p,
                            b: n,
                            value: d.cj,
                        });
                    }
                    ckt.diodes.push(d);
                }
                ElementKind::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    model,
                    w,
                    l,
                } => {
                    let mm = nl
                        .models
                        .get(model)
                        .ok_or_else(|| CircuitError::UnknownModel {
                            element: e.name.clone(),
                            model: model.clone(),
                        })?;
                    let d = lookup(d, &mut nodes);
                    let g = lookup(g, &mut nodes);
                    let s = lookup(s, &mut nodes);
                    let b = lookup(b, &mut nodes);
                    let mos = Mosfet::from_model(mm, d, g, s, b, *w, *l);
                    // Parasitic capacitances become plain capacitors.
                    for (x, y, c) in [
                        (mos.g, mos.s, mos.cgs),
                        (mos.g, mos.d, mos.cgd),
                        (mos.d, mos.b, mos.cdb),
                        (mos.s, mos.b, mos.csb),
                    ] {
                        if c > 0.0 && x != y {
                            ckt.capacitors.push(Branch2 {
                                a: x,
                                b: y,
                                value: c,
                            });
                        }
                    }
                    ckt.mosfets.push(mos);
                }
            }
        }
        ckt.nodes = nodes;
        Ok(ckt)
    }

    /// Non-ground node names in MNA order.
    pub fn node_names(&self) -> &[String] {
        &self.nodes
    }

    /// Index of a node by name.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n == name)
    }

    /// Number of MNA unknowns: node voltages plus one branch current
    /// per voltage source, inductor, VCVS and CCVS (in that order).
    pub fn dim(&self) -> usize {
        self.nodes.len()
            + self.vsources.len()
            + self.inductors.len()
            + self.vcvs.len()
            + self.ccvs.len()
    }

    /// MNA row/column of inductor `k`'s branch current.
    fn row_ind(&self, k: usize) -> usize {
        self.nodes.len() + self.vsources.len() + k
    }

    /// MNA row/column of VCVS `k`'s branch current.
    fn row_vcvs(&self, k: usize) -> usize {
        self.nodes.len() + self.vsources.len() + self.inductors.len() + k
    }

    /// MNA row/column of CCVS `k`'s branch current.
    fn row_ccvs(&self, k: usize) -> usize {
        self.nodes.len() + self.vsources.len() + self.inductors.len() + self.vcvs.len() + k
    }

    /// Counts: `(nodes, resistors, capacitors incl. parasitics, mosfets)`.
    pub fn device_counts(&self) -> (usize, usize, usize, usize) {
        (
            self.nodes.len(),
            self.resistors.len(),
            self.capacitors.len(),
            self.mosfets.len(),
        )
    }

    /// Stamps the time-invariant linear parts (resistors + gmin).
    fn stamp_linear_g(&self, trips: &mut Vec<(usize, usize, f64)>, gmin: f64) {
        let mut cond = |a: Option<usize>, b: Option<usize>, g: f64| match (a, b) {
            (Some(i), Some(j)) if i != j => {
                trips.push((i, i, g));
                trips.push((j, j, g));
                trips.push((i, j, -g));
                trips.push((j, i, -g));
            }
            (Some(i), None) | (None, Some(i)) => trips.push((i, i, g)),
            _ => {}
        };
        for r in &self.resistors {
            cond(r.a, r.b, 1.0 / r.value);
        }
        for i in 0..self.nodes.len() {
            trips.push((i, i, gmin));
        }
    }

    /// Stamps voltage-source constraint rows/columns (pattern + unit
    /// values; the source values live on the RHS only).
    fn stamp_vsource_pattern(&self, trips: &mut Vec<(usize, usize, f64)>) {
        let nn = self.nodes.len();
        for (k, src) in self.vsources.iter().enumerate() {
            let row = nn + k;
            if let Some(p) = src.p {
                trips.push((row, p, 1.0));
                trips.push((p, row, 1.0));
            }
            if let Some(n) = src.n {
                trips.push((row, n, -1.0));
                trips.push((n, row, -1.0));
            }
        }
    }

    /// Stamps the branch-row elements: inductors (companion resistance
    /// `req = cap_geq · L`, an exact short at DC where `cap_geq = 0`),
    /// and the four linear controlled-source families. Like
    /// [`Circuit::stamp_cap_pattern`], this is always called with the
    /// same pattern so one symbolic analysis serves the whole run.
    fn stamp_branch_elements(&self, trips: &mut Vec<(usize, usize, f64)>, cap_geq: f64) {
        let nn = self.nodes.len();
        for (k, l) in self.inductors.iter().enumerate() {
            let row = self.row_ind(k);
            if let Some(a) = l.a {
                trips.push((a, row, 1.0));
                trips.push((row, a, 1.0));
            }
            if let Some(b) = l.b {
                trips.push((b, row, -1.0));
                trips.push((row, b, -1.0));
            }
            trips.push((row, row, -(cap_geq * l.value)));
        }
        for (k, e) in self.vcvs.iter().enumerate() {
            let row = self.row_vcvs(k);
            if let Some(p) = e.p {
                trips.push((p, row, 1.0));
                trips.push((row, p, 1.0));
            }
            if let Some(n) = e.n {
                trips.push((n, row, -1.0));
                trips.push((row, n, -1.0));
            }
            if let Some(cp) = e.cp {
                trips.push((row, cp, -e.gain));
            }
            if let Some(cn) = e.cn {
                trips.push((row, cn, e.gain));
            }
        }
        for g in &self.vccs {
            for (out, sgn) in [(g.p, 1.0), (g.n, -1.0)] {
                if let Some(r) = out {
                    if let Some(cp) = g.cp {
                        trips.push((r, cp, sgn * g.gain));
                    }
                    if let Some(cn) = g.cn {
                        trips.push((r, cn, -sgn * g.gain));
                    }
                }
            }
        }
        for fsrc in &self.cccs {
            let cv = nn + fsrc.ctrl;
            if let Some(p) = fsrc.p {
                trips.push((p, cv, fsrc.gain));
            }
            if let Some(n) = fsrc.n {
                trips.push((n, cv, -fsrc.gain));
            }
        }
        for (k, h) in self.ccvs.iter().enumerate() {
            let row = self.row_ccvs(k);
            let cv = nn + h.ctrl;
            if let Some(p) = h.p {
                trips.push((p, row, 1.0));
                trips.push((row, p, 1.0));
            }
            if let Some(n) = h.n {
                trips.push((n, row, -1.0));
                trips.push((row, n, -1.0));
            }
            trips.push((row, cv, -h.gain));
        }
    }

    /// Stamps capacitor companion conductances `geq = cap_geq · C`.
    ///
    /// Always called — with `cap_geq = 0.0` at DC — so the MNA sparsity
    /// structure is identical across DC, backward-Euler and trapezoidal
    /// stages and one symbolic analysis serves the whole run. Explicit
    /// zeros change neither pivots nor solutions (bitwise).
    fn stamp_cap_pattern(&self, trips: &mut Vec<(usize, usize, f64)>, cap_geq: f64) {
        for c in &self.capacitors {
            let geq = cap_geq * c.value;
            match (c.a, c.b) {
                (Some(i), Some(j)) if i != j => {
                    trips.push((i, i, geq));
                    trips.push((j, j, geq));
                    trips.push((i, j, -geq));
                    trips.push((j, i, -geq));
                }
                (Some(i), None) | (None, Some(i)) => trips.push((i, i, geq)),
                _ => {}
            }
        }
    }

    /// Stamps current sources at time `t`.
    fn stamp_isources(&self, rhs: &mut [f64], t: f64) {
        for src in &self.isources {
            let i = src.wave.eval(t);
            if let Some(p) = src.p {
                rhs[p] -= i;
            }
            if let Some(n) = src.n {
                rhs[n] += i;
            }
        }
    }

    /// Assembles the matrix-independent RHS: V-source values, current
    /// sources at `t`, capacitor companion currents, and inductor
    /// companion branch voltages (`None` at DC, where an inductor's
    /// branch row reads `v_a − v_b = 0`).
    fn assemble_rhs(
        &self,
        rhs: &mut [f64],
        vvals: &[f64],
        t: f64,
        cap_ieq: Option<&[f64]>,
        ind_veq: Option<&[f64]>,
    ) {
        let nn = self.nodes.len();
        for (k, _) in self.vsources.iter().enumerate() {
            rhs[nn + k] = vvals[k];
        }
        self.stamp_isources(rhs, t);
        if let Some(ieq) = cap_ieq {
            for (ci, c) in self.capacitors.iter().enumerate() {
                match (c.a, c.b) {
                    (Some(i), Some(j)) if i != j => {
                        rhs[i] += ieq[ci];
                        rhs[j] -= ieq[ci];
                    }
                    (Some(i), None) => rhs[i] += ieq[ci],
                    (None, Some(j)) => rhs[j] -= ieq[ci],
                    _ => {}
                }
            }
        }
        if let Some(veq) = ind_veq {
            for k in 0..self.inductors.len() {
                rhs[self.row_ind(k)] = veq[k];
            }
        }
    }

    /// Stamps the full linear MNA matrix (resistors + gmin, V-source
    /// rows, capacitor/inductor companions, controlled sources) with
    /// structure independent of `gmin`/`cap_geq` values.
    fn assemble_linear(&self, gmin: f64, cap_geq: f64) -> Vec<(usize, usize, f64)> {
        let nn = self.nodes.len();
        let mut trips: Vec<(usize, usize, f64)> = Vec::with_capacity(
            4 * (self.resistors.len() + self.capacitors.len() + self.vsources.len())
                + 5 * (self.inductors.len() + self.vcvs.len() + self.ccvs.len())
                + 4 * self.vccs.len()
                + 2 * self.cccs.len()
                + nn,
        );
        self.stamp_linear_g(&mut trips, gmin);
        self.stamp_vsource_pattern(&mut trips);
        self.stamp_cap_pattern(&mut trips, cap_geq);
        self.stamp_branch_elements(&mut trips, cap_geq);
        trips
    }

    /// Solves one Newton stage at fixed linear stamps; returns the
    /// solution.
    ///
    /// Linear circuits (no MOSFETs, no diodes) take a fast path: the
    /// matrix depends only on `(gmin, cap_geq)` — inductor companion
    /// resistances are `cap_geq · L` — so a numeric factorization is
    /// cached per distinct pair and a repeat step size costs one RHS
    /// assembly plus one triangular solve — no factorization at all.
    #[allow(clippy::too_many_arguments)]
    fn newton(
        &self,
        x0: &[f64],
        gmin: f64,
        vvals: &[f64],
        t: f64,
        cap_geq: f64,
        cap_ieq: Option<&[f64]>,
        ind_veq: Option<&[f64]>,
        context: &str,
        slv: &mut SolveCtx,
        stats: &mut SimStats,
    ) -> Result<Vec<f64>, CircuitError> {
        let dim = self.dim();
        let nn = self.nodes.len();
        if self.mosfets.is_empty() && self.diodes.is_empty() {
            let mut rhs = vec![0.0; dim];
            self.assemble_rhs(&mut rhs, vvals, t, cap_ieq, ind_veq);
            let key = (gmin.to_bits(), cap_geq.to_bits());
            if let Some(pos) = slv.numeric.iter().position(|(k, _)| *k == key) {
                // Move-to-front LRU; no factorization work at all.
                let entry = slv.numeric.remove(pos);
                slv.numeric.insert(0, entry);
            } else {
                let trips = self.assemble_linear(gmin, cap_geq);
                let a = CscMat::from_triplets(dim, dim, &trips);
                let (lu, refactored) =
                    slv.cache.factor(&a).map_err(|_| CircuitError::Singular {
                        context: context.to_owned(),
                    })?;
                stats.record_factor(lu.factor_nnz(), refactored);
                slv.numeric.insert(0, (key, lu));
                slv.numeric.truncate(NUMERIC_CACHE_CAP);
            }
            stats.newton_iterations += 1;
            return Ok(slv.numeric[0].1.solve(&rhs));
        }
        let mut x = x0.to_vec();
        for iter in 0..MAX_NEWTON {
            let mut trips = self.assemble_linear(gmin, cap_geq);
            trips.reserve(8 * self.mosfets.len() + 4 * self.diodes.len());
            let mut rhs = vec![0.0; dim];
            self.assemble_rhs(&mut rhs, vvals, t, cap_ieq, ind_veq);
            for m in &self.mosfets {
                stamp_level1(m, &x[..nn], &mut trips, &mut rhs);
            }
            for d in &self.diodes {
                stamp_diode(d, &x[..nn], &mut trips, &mut rhs);
            }
            let a = CscMat::from_triplets(dim, dim, &trips);
            let (lu, refactored) = slv.cache.factor(&a).map_err(|_| CircuitError::Singular {
                context: context.to_owned(),
            })?;
            stats.record_factor(lu.factor_nnz(), refactored);
            let xn = lu.solve(&rhs);
            stats.newton_iterations += 1;
            // Damped update + convergence test on node voltages.
            let mut converged = true;
            for i in 0..dim {
                let mut dv = xn[i] - x[i];
                if i < nn {
                    dv = dv.clamp(-STEP_LIMIT, STEP_LIMIT);
                    if dv.abs() > VNTOL + RELTOL * (x[i] + dv).abs() {
                        converged = false;
                    }
                }
                x[i] += dv;
            }
            if converged && iter > 0 {
                return Ok(x);
            }
        }
        Err(CircuitError::NoConvergence {
            context: context.to_owned(),
        })
    }

    /// Computes the DC operating point with gmin stepping.
    ///
    /// # Errors
    ///
    /// [`CircuitError`] on Newton failure or singular matrices.
    pub fn dc_operating_point(&self) -> Result<DcSolution, CircuitError> {
        let mut slv = SolveCtx::default();
        self.dc_with(&mut slv)
    }

    /// DC operating point reusing the caller's solver state — transient
    /// runs pass their own [`SolveCtx`] so the single symbolic analysis
    /// captured during gmin stepping serves every later timestep.
    fn dc_with(&self, slv: &mut SolveCtx) -> Result<DcSolution, CircuitError> {
        let start = Instant::now();
        let mut stats = SimStats::default();
        let vvals: Vec<f64> = self.vsources.iter().map(|s| s.wave.dc_value()).collect();
        let mut x = vec![0.0; self.dim()];
        for gmin in [1e-3, 1e-5, 1e-7, 1e-9, GMIN] {
            x = self.newton(
                &x, gmin, &vvals, 0.0, 0.0, None, None, "dc", slv, &mut stats,
            )?;
        }
        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        stats.modelled_memory_bytes = stats.peak_factor_nnz * 16 + self.dim() * 8 * 4;
        Ok(DcSolution {
            x,
            nodes: self.nodes.clone(),
            stats,
        })
    }

    /// Runs a `.DC` source sweep: the named V or I source steps from
    /// `start` to `stop` in increments of `step` (inclusive within half
    /// a step) and the operating point is solved at each value. One
    /// solver context is reused across the sweep, so the symbolic
    /// analysis — and for linear circuits the numeric factorization —
    /// is shared by every point.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownSource`] if no source matches, a
    /// `Singular` error for a step that cannot reach `stop`, and any
    /// Newton/solver failure at a sweep point.
    pub fn dc_sweep(
        &self,
        source: &str,
        start: f64,
        stop: f64,
        step: f64,
    ) -> Result<DcSweepResult, CircuitError> {
        let is_v = self
            .vsources
            .iter()
            .position(|s| s.name.eq_ignore_ascii_case(source));
        let is_i = self
            .isources
            .iter()
            .position(|s| s.name.eq_ignore_ascii_case(source));
        if is_v.is_none() && is_i.is_none() {
            return Err(CircuitError::UnknownSource {
                source: source.to_owned(),
            });
        }
        if step == 0.0 || !step.is_finite() || (stop - start) * step < 0.0 {
            return Err(CircuitError::Singular {
                context: format!(".dc: step {step} cannot reach {stop} from {start}"),
            });
        }
        let wall = Instant::now();
        let mut work = self.clone();
        let mut slv = SolveCtx::default();
        let mut stats = SimStats::default();
        let mut values = Vec::new();
        let mut waves = Vec::new();
        let npts = ((stop - start) / step).round() as usize + 1;
        for k in 0..npts {
            let v = start + step * k as f64;
            if let Some(kv) = is_v {
                work.vsources[kv].wave = Waveform::Dc(v);
            } else if let Some(ki) = is_i {
                work.isources[ki].wave = Waveform::Dc(v);
            }
            let dc = work.dc_with(&mut slv)?;
            stats.factorizations += dc.stats.factorizations;
            stats.refactorizations += dc.stats.refactorizations;
            stats.newton_iterations += dc.stats.newton_iterations;
            stats.peak_factor_nnz = stats.peak_factor_nnz.max(dc.stats.peak_factor_nnz);
            stats.factor_nnz = dc.stats.factor_nnz;
            stats.steps += 1;
            values.push(v);
            waves.push(dc.x[..self.nodes.len()].to_vec());
        }
        stats.elapsed_seconds = wall.elapsed().as_secs_f64();
        stats.modelled_memory_bytes =
            stats.peak_factor_nnz * 16 + self.dim() * 8 * 4 + waves.len() * self.nodes.len() * 8;
        Ok(DcSweepResult {
            values,
            waves,
            nodes: self.nodes.clone(),
            stats,
        })
    }

    /// Runs a transient analysis with fixed step `tstep` (snapped to
    /// source breakpoints) from 0 to `tstop`, trapezoidal integration
    /// with backward-Euler starts.
    ///
    /// # Errors
    ///
    /// [`CircuitError`] on Newton failure or singular matrices.
    pub fn transient(&self, tstep: f64, tstop: f64) -> Result<TranResult, CircuitError> {
        self.transient_with(&TranOptions::fixed(tstep, tstop))
    }

    /// Runs a transient analysis per [`TranOptions`] — fixed-step or
    /// adaptive with trapezoidal local-truncation-error control
    /// (`LTE ≈ h³·v‴/12` estimated from third divided differences, the
    /// classic SPICE scheme).
    ///
    /// # Errors
    ///
    /// [`CircuitError`] on Newton failure, singular matrices, or when
    /// adaptive control cannot meet the tolerance above the minimum step.
    pub fn transient_with(&self, opt: &TranOptions) -> Result<TranResult, CircuitError> {
        let tstop = opt.tstop;
        let start = Instant::now();
        // One SolveCtx for the whole run: the symbolic analysis captured
        // by the DC gmin ramp is reused by every timestep, and (for
        // linear circuits) each distinct step size factors numerically at
        // most once.
        let mut slv = SolveCtx::default();
        let dc = self.dc_with(&mut slv)?;
        let mut stats = dc.stats;
        let nn = self.nodes.len();
        let mut x = dc.x.clone();

        // Collect and sort breakpoints from all sources.
        let mut breakpoints: Vec<f64> = Vec::new();
        for s in self.vsources.iter().chain(&self.isources) {
            breakpoints.extend(s.wave.breakpoints(tstop));
        }
        breakpoints.retain(|&t| t > 0.0);
        breakpoints.sort_by(|a, b| a.partial_cmp(b).unwrap());
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-18);

        let mut times = vec![0.0];
        let mut waves: Vec<Vec<f64>> = vec![x[..nn].to_vec()];
        // Per-capacitor branch current (trapezoidal memory).
        let mut icap = vec![0.0; self.capacitors.len()];
        // Per-inductor memory: branch current (an MNA unknown, read from
        // the committed solution) and branch voltage (trapezoidal).
        let mut il_prev: Vec<f64> = (0..self.inductors.len())
            .map(|k| x[self.row_ind(k)])
            .collect();
        let mut vl_prev: Vec<f64> = self.inductors.iter().map(|l| vab2(l, &x)).collect();
        let mut t = 0.0;
        let mut bp_idx = 0;
        // A step leaving t=0 or a breakpoint uses backward Euler
        // (trapezoidal needs a consistent capacitor current history).
        let mut use_be = true;
        let h_min = opt.tstep * opt.min_step_factor;
        let mut h_next = if opt.adaptive {
            // Start conservatively: breakpoints and startup transients
            // live at small time scales.
            (opt.tstep * 0.1).max(h_min)
        } else {
            opt.tstep
        };
        let vab = |c: &Branch2, xx: &[f64]| {
            let va = c.a.map_or(0.0, |i| xx[i]);
            let vb = c.b.map_or(0.0, |i| xx[i]);
            va - vb
        };
        while t < tstop - 1e-18 {
            let mut rejections = 0usize;
            loop {
                let mut h = h_next;
                let mut hit_bp = false;
                if bp_idx < breakpoints.len() && t + h >= breakpoints[bp_idx] - 1e-18 {
                    let bph = breakpoints[bp_idx] - t;
                    if bph > 1e-18 {
                        h = bph;
                    }
                    hit_bp = true;
                }
                if t + h > tstop {
                    h = tstop - t;
                }
                let tn = t + h;
                // Companion parameters per capacitor.
                let (geq_per_c, ieqs): (f64, Vec<f64>) = if use_be {
                    let g = 1.0 / h;
                    (
                        g,
                        self.capacitors
                            .iter()
                            .map(|c| g * c.value * vab(c, &x))
                            .collect(),
                    )
                } else {
                    let g = 2.0 / h;
                    (
                        g,
                        self.capacitors
                            .iter()
                            .enumerate()
                            .map(|(ci, c)| g * c.value * vab(c, &x) + icap[ci])
                            .collect(),
                    )
                };
                // Inductor companion branch voltages: the branch row
                // reads `v_a − v_b − req·i = veq` with `req = geq·L`;
                // BE: `veq = −req·i_prev`, trapezoidal adds `−v_prev`.
                let ind_veqs: Vec<f64> = self
                    .inductors
                    .iter()
                    .enumerate()
                    .map(|(k, l)| {
                        let req = geq_per_c * l.value;
                        if use_be {
                            -req * il_prev[k]
                        } else {
                            -req * il_prev[k] - vl_prev[k]
                        }
                    })
                    .collect();
                let vvals: Vec<f64> = self.vsources.iter().map(|s| s.wave.eval(tn)).collect();
                let xn = self.newton(
                    &x,
                    GMIN,
                    &vvals,
                    tn,
                    geq_per_c,
                    Some(&ieqs),
                    Some(&ind_veqs),
                    &format!("transient t={tn:.3e}"),
                    &mut slv,
                    &mut stats,
                )?;
                // Adaptive: estimate the local truncation error —
                // trapezoidal LTE ≈ (h³/2)·DD3 from the last four points;
                // backward-Euler (restart) LTE ≈ h²·DD2 from the last
                // three — and accept/reject/grow accordingly.
                if opt.adaptive {
                    let k = times.len();
                    let err = if !use_be && k >= 3 {
                        let hist = [
                            (times[k - 3], &waves[k - 3]),
                            (times[k - 2], &waves[k - 2]),
                            (times[k - 1], &waves[k - 1]),
                        ];
                        Some(worst_lte_trap(&hist, tn, &xn[..nn], h, opt))
                    } else if use_be && k >= 2 {
                        let hist = [(times[k - 2], &waves[k - 2]), (times[k - 1], &waves[k - 1])];
                        Some(worst_lte_be(&hist, tn, &xn[..nn], h, opt))
                    } else {
                        None
                    };
                    if let Some(err) = err {
                        if err > 1.0 && h > h_min * 1.001 && rejections < 16 {
                            rejections += 1;
                            h_next = (h * 0.5).max(h_min);
                            stats.steps_rejected += 1;
                            continue; // retry from the same state
                        }
                        // Step accepted: pick the next step size. BE is
                        // first order ⇒ square-root growth law.
                        let grow = if err > 0.0 {
                            let g = if use_be {
                                (1.0 / err).sqrt()
                            } else {
                                (1.0 / err).cbrt()
                            };
                            g.clamp(0.3, 2.0) * 0.9
                        } else {
                            2.0
                        };
                        h_next = (h * grow.max(1e-2)).clamp(h_min, opt.tstep);
                    }
                }
                // Commit the step.
                for (ci, c) in self.capacitors.iter().enumerate() {
                    let dv = vab(c, &xn) - vab(c, &x);
                    let g = if use_be { 1.0 } else { 2.0 } / h * c.value;
                    icap[ci] = if use_be { g * dv } else { g * dv - icap[ci] };
                }
                for (k, l) in self.inductors.iter().enumerate() {
                    il_prev[k] = xn[self.row_ind(k)];
                    vl_prev[k] = vab2(l, &xn);
                }
                x = xn;
                t = tn;
                times.push(t);
                waves.push(x[..nn].to_vec());
                stats.steps += 1;
                if hit_bp {
                    while bp_idx < breakpoints.len() && breakpoints[bp_idx] <= t + 1e-18 {
                        bp_idx += 1;
                    }
                    use_be = true;
                    if opt.adaptive {
                        h_next = (opt.tstep * 0.05).max(h_min);
                    }
                } else {
                    use_be = false;
                }
                break;
            }
        }
        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        stats.modelled_memory_bytes =
            stats.peak_factor_nnz * 16 + self.dim() * 8 * 4 + waves.len() * nn * 8;
        Ok(TranResult {
            times,
            waves,
            nodes: self.nodes.clone(),
            stats,
        })
    }

    /// Small-signal AC sweep: linearizes MOSFETs at the DC operating
    /// point and solves the complex MNA system at each frequency with a
    /// unit excitation. Equivalent to [`Circuit::ac_sweep_with`] at the
    /// default options (symbolic reuse on, all available cores).
    ///
    /// # Errors
    ///
    /// [`CircuitError`] on DC failure, unknown excitation targets, or
    /// singular complex matrices.
    pub fn ac_sweep(
        &self,
        freqs: &[f64],
        excitation: &AcExcitation,
    ) -> Result<AcResult, CircuitError> {
        self.ac_sweep_with(freqs, excitation, &AcOptions::default())
    }

    /// AC sweep with explicit threading / factorization-reuse options.
    ///
    /// The `G + jωC` pencil is assembled once as a fixed union
    /// structure; with `reuse_symbolic` the sparse LU is analyzed
    /// symbolically at the first frequency and every point pays only a
    /// numeric refactorization. The grid is fanned across worker threads
    /// with results in grid order — voltages and all [`SimStats`]
    /// counters are bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// [`CircuitError`] on DC failure, unknown excitation targets, or
    /// singular complex matrices.
    pub fn ac_sweep_with(
        &self,
        freqs: &[f64],
        excitation: &AcExcitation,
        opt: &AcOptions,
    ) -> Result<AcResult, CircuitError> {
        let start = Instant::now();
        let dc = self.dc_operating_point()?;
        let mut stats = dc.stats;
        let nn = self.nodes.len();
        let dim = self.dim();

        // Real conductance stamps: resistors + gmin + linearized MOSFETs
        // and diodes + V-source constraint rows (AC value 0 unless
        // excited) + controlled sources and inductor branch rows.
        let mut gtrips: Vec<(usize, usize, f64)> = Vec::new();
        let mut dummy_rhs = vec![0.0; dim];
        self.stamp_linear_g(&mut gtrips, GMIN);
        for m in &self.mosfets {
            stamp_level1(m, &dc.x[..nn], &mut gtrips, &mut dummy_rhs);
        }
        for d in &self.diodes {
            stamp_diode(d, &dc.x[..nn], &mut gtrips, &mut dummy_rhs);
        }
        self.stamp_vsource_pattern(&mut gtrips);
        // `cap_geq = 0`: inductor branch rows carry their incidence and
        // constraint entries; the `−jωL` part goes on the C side below.
        self.stamp_branch_elements(&mut gtrips, 0.0);
        // Capacitor susceptance pattern, plus `−L` on each inductor
        // branch diagonal so the pencil row reads `v_a − v_b − jωL·i`.
        let mut ctrips: Vec<(usize, usize, f64)> = Vec::new();
        for c in &self.capacitors {
            match (c.a, c.b) {
                (Some(i), Some(j)) if i != j => {
                    ctrips.push((i, i, c.value));
                    ctrips.push((j, j, c.value));
                    ctrips.push((i, j, -c.value));
                    ctrips.push((j, i, -c.value));
                }
                (Some(i), None) | (None, Some(i)) => ctrips.push((i, i, c.value)),
                _ => {}
            }
        }
        for (k, l) in self.inductors.iter().enumerate() {
            let row = self.row_ind(k);
            ctrips.push((row, row, -l.value));
        }
        let pencil = CscPencil::from_triplets(dim, &gtrips, &ctrips);

        let mut rhs_template = vec![Complex64::ZERO; dim];
        match excitation {
            AcExcitation::CurrentInto(node) => {
                let idx = self
                    .node_index(node)
                    .ok_or_else(|| CircuitError::Singular {
                        context: format!("ac: unknown node {node}"),
                    })?;
                rhs_template[idx] = Complex64::ONE;
            }
            AcExcitation::VSource(name) => {
                let k = self
                    .vsources
                    .iter()
                    .position(|s| s.name.eq_ignore_ascii_case(name))
                    .ok_or_else(|| CircuitError::Singular {
                        context: format!("ac: unknown source {name}"),
                    })?;
                rhs_template[nn + k] = Complex64::ONE;
            }
        }

        if freqs.is_empty() {
            stats.elapsed_seconds = start.elapsed().as_secs_f64();
            stats.modelled_memory_bytes = stats.peak_factor_nnz * 16 + dim * 16 * 4;
            return Ok(AcResult {
                freqs: Vec::new(),
                voltages: Vec::new(),
                nodes: self.nodes.clone(),
                stats,
            });
        }

        // One symbolic analysis serves the whole grid.
        let symbolic = if opt.reuse_symbolic {
            let w0 = 2.0 * std::f64::consts::PI * freqs[0];
            let (_, sym) = SparseLu::factor_analyzed(&pencil.eval(w0)).map_err(|_| {
                CircuitError::Singular {
                    context: format!("ac f={:e}", freqs[0]),
                }
            })?;
            stats.factorizations += 1;
            Some(sym)
        } else {
            None
        };

        let ctx = ParCtx::new(opt.threads);
        let results = ctx.map_items(
            freqs.len(),
            || {
                (
                    pencil.eval(0.0),
                    symbolic.as_ref().map(|s| s.prepared::<Complex64>()),
                    vec![Complex64::ZERO; dim],
                )
            },
            |(mat, prep, x), k| {
                let w = 2.0 * std::f64::consts::PI * freqs[k];
                pencil.eval_into(w, mat);
                let refactored = match (&symbolic, prep.as_mut()) {
                    (Some(sym), Some(p)) => sym.refactor_into(mat, p).is_ok(),
                    _ => false,
                };
                let (fresh, nnz);
                let lu: &SparseLu<Complex64> = if refactored {
                    let p = prep.as_ref().expect("refactored implies prepared");
                    nnz = p.factor_nnz();
                    p
                } else {
                    fresh = SparseLu::factor(mat).map_err(|_| CircuitError::Singular {
                        context: format!("ac f={:e}", freqs[k]),
                    })?;
                    nnz = fresh.factor_nnz();
                    &fresh
                };
                lu.solve_into(&rhs_template, x);
                Ok::<_, CircuitError>((x[..nn].to_vec(), refactored, nnz))
            },
        );
        let mut voltages = Vec::with_capacity(freqs.len());
        for r in results {
            let (v, refactored, nnz) = r?;
            stats.record_factor(nnz, refactored);
            voltages.push(v);
            stats.steps += 1;
        }
        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        stats.modelled_memory_bytes =
            stats.peak_factor_nnz * 32 + dim * 16 * 4 + voltages.len() * nn * 16;
        Ok(AcResult {
            freqs: freqs.to_vec(),
            voltages,
            nodes: self.nodes.clone(),
            stats,
        })
    }
}

/// Options for [`Circuit::ac_sweep_with`].
#[derive(Clone, Copy, Debug)]
pub struct AcOptions {
    /// Worker threads for the frequency fan-out (`None` = all cores).
    /// Results are bit-identical at every thread count.
    pub threads: Option<usize>,
    /// Reuse one symbolic LU analysis across the grid (numeric-only
    /// refactorization per point). `false` re-runs the full symbolic +
    /// numeric factorization at every frequency — the ablation baseline.
    pub reuse_symbolic: bool,
}

impl Default for AcOptions {
    fn default() -> Self {
        AcOptions {
            threads: None,
            reuse_symbolic: true,
        }
    }
}

/// Transient-analysis options for [`Circuit::transient_with`].
#[derive(Clone, Copy, Debug)]
pub struct TranOptions {
    /// Maximum (fixed-mode: the) time step in seconds.
    pub tstep: f64,
    /// Stop time in seconds.
    pub tstop: f64,
    /// Enable LTE-controlled adaptive stepping.
    pub adaptive: bool,
    /// Relative LTE tolerance per node voltage.
    pub lte_reltol: f64,
    /// Absolute LTE tolerance in volts.
    pub lte_abstol: f64,
    /// Minimum step as a fraction of `tstep`.
    pub min_step_factor: f64,
}

impl TranOptions {
    /// Fixed-step configuration (the `.TRAN tstep tstop` semantics).
    pub fn fixed(tstep: f64, tstop: f64) -> Self {
        TranOptions {
            tstep,
            tstop,
            adaptive: false,
            lte_reltol: 1e-3,
            lte_abstol: 1e-5,
            min_step_factor: 1e-4,
        }
    }

    /// Adaptive configuration: `tstep` becomes the *maximum* step; the
    /// controller shrinks into fast transients and stretches across
    /// quiescent intervals.
    pub fn adaptive(max_step: f64, tstop: f64) -> Self {
        TranOptions {
            adaptive: true,
            ..TranOptions::fixed(max_step, tstop)
        }
    }
}

/// Worst normalized backward-Euler LTE over all nodes:
/// `LTE_i ≈ (h²/2)·v″ ≈ h²·DD2_i`, normalized like the trapezoidal
/// variant; > 1 means reject.
fn worst_lte_be(
    hist: &[(f64, &Vec<f64>); 2],
    tn: f64,
    vn: &[f64],
    h: f64,
    opt: &TranOptions,
) -> f64 {
    let (t0, v0) = (hist[0].0, hist[0].1);
    let (t1, v1) = (hist[1].0, hist[1].1);
    let mut worst = 0.0f64;
    for i in 0..vn.len() {
        let d01 = (v1[i] - v0[i]) / (t1 - t0);
        let d1n = (vn[i] - v1[i]) / (tn - t1);
        let dd2 = (d1n - d01) / (tn - t0);
        let lte = h * h * dd2.abs();
        let tol = opt.lte_abstol + opt.lte_reltol * vn[i].abs();
        worst = worst.max(lte / tol);
    }
    worst
}

/// Worst normalized trapezoidal LTE over all nodes:
/// `LTE_i ≈ (h³/2)·DD3_i`, normalized by `abstol + reltol·|v_i|`; > 1
/// means reject.
fn worst_lte_trap(
    hist: &[(f64, &Vec<f64>); 3],
    tn: f64,
    vn: &[f64],
    h: f64,
    opt: &TranOptions,
) -> f64 {
    let (t0, v0) = (hist[0].0, hist[0].1);
    let (t1, v1) = (hist[1].0, hist[1].1);
    let (t2, v2) = (hist[2].0, hist[2].1);
    let mut worst = 0.0f64;
    for i in 0..vn.len() {
        // Third divided difference over (t0, t1, t2, tn).
        let d01 = (v1[i] - v0[i]) / (t1 - t0);
        let d12 = (v2[i] - v1[i]) / (t2 - t1);
        let d2n = (vn[i] - v2[i]) / (tn - t2);
        let dd2a = (d12 - d01) / (t2 - t0);
        let dd2b = (d2n - d12) / (tn - t1);
        let dd3 = (dd2b - dd2a) / (tn - t0);
        let lte = 0.5 * h * h * h * dd3.abs();
        let tol = opt.lte_abstol + opt.lte_reltol * vn[i].abs();
        worst = worst.max(lte / tol);
    }
    worst
}

/// AC excitation selector.
#[derive(Clone, Debug)]
pub enum AcExcitation {
    /// Inject a unit AC current into the named node (for transimpedance).
    CurrentInto(String),
    /// Drive the named voltage source with unit AC magnitude.
    VSource(String),
}

/// DC operating-point solution.
#[derive(Clone, Debug)]
pub struct DcSolution {
    /// Full MNA solution (node voltages then source currents).
    pub x: Vec<f64>,
    nodes: Vec<String>,
    /// Work statistics.
    pub stats: SimStats,
}

impl DcSolution {
    /// Voltage of a named node (0 for ground), `None` if unknown.
    pub fn voltage(&self, name: &str) -> Option<f64> {
        if is_ground(name) {
            return Some(0.0);
        }
        self.nodes.iter().position(|n| n == name).map(|i| self.x[i])
    }
}

/// `.DC` sweep result: node voltages per swept source value.
#[derive(Clone, Debug)]
pub struct DcSweepResult {
    /// Swept source values.
    pub values: Vec<f64>,
    /// Node-voltage vectors per sweep point.
    pub waves: Vec<Vec<f64>>,
    nodes: Vec<String>,
    /// Aggregated work statistics across all sweep points.
    pub stats: SimStats,
}

impl DcSweepResult {
    /// The transfer curve of one node across the sweep.
    pub fn voltage(&self, name: &str) -> Option<Vec<f64>> {
        if is_ground(name) {
            return Some(vec![0.0; self.values.len()]);
        }
        let i = self.nodes.iter().position(|n| n == name)?;
        Some(self.waves.iter().map(|w| w[i]).collect())
    }
}

/// Transient waveform set.
#[derive(Clone, Debug)]
pub struct TranResult {
    /// Time points.
    pub times: Vec<f64>,
    /// Node-voltage vectors per time point.
    pub waves: Vec<Vec<f64>>,
    nodes: Vec<String>,
    /// Work statistics.
    pub stats: SimStats,
}

impl TranResult {
    /// The waveform of one node across all time points.
    pub fn voltage(&self, name: &str) -> Option<Vec<f64>> {
        if is_ground(name) {
            return Some(vec![0.0; self.times.len()]);
        }
        let i = self.nodes.iter().position(|n| n == name)?;
        Some(self.waves.iter().map(|w| w[i]).collect())
    }

    /// Linear interpolation of a node voltage at an arbitrary time.
    pub fn voltage_at(&self, name: &str, t: f64) -> Option<f64> {
        let v = self.voltage(name)?;
        if t <= self.times[0] {
            return Some(v[0]);
        }
        for k in 1..self.times.len() {
            if t <= self.times[k] {
                let (t0, t1) = (self.times[k - 1], self.times[k]);
                let frac = if t1 > t0 { (t - t0) / (t1 - t0) } else { 1.0 };
                return Some(v[k - 1] + (v[k] - v[k - 1]) * frac);
            }
        }
        v.last().copied()
    }
}

/// AC sweep result: complex node voltages per frequency.
#[derive(Clone, Debug)]
pub struct AcResult {
    /// Swept frequencies in Hz.
    pub freqs: Vec<f64>,
    /// Complex node voltages per frequency.
    pub voltages: Vec<Vec<Complex64>>,
    nodes: Vec<String>,
    /// Work statistics.
    pub stats: SimStats,
}

impl AcResult {
    /// Complex voltage of a node across the sweep.
    pub fn voltage(&self, name: &str) -> Option<Vec<Complex64>> {
        if is_ground(name) {
            return Some(vec![Complex64::ZERO; self.freqs.len()]);
        }
        let i = self.nodes.iter().position(|n| n == name)?;
        Some(self.voltages.iter().map(|w| w[i]).collect())
    }
}

/// Logarithmically spaced frequency points, `points_per_decade` per
/// decade from `fstart` to `fstop` inclusive (the `.AC DEC` grid; the
/// paper's Figure 5 sweep uses 81 points over 3 decades).
///
/// # Panics
///
/// Panics on a non-positive or empty range.
pub fn log_frequencies(points_per_decade: usize, fstart: f64, fstop: f64) -> Vec<f64> {
    assert!(fstart > 0.0 && fstop > fstart && points_per_decade > 0);
    let decades = (fstop / fstart).log10();
    let total = (decades * points_per_decade as f64).round() as usize;
    (0..=total)
        .map(|k| fstart * 10f64.powf(k as f64 / points_per_decade as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::parse;

    #[test]
    fn resistive_divider_dc() {
        let deck = "* div\nV1 in 0 10\nR1 in mid 1k\nR2 mid 0 1k\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        assert!((dc.voltage("mid").unwrap() - 5.0).abs() < 1e-6);
        assert!((dc.voltage("in").unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rc_step_response_time_constant() {
        let deck = "* rc\nV1 in 0 pwl(0 0 1p 1)\nR1 in out 1k\nC1 out 0 1p\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(5e-12, 5e-9).unwrap();
        // v(τ) = 1 − e⁻¹ ≈ 0.632 at t = 1 ns (+1 ps ramp offset).
        let v_tau = tr.voltage_at("out", 1.001e-9).unwrap();
        assert!(
            (v_tau - 0.632).abs() < 0.01,
            "v(tau) = {v_tau}, expected ~0.632"
        );
        let v_end = *tr.voltage("out").unwrap().last().unwrap();
        assert!(v_end > 0.99);
    }

    #[test]
    fn inverter_dc_transfer() {
        let deck = "\
* inv
.model nch nmos (vto=0.7 kp=110u lambda=0.04)
.model pch pmos (vto=-0.9 kp=40u lambda=0.05)
Vdd vdd 0 5
Vin in 0 0
M1 out in 0 0 nch w=4u l=1u
M2 out in vdd vdd pch w=8u l=1u
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        // Input low → output high.
        assert!(
            dc.voltage("out").unwrap() > 4.9,
            "out = {}",
            dc.voltage("out").unwrap()
        );
    }

    #[test]
    fn inverter_switches_in_transient() {
        let deck = "\
* inv tran
.model nch nmos (vto=0.7 kp=110u lambda=0.04)
.model pch pmos (vto=-0.9 kp=40u lambda=0.05)
Vdd vdd 0 5
Vin in 0 pulse(0 5 1n 0.1n 0.1n 4n 10n)
M1 out in 0 0 nch w=4u l=1u
M2 out in vdd vdd pch w=8u l=1u
Cl out 0 20f
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(50e-12, 8e-9).unwrap();
        // Before the pulse: out high. During the pulse: out low.
        assert!(tr.voltage_at("out", 0.9e-9).unwrap() > 4.5);
        assert!(tr.voltage_at("out", 4.0e-9).unwrap() < 0.5);
        // After the pulse falls: recovers high.
        assert!(tr.voltage_at("out", 7.9e-9).unwrap() > 4.0);
    }

    #[test]
    fn ac_rc_lowpass_pole() {
        let deck = "* rc\nV1 in 0 dc 0\nR1 in out 1k\nC1 out 0 1p\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-12);
        let freqs = vec![f3db / 100.0, f3db, f3db * 100.0];
        let ac = ckt
            .ac_sweep(&freqs, &AcExcitation::VSource("V1".into()))
            .unwrap();
        let v = ac.voltage("out").unwrap();
        assert!((v[0].abs() - 1.0).abs() < 1e-3);
        assert!((v[1].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!(v[2].abs() < 0.02);
    }

    #[test]
    fn ac_transimpedance_of_resistor() {
        // Unit current into node through 50Ω to ground: Z = 50.
        let deck = "* z\nR1 a 0 50\nI1 0 a dc 0\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let ac = ckt
            .ac_sweep(&[1e6], &AcExcitation::CurrentInto("a".into()))
            .unwrap();
        let v = ac.voltage("a").unwrap();
        assert!((v[0].re - 50.0).abs() < 1e-6);
        assert!(v[0].im.abs() < 1e-6);
    }

    #[test]
    fn unknown_model_is_error() {
        let deck = "* e\nM1 a b 0 0 nosuch\n.end\n";
        let r = Circuit::from_netlist(&parse(deck).unwrap());
        assert!(matches!(r, Err(CircuitError::UnknownModel { .. })));
    }

    #[test]
    fn breakpoints_are_hit_exactly() {
        let deck = "* bp\nV1 a 0 pulse(0 1 1n 0 0 2n 10n)\nR1 a 0 1k\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(0.3e-9, 5e-9).unwrap();
        // There must be time points at the pulse edges (1n, 3n).
        assert!(tr.times.iter().any(|&t| (t - 1e-9).abs() < 1e-15));
        assert!(tr.times.iter().any(|&t| (t - 3e-9).abs() < 1e-15));
    }

    #[test]
    fn log_frequency_grid() {
        let f = log_frequencies(27, 1e7, 1e10);
        assert_eq!(f.len(), 82); // 3 decades * 27 + 1
        assert!((f[0] - 1e7).abs() < 1.0);
        assert!((f.last().unwrap() - 1e10).abs() / 1e10 < 1e-9);
    }

    #[test]
    fn stats_are_reported() {
        let deck = "* s\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1p\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(1e-10, 1e-9).unwrap();
        assert!(tr.stats.steps >= 10);
        assert!(tr.stats.factorizations > 0);
        assert!(tr.stats.modelled_memory_bytes > 0);
    }

    #[test]
    fn capacitor_coupling_injects_charge() {
        // A fast edge couples through a floating cap into a resistive
        // node — the mechanism of substrate noise injection.
        let deck = "\
* coupling
V1 a 0 pulse(0 5 1n 0.2n 0.2n 3n 10n)
C1 a sub 10f
Rsub sub 0 10k
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(20e-12, 3e-9).unwrap();
        let v = tr.voltage("sub").unwrap();
        let peak = v.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak > 0.05, "expected coupling spike, peak = {peak}");
        // And it decays back toward zero.
        assert!(v.last().unwrap().abs() < 0.05);
    }

    #[test]
    fn linear_transient_factors_once_per_step_size() {
        // Linear deck: exactly one symbolic analysis (= one fresh
        // factorization) for the entire run; every other distinct
        // (gmin, step-size) pair costs at most one numeric
        // refactorization, and repeated step sizes cost none.
        let deck = "* s\nV1 in 0 pwl(0 0 1p 1)\nR1 in out 1k\nC1 out 0 1p\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(1e-10, 2e-9).unwrap();
        assert_eq!(
            tr.stats.factorizations, 1,
            "linear run must analyze symbolically exactly once"
        );
        // Distinct matrices: 4 extra gmin-ramp stages + a handful of
        // distinct step sizes (breakpoint-clipped starts, BE vs trap,
        // final clip) — far fewer than the number of steps.
        assert!(
            tr.stats.refactorizations <= 10,
            "refactorizations = {} (expected one per distinct step size)",
            tr.stats.refactorizations
        );
        assert!(tr.stats.steps > tr.stats.refactorizations + tr.stats.factorizations);
        assert!(tr.stats.peak_factor_nnz >= tr.stats.factor_nnz);
    }

    #[test]
    fn ac_sweep_bit_identical_across_threads_and_reuse() {
        let deck = "\
* ladder
V1 in 0 dc 0
R1 in n1 100
C1 n1 0 1p
R2 n1 n2 100
C2 n2 0 2p
R3 n2 out 100
C3 out 0 1p
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let freqs = log_frequencies(9, 1e6, 1e9);
        let exc = AcExcitation::VSource("V1".into());
        let base = ckt
            .ac_sweep_with(
                &freqs,
                &exc,
                &AcOptions {
                    threads: Some(1),
                    reuse_symbolic: true,
                },
            )
            .unwrap();
        // DC gmin ramp: 1 fresh + 4 refactors; AC grid: 1 fresh symbolic
        // capture + one refactor per frequency point.
        assert_eq!(base.stats.factorizations, 2);
        assert_eq!(base.stats.refactorizations, 4 + freqs.len());
        for threads in [2usize, 4, 8] {
            let par = ckt
                .ac_sweep_with(
                    &freqs,
                    &exc,
                    &AcOptions {
                        threads: Some(threads),
                        reuse_symbolic: true,
                    },
                )
                .unwrap();
            assert_eq!(par.stats.factorizations, base.stats.factorizations);
            assert_eq!(par.stats.refactorizations, base.stats.refactorizations);
            for (a, b) in base.voltages.iter().zip(&par.voltages) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "threads={threads}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "threads={threads}");
                }
            }
        }
        // Refactor ablation: full factorization per point gives the exact
        // same waveforms, just more expensively.
        let ablate = ckt
            .ac_sweep_with(
                &freqs,
                &exc,
                &AcOptions {
                    threads: Some(1),
                    reuse_symbolic: false,
                },
            )
            .unwrap();
        assert_eq!(ablate.stats.refactorizations, 4, "dc ramp only");
        assert_eq!(ablate.stats.factorizations, 1 + freqs.len());
        for (a, b) in base.voltages.iter().zip(&ablate.voltages) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn rl_step_response_time_constant() {
        // Series RL driven by a step: i(t) = (V/R)(1 − e^(−tR/L)),
        // v(mid) = V·e^(−t/τ) with τ = L/R = 1 ns.
        let deck = "* rl\nV1 in 0 pwl(0 0 1p 1)\nR1 in mid 1k\nL1 mid 0 1u\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(5e-12, 5e-9).unwrap();
        let v_tau = tr.voltage_at("mid", 1.001e-9).unwrap();
        assert!(
            (v_tau - (-1.0f64).exp()).abs() < 0.01,
            "v(tau) = {v_tau}, expected ~0.368"
        );
        // Long after the step the inductor is a short.
        assert!(tr.voltage("mid").unwrap().last().unwrap().abs() < 0.01);
    }

    #[test]
    fn inductor_is_dc_short_and_ac_open() {
        let deck = "* lc\nV1 in 0 dc 1\nR1 in out 1k\nL1 out 0 1m\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        assert!(dc.voltage("out").unwrap().abs() < 1e-9, "DC short");
        // At f >> R/(2πL) the divider passes nearly everything.
        let ac = ckt
            .ac_sweep(&[1e9], &AcExcitation::VSource("V1".into()))
            .unwrap();
        let v = ac.voltage("out").unwrap()[0];
        assert!(v.abs() > 0.99, "|v| = {} at high f", v.abs());
        // And at f << R/(2πL) almost nothing.
        let ac = ckt
            .ac_sweep(&[1e3], &AcExcitation::VSource("V1".into()))
            .unwrap();
        let v = ac.voltage("out").unwrap()[0];
        assert!(v.abs() < 0.05, "|v| = {} at low f", v.abs());
    }

    #[test]
    fn lc_resonance_peak() {
        // Series RLC: |v(cap)| peaks near f0 = 1/(2π√(LC)) ≈ 5.03 MHz.
        let deck = "* rlc\nV1 in 0 dc 0\nR1 in mid 10\nL1 mid out 1u\nC1 out 0 1n\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let ac = ckt
            .ac_sweep(
                &[f0 / 10.0, f0, f0 * 10.0],
                &AcExcitation::VSource("V1".into()),
            )
            .unwrap();
        let v = ac.voltage("out").unwrap();
        // Q = (1/R)·√(L/C) ≈ 3.2 of gain at resonance.
        assert!(v[1].abs() > 2.0 * v[0].abs());
        assert!(v[1].abs() > 2.0 * v[2].abs());
    }

    #[test]
    fn vcvs_amplifies() {
        let deck = "* e\nV1 a 0 2\nR1 a 0 1k\nE1 out 0 a 0 5\nRl out 0 1k\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        assert!((dc.voltage("out").unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_injects_current() {
        // G1 drives gm·v(a) = 1e-3·2 = 2 mA into out through 1k → 2 V
        // (current flows from n to p through the external resistor).
        let deck = "* g\nV1 a 0 2\nG1 0 out a 0 1m\nRl out 0 1k\n.end\n";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        assert!((dc.voltage("out").unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cccs_and_ccvs_sense_branch_current() {
        // V1 pushes 1 mA through R1; F1 mirrors 2× that into Rf.
        // i(V1) in MNA convention flows p→n inside the source, so the
        // branch current is −1 mA; gains below account for the sign.
        let deck = "\
* fh
V1 a 0 1
R1 a 0 1k
F1 0 fo V1 -2
Rf fo 0 1k
H1 ho 0 V1 -4k
Rh ho 0 1k
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        // F: 2·1mA into fo through 1k → 2 V.
        assert!(
            (dc.voltage("fo").unwrap() - 2.0).abs() < 1e-6,
            "fo = {}",
            dc.voltage("fo").unwrap()
        );
        // H: 4kΩ·1mA = 4 V source driving ho.
        assert!(
            (dc.voltage("ho").unwrap() - 4.0).abs() < 1e-6,
            "ho = {}",
            dc.voltage("ho").unwrap()
        );
    }

    #[test]
    fn unknown_control_is_error() {
        let deck = "* f\nV1 a 0 1\nR1 a 0 1k\nF1 0 b V9 2\nRb b 0 1k\n.end\n";
        let r = Circuit::from_netlist(&parse(deck).unwrap());
        assert!(matches!(r, Err(CircuitError::UnknownControl { .. })));
    }

    #[test]
    fn diode_rectifies_dc() {
        let deck = "\
* d
.model dx d (is=1e-14 n=1)
V1 in 0 5
R1 in out 1k
D1 out 0 dx
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        let v = dc.voltage("out").unwrap();
        // Forward drop of a silicon diode passing ~4.3 mA: 0.6–0.8 V.
        assert!(v > 0.5 && v < 0.9, "forward drop = {v}");
        // Reverse-biased: the diode blocks and out floats to the rail.
        let deck_r = deck.replace("D1 out 0 dx", "D1 0 out dx");
        let ckt_r = Circuit::from_netlist(&parse(&deck_r).unwrap()).unwrap();
        let vr = ckt_r.dc_operating_point().unwrap().voltage("out").unwrap();
        assert!(vr > 4.9, "reverse-biased node = {vr}");
    }

    #[test]
    fn diode_clips_transient() {
        // A sine through a resistor into a grounded diode clips the
        // negative excursion near one forward drop.
        let deck = "\
* clip
.model dx d (is=1e-14 n=1)
V1 in 0 sin(0 5 1e6)
R1 in out 1k
D1 0 out dx
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(5e-9, 2e-6).unwrap();
        let v = tr.voltage("out").unwrap();
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 4.0, "positive half passes, max = {max}");
        assert!(min > -1.0 && min < -0.4, "negative half clips, min = {min}");
    }

    #[test]
    fn diode_junction_cap_loads_ac() {
        // Reverse-biased diode: only cj0 loads the node; pole at
        // 1/(2πRC) with C = cj0 = 10 pF, R = 1k → 15.9 MHz.
        let deck = "\
* djc
.model dx d (is=1e-14 n=1 cj0=10p)
V1 in 0 dc 0
R1 in out 1k
D1 0 out dx
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 10e-12);
        let ac = ckt
            .ac_sweep(&[f3db], &AcExcitation::VSource("V1".into()))
            .unwrap();
        let v = ac.voltage("out").unwrap()[0];
        assert!(
            (v.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01,
            "|v| = {} at f3db",
            v.abs()
        );
    }

    #[test]
    fn dc_sweep_traces_diode_transfer() {
        let deck = "\
* sweep
.model dx d (is=1e-14 n=1)
V1 in 0 0
R1 in out 1k
D1 out 0 dx
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let sw = ckt.dc_sweep("V1", 0.0, 5.0, 0.5).unwrap();
        assert_eq!(sw.values.len(), 11);
        let v = sw.voltage("out").unwrap();
        // Monotone rising, saturating near the diode drop.
        assert!(v.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!(v[0].abs() < 1e-6 && *v.last().unwrap() < 1.0);
        // Unknown source name errors.
        assert!(matches!(
            ckt.dc_sweep("V9", 0.0, 1.0, 0.1),
            Err(CircuitError::UnknownSource { .. })
        ));
    }

    #[test]
    fn linear_fast_path_covers_l_and_controlled_sources() {
        // A deck with L + E + G (no nonlinear devices) must still take
        // the one-symbolic-analysis fast path.
        let deck = "\
* lin
V1 in 0 pwl(0 0 1p 1)
R1 in a 100
L1 a b 10n
C1 b 0 1p
E1 e 0 b 0 2
Re e 0 1k
G1 0 go b 0 1m
Rg go 0 1k
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let tr = ckt.transient(1e-11, 1e-9).unwrap();
        // Branch-row diagonals swing from 0 (DC) to req (transient), so
        // threshold pivoting may re-capture the analysis a few times —
        // but repeated step sizes must hit the numeric cache: far fewer
        // factor events than steps.
        assert!(
            tr.stats.factorizations <= 4,
            "factorizations = {}",
            tr.stats.factorizations
        );
        assert!(
            tr.stats.steps > tr.stats.factorizations + tr.stats.refactorizations,
            "numeric cache must absorb repeated step sizes: {} steps, {} factor events",
            tr.stats.steps,
            tr.stats.factorizations + tr.stats.refactorizations
        );
        // VCVS follows 2× its sensed node at every time point.
        let vb = tr.voltage("b").unwrap();
        let ve = tr.voltage("e").unwrap();
        for (b, e) in vb.iter().zip(&ve) {
            assert!((e - 2.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_rc_from_reduced_models_is_accepted() {
        // Reduced netlists legitimately contain negative R/C; the MNA
        // solver must handle them (only the aggregate model is passive).
        let deck = "\
* neg
V1 a 0 1
R1 a b 100
Rn b c -500
R2 c 0 100
.end
";
        let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        // Series: 100 - 500 + 100 = -300 total; i = 1/-300; v(c) = i*100.
        let vc = dc.voltage("c").unwrap();
        assert!((vc - 100.0 / -300.0).abs() < 1e-6);
    }
}
