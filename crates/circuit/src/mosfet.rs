//! Level-1 (Shichman–Hodges) MOSFET evaluation and Newton stamps.
//!
//! The paper's benchmark circuits are CMOS gates; a level-1 model with
//! channel-length modulation plus fixed gate and drain/source-to-body
//! junction capacitances reproduces the behaviours the evaluation needs:
//! inverter switching (Figures 3–4) and substrate current injection
//! through the junction capacitances (Figure 6).

use pact_netlist::MosModel;

/// A MOSFET instance with resolved model parameters and node indices
/// (`None` = ground).
#[derive(Clone, Debug)]
pub struct Mosfet {
    /// Drain node.
    pub d: Option<usize>,
    /// Gate node.
    pub g: Option<usize>,
    /// Source node.
    pub s: Option<usize>,
    /// Body node.
    pub b: Option<usize>,
    /// `true` for NMOS.
    pub nmos: bool,
    /// Threshold voltage (sign per polarity).
    pub vto: f64,
    /// `β = KP·W/L`.
    pub beta: f64,
    /// Channel-length modulation `λ`.
    pub lambda: f64,
    /// Gate–source capacitance (F).
    pub cgs: f64,
    /// Gate–drain capacitance (F).
    pub cgd: f64,
    /// Drain–body junction capacitance (F).
    pub cdb: f64,
    /// Source–body junction capacitance (F).
    pub csb: f64,
}

impl Mosfet {
    /// Builds an instance from a model card and geometry.
    pub fn from_model(
        model: &MosModel,
        d: Option<usize>,
        g: Option<usize>,
        s: Option<usize>,
        b: Option<usize>,
        w: f64,
        l: f64,
    ) -> Self {
        let cg = model.cox * w * l;
        Mosfet {
            d,
            g,
            s,
            b,
            nmos: model.nmos,
            vto: model.vto,
            beta: model.kp * w / l,
            lambda: model.lambda,
            cgs: 0.5 * cg,
            cgd: 0.5 * cg,
            cdb: model.cjb * w,
            csb: model.cjb * w,
        }
    }
}

/// Linearization of a MOSFET at an operating point: current plus
/// conductances for the Newton iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MosOp {
    /// Drain current flowing drain→source (A), sign per polarity.
    pub ids: f64,
    /// `∂ids/∂vgs`.
    pub gm: f64,
    /// `∂ids/∂vds`.
    pub gds: f64,
}

/// Evaluates the level-1 equations at terminal voltages `(vd, vg, vs)`,
/// returning current and small-signal conductances *with respect to the
/// actual drain/source terminals* (internal source/drain swap and PMOS
/// mirroring are handled inside).
pub fn eval_level1(m: &Mosfet, vd: f64, vg: f64, vs: f64) -> MosOp {
    let sign = if m.nmos { 1.0 } else { -1.0 };
    // Mirror into NMOS-normal space.
    let (ud, ug, us) = (sign * vd, sign * vg, sign * vs);
    let vto = sign * m.vto; // positive in u-space for both polarities
                            // Source/drain swap so u_ds ≥ 0.
    let swapped = ud < us;
    let (ue_d, ue_s) = if swapped { (us, ud) } else { (ud, us) };
    let vgs = ug - ue_s;
    let vds = ue_d - ue_s;
    let vov = vgs - vto;
    let (i, gm_u, gds_u) = if vov <= 0.0 {
        (0.0, 0.0, 0.0)
    } else if vds < vov {
        // Triode region.
        let cm = 1.0 + m.lambda * vds;
        let i = m.beta * (vov * vds - 0.5 * vds * vds) * cm;
        let gm = m.beta * vds * cm;
        let gds = m.beta * (vov - vds) * cm + m.beta * (vov * vds - 0.5 * vds * vds) * m.lambda;
        (i, gm, gds)
    } else {
        // Saturation.
        let cm = 1.0 + m.lambda * vds;
        let i = 0.5 * m.beta * vov * vov * cm;
        let gm = m.beta * vov * cm;
        let gds = 0.5 * m.beta * vov * vov * m.lambda;
        (i, gm, gds)
    };
    // Undo the swap: current flowed effective-drain → effective-source.
    let i_u = if swapped { -i } else { i };
    // Undo the mirror: real drain→source current.
    let ids = sign * i_u;
    // Conductances are invariant under both transformations in the sense
    // used by the stamp (they apply to the *effective* gate/source pair);
    // the stamping code re-derives the terminal mapping from `swapped`.
    MosOp {
        ids,
        gm: gm_u,
        gds: gds_u,
    }
}

/// Newton companion stamp for a MOSFET at the voltages in `v` (ground
/// implied 0): appends conductance triplets and right-hand-side current
/// terms for the linearized device.
///
/// The rows/columns follow the standard MNA transistor stamp with the
/// effective drain/source orientation resolved internally.
pub fn stamp_level1(m: &Mosfet, v: &[f64], trips: &mut Vec<(usize, usize, f64)>, rhs: &mut [f64]) {
    let vt = |n: Option<usize>| n.map_or(0.0, |i| v[i]);
    let (vd, vg, vs) = (vt(m.d), vt(m.g), vt(m.s));
    let sign = if m.nmos { 1.0 } else { -1.0 };
    let swapped = sign * vd < sign * vs;
    // Effective terminals in real space.
    let (ed, es) = if swapped { (m.s, m.d) } else { (m.d, m.s) };
    let op = eval_level1(m, vd, vg, vs);
    // In effective orientation the device current flows ed→es with
    // magnitude |ids| and linearization (gm, gds) against (v_g−v_es,
    // v_ed−v_es) in u-space. Transform to real voltages: u = sign·v, so
    // ∂/∂v = sign·∂/∂u, and the current in real space from ed to es is
    // i_eff = sign · i_u(effective) — equal to `op.ids` when not swapped
    // and `−op.ids` when swapped.
    let i_eff = if swapped { -op.ids } else { op.ids };
    let (ved, vges) = {
        let ves = vt(es);
        (vt(ed) - ves, vg - ves)
    };
    // Real-space conductances for the effective orientation: both gm and
    // gds are positive and independent of polarity (sign² = 1).
    let gm = op.gm;
    let gds = op.gds;
    // i(v) ≈ i_eff + gm·(Δvges) + gds·(Δved)  with sign-mirroring folded:
    // in real space di/dvges = gm, di/dved = gds for both polarities.
    let ieq = i_eff - gm * vges - gds * ved;
    let mut add = |r: Option<usize>, c: Option<usize>, val: f64| {
        if let (Some(ri), Some(ci)) = (r, c) {
            trips.push((ri, ci, val));
        }
    };
    // KCL rows: current i flows out of node ed, into node es.
    add(ed, ed, gds);
    add(ed, es, -(gds + gm));
    add(ed, m.g, gm);
    add(es, ed, -gds);
    add(es, es, gds + gm);
    add(es, m.g, -gm);
    if let Some(ri) = ed {
        rhs[ri] -= ieq;
    }
    if let Some(ri) = es {
        rhs[ri] += ieq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::MosModel;

    fn nmos() -> Mosfet {
        Mosfet::from_model(
            &MosModel::default_nmos("n"),
            Some(0),
            Some(1),
            Some(2),
            None,
            10e-6,
            1e-6,
        )
    }

    fn pmos() -> Mosfet {
        Mosfet::from_model(
            &MosModel::default_pmos("p"),
            Some(0),
            Some(1),
            Some(2),
            None,
            20e-6,
            1e-6,
        )
    }

    #[test]
    fn cutoff_region_zero_current() {
        let m = nmos();
        let op = eval_level1(&m, 5.0, 0.0, 0.0);
        assert_eq!(op.ids, 0.0);
        assert_eq!(op.gm, 0.0);
    }

    #[test]
    fn saturation_current_value() {
        let m = nmos();
        // vgs = 2, vds = 5 > vov = 1.3: saturation.
        let op = eval_level1(&m, 5.0, 2.0, 0.0);
        let beta = 110e-6 * 10.0;
        let expect = 0.5 * beta * 1.3 * 1.3 * (1.0 + 0.04 * 5.0);
        assert!((op.ids - expect).abs() < 1e-12);
        assert!(op.gm > 0.0);
        assert!(op.gds > 0.0);
    }

    #[test]
    fn triode_region() {
        let m = nmos();
        // vgs = 3, vds = 0.5 < vov = 2.3: triode.
        let op = eval_level1(&m, 0.5, 3.0, 0.0);
        let beta = 110e-6 * 10.0;
        let cm = 1.0 + 0.04 * 0.5;
        let expect = beta * (2.3 * 0.5 - 0.125) * cm;
        assert!((op.ids - expect).abs() < 1e-12);
    }

    #[test]
    fn current_continuity_at_region_boundary() {
        let m = nmos();
        let vov = 2.0 - 0.7;
        let below = eval_level1(&m, vov - 1e-9, 2.0, 0.0);
        let above = eval_level1(&m, vov + 1e-9, 2.0, 0.0);
        assert!((below.ids - above.ids).abs() < 1e-9);
        assert!((below.gm - above.gm).abs() < 1e-6);
    }

    #[test]
    fn symmetric_under_source_drain_swap() {
        // Swapping D and S terminals with mirrored voltages negates ids.
        let m = nmos();
        let a = eval_level1(&m, 1.5, 3.0, 0.0);
        let b = eval_level1(&m, 0.0, 3.0, 1.5);
        assert!((a.ids + b.ids).abs() < 1e-15);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let mp = pmos();
        // PMOS with source at 5 V, gate at 2.5 V, drain at 0: |vgs|=2.5 >
        // |vto|=0.9 → conducts, current flows source→drain, i.e. ids
        // (drain→source) is negative.
        let op = eval_level1(&mp, 0.0, 2.5, 5.0);
        assert!(op.ids < 0.0, "PMOS ids should be negative, got {}", op.ids);
        assert!(op.gm > 0.0);
    }

    #[test]
    fn stamp_consistent_with_finite_difference() {
        // The Newton stamp must satisfy: for small dv, the linear model
        // current ≈ the re-evaluated device current.
        let m = nmos();
        let v = [1.2, 2.4, 0.3];
        let op0 = eval_level1(&m, v[0], v[1], v[2]);
        let h = 1e-7;
        // dIds/dVg via finite difference equals stamp's gm.
        let opg = eval_level1(&m, v[0], v[1] + h, v[2]);
        let gm_fd = (opg.ids - op0.ids) / h;
        let opd = eval_level1(&m, v[0] + h, v[1], v[2]);
        let gds_fd = (opd.ids - op0.ids) / h;
        assert!((gm_fd - op0.gm).abs() < 1e-4 * op0.gm.max(1e-12), "gm fd");
        assert!(
            (gds_fd - op0.gds).abs() < 1e-4 * op0.gds.max(1e-12),
            "gds fd"
        );
    }

    #[test]
    fn stamp_conserves_current() {
        // Sum of stamped RHS contributions must be zero (KCL).
        let m = nmos();
        let v = vec![2.0, 3.0, 0.5];
        let mut trips = Vec::new();
        let mut rhs = vec![0.0; 3];
        stamp_level1(&m, &v, &mut trips, &mut rhs);
        let total: f64 = rhs.iter().sum();
        assert!(total.abs() < 1e-15);
        // Per column, the drain-row and source-row stamps cancel (the
        // device injects what it draws).
        let mut colsum = [0.0; 3];
        for &(_, c, val) in &trips {
            colsum[c] += val;
        }
        for (c, s) in colsum.iter().enumerate() {
            assert!(s.abs() < 1e-15, "column {c} sum {s}");
        }
    }

    #[test]
    fn junction_caps_scale_with_geometry() {
        let model = MosModel::default_nmos("n");
        let small = Mosfet::from_model(&model, None, None, None, None, 1e-6, 1e-6);
        let big = Mosfet::from_model(&model, None, None, None, None, 4e-6, 1e-6);
        assert!((big.cdb / small.cdb - 4.0).abs() < 1e-12);
        assert!((big.cgs / small.cgs - 4.0).abs() < 1e-12);
    }
}
