//! Junction diode evaluation and Newton companion stamps.
//!
//! A Shockley diode with exponential limiting: beyond a critical forward
//! voltage the exponential is continued linearly, which keeps Newton
//! updates finite without changing the converged solution (the limit sits
//! far above any physical operating point the damped iteration visits).

use pact_netlist::DiodeModel;

/// Thermal voltage `kT/q` at 300 K (V).
pub const VTHERM: f64 = 0.025852;

/// Exponent cap: the diode characteristic is continued linearly above
/// `vmax = EXP_LIMIT · n · Vt` (≈ 1.03 V for an ideal silicon diode).
const EXP_LIMIT: f64 = 40.0;

/// A diode instance with resolved model parameters and node indices
/// (`None` = ground). Anode is `p`, cathode `n`.
#[derive(Clone, Debug)]
pub struct Diode {
    /// Anode node.
    pub p: Option<usize>,
    /// Cathode node.
    pub n: Option<usize>,
    /// Area-scaled saturation current `IS · area` (A).
    pub is_sat: f64,
    /// Emission-scaled thermal voltage `n · Vt` (V).
    pub nvt: f64,
    /// Area-scaled zero-bias junction capacitance (F).
    pub cj: f64,
}

impl Diode {
    /// Builds an instance from a model card and an area factor.
    pub fn from_model(model: &DiodeModel, p: Option<usize>, n: Option<usize>, area: f64) -> Self {
        Diode {
            p,
            n,
            is_sat: model.is * area,
            nvt: model.n * VTHERM,
            cj: model.cj0 * area,
        }
    }
}

/// Linearization of a diode at a junction voltage: current plus
/// small-signal conductance for the Newton iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiodeOp {
    /// Anode→cathode current (A).
    pub id: f64,
    /// `∂id/∂v` (S).
    pub gd: f64,
}

/// Evaluates the limited Shockley characteristic at junction voltage `v`.
pub fn eval_diode(d: &Diode, v: f64) -> DiodeOp {
    let vmax = EXP_LIMIT * d.nvt;
    if v <= vmax {
        let e = (v / d.nvt).exp();
        DiodeOp {
            id: d.is_sat * (e - 1.0),
            gd: d.is_sat / d.nvt * e,
        }
    } else {
        // Linear continuation: value and slope match at vmax.
        let e = EXP_LIMIT.exp();
        let g = d.is_sat / d.nvt * e;
        DiodeOp {
            id: d.is_sat * (e - 1.0) + g * (v - vmax),
            gd: g,
        }
    }
}

/// Newton companion stamp at the node voltages in `v` (ground implied 0):
/// appends the linearized conductance and the equivalent-current RHS
/// terms.
pub fn stamp_diode(d: &Diode, v: &[f64], trips: &mut Vec<(usize, usize, f64)>, rhs: &mut [f64]) {
    let vp = d.p.map_or(0.0, |i| v[i]);
    let vn = d.n.map_or(0.0, |i| v[i]);
    let vd = vp - vn;
    let op = eval_diode(d, vd);
    let ieq = op.id - op.gd * vd;
    match (d.p, d.n) {
        (Some(i), Some(j)) if i != j => {
            trips.push((i, i, op.gd));
            trips.push((j, j, op.gd));
            trips.push((i, j, -op.gd));
            trips.push((j, i, -op.gd));
        }
        (Some(i), None) | (None, Some(i)) => trips.push((i, i, op.gd)),
        _ => {}
    }
    if let Some(i) = d.p {
        rhs[i] -= ieq;
    }
    if let Some(j) = d.n {
        rhs[j] += ieq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diode() -> Diode {
        Diode::from_model(&DiodeModel::default_diode("d"), Some(0), None, 1.0)
    }

    #[test]
    fn reverse_bias_blocks() {
        let d = diode();
        let op = eval_diode(&d, -5.0);
        assert!((op.id + d.is_sat).abs() < 1e-20, "reverse current ≈ −IS");
        assert!(op.gd >= 0.0);
    }

    #[test]
    fn forward_bias_conducts_exponentially() {
        let d = diode();
        let a = eval_diode(&d, 0.6);
        let b = eval_diode(&d, 0.7);
        assert!(a.id > 0.0);
        // One decade of bias ≈ e^(0.1/0.0259) ≈ 48× more current.
        assert!(b.id / a.id > 40.0 && b.id / a.id < 60.0);
    }

    #[test]
    fn limiting_is_continuous_in_value_and_slope() {
        let d = diode();
        let vmax = 40.0 * d.nvt;
        let below = eval_diode(&d, vmax - 1e-9);
        let above = eval_diode(&d, vmax + 1e-9);
        assert!((below.id - above.id).abs() < 1e-6 * below.id);
        assert!((below.gd - above.gd).abs() < 1e-6 * below.gd);
        // And far beyond the limit the current stays finite and linear.
        let far = eval_diode(&d, 100.0);
        assert!(far.id.is_finite());
        assert_eq!(far.gd, above.gd);
    }

    #[test]
    fn gd_matches_finite_difference() {
        let d = diode();
        for v in [-1.0, 0.3, 0.65, 0.8] {
            let op = eval_diode(&d, v);
            let h = 1e-9;
            let fd = (eval_diode(&d, v + h).id - op.id) / h;
            assert!(
                (fd - op.gd).abs() <= 1e-4 * op.gd.abs().max(1e-18),
                "v={v}: fd={fd}, gd={}",
                op.gd
            );
        }
    }

    #[test]
    fn stamp_conserves_current() {
        let d = Diode::from_model(&DiodeModel::default_diode("d"), Some(0), Some(1), 1.0);
        let v = vec![0.7, 0.0];
        let mut trips = Vec::new();
        let mut rhs = vec![0.0; 2];
        stamp_diode(&d, &v, &mut trips, &mut rhs);
        assert!(rhs.iter().sum::<f64>().abs() < 1e-18);
        let mut colsum = [0.0; 2];
        for &(_, c, val) in &trips {
            colsum[c] += val;
        }
        for s in colsum {
            assert!(s.abs() < 1e-18);
        }
    }

    #[test]
    fn area_scales_current_and_capacitance() {
        let m = DiodeModel {
            name: "d".into(),
            is: 1e-14,
            n: 1.0,
            cj0: 1e-15,
        };
        let small = Diode::from_model(&m, Some(0), None, 1.0);
        let big = Diode::from_model(&m, Some(0), None, 3.0);
        assert!((big.is_sat / small.is_sat - 3.0).abs() < 1e-12);
        assert!((big.cj / small.cj - 3.0).abs() < 1e-12);
        let sv = eval_diode(&small, 0.6).id;
        let bv = eval_diode(&big, 0.6).id;
        assert!((bv / sv - 3.0).abs() < 1e-9);
    }
}
