//! Numerical-accuracy tests of the simulator against closed-form
//! solutions: integration order, conservation, linear-network theory and
//! small-signal consistency.

use pact_circuit::{AcExcitation, Circuit};
use pact_netlist::parse;

/// RC discharge: v(t) = V0·e^{−t/RC}, exact reference for step-size
/// convergence.
fn rc_decay_error(tstep: f64) -> f64 {
    // Start charged via PWL that drops at t=0+, then free decay.
    let deck = "\
* decay
V1 in 0 pwl(0 1 0.2n 1 0.21n 0)
R1 in out 1k
C1 out 0 1p
.end
";
    let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
    let tr = ckt.transient(tstep, 5e-9).unwrap();
    // After the source drops (t > 0.21 ns) the output decays through R
    // toward 0 with τ = 1 ns.
    let t0 = 0.21e-9;
    let v0 = tr.voltage_at("out", t0).unwrap();
    let mut worst: f64 = 0.0;
    for &t in &[1e-9, 2e-9, 4e-9] {
        let v = tr.voltage_at("out", t).unwrap();
        let expect = v0 * (-(t - t0) / 1e-9).exp();
        worst = worst.max((v - expect).abs());
    }
    worst
}

#[test]
fn trapezoidal_converges_at_second_order() {
    let e_coarse = rc_decay_error(100e-12);
    let e_fine = rc_decay_error(25e-12);
    // 4x smaller step ⇒ ~16x smaller error for a 2nd-order method; allow
    // slack for breakpoint-restart BE steps.
    assert!(
        e_fine < e_coarse / 6.0,
        "expected ~2nd order: coarse {e_coarse:.3e}, fine {e_fine:.3e}"
    );
}

#[test]
fn charge_is_conserved_in_cap_divider() {
    // A charged capacitor dumped into another: final voltage from charge
    // conservation, independent of the resistor in between.
    let deck = "\
* share
V1 a 0 pwl(0 1 0.1n 1 0.11n 0)
Rsw a top 1
Rs top mid 100
C1 mid 0 2p
C2 btm 0 1p
Rj mid btm 50
.end
";
    // Simplify: drive C1 to ~1 V, then watch C1 (2p) share with C2 (1p):
    // v_final = 2/(2+1) · v_start (charge conservation) if the source
    // branch is disconnected. Our switch is a resistor, so instead verify
    // that mid and btm converge to the same voltage (charge equalized).
    let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
    let tr = ckt.transient(10e-12, 20e-9).unwrap();
    let v_mid = tr.voltage_at("mid", 20e-9).unwrap();
    let v_btm = tr.voltage_at("btm", 20e-9).unwrap();
    assert!(
        (v_mid - v_btm).abs() < 1e-3,
        "caps failed to equalize: {v_mid} vs {v_btm}"
    );
}

#[test]
fn thevenin_equivalence() {
    // Two decks that are Thevenin-equivalent must give identical node
    // voltages at the shared port.
    let a = "* thev a\nV1 s 0 10\nR1 s out 2k\nR2 out 0 2k\n.end\n";
    let b = "* thev b\nV1 s 0 5\nR1 s out 1k\n Rload out 0 1meg\n.end\n";
    // a: Thevenin at `out` = 5 V behind 1 kΩ. b: same with explicit load.
    let ca = Circuit::from_netlist(&parse(a).unwrap()).unwrap();
    let cb = Circuit::from_netlist(&parse(b).unwrap()).unwrap();
    let va = ca.dc_operating_point().unwrap().voltage("out").unwrap();
    let vb = cb.dc_operating_point().unwrap().voltage("out").unwrap();
    // a is unloaded: out = 5 V (up to the simulator's GMIN leakage);
    // b has a 1 MΩ load: 4.995 V.
    assert!((va - 5.0).abs() < 1e-6);
    assert!((vb - 5.0 * 1e6 / (1e6 + 1e3)).abs() < 1e-6);
}

#[test]
fn ac_matches_transient_steady_state() {
    // Drive an RC low-pass with a sine in transient; after several
    // periods the amplitude must match the AC sweep's magnitude.
    let f = 200e6;
    let deck = format!("* sine\nV1 in 0 sin(0 1 {f})\nR1 in out 1k\nC1 out 0 1p\n.end\n");
    let ckt = Circuit::from_netlist(&parse(&deck).unwrap()).unwrap();
    let ac = ckt
        .ac_sweep(&[f], &AcExcitation::VSource("V1".into()))
        .unwrap();
    let mag_ac = ac.voltage("out").unwrap()[0].abs();

    let period = 1.0 / f;
    let tr = ckt.transient(period / 200.0, 12.0 * period).unwrap();
    let v = tr.voltage("out").unwrap();
    // Peak over the last two periods.
    let start = tr.times.iter().position(|&t| t >= 10.0 * period).unwrap();
    let peak = v[start..].iter().fold(0.0f64, |m, x| m.max(x.abs()));
    assert!(
        (peak - mag_ac).abs() < 0.02 * mag_ac.max(1e-12),
        "transient peak {peak:.4} vs AC magnitude {mag_ac:.4}"
    );
}

#[test]
fn adaptive_stepping_matches_fixed_with_fewer_steps() {
    use pact_circuit::TranOptions;
    // A pulse with long quiescent intervals: adaptive stepping should
    // stretch across them while staying accurate through the edges.
    let deck = "\
* adapt
V1 in 0 pulse(0 1 2n 0.1n 0.1n 10n 40n)
R1 in out 1k
C1 out 0 2p
.end
";
    let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
    let fine = ckt.transient(5e-12, 30e-9).unwrap();
    let adapt = ckt
        .transient_with(&TranOptions::adaptive(2e-9, 30e-9))
        .unwrap();
    assert!(
        adapt.stats.steps * 4 < fine.stats.steps,
        "adaptive should use far fewer steps: {} vs {}",
        adapt.stats.steps,
        fine.stats.steps
    );
    // Accuracy versus the fine fixed-step reference, compared at the
    // adaptive run's own time points (no interpolation across its long
    // accepted steps).
    let err_of = |tr: &pact_circuit::TranResult| {
        let av = tr.voltage("out").unwrap();
        let mut worst: f64 = 0.0;
        for (k, &t) in tr.times.iter().enumerate() {
            let b = fine.voltage_at("out", t).unwrap();
            worst = worst.max((av[k] - b).abs());
        }
        worst
    };
    // LTE control bounds per-step error; the accumulated global error at
    // the default reltol=1e-3 lands at a few 10⁻² of the swing.
    let worst = err_of(&adapt);
    assert!(worst < 0.05, "adaptive error {worst} too large");
    // Tightening the tolerance must tighten the result.
    let tight = ckt
        .transient_with(&TranOptions {
            lte_reltol: 5e-5,
            lte_abstol: 5e-7,
            ..TranOptions::adaptive(2e-9, 30e-9)
        })
        .unwrap();
    let worst_tight = err_of(&tight);
    assert!(
        worst_tight < worst / 2.0,
        "tighter LTE tolerance should shrink error: {worst_tight} vs {worst}"
    );
    assert!(tight.stats.steps > adapt.stats.steps);
}

#[test]
fn adaptive_rejects_steps_through_sharp_transients() {
    use pact_circuit::TranOptions;
    // With a generous max step, the controller must cut into the RC edge
    // and report at least some rejections or step shrinkage.
    let deck = "\
* sharp
V1 in 0 pulse(0 5 1n 0.05n 0.05n 5n 20n)
R1 in out 200
C1 out 0 1p
.end
";
    let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
    let adapt = ckt
        .transient_with(&TranOptions::adaptive(5e-9, 10e-9))
        .unwrap();
    // Minimum observed spacing after the edge must be well below max step.
    let min_dt = adapt
        .times
        .windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::MAX, f64::min);
    assert!(min_dt < 1e-9, "controller never shrank: min dt {min_dt:e}");
    // Several τ after the fall edge (τ = 200 ps, fall at ~6.1 ns) the
    // output must have decayed.
    let v_end = adapt.voltage_at("out", 7.6e-9).unwrap();
    assert!(v_end < 0.5, "output should have fallen, got {v_end}");
}

#[test]
fn mosfet_current_matches_square_law_in_dc() {
    // Saturated NMOS with drain resistor: solve the quadratic by hand and
    // compare the operating point.
    let deck = "\
* bias
.model nch nmos (vto=1.0 kp=100u lambda=0)
Vdd vdd 0 10
Vg g 0 3
M1 d g 0 0 nch w=10u l=1u
Rd vdd d 1k
.end
";
    let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
    let dc = ckt.dc_operating_point().unwrap();
    let vd = dc.voltage("d").unwrap();
    // id = 0.5·kp·(W/L)·(vgs−vt)² = 0.5·100u·10·4 = 2 mA; vd = 10 − 2 = 8 V
    // (> vov = 2 V, so saturation assumption holds).
    assert!((vd - 8.0).abs() < 1e-3, "vd = {vd}");
}

#[test]
fn ring_oscillator_oscillates() {
    // A 3-stage ring oscillator — a stringent nonlinear transient test:
    // the simulator must sustain oscillation, not damp to a fixed point.
    let deck = "\
* ring
.model nch nmos (vto=0.7 kp=110u lambda=0.04)
.model pch pmos (vto=-0.9 kp=40u lambda=0.05)
Vdd vdd 0 5
M1n n2 n1 0 0 nch w=4u l=1u
M1p n2 n1 vdd vdd pch w=8u l=1u
M2n n3 n2 0 0 nch w=4u l=1u
M2p n3 n2 vdd vdd pch w=8u l=1u
M3n n1 n3 0 0 nch w=4u l=1u
M3p n1 n3 vdd vdd pch w=8u l=1u
C1 n1 0 10f
C2 n2 0 10f
C3 n3 0 10f
* kick to break the metastable symmetric start
I1 0 n1 pwl(0 0 0.1n 1m 0.2n 0)
.end
";
    let ckt = Circuit::from_netlist(&parse(deck).unwrap()).unwrap();
    let tr = ckt.transient(10e-12, 10e-9).unwrap();
    let v = tr.voltage("n1").unwrap();
    // In the second half of the window the node must still swing.
    let half = v.len() / 2;
    let max = v[half..].iter().cloned().fold(f64::MIN, f64::max);
    let min = v[half..].iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min > 2.0,
        "ring oscillator damped out: swing {:.3} V",
        max - min
    );
}
