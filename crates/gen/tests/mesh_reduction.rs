//! Validates PACT on the mesh operator class the paper targets: LASO and
//! the dense eigensolver must find the same poles, the reduced model must
//! track the exact admittance, and the mesh's pole ladder must behave as
//! designed (wells dominate the low-frequency spectrum).

use pact::{CutoffSpec, EigenSelect, FullAdmittance, Partitions, ReduceOptions};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;

fn small_mesh() -> pact_netlist::RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 8,
        ny: 8,
        nz: 4,
        num_contacts: 9,
        ..MeshSpec::table2()
    })
}

#[test]
fn laso_matches_dense_oracle_on_mesh() {
    let net = small_mesh();
    let spec = CutoffSpec::new(2e9, 0.05).unwrap();
    let mut opts = ReduceOptions::new(spec);
    opts.eigen_backend = EigenSelect::LowRank;
    let dense = pact::reduce_network(&net, &opts).unwrap();
    opts.eigen_backend = EigenSelect::Lanczos(LanczosConfig::default());
    let laso = pact::reduce_network(&net, &opts).unwrap();
    assert_eq!(
        dense.model.num_poles(),
        laso.model.num_poles(),
        "pole count disagreement"
    );
    for (a, b) in dense.model.lambdas.iter().zip(&laso.model.lambdas) {
        assert!(
            (a - b).abs() < 1e-6 * a,
            "pole mismatch: dense {a:e} vs laso {b:e}"
        );
    }
}

#[test]
fn mesh_reduction_tracks_exact_admittance() {
    let net = small_mesh();
    let parts = Partitions::split(&net.stamp());
    let full = FullAdmittance::new(&parts);
    let fmax = 1e9;
    let red = pact::reduce_network(
        &net,
        &ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap()),
    )
    .unwrap();
    for k in 1..=6 {
        let f = fmax * k as f64 / 6.0;
        let ye = full.y_at(f).unwrap();
        let yr = red.model.y_at(f);
        let m = parts.m;
        let scale = (0..m)
            .flat_map(|i| (0..m).map(move |j| (i, j)))
            .map(|(i, j)| ye[(i, j)].abs())
            .fold(1e-300, f64::max);
        for i in 0..m {
            for j in 0..m {
                assert!(
                    (yr[(i, j)] - ye[(i, j)]).abs() / scale < 0.06,
                    "f={f:e} ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn well_count_bounds_low_frequency_poles() {
    // The generator's well sites create the slow poles; the retained pole
    // count at a cutoff covering the whole well ladder must be close to
    // the well count (plus possibly a few mesh modes).
    let spec = MeshSpec {
        nx: 12,
        ny: 12,
        nz: 4,
        num_contacts: 16,
        num_wells: 5,
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    let red = pact::reduce_network(
        &net,
        &ReduceOptions::new(CutoffSpec::new(4e9, 0.05).unwrap()),
    )
    .unwrap();
    let poles = red.model.num_poles();
    assert!(
        (3..=12).contains(&poles),
        "expected a handful of well poles, got {poles}"
    );
}

#[test]
fn backside_contact_is_required_for_definiteness() {
    // Without any DC path (no backside, no grounded resistor), D is
    // singular and the reduction must report it rather than mis-compute.
    let spec = MeshSpec {
        nx: 5,
        ny: 5,
        nz: 2,
        num_contacts: 4,
        backside: false,
        ..MeshSpec::table2()
    };
    let net = substrate_mesh(&spec);
    // With contacts present internal nodes still reach ports through the
    // mesh, so this configuration is reducible...
    let ok = pact::reduce_network(
        &net,
        &ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap()),
    );
    assert!(ok.is_ok(), "mesh with surface contacts must be reducible");
}

#[test]
fn matrix_free_pcg_reduction_works_on_mesh() {
    // The fully matrix-free path (pencil Lanczos + PCG D-solves, no
    // factorization at all) must agree with the standard reduction on the
    // paper's mesh operator class.
    let net = small_mesh();
    let spec = CutoffSpec::new(2e9, 0.05).unwrap();
    let standard = pact::reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
    let parts = Partitions::split(&net.stamp());
    let ports = net.node_names[..net.num_ports].to_vec();
    let solver = pact::PcgSolver::new(&parts.d).unwrap();
    let mf = pact::reduce_matrix_free(&parts, &ports, &spec, &solver).unwrap();
    assert_eq!(mf.model.num_poles(), standard.model.num_poles());
    for (a, b) in mf.model.lambdas.iter().zip(&standard.model.lambdas) {
        assert!((a - b).abs() < 1e-5 * a, "{a} vs {b}");
    }
    assert!(mf.model.is_passive(1e-7));
    // Admittance agreement at the band edge.
    let f = 2e9;
    let ya = mf.model.y_at(f);
    let yb = standard.model.y_at(f);
    let m = parts.m;
    let scale = (0..m)
        .flat_map(|i| (0..m).map(move |j| (i, j)))
        .map(|(i, j)| yb[(i, j)].abs())
        .fold(1e-300, f64::max);
    for i in 0..m {
        for j in 0..m {
            assert!((ya[(i, j)] - yb[(i, j)]).abs() < 1e-5 * scale);
        }
    }
}
