//! The parallel execution layer must be invisible in the results: a
//! reduction run with any `--threads` value produces bit-identical
//! matrices and poles. Every parallel stage (port fan-out, blocked
//! multi-RHS solves, Ritz rows, operator products, Lanczos sweeps)
//! partitions work deterministically and never reassociates floating
//! point across a thread boundary, so `assert_eq!` on `f64` is exact.

use pact::{CutoffSpec, EigenSelect, ReduceOptions, Reduction};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::{Branch, RcNetwork};
use pact_sparse::XorShiftRng;

fn mesh_fixture() -> RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 16,
        ..MeshSpec::table2()
    })
}

/// A multi-port RC ladder with random rungs: a different operator class
/// from the mesh (long, thin, strongly ordered poles).
fn ladder_fixture() -> RcNetwork {
    let ports = 4;
    let internals = 60;
    let n = ports + internals;
    let mut rng = XorShiftRng::seed_from_u64(0x1adde5);
    let mut resistors = Vec::new();
    // Chain through all nodes, grounded at the head.
    resistors.push(Branch {
        a: Some(0),
        b: None,
        value: rng.gen_range_f64(50.0, 200.0),
    });
    for k in 1..n {
        resistors.push(Branch {
            a: Some(k),
            b: Some(k - 1),
            value: rng.gen_range_f64(10.0, 500.0),
        });
    }
    // Random cross rungs.
    for _ in 0..n {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        if a != b {
            resistors.push(Branch {
                a: Some(a),
                b: Some(b),
                value: rng.gen_range_f64(100.0, 10_000.0),
            });
        }
    }
    let capacitors = (0..n)
        .map(|k| Branch {
            a: Some(k),
            b: None,
            value: rng.gen_range_f64(1e-15, 2e-12),
        })
        .collect();
    let mut node_names: Vec<String> = (0..ports).map(|i| format!("p{i}")).collect();
    node_names.extend((0..internals).map(|i| format!("i{i}")));
    RcNetwork {
        node_names,
        num_ports: ports,
        resistors,
        capacitors,
    }
}

fn reduce_with_threads(net: &RcNetwork, eigen_backend: &EigenSelect, threads: usize) -> Reduction {
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(2e9, 0.05).unwrap(),
        eigen_backend: eigen_backend.clone(),
        ordering: pact_sparse::Ordering::NestedDissection,
        dense_threshold: 0,
        threads: Some(threads),
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
        expansion_points: None,
        chol_kernel: pact::CholKernel::Auto,
    };
    pact::reduce_network(net, &opts).unwrap()
}

fn assert_bit_identical(base: &Reduction, other: &Reduction, what: &str) {
    assert_eq!(base.model.a1, other.model.a1, "{what}: A' differs");
    assert_eq!(base.model.b1, other.model.b1, "{what}: B' differs");
    assert_eq!(
        base.model.lambdas, other.model.lambdas,
        "{what}: poles differ"
    );
    assert_eq!(base.model.r2, other.model.r2, "{what}: R'' differs");
    // The deterministic telemetry subset (counters + warnings, no wall
    // times) must also be invariant: identical structured values and an
    // identical serialized JSON byte string.
    assert_eq!(
        base.telemetry.counters, other.telemetry.counters,
        "{what}: telemetry counters differ"
    );
    assert_eq!(
        base.telemetry.warnings, other.telemetry.warnings,
        "{what}: telemetry warnings differ"
    );
    assert_eq!(
        base.telemetry.counters_json_string(),
        other.telemetry.counters_json_string(),
        "{what}: serialized telemetry differs"
    );
}

fn check_fixture(net: &RcNetwork, label: &str) {
    for (ename, eigen) in [
        ("laso", EigenSelect::Lanczos(LanczosConfig::default())),
        ("dense", EigenSelect::LowRank),
    ] {
        let base = reduce_with_threads(net, &eigen, 1);
        assert!(
            !base.model.lambdas.is_empty(),
            "{label}/{ename}: fixture retains no poles — fixture too small to exercise the pipeline"
        );
        assert!(
            base.telemetry.counters.poles_retained > 0,
            "{label}/{ename}: telemetry counters not populated"
        );
        // The default kernel is supernodal: its counters must be
        // populated, and — because panel_flops is counted structurally
        // from the symbolic plan, never from runtime scheduling — they
        // must be bit-identical at every thread count (covered by the
        // counters equality in assert_bit_identical below).
        assert!(
            base.telemetry.counters.supernode_count > 0,
            "{label}/{ename}: supernodal kernel reported no supernodes"
        );
        assert!(
            base.telemetry.counters.max_panel_cols > 0,
            "{label}/{ename}: supernodal kernel reported zero-width panels"
        );
        assert!(
            base.telemetry.counters.panel_flops > 0,
            "{label}/{ename}: supernodal kernel reported no panel flops"
        );
        for threads in [2usize, 4, 8] {
            let par = reduce_with_threads(net, &eigen, threads);
            assert_bit_identical(&base, &par, &format!("{label}/{ename}/threads={threads}"));
        }
    }
}

#[test]
fn mesh_reduction_is_bit_identical_across_thread_counts() {
    check_fixture(&mesh_fixture(), "mesh");
}

#[test]
fn ladder_reduction_is_bit_identical_across_thread_counts() {
    check_fixture(&ladder_fixture(), "ladder");
}

// ---------------------------------------------------------------------
// Sweep determinism: the parallel AC frequency fan-out and the exact-
// admittance verification grid must also be bit-identical at every
// thread count — including their factor/refactor work counters, so the
// symbolic-reuse accounting itself is thread-invariant.
// ---------------------------------------------------------------------

#[test]
fn ac_sweep_is_bit_identical_across_thread_counts() {
    use pact_circuit::{log_frequencies, AcExcitation, AcOptions, Circuit};
    use pact_gen::{inverter_pair_deck, LineSpec};

    let ckt = Circuit::from_netlist(&inverter_pair_deck(&LineSpec {
        segments: 40,
        ..LineSpec::default()
    }))
    .unwrap();
    let freqs = log_frequencies(7, 1e6, 1e10);
    let exc = AcExcitation::VSource("Vin".into());
    let base = ckt
        .ac_sweep_with(
            &freqs,
            &exc,
            &AcOptions {
                threads: Some(1),
                reuse_symbolic: true,
            },
        )
        .unwrap();
    assert_eq!(base.stats.steps, freqs.len());
    assert!(
        base.stats.refactorizations >= freqs.len(),
        "symbolic reuse must serve the grid (got {} refactorizations)",
        base.stats.refactorizations
    );
    for threads in [2usize, 4, 8] {
        let par = ckt
            .ac_sweep_with(
                &freqs,
                &exc,
                &AcOptions {
                    threads: Some(threads),
                    reuse_symbolic: true,
                },
            )
            .unwrap();
        assert_eq!(
            base.voltages, par.voltages,
            "ac sweep voltages differ at threads={threads}"
        );
        assert_eq!(
            (base.stats.factorizations, base.stats.refactorizations),
            (par.stats.factorizations, par.stats.refactorizations),
            "ac sweep work counters differ at threads={threads}"
        );
    }
}

#[test]
fn admittance_grid_is_bit_identical_across_thread_counts() {
    use pact::{Partitions, YEvaluator};
    use pact_sparse::ParCtx;

    let net = mesh_fixture();
    let parts = Partitions::split(&net.stamp());
    let eval = YEvaluator::new(&parts);
    let freqs: Vec<f64> = (0..24)
        .map(|k| 1e7 * (1e10f64 / 1e7).powf(k as f64 / 23.0))
        .collect();
    let (base, counts) = eval.y_grid(&freqs, ParCtx::new(Some(1))).unwrap();
    assert_eq!(counts.factorizations, 1, "one symbolic serves the grid");
    assert_eq!(counts.refactorizations as usize, freqs.len());
    let m = parts.m;
    for threads in [2usize, 4, 8] {
        // Fresh evaluator per thread count: the symbolic analysis is
        // cached per evaluator, so reusing one would report 0
        // factorizations on later grids and hide counter drift.
        let eval = YEvaluator::new(&parts);
        let (par, pcounts) = eval.y_grid(&freqs, ParCtx::new(Some(threads))).unwrap();
        assert_eq!(
            (counts.factorizations, counts.refactorizations),
            (pcounts.factorizations, pcounts.refactorizations),
            "grid work counters differ at threads={threads}"
        );
        for (k, (yb, yp)) in base.iter().zip(&par).enumerate() {
            for i in 0..m {
                for j in 0..m {
                    assert_eq!(
                        yb[(i, j)],
                        yp[(i, j)],
                        "Y[{k}]({i},{j}) differs at threads={threads}"
                    );
                }
            }
        }
    }
}
