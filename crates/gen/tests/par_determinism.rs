//! The parallel execution layer must be invisible in the results: a
//! reduction run with any `--threads` value produces bit-identical
//! matrices and poles. Every parallel stage (port fan-out, blocked
//! multi-RHS solves, Ritz rows, operator products, Lanczos sweeps)
//! partitions work deterministically and never reassociates floating
//! point across a thread boundary, so `assert_eq!` on `f64` is exact.

use pact::{CutoffSpec, EigenStrategy, ReduceOptions, Reduction};
use pact_gen::{substrate_mesh, MeshSpec};
use pact_lanczos::LanczosConfig;
use pact_netlist::{Branch, RcNetwork};
use pact_sparse::XorShiftRng;

fn mesh_fixture() -> RcNetwork {
    substrate_mesh(&MeshSpec {
        nx: 10,
        ny: 10,
        nz: 4,
        num_contacts: 16,
        ..MeshSpec::table2()
    })
}

/// A multi-port RC ladder with random rungs: a different operator class
/// from the mesh (long, thin, strongly ordered poles).
fn ladder_fixture() -> RcNetwork {
    let ports = 4;
    let internals = 60;
    let n = ports + internals;
    let mut rng = XorShiftRng::seed_from_u64(0x1adde5);
    let mut resistors = Vec::new();
    // Chain through all nodes, grounded at the head.
    resistors.push(Branch {
        a: Some(0),
        b: None,
        value: rng.gen_range_f64(50.0, 200.0),
    });
    for k in 1..n {
        resistors.push(Branch {
            a: Some(k),
            b: Some(k - 1),
            value: rng.gen_range_f64(10.0, 500.0),
        });
    }
    // Random cross rungs.
    for _ in 0..n {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        if a != b {
            resistors.push(Branch {
                a: Some(a),
                b: Some(b),
                value: rng.gen_range_f64(100.0, 10_000.0),
            });
        }
    }
    let capacitors = (0..n)
        .map(|k| Branch {
            a: Some(k),
            b: None,
            value: rng.gen_range_f64(1e-15, 2e-12),
        })
        .collect();
    let mut node_names: Vec<String> = (0..ports).map(|i| format!("p{i}")).collect();
    node_names.extend((0..internals).map(|i| format!("i{i}")));
    RcNetwork {
        node_names,
        num_ports: ports,
        resistors,
        capacitors,
    }
}

fn reduce_with_threads(net: &RcNetwork, eigen: &EigenStrategy, threads: usize) -> Reduction {
    let opts = ReduceOptions {
        cutoff: CutoffSpec::new(2e9, 0.05).unwrap(),
        eigen: eigen.clone(),
        ordering: pact_sparse::Ordering::NestedDissection,
        dense_threshold: 0,
        threads: Some(threads),
        pivot_relief: None,
        strategy: pact::ReduceStrategy::Flat,
    };
    pact::reduce_network(net, &opts).unwrap()
}

fn assert_bit_identical(base: &Reduction, other: &Reduction, what: &str) {
    assert_eq!(base.model.a1, other.model.a1, "{what}: A' differs");
    assert_eq!(base.model.b1, other.model.b1, "{what}: B' differs");
    assert_eq!(
        base.model.lambdas, other.model.lambdas,
        "{what}: poles differ"
    );
    assert_eq!(base.model.r2, other.model.r2, "{what}: R'' differs");
    // The deterministic telemetry subset (counters + warnings, no wall
    // times) must also be invariant: identical structured values and an
    // identical serialized JSON byte string.
    assert_eq!(
        base.telemetry.counters, other.telemetry.counters,
        "{what}: telemetry counters differ"
    );
    assert_eq!(
        base.telemetry.warnings, other.telemetry.warnings,
        "{what}: telemetry warnings differ"
    );
    assert_eq!(
        base.telemetry.counters_json_string(),
        other.telemetry.counters_json_string(),
        "{what}: serialized telemetry differs"
    );
}

fn check_fixture(net: &RcNetwork, label: &str) {
    for (ename, eigen) in [
        ("laso", EigenStrategy::Laso(LanczosConfig::default())),
        ("dense", EigenStrategy::Dense),
    ] {
        let base = reduce_with_threads(net, &eigen, 1);
        assert!(
            !base.model.lambdas.is_empty(),
            "{label}/{ename}: fixture retains no poles — fixture too small to exercise the pipeline"
        );
        assert!(
            base.telemetry.counters.poles_retained > 0,
            "{label}/{ename}: telemetry counters not populated"
        );
        for threads in [2usize, 4, 8] {
            let par = reduce_with_threads(net, &eigen, threads);
            assert_bit_identical(&base, &par, &format!("{label}/{ename}/threads={threads}"));
        }
    }
}

#[test]
fn mesh_reduction_is_bit_identical_across_thread_counts() {
    check_fixture(&mesh_fixture(), "mesh");
}

#[test]
fn ladder_reduction_is_bit_identical_across_thread_counts() {
    check_fixture(&ladder_fixture(), "ladder");
}
