//! 3-D substrate mesh generator — the stand-in for the paper's
//! Voronoi-tessellated substrate macromodels (Tables 2–4).
//!
//! The substrate is modelled as a uniform 3-D resistor grid. Contact
//! (port) nodes sit on the top surface; junction capacitance loads each
//! contact and oxide/field capacitance loads the remaining surface
//! nodes. The resulting pole structure — a handful of poles in the
//! 100 MHz–10 GHz range set by contact capacitance against spreading
//! resistance — is what PACT exploits.

use pact_netlist::{Branch, Element, RcNetwork};
use pact_sparse::XorShiftRng;

/// Parameters for [`substrate_mesh`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeshSpec {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z (depth).
    pub nz: usize,
    /// Resistance of one lateral grid edge (Ω).
    pub r_edge: f64,
    /// Resistance of one vertical grid edge (Ω) — bulk silicon is more
    /// conductive downward in this simple model.
    pub r_edge_z: f64,
    /// Number of surface contact nodes that become ports.
    pub num_contacts: usize,
    /// Junction capacitance at each contact (F).
    pub c_contact: f64,
    /// Field/oxide capacitance at each non-contact surface node (F).
    pub c_surface: f64,
    /// Number of internal surface "well/diffusion" sites carrying a large
    /// junction capacitance — these create the handful of low-GHz poles
    /// the paper's Table 2 retains.
    pub num_wells: usize,
    /// Base well junction capacitance (F); well `k` carries
    /// `c_well / (1 + well_spread·k)` so the poles ladder over a band.
    pub c_well: f64,
    /// Relative pole spacing of consecutive wells (see `c_well`).
    pub well_spread: f64,
    /// Fraction of bottom-plane nodes grounded through a resistance
    /// (backside contact); 0 disables.
    pub backside: bool,
    /// RNG seed for contact placement jitter.
    pub seed: u64,
}

impl MeshSpec {
    /// A mesh sized like Table 2's: ≈1525 nodes, ≈25 ports.
    pub fn table2() -> Self {
        MeshSpec {
            nx: 16,
            ny: 16,
            nz: 6,
            r_edge: 350.0,
            r_edge_z: 120.0,
            num_contacts: 25,
            c_contact: 0.35e-12,
            c_surface: 12e-15,
            num_wells: 7,
            c_well: 2.4e-12,
            well_spread: 1.05,
            backside: true,
            seed: 42,
        }
    }

    /// A mesh sized like Table 4's: ≈20k nodes, 469 ports.
    pub fn table4() -> Self {
        MeshSpec {
            nx: 53,
            ny: 48,
            nz: 8,
            r_edge: 350.0,
            r_edge_z: 120.0,
            num_contacts: 469,
            c_contact: 0.35e-12,
            c_surface: 12e-15,
            num_wells: 16,
            c_well: 5.5e-12,
            well_spread: 0.15,
            backside: true,
            seed: 7,
        }
    }

    /// Total node count of the grid.
    pub fn num_nodes(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Generates the substrate mesh as an [`RcNetwork`] with contacts as
/// ports (ordered first). Port names are `port0…port{k-1}`; internal
/// nodes are `sub_x_y_z`.
///
/// # Panics
///
/// Panics if `num_contacts` exceeds the surface node count or any
/// dimension is zero.
pub fn substrate_mesh(spec: &MeshSpec) -> RcNetwork {
    assert!(spec.nx > 0 && spec.ny > 0 && spec.nz > 0, "empty mesh");
    assert!(
        spec.num_contacts <= spec.nx * spec.ny,
        "more contacts than surface nodes"
    );
    let id = |x: usize, y: usize, z: usize| (z * spec.ny + y) * spec.nx + x;
    let total = spec.num_nodes();

    // Choose contact sites on a jittered grid over the surface.
    let contacts = contact_sites(spec);
    let mut is_contact = vec![false; total];
    let mut contact_order = vec![usize::MAX; total];
    for (k, &(x, y)) in contacts.iter().enumerate() {
        let node = id(x, y, 0);
        is_contact[node] = true;
        contact_order[node] = k;
    }

    // Node numbering: ports first (contact order), then the rest.
    let m = contacts.len();
    let mut index = vec![usize::MAX; total];
    let mut node_names: Vec<String> = vec![String::new(); m];
    for (k, &(x, y)) in contacts.iter().enumerate() {
        index[id(x, y, 0)] = k;
        node_names[k] = format!("port{k}");
    }
    let mut next = m;
    for z in 0..spec.nz {
        for y in 0..spec.ny {
            for x in 0..spec.nx {
                let n = id(x, y, z);
                if index[n] == usize::MAX {
                    index[n] = next;
                    node_names.push(format!("sub_{x}_{y}_{z}"));
                    next += 1;
                }
            }
        }
    }

    // Well/diffusion sites: the first `num_wells` non-contact surface
    // nodes on a coarse diagonal, with deterministically varied values.
    let mut well_cap = vec![0.0f64; total];
    {
        let mut placed = 0usize;
        let mut step = 0usize;
        while placed < spec.num_wells && step < spec.nx * spec.ny {
            let x = (step * 7 + 3) % spec.nx;
            let y = (step * 5 + 2) % spec.ny;
            let node = id(x, y, 0);
            if !is_contact[node] && well_cap[node] == 0.0 {
                // Geometric-ish spread: well k is ~(1 + k) times faster
                // than well 0, giving a pole ladder over ~a decade.
                well_cap[node] = spec.c_well / (1.0 + spec.well_spread * placed as f64);
                placed += 1;
            }
            step += 1;
        }
    }

    let mut resistors = Vec::new();
    let mut capacitors = Vec::new();
    for z in 0..spec.nz {
        for y in 0..spec.ny {
            for x in 0..spec.nx {
                let n = index[id(x, y, z)];
                if x + 1 < spec.nx {
                    resistors.push(Branch {
                        a: Some(n),
                        b: Some(index[id(x + 1, y, z)]),
                        value: spec.r_edge,
                    });
                }
                if y + 1 < spec.ny {
                    resistors.push(Branch {
                        a: Some(n),
                        b: Some(index[id(x, y + 1, z)]),
                        value: spec.r_edge,
                    });
                }
                if z + 1 < spec.nz {
                    resistors.push(Branch {
                        a: Some(n),
                        b: Some(index[id(x, y, z + 1)]),
                        value: spec.r_edge_z,
                    });
                }
                if z == 0 {
                    // Surface capacitance: junction at contacts, well
                    // junction at well sites, field oxide elsewhere.
                    let c = if is_contact[id(x, y, z)] {
                        spec.c_contact
                    } else if well_cap[id(x, y, z)] > 0.0 {
                        well_cap[id(x, y, z)]
                    } else {
                        spec.c_surface
                    };
                    if c > 0.0 {
                        capacitors.push(Branch {
                            a: Some(n),
                            b: None,
                            value: c,
                        });
                    }
                }
                if spec.backside && z == spec.nz - 1 {
                    // Backside contact: low-resistance path to ground so
                    // every internal node has a DC path (D stays PD).
                    resistors.push(Branch {
                        a: Some(n),
                        b: None,
                        value: spec.r_edge_z * 4.0,
                    });
                }
            }
        }
    }
    RcNetwork {
        node_names,
        num_ports: m,
        resistors,
        capacitors,
    }
}

/// Contact positions: a jittered sub-grid over the surface.
fn contact_sites(spec: &MeshSpec) -> Vec<(usize, usize)> {
    let mut rng = XorShiftRng::seed_from_u64(spec.seed);
    let k = spec.num_contacts;
    // Grid of ceil(sqrt(k)) × ceil(sqrt(k)) candidate cells.
    let side = (k as f64).sqrt().ceil() as usize;
    let mut sites = Vec::with_capacity(k);
    let mut used = std::collections::BTreeSet::new();
    'outer: for gy in 0..side {
        for gx in 0..side {
            if sites.len() >= k {
                break 'outer;
            }
            let cx =
                ((gx * spec.nx) / side + rng.gen_index((spec.nx / side).max(1))).min(spec.nx - 1);
            let cy =
                ((gy * spec.ny) / side + rng.gen_index((spec.ny / side).max(1))).min(spec.ny - 1);
            let mut p = (cx, cy);
            // Resolve collisions by scanning forward.
            while used.contains(&p) {
                p = (
                    (p.0 + 1) % spec.nx,
                    if p.0 + 1 == spec.nx {
                        (p.1 + 1) % spec.ny
                    } else {
                        p.1
                    },
                );
            }
            used.insert(p);
            sites.push(p);
        }
    }
    // Fill any shortfall deterministically.
    'fill: for y in 0..spec.ny {
        for x in 0..spec.nx {
            if sites.len() >= k {
                break 'fill;
            }
            if !used.contains(&(x, y)) {
                used.insert((x, y));
                sites.push((x, y));
            }
        }
    }
    sites
}

/// Converts an [`RcNetwork`] into SPICE elements (for splicing a mesh
/// into a transistor-level deck). Element names get `prefix`.
pub fn network_to_elements(net: &RcNetwork, prefix: &str) -> Vec<Element> {
    let name_of = |n: Option<usize>| -> String {
        match n {
            Some(i) => net.node_names[i].clone(),
            None => "0".to_owned(),
        }
    };
    let mut out = Vec::with_capacity(net.resistors.len() + net.capacitors.len());
    for (k, r) in net.resistors.iter().enumerate() {
        out.push(Element::resistor(
            format!("R{prefix}{k}"),
            name_of(r.a),
            name_of(r.b),
            r.value,
        ));
    }
    for (k, c) in net.capacitors.iter().enumerate() {
        out.push(Element::capacitor(
            format!("C{prefix}{k}"),
            name_of(c.a),
            name_of(c.b),
            c.value,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_sparse::Ordering;

    #[test]
    fn table2_mesh_counts_near_paper() {
        let spec = MeshSpec::table2();
        let net = substrate_mesh(&spec);
        // Paper: 1525 total nodes, 25 ports, 4970 R's, 253 C's.
        assert_eq!(net.num_ports, 25);
        let nodes = net.num_nodes();
        assert!(
            (1300..=1700).contains(&nodes),
            "nodes = {nodes}, paper has 1525"
        );
        let (r, c) = net.element_counts();
        assert!((3500..=6500).contains(&r), "R count {r}, paper 4970");
        assert!((200..=300).contains(&c), "C count {c}, paper 253");
    }

    #[test]
    fn mesh_is_reducible() {
        // D must be positive definite (backside contact gives DC paths).
        let spec = MeshSpec {
            nx: 6,
            ny: 6,
            nz: 3,
            num_contacts: 5,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let st = net.stamp();
        let parts = pact::Partitions::split(&st);
        assert!(pact::Transform1::compute(&parts, Ordering::Rcm).is_ok());
    }

    #[test]
    fn ports_are_distinct_surface_nodes() {
        let spec = MeshSpec {
            nx: 8,
            ny: 8,
            nz: 2,
            num_contacts: 10,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        assert_eq!(net.num_ports, 10);
        // All port names unique.
        let mut names: Vec<&String> = net.node_names[..10].iter().collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn stamped_matrices_are_well_formed() {
        let spec = MeshSpec {
            nx: 5,
            ny: 4,
            nz: 3,
            num_contacts: 6,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let st = net.stamp();
        assert!(st.g.is_symmetric(0.0));
        assert!(st.c.is_symmetric(0.0));
        assert!(st.g.is_diag_dominant(1e-12));
    }

    #[test]
    fn elements_roundtrip_through_netlist() {
        let spec = MeshSpec {
            nx: 4,
            ny: 4,
            nz: 2,
            num_contacts: 3,
            ..MeshSpec::table2()
        };
        let net = substrate_mesh(&spec);
        let els = network_to_elements(&net, "m");
        let (r, c) = net.element_counts();
        assert_eq!(els.len(), r + c);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = substrate_mesh(&MeshSpec::table2());
        let b = substrate_mesh(&MeshSpec::table2());
        assert_eq!(a, b);
    }
}
