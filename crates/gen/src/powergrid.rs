//! Power-distribution-grid generator — the paper's *introduction*
//! motivates PACT with exactly this workload: "Supply line resistance and
//! capacitance, in combination with package inductance, can lead to large
//! variations of the supply voltage during digital switching".
//!
//! The model: a 2-D grid of rail resistances with decoupling capacitance
//! at grid nodes, supply pads (ports) at the corners/edges, and device
//! tap points (ports) where switching blocks draw current.

use pact_netlist::{Element, ElementKind, Netlist, Waveform};

/// Parameters for [`power_grid_deck`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerGridSpec {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Rail segment resistance (Ω).
    pub r_seg: f64,
    /// Decoupling capacitance per grid node (F).
    pub c_decap: f64,
    /// Number of switching-block tap points (current-source ports).
    pub num_taps: usize,
    /// Peak switching current per tap (A).
    pub i_peak: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl Default for PowerGridSpec {
    fn default() -> Self {
        PowerGridSpec {
            nx: 20,
            ny: 20,
            r_seg: 0.5,
            c_decap: 2e-12,
            num_taps: 12,
            i_peak: 5e-3,
            vdd: 3.3,
        }
    }
}

/// Statistics/handles of a generated power-grid deck.
#[derive(Clone, Debug)]
pub struct PowerGridDeck {
    /// The full deck: grid RC + pad sources + switching current sources.
    pub netlist: Netlist,
    /// Node names of the supply pads (grid corners).
    pub pads: Vec<String>,
    /// Node names of the switching-block taps.
    pub taps: Vec<String>,
    /// The tap expected to see the worst IR drop (farthest from pads).
    pub worst_tap: String,
}

/// Builds a power grid deck: `nx × ny` rail nodes, pads at the four
/// corners held at `vdd` through small pad resistances, and `num_taps`
/// switching blocks drawing phase-staggered pulse currents.
///
/// # Panics
///
/// Panics if the grid is smaller than 2×2 or has fewer nodes than taps.
pub fn power_grid_deck(spec: &PowerGridSpec) -> PowerGridDeck {
    assert!(spec.nx >= 2 && spec.ny >= 2, "grid too small");
    assert!(
        spec.num_taps <= spec.nx * spec.ny / 2,
        "too many taps for the grid"
    );
    let node = |x: usize, y: usize| format!("g{x}_{y}");
    let mut nl = Netlist::new(format!("power grid {}x{}", spec.nx, spec.ny));

    // Rails.
    for y in 0..spec.ny {
        for x in 0..spec.nx {
            if x + 1 < spec.nx {
                nl.elements.push(Element::resistor(
                    format!("Rx{x}_{y}"),
                    node(x, y),
                    node(x + 1, y),
                    spec.r_seg,
                ));
            }
            if y + 1 < spec.ny {
                nl.elements.push(Element::resistor(
                    format!("Ry{x}_{y}"),
                    node(x, y),
                    node(x, y + 1),
                    spec.r_seg,
                ));
            }
            if spec.c_decap > 0.0 {
                nl.elements.push(Element::capacitor(
                    format!("Cd{x}_{y}"),
                    node(x, y),
                    "0",
                    spec.c_decap,
                ));
            }
        }
    }

    // Supply pads at the four corners (voltage sources through a small
    // pad resistance — the sources make the pad nodes ports).
    let corners = [
        (0usize, 0usize),
        (spec.nx - 1, 0),
        (0, spec.ny - 1),
        (spec.nx - 1, spec.ny - 1),
    ];
    let mut pads = Vec::new();
    for (k, &(x, y)) in corners.iter().enumerate() {
        let pad = format!("pad{k}");
        nl.elements.push(Element {
            name: format!("Vpad{k}"),
            kind: ElementKind::VSource {
                p: pad.clone(),
                n: "0".into(),
                wave: Waveform::Dc(spec.vdd),
            },
        });
        nl.elements.push(Element::resistor(
            format!("Rpad{k}"),
            pad.clone(),
            node(x, y),
            0.05,
        ));
        pads.push(node(x, y));
    }

    // Switching taps spread on a diagonal lattice, phase-staggered pulse
    // current draws.
    let mut taps = Vec::new();
    let mut worst = (node(0, 0), 0usize);
    for k in 0..spec.num_taps {
        let x = (k * 7 + 3) % spec.nx;
        let y = (k * 5 + 2) % spec.ny;
        let n = node(x, y);
        // Distance to nearest corner = IR-drop severity proxy.
        let dist = corners
            .iter()
            .map(|&(cx, cy)| x.abs_diff(cx) + y.abs_diff(cy))
            .min()
            .unwrap_or(0);
        if dist > worst.1 {
            worst = (n.clone(), dist);
        }
        nl.elements.push(Element {
            name: format!("Isw{k}"),
            kind: ElementKind::ISource {
                p: n.clone(),
                n: "0".into(),
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: spec.i_peak,
                    td: 0.5e-9 + 0.2e-9 * k as f64,
                    tr: 0.1e-9,
                    tf: 0.1e-9,
                    pw: 1e-9,
                    per: 5e-9,
                },
            },
        });
        taps.push(n);
    }

    PowerGridDeck {
        netlist: nl,
        pads,
        taps,
        worst_tap: worst.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::extract_rc;

    #[test]
    fn grid_counts() {
        let spec = PowerGridSpec::default();
        let deck = power_grid_deck(&spec);
        let r = deck
            .netlist
            .count(|e| matches!(e.kind, ElementKind::Resistor { .. }));
        // 2·nx·ny − nx − ny rail segments + 4 pad resistors.
        assert_eq!(r, 2 * 20 * 20 - 20 - 20 + 4);
        let c = deck
            .netlist
            .count(|e| matches!(e.kind, ElementKind::Capacitor { .. }));
        assert_eq!(c, 400);
        assert_eq!(deck.taps.len(), 12);
    }

    #[test]
    fn ports_are_pads_and_taps() {
        let deck = power_grid_deck(&PowerGridSpec::default());
        let ex = extract_rc(&deck.netlist, &[]).unwrap();
        // Taps (current sources) and pad-side nodes are ports; note that
        // a tap can coincide with a pad corner.
        for t in &deck.taps {
            assert!(
                ex.network.node_index(t).unwrap() < ex.network.num_ports,
                "tap {t} must be a port"
            );
        }
        assert!(ex.network.num_internal() > 300);
    }

    #[test]
    fn dc_ir_drop_is_zero_without_switching() {
        use pact_circuit::Circuit;
        let deck = power_grid_deck(&PowerGridSpec {
            nx: 6,
            ny: 6,
            num_taps: 3,
            ..PowerGridSpec::default()
        });
        let ckt = Circuit::from_netlist(&deck.netlist).unwrap();
        let dc = ckt.dc_operating_point().unwrap();
        // At t=0 no current flows: every grid node sits at vdd.
        for t in &deck.taps {
            let v = dc.voltage(t).unwrap();
            assert!((v - 3.3).abs() < 1e-6, "{t} = {v}");
        }
    }

    #[test]
    fn reduction_preserves_ir_drop_waveform() {
        use pact_circuit::Circuit;
        let deck = power_grid_deck(&PowerGridSpec {
            nx: 10,
            ny: 10,
            num_taps: 5,
            ..PowerGridSpec::default()
        });
        let ex = extract_rc(&deck.netlist, &[]).unwrap();
        let red = pact::reduce_network(
            &ex.network,
            &pact::ReduceOptions::new(pact::CutoffSpec::new(2e9, 0.05).unwrap()),
        )
        .unwrap();
        assert!(red.model.is_passive(1e-8));
        let reduced =
            pact_netlist::splice_reduced(&deck.netlist, red.model.to_netlist_elements("pg", 1e-9));
        let run = |nl: &pact_netlist::Netlist| {
            let ckt = Circuit::from_netlist(nl).unwrap();
            let tr = ckt.transient(50e-12, 4e-9).unwrap();
            let v = tr.voltage(&deck.worst_tap).unwrap();
            let vmin = v.iter().cloned().fold(f64::MAX, f64::min);
            (tr, vmin)
        };
        let (_, drop_full) = run(&deck.netlist);
        let (_, drop_red) = run(&reduced);
        // Switching must produce a visible IR drop...
        assert!(drop_full < 3.3 - 1e-3, "no IR drop seen: {drop_full}");
        // ...and the reduced grid must reproduce its depth.
        assert!(
            (drop_full - drop_red).abs() < 5e-3,
            "IR-drop mismatch: full {drop_full} vs reduced {drop_red}"
        );
    }
}
