//! Embedded-parasitics workloads: decks whose RC content is *buried*
//! between non-RC devices, the shape the automatic subnetwork
//! extraction pass (`pact::extract`) and the chain-collapse pre-pass
//! were built for.
//!
//! Two generators:
//!
//! - [`chain_heavy_deck`] — a cascade of inverter stages joined by long
//!   lumped RC chains, optionally with per-tap side loads that break
//!   each chain into several collapse targets;
//! - [`rich_mixed_deck`] — a deck exercising the full extended element
//!   set (R, C, L, diode, MOSFET, VCVS) with two embedded RC islands,
//!   the acceptance workload for "mixed deck runs end-to-end with
//!   extraction".
//!
//! Both are deterministic: the same spec always renders the same bytes.

use pact_netlist::{DiodeModel, Element, ElementKind, Netlist, Waveform};

use crate::line::{add_default_models, inverter, rc_line_elements, LineSpec, Taper};

/// A cascade of inverters joined by long RC chains.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChainDeckSpec {
    /// Number of RC chains (and hence `chains + 1` inverter stages).
    pub chains: usize,
    /// Lumped segments per chain.
    pub segments: usize,
    /// Total resistance per chain in ohms.
    pub r_total: f64,
    /// Total capacitance per chain in farads.
    pub c_total: f64,
    /// Evenly spaced tap nodes per chain. Each tap carries a small
    /// current-source side load, which makes it a port of its RC island
    /// and splits the chain into `taps + 1` collapse targets.
    pub taps: usize,
}

impl Default for ChainDeckSpec {
    fn default() -> Self {
        ChainDeckSpec {
            chains: 4,
            segments: 50,
            r_total: 100.0,
            c_total: 0.5e-12,
            taps: 0,
        }
    }
}

/// Builds a chain-heavy deck: `chains + 1` CMOS inverters in cascade,
/// each pair joined by a `segments`-segment uniform RC chain.
///
/// Every chain sits between two MOSFET anchors, so extraction finds one
/// RC island per chain; with `taps = 0` each island is a pure degree-2
/// chain, the best case for the collapse pre-pass.
pub fn chain_heavy_deck(spec: &ChainDeckSpec) -> Netlist {
    assert!(spec.chains >= 1, "need at least one chain");
    let mut nl = Netlist::new(format!(
        "{} chained inverters over {}-segment RC chains",
        spec.chains + 1,
        spec.segments
    ));
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 5.0,
                td: 0.2e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 2.4e-9,
                per: 5e-9,
            },
        },
    });
    let line = LineSpec {
        segments: spec.segments,
        r_total: spec.r_total,
        c_total: spec.c_total,
        taper: Taper::Uniform,
        taps: spec.taps,
    };
    let mut stage_in = "in".to_owned();
    for k in 0..spec.chains {
        let drive = format!("d{k}");
        let sense = format!("s{k}");
        nl.elements.extend(inverter(
            &format!("stg{k}"),
            &stage_in,
            &drive,
            "vdd",
            "0",
            "vdd",
            20e-6,
            40e-6,
        ));
        let prefix = format!("ch{k}_");
        nl.elements
            .extend(rc_line_elements(&line, &drive, &sense, &prefix));
        // Side loads at the taps anchor interior ports, splitting the
        // chain into taps+1 independent collapse targets.
        for j in 1..=spec.taps {
            nl.elements.push(Element {
                name: format!("Itap{k}_{j}"),
                kind: ElementKind::ISource {
                    p: format!("{prefix}_tap{j}"),
                    n: "0".to_owned(),
                    wave: Waveform::Dc(1e-6),
                },
            });
        }
        stage_in = sense;
    }
    nl.elements.extend(inverter(
        "stgout", &stage_in, "out", "vdd", "0", "vdd", 4e-6, 8e-6,
    ));
    nl.elements
        .push(Element::capacitor("Cload", "out", "0", 20e-15));
    nl
}

/// Knobs for the mixed-element acceptance deck.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RichDeckSpec {
    /// Segments per embedded RC line.
    pub segments: usize,
    /// Per-segment taper of both lines (extracted wires are rarely
    /// uniform; the default skews R and C toward the far end).
    pub taper: Taper,
}

impl Default for RichDeckSpec {
    fn default() -> Self {
        RichDeckSpec {
            segments: 40,
            taper: Taper::Linear {
                r_ratio: 2.0,
                c_ratio: 1.5,
            },
        }
    }
}

/// Builds a deck touching the whole extended element set — resistors,
/// capacitors, an inductor, a diode clamp, MOSFET inverters and a VCVS
/// sense buffer — with two multi-segment RC islands buried between the
/// non-RC devices.
///
/// Extraction must find exactly two islands (`net1` between the driver
/// drain and the inductor, `net2` between the receiver drain and the
/// VCVS input); everything else stays in the host deck. The output
/// stage hangs a third, trivial RC island (`Rload`/`Cload`) off the
/// VCVS output.
pub fn rich_mixed_deck(spec: &RichDeckSpec) -> Netlist {
    let mut nl = Netlist::new(format!(
        "mixed R/C/L/diode/MOS deck, two {}-segment embedded RC islands",
        spec.segments
    ));
    add_default_models(&mut nl);
    let d = DiodeModel::default_diode("dclamp");
    nl.diode_models.insert(d.name.clone(), d);
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(3.3),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 3.3,
                td: 0.2e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 2.4e-9,
                per: 5e-9,
            },
        },
    });
    let line = LineSpec {
        segments: spec.segments,
        r_total: 180.0,
        c_total: 0.9e-12,
        taper: spec.taper,
        taps: 0,
    };
    // Driver inverter → first embedded RC island.
    nl.elements
        .extend(inverter("drv", "in", "a", "vdd", "0", "vdd", 60e-6, 120e-6));
    nl.elements
        .extend(rc_line_elements(&line, "a", "b", "net1_"));
    // Series bond-wire inductor: a non-RC element, so both of its
    // terminals become island boundary ports.
    nl.elements.push(Element {
        name: "Lbond".to_owned(),
        kind: ElementKind::Inductor {
            a: "b".to_owned(),
            b: "bl".to_owned(),
            henries: 1e-9,
        },
    });
    // Undershoot clamp at the inductor's far end.
    nl.elements.push(Element {
        name: "Dclamp".to_owned(),
        kind: ElementKind::Diode {
            p: "0".to_owned(),
            n: "bl".to_owned(),
            model: "dclamp".to_owned(),
            area: 1.0,
        },
    });
    // Receiver inverter → second embedded RC island.
    nl.elements
        .extend(inverter("rcv", "bl", "c", "vdd", "0", "vdd", 10e-6, 20e-6));
    nl.elements
        .extend(rc_line_elements(&line, "c", "d", "net2_"));
    // Ideal sense buffer: the VCVS makes `d` a boundary port and drives
    // a small RC load island on its output.
    nl.elements.push(Element {
        name: "Esense".to_owned(),
        kind: ElementKind::Vcvs {
            p: "sense".to_owned(),
            n: "0".to_owned(),
            cp: "d".to_owned(),
            cn: "0".to_owned(),
            gain: 2.0,
        },
    });
    nl.elements
        .push(Element::resistor("Rload", "sense", "outp", 100.0));
    nl.elements
        .push(Element::capacitor("Cload", "outp", "0", 10e-15));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::extract_rc;

    #[test]
    fn chain_heavy_deck_is_deterministic_and_extracts() {
        let spec = ChainDeckSpec::default();
        let a = chain_heavy_deck(&spec).to_string();
        let b = chain_heavy_deck(&spec).to_string();
        assert_eq!(a, b, "same spec, same bytes");
        let nl = chain_heavy_deck(&spec);
        let ex = extract_rc(&nl, &[]).unwrap();
        // Each chain contributes segments-1 internal nodes; the stage
        // boundaries are MOSFET-anchored ports.
        assert_eq!(ex.network.num_internal(), spec.chains * (spec.segments - 1));
    }

    #[test]
    fn chain_taps_become_ports() {
        let spec = ChainDeckSpec {
            chains: 2,
            segments: 12,
            taps: 2,
            ..ChainDeckSpec::default()
        };
        let nl = chain_heavy_deck(&spec);
        let ex = extract_rc(&nl, &[]).unwrap();
        // The tap side loads promote each tap to a port.
        for k in 0..spec.chains {
            for j in 1..=spec.taps {
                let idx = ex.network.node_index(&format!("ch{k}__tap{j}")).unwrap();
                assert!(idx < ex.network.num_ports, "tap ch{k}__tap{j} is a port");
            }
        }
        assert_eq!(
            ex.network.num_internal(),
            spec.chains * (spec.segments - 1 - spec.taps)
        );
    }

    #[test]
    fn rich_mixed_deck_has_every_element_kind() {
        let nl = rich_mixed_deck(&RichDeckSpec::default());
        let has = |f: &dyn Fn(&ElementKind) -> bool| nl.elements.iter().any(|e| f(&e.kind));
        assert!(has(&|k| matches!(k, ElementKind::Resistor { .. })));
        assert!(has(&|k| matches!(k, ElementKind::Capacitor { .. })));
        assert!(has(&|k| matches!(k, ElementKind::Inductor { .. })));
        assert!(has(&|k| matches!(k, ElementKind::Diode { .. })));
        assert!(has(&|k| matches!(k, ElementKind::Mosfet { .. })));
        assert!(has(&|k| matches!(k, ElementKind::Vcvs { .. })));
        assert!(nl.diode_models.contains_key("dclamp"));
        // Round-trips through the parser.
        let text = nl.to_string();
        let back = pact_netlist::parse(&text).expect("rich deck reparses");
        assert_eq!(back.elements.len(), nl.elements.len());
    }

    #[test]
    fn rich_mixed_deck_islands_have_expected_boundaries() {
        let spec = RichDeckSpec::default();
        let nl = rich_mixed_deck(&spec);
        let ex = extract_rc(&nl, &[]).unwrap();
        // Both islands' endpoints are ports; their interiors are not.
        for p in ["a", "b", "c", "d", "sense"] {
            let idx = ex.network.node_index(p).unwrap();
            assert!(idx < ex.network.num_ports, "{p} must be a port");
        }
        // Two line interiors plus `outp` (interior of the Rload/Cload
        // island — it touches only RC elements).
        assert_eq!(ex.network.num_internal(), 2 * (spec.segments - 1) + 1);
    }
}
