//! RC transmission-line and inverter-pair generators (the paper's
//! Figure 2 circuit and the Figure 3 comparison variants).

use pact_netlist::{Element, MosModel, Netlist, Waveform};

/// Per-segment scaling law for a lumped RC line.
///
/// Real extracted wires are rarely uniform: width tapering and via
/// stacks skew resistance and capacitance toward one end. The taper
/// controls how the spec's *totals* are distributed over the segments;
/// totals always match the spec exactly, whatever the law.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Taper {
    /// Every segment carries `r_total/n` and `c_total/n`. This is the
    /// historical behavior and the default; decks generated with it are
    /// byte-identical to those from before the taper existed.
    Uniform,
    /// Per-segment values grow (or shrink) linearly along the line.
    /// The ratios are last-segment over first-segment; `1.0` means
    /// uniform. Must be positive and finite.
    Linear {
        /// Last-over-first segment resistance ratio.
        r_ratio: f64,
        /// Last-over-first segment capacitance ratio.
        c_ratio: f64,
    },
}

/// A distributed RC line discretized into lumped segments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineSpec {
    /// Number of lumped segments (the paper uses 100, and 2 for the
    /// naive comparison).
    pub segments: usize,
    /// Total distributed resistance in ohms (paper: 250 Ω).
    pub r_total: f64,
    /// Total distributed capacitance in farads (paper: 1.35 pF).
    pub c_total: f64,
    /// How the totals are distributed over the segments.
    pub taper: Taper,
    /// Number of evenly spaced internal nodes renamed to
    /// `<prefix>_tap<j>` (`j` = 1-based) so callers can attach loads at
    /// known points along the line. `0` keeps the plain `<prefix><i>`
    /// names. Must be less than `segments` when nonzero.
    pub taps: usize,
}

impl Default for LineSpec {
    fn default() -> Self {
        LineSpec {
            segments: 100,
            r_total: 250.0,
            c_total: 1.35e-12,
            taper: Taper::Uniform,
            taps: 0,
        }
    }
}

/// Emits the elements of a lumped RC line between `input` and `output`,
/// naming internal nodes `<prefix>0`, `<prefix>1`, ….
///
/// Each segment is an L-section (series R, shunt C at the far end), with
/// an extra half-capacitor at the input for symmetry — total R and C
/// match the spec exactly, for any taper.
///
/// With `taps > 0`, the tap positions are `j * segments / (taps + 1)`
/// for `j = 1..=taps` (strictly interior, strictly increasing).
pub fn rc_line_elements(spec: &LineSpec, input: &str, output: &str, prefix: &str) -> Vec<Element> {
    assert!(spec.segments >= 1, "need at least one segment");
    let n = spec.segments;
    assert!(
        spec.taps == 0 || spec.taps < n,
        "taps must leave distinct internal positions (taps < segments)"
    );
    let mut names: Vec<String> = (0..=n)
        .map(|i| {
            if i == 0 {
                input.to_owned()
            } else if i == n {
                output.to_owned()
            } else {
                format!("{prefix}{i}")
            }
        })
        .collect();
    for j in 1..=spec.taps {
        names[j * n / (spec.taps + 1)] = format!("{prefix}_tap{j}");
    }
    let node = |i: usize| names[i].clone();
    let mut out = Vec::with_capacity(2 * n + 1);
    match spec.taper {
        // The uniform arithmetic is kept verbatim: re-deriving it from
        // the weighted path below can differ by an ulp and decks
        // generated with the default spec must stay byte-identical.
        Taper::Uniform => {
            let rseg = spec.r_total / n as f64;
            let cseg = spec.c_total / n as f64;
            // Half cap at the near end, half at the far end, full in
            // between: sums to c_total.
            out.push(Element::capacitor(
                format!("C{prefix}_in"),
                node(0),
                "0",
                cseg / 2.0,
            ));
            for i in 0..n {
                out.push(Element::resistor(
                    format!("R{prefix}{i}"),
                    node(i),
                    node(i + 1),
                    rseg,
                ));
                let c = if i == n - 1 { cseg / 2.0 } else { cseg };
                out.push(Element::capacitor(
                    format!("C{prefix}{i}"),
                    node(i + 1),
                    "0",
                    c,
                ));
            }
        }
        Taper::Linear { r_ratio, c_ratio } => {
            assert!(
                r_ratio.is_finite() && r_ratio > 0.0 && c_ratio.is_finite() && c_ratio > 0.0,
                "taper ratios must be positive and finite"
            );
            // Linear weights normalized so the totals match the spec.
            let weights = |ratio: f64, total: f64| -> Vec<f64> {
                let w: Vec<f64> = (0..n)
                    .map(|i| {
                        if n == 1 {
                            1.0
                        } else {
                            1.0 + (ratio - 1.0) * i as f64 / (n - 1) as f64
                        }
                    })
                    .collect();
                let sum: f64 = w.iter().sum();
                w.into_iter().map(|wi| total * wi / sum).collect()
            };
            let rsegs = weights(r_ratio, spec.r_total);
            let csegs = weights(c_ratio, spec.c_total);
            // Each node carries half of each adjacent segment's C, the
            // tapered generalization of the half-end convention above.
            out.push(Element::capacitor(
                format!("C{prefix}_in"),
                node(0),
                "0",
                csegs[0] / 2.0,
            ));
            for i in 0..n {
                out.push(Element::resistor(
                    format!("R{prefix}{i}"),
                    node(i),
                    node(i + 1),
                    rsegs[i],
                ));
                let c = if i == n - 1 {
                    csegs[i] / 2.0
                } else {
                    (csegs[i] + csegs[i + 1]) / 2.0
                };
                out.push(Element::capacitor(
                    format!("C{prefix}{i}"),
                    node(i + 1),
                    "0",
                    c,
                ));
            }
        }
    }
    out
}

/// Emits a CMOS inverter (2 MOSFETs). Body terminals are explicit so
/// substrate experiments can reroute them.
#[allow(clippy::too_many_arguments)]
pub fn inverter(
    name: &str,
    input: &str,
    output: &str,
    vdd: &str,
    nbody: &str,
    pbody: &str,
    wn: f64,
    wp: f64,
) -> Vec<Element> {
    vec![
        Element {
            name: format!("MN{name}"),
            kind: pact_netlist::ElementKind::Mosfet {
                d: output.to_owned(),
                g: input.to_owned(),
                s: "0".to_owned(),
                b: nbody.to_owned(),
                model: "nch".to_owned(),
                w: wn,
                l: 1e-6,
            },
        },
        Element {
            name: format!("MP{name}"),
            kind: pact_netlist::ElementKind::Mosfet {
                d: output.to_owned(),
                g: input.to_owned(),
                s: vdd.to_owned(),
                b: pbody.to_owned(),
                model: "pch".to_owned(),
                w: wp,
                l: 1e-6,
            },
        },
    ]
}

/// Adds the default NMOS/PMOS model cards used by all generated decks.
pub fn add_default_models(nl: &mut Netlist) {
    let n = MosModel::default_nmos("nch");
    let p = MosModel::default_pmos("pch");
    nl.models.insert(n.name.clone(), n);
    nl.models.insert(p.name.clone(), p);
}

/// Builds the paper's Figure 2 deck: a large CMOS inverter driving a
/// second inverter through the RC line, with a pulsed input.
///
/// Pass `LineSpec { segments: 0, .. }` is invalid; use `segments: 1` with
/// tiny values for the "no line" variant, or [`no_line_deck`].
pub fn inverter_pair_deck(line: &LineSpec) -> Netlist {
    let mut nl = Netlist::new(format!(
        "inverter pair over {}-segment RC line",
        line.segments
    ));
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 5.0,
                td: 0.2e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 2.4e-9,
                per: 5e-9,
            },
        },
    });
    // Driver: large inverter (the paper's W/L = 100 for the first stage).
    nl.elements.extend(inverter(
        "drv", "in", "line_in", "vdd", "0", "vdd", 100e-6, 200e-6,
    ));
    nl.elements
        .extend(rc_line_elements(line, "line_in", "line_out", "ln"));
    // Receiver inverter.
    nl.elements.extend(inverter(
        "rcv", "line_out", "out", "vdd", "0", "vdd", 4e-6, 8e-6,
    ));
    // Small output load.
    nl.elements
        .push(Element::capacitor("Cload", "out", "0", 20e-15));
    nl
}

/// The same circuit with the line replaced by a direct wire (the "no
/// line" trace of Figure 3).
pub fn no_line_deck() -> Netlist {
    let mut nl = Netlist::new("inverter pair, no line");
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 5.0,
                td: 0.2e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 2.4e-9,
                per: 5e-9,
            },
        },
    });
    nl.elements.extend(inverter(
        "drv", "in", "mid", "vdd", "0", "vdd", 100e-6, 200e-6,
    ));
    // Tiny series resistor so `mid` keeps the same port classification.
    nl.elements
        .push(Element::resistor("Rwire", "mid", "mid2", 1e-3));
    nl.elements.extend(inverter(
        "rcv", "mid2", "out", "vdd", "0", "vdd", 4e-6, 8e-6,
    ));
    nl.elements
        .push(Element::capacitor("Cload", "out", "0", 20e-15));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, ElementKind};

    #[test]
    fn line_totals_match_spec() {
        let spec = LineSpec::default();
        let els = rc_line_elements(&spec, "a", "b", "x");
        let rsum: f64 = els
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::Resistor { ohms, .. } => Some(*ohms),
                _ => None,
            })
            .sum();
        let csum: f64 = els
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::Capacitor { farads, .. } => Some(*farads),
                _ => None,
            })
            .sum();
        assert!((rsum - 250.0).abs() < 1e-9);
        assert!((csum - 1.35e-12).abs() < 1e-24);
        // 100 R + 101 C elements.
        assert_eq!(els.len(), 201);
    }

    #[test]
    fn deck_extracts_with_two_ports() {
        let nl = inverter_pair_deck(&LineSpec::default());
        let ex = extract_rc(&nl, &[]).unwrap();
        // Ports: line_in (driver drain) and line_out (receiver gate);
        // `out` only touches Cload + receiver → also a port.
        assert!(ex.network.num_ports >= 2);
        assert!(ex.network.node_index("line_in").unwrap() < ex.network.num_ports);
        assert!(ex.network.node_index("line_out").unwrap() < ex.network.num_ports);
        assert_eq!(ex.network.num_internal(), 99);
    }

    #[test]
    fn single_segment_line() {
        let spec = LineSpec {
            segments: 1,
            r_total: 100.0,
            c_total: 1e-12,
            ..LineSpec::default()
        };
        let els = rc_line_elements(&spec, "a", "b", "x");
        assert_eq!(els.len(), 3); // Cin/2, R, Cout/2
    }

    /// The default (uniform, no taps) spec must keep producing the exact
    /// historical values — bench baselines and golden decks depend on
    /// the generated bytes.
    #[test]
    fn default_spec_values_are_bitwise_stable() {
        let els = rc_line_elements(&LineSpec::default(), "a", "b", "x");
        for e in &els {
            match &e.kind {
                ElementKind::Resistor { ohms, .. } => assert!(*ohms == 250.0 / 100.0),
                ElementKind::Capacitor { farads, .. } => {
                    let cseg = 1.35e-12 / 100.0;
                    assert!(*farads == cseg || *farads == cseg / 2.0);
                }
                other => panic!("unexpected element {other:?}"),
            }
        }
    }

    #[test]
    fn linear_taper_totals_match_and_values_ramp() {
        let spec = LineSpec {
            segments: 20,
            taper: Taper::Linear {
                r_ratio: 3.0,
                c_ratio: 0.5,
            },
            ..LineSpec::default()
        };
        let els = rc_line_elements(&spec, "a", "b", "x");
        assert_eq!(els.len(), 41);
        let (mut rsum, mut csum) = (0.0, 0.0);
        let mut rvals = Vec::new();
        for e in &els {
            match &e.kind {
                ElementKind::Resistor { ohms, .. } => {
                    rsum += ohms;
                    rvals.push(*ohms);
                }
                ElementKind::Capacitor { farads, .. } => csum += farads,
                other => panic!("unexpected element {other:?}"),
            }
        }
        assert!((rsum - spec.r_total).abs() < 1e-9 * spec.r_total);
        assert!((csum - spec.c_total).abs() < 1e-9 * spec.c_total);
        assert!(rvals.windows(2).all(|w| w[1] > w[0]), "R ramps up");
        let ratio = rvals[rvals.len() - 1] / rvals[0];
        assert!((ratio - 3.0).abs() < 1e-9, "end-over-start ratio: {ratio}");
    }

    /// A ratio of exactly 1.0 is the uniform line up to roundoff (not
    /// necessarily bitwise — that is what `Taper::Uniform` is for).
    #[test]
    fn unity_linear_taper_matches_uniform_to_roundoff() {
        let base = LineSpec {
            segments: 17,
            ..LineSpec::default()
        };
        let tapered = LineSpec {
            taper: Taper::Linear {
                r_ratio: 1.0,
                c_ratio: 1.0,
            },
            ..base
        };
        let u = rc_line_elements(&base, "a", "b", "x");
        let t = rc_line_elements(&tapered, "a", "b", "x");
        assert_eq!(u.len(), t.len());
        for (eu, et) in u.iter().zip(&t) {
            assert_eq!(eu.name, et.name);
            match (&eu.kind, &et.kind) {
                (ElementKind::Resistor { ohms: a, .. }, ElementKind::Resistor { ohms: b, .. }) => {
                    assert!((a - b).abs() <= 1e-12 * a.abs())
                }
                (
                    ElementKind::Capacitor { farads: a, .. },
                    ElementKind::Capacitor { farads: b, .. },
                ) => assert!((a - b).abs() <= 1e-12 * a.abs()),
                other => panic!("kind mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn taps_rename_evenly_spaced_internal_nodes() {
        let spec = LineSpec {
            segments: 10,
            taps: 3,
            ..LineSpec::default()
        };
        let els = rc_line_elements(&spec, "a", "b", "x");
        assert_eq!(els.len(), 21, "taps rename nodes, never add elements");
        let nodes: std::collections::BTreeSet<String> =
            els.iter().flat_map(|e| e.nodes()).collect();
        // Positions j*10/4 = 2, 5, 7 are renamed; their plain names go.
        for tap in ["x_tap1", "x_tap2", "x_tap3"] {
            assert!(nodes.contains(tap), "{tap} missing from {nodes:?}");
        }
        for gone in ["x2", "x5", "x7"] {
            assert!(!nodes.contains(gone), "{gone} should have been renamed");
        }
        assert!(nodes.contains("x1") && nodes.contains("x9"));
    }

    #[test]
    fn models_present() {
        let nl = inverter_pair_deck(&LineSpec::default());
        assert!(nl.models.contains_key("nch"));
        assert!(nl.models.contains_key("pch"));
    }
}
