//! RC transmission-line and inverter-pair generators (the paper's
//! Figure 2 circuit and the Figure 3 comparison variants).

use pact_netlist::{Element, MosModel, Netlist, Waveform};

/// A distributed RC line discretized into lumped segments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineSpec {
    /// Number of lumped segments (the paper uses 100, and 2 for the
    /// naive comparison).
    pub segments: usize,
    /// Total distributed resistance in ohms (paper: 250 Ω).
    pub r_total: f64,
    /// Total distributed capacitance in farads (paper: 1.35 pF).
    pub c_total: f64,
}

impl Default for LineSpec {
    fn default() -> Self {
        LineSpec {
            segments: 100,
            r_total: 250.0,
            c_total: 1.35e-12,
        }
    }
}

/// Emits the elements of a lumped RC line between `input` and `output`,
/// naming internal nodes `<prefix>0`, `<prefix>1`, ….
///
/// Each segment is an L-section (series R, shunt C at the far end), with
/// an extra half-capacitor at the input for symmetry — total R and C
/// match the spec exactly.
pub fn rc_line_elements(spec: &LineSpec, input: &str, output: &str, prefix: &str) -> Vec<Element> {
    assert!(spec.segments >= 1, "need at least one segment");
    let n = spec.segments;
    let rseg = spec.r_total / n as f64;
    let cseg = spec.c_total / n as f64;
    let node = |i: usize| -> String {
        if i == 0 {
            input.to_owned()
        } else if i == n {
            output.to_owned()
        } else {
            format!("{prefix}{i}")
        }
    };
    let mut out = Vec::with_capacity(2 * n + 1);
    // Half cap at the near end, half at the far end, full in between:
    // sums to c_total.
    out.push(Element::capacitor(
        format!("C{prefix}_in"),
        node(0),
        "0",
        cseg / 2.0,
    ));
    for i in 0..n {
        out.push(Element::resistor(
            format!("R{prefix}{i}"),
            node(i),
            node(i + 1),
            rseg,
        ));
        let c = if i == n - 1 { cseg / 2.0 } else { cseg };
        out.push(Element::capacitor(
            format!("C{prefix}{i}"),
            node(i + 1),
            "0",
            c,
        ));
    }
    out
}

/// Emits a CMOS inverter (2 MOSFETs). Body terminals are explicit so
/// substrate experiments can reroute them.
#[allow(clippy::too_many_arguments)]
pub fn inverter(
    name: &str,
    input: &str,
    output: &str,
    vdd: &str,
    nbody: &str,
    pbody: &str,
    wn: f64,
    wp: f64,
) -> Vec<Element> {
    vec![
        Element {
            name: format!("MN{name}"),
            kind: pact_netlist::ElementKind::Mosfet {
                d: output.to_owned(),
                g: input.to_owned(),
                s: "0".to_owned(),
                b: nbody.to_owned(),
                model: "nch".to_owned(),
                w: wn,
                l: 1e-6,
            },
        },
        Element {
            name: format!("MP{name}"),
            kind: pact_netlist::ElementKind::Mosfet {
                d: output.to_owned(),
                g: input.to_owned(),
                s: vdd.to_owned(),
                b: pbody.to_owned(),
                model: "pch".to_owned(),
                w: wp,
                l: 1e-6,
            },
        },
    ]
}

/// Adds the default NMOS/PMOS model cards used by all generated decks.
pub fn add_default_models(nl: &mut Netlist) {
    let n = MosModel::default_nmos("nch");
    let p = MosModel::default_pmos("pch");
    nl.models.insert(n.name.clone(), n);
    nl.models.insert(p.name.clone(), p);
}

/// Builds the paper's Figure 2 deck: a large CMOS inverter driving a
/// second inverter through the RC line, with a pulsed input.
///
/// Pass `LineSpec { segments: 0, .. }` is invalid; use `segments: 1` with
/// tiny values for the "no line" variant, or [`no_line_deck`].
pub fn inverter_pair_deck(line: &LineSpec) -> Netlist {
    let mut nl = Netlist::new(format!(
        "inverter pair over {}-segment RC line",
        line.segments
    ));
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 5.0,
                td: 0.2e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 2.4e-9,
                per: 5e-9,
            },
        },
    });
    // Driver: large inverter (the paper's W/L = 100 for the first stage).
    nl.elements.extend(inverter(
        "drv", "in", "line_in", "vdd", "0", "vdd", 100e-6, 200e-6,
    ));
    nl.elements
        .extend(rc_line_elements(line, "line_in", "line_out", "ln"));
    // Receiver inverter.
    nl.elements.extend(inverter(
        "rcv", "line_out", "out", "vdd", "0", "vdd", 4e-6, 8e-6,
    ));
    // Small output load.
    nl.elements
        .push(Element::capacitor("Cload", "out", "0", 20e-15));
    nl
}

/// The same circuit with the line replaced by a direct wire (the "no
/// line" trace of Figure 3).
pub fn no_line_deck() -> Netlist {
    let mut nl = Netlist::new("inverter pair, no line");
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "vdd".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Dc(5.0),
        },
    });
    nl.elements.push(Element {
        name: "Vin".to_owned(),
        kind: pact_netlist::ElementKind::VSource {
            p: "in".to_owned(),
            n: "0".to_owned(),
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 5.0,
                td: 0.2e-9,
                tr: 0.1e-9,
                tf: 0.1e-9,
                pw: 2.4e-9,
                per: 5e-9,
            },
        },
    });
    nl.elements.extend(inverter(
        "drv", "in", "mid", "vdd", "0", "vdd", 100e-6, 200e-6,
    ));
    // Tiny series resistor so `mid` keeps the same port classification.
    nl.elements
        .push(Element::resistor("Rwire", "mid", "mid2", 1e-3));
    nl.elements.extend(inverter(
        "rcv", "mid2", "out", "vdd", "0", "vdd", 4e-6, 8e-6,
    ));
    nl.elements
        .push(Element::capacitor("Cload", "out", "0", 20e-15));
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::{extract_rc, ElementKind};

    #[test]
    fn line_totals_match_spec() {
        let spec = LineSpec::default();
        let els = rc_line_elements(&spec, "a", "b", "x");
        let rsum: f64 = els
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::Resistor { ohms, .. } => Some(*ohms),
                _ => None,
            })
            .sum();
        let csum: f64 = els
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::Capacitor { farads, .. } => Some(*farads),
                _ => None,
            })
            .sum();
        assert!((rsum - 250.0).abs() < 1e-9);
        assert!((csum - 1.35e-12).abs() < 1e-24);
        // 100 R + 101 C elements.
        assert_eq!(els.len(), 201);
    }

    #[test]
    fn deck_extracts_with_two_ports() {
        let nl = inverter_pair_deck(&LineSpec::default());
        let ex = extract_rc(&nl, &[]).unwrap();
        // Ports: line_in (driver drain) and line_out (receiver gate);
        // `out` only touches Cload + receiver → also a port.
        assert!(ex.network.num_ports >= 2);
        assert!(ex.network.node_index("line_in").unwrap() < ex.network.num_ports);
        assert!(ex.network.node_index("line_out").unwrap() < ex.network.num_ports);
        assert_eq!(ex.network.num_internal(), 99);
    }

    #[test]
    fn single_segment_line() {
        let spec = LineSpec {
            segments: 1,
            r_total: 100.0,
            c_total: 1e-12,
        };
        let els = rc_line_elements(&spec, "a", "b", "x");
        assert_eq!(els.len(), 3); // Cin/2, R, Cout/2
    }

    #[test]
    fn models_present() {
        let nl = inverter_pair_deck(&LineSpec::default());
        assert!(nl.models.contains_key("nch"));
        assert!(nl.models.contains_key("pch"));
    }
}
