//! # pact-gen
//!
//! Parametric workload generators for the PACT reproduction, standing in
//! for the paper's proprietary extracted layouts (see DESIGN.md §3 for
//! the substitution rationale):
//!
//! - [`rc_line_elements`] / [`inverter_pair_deck`] — the Figure 2/3
//!   distributed RC transmission line between two CMOS inverters;
//! - [`substrate_mesh`] — uniform 3-D resistor grids with surface
//!   contacts and junction/field capacitance, sized like the paper's
//!   Table 2 (≈1.5k nodes, 25 ports) and Table 4 (≈20k nodes, 469
//!   ports) substrate macromodels;
//! - [`full_adder_deck`] — the 28-transistor mirror full adder with
//!   input drivers over a substrate mesh (Tables 2–3, Figure 6);
//! - [`multiplier_like_deck`] — inverter-chain arrays with tree RC
//!   parasitics standing in for the extracted 8-bit multiplier
//!   (Table 1, Figure 4);
//! - [`power_grid_deck`] — supply-rail grids with decap and switching
//!   current taps (the paper's introduction motivates PACT with exactly
//!   this IR-drop workload);
//! - [`chain_heavy_deck`] / [`rich_mixed_deck`] — embedded-parasitics
//!   decks for the subnetwork-extraction and chain-collapse passes: long
//!   RC chains between inverter stages, and a mixed
//!   R/C/L/diode/MOSFET/VCVS deck with buried RC islands.
//!
//! All generators are deterministic given their seeds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adder;
mod embedded;
mod line;
mod mesh;
mod multiplier;
mod powergrid;

pub use adder::{full_adder_deck, AdderDeck};
pub use embedded::{chain_heavy_deck, rich_mixed_deck, ChainDeckSpec, RichDeckSpec};
pub use line::{
    add_default_models, inverter, inverter_pair_deck, no_line_deck, rc_line_elements, LineSpec,
    Taper,
};
pub use mesh::{network_to_elements, substrate_mesh, MeshSpec};
pub use multiplier::{
    multiplier_like_deck, multiplier_like_deck_no_parasitics, MultiplierSpec, MultiplierStats,
};
pub use powergrid::{power_grid_deck, PowerGridDeck, PowerGridSpec};
