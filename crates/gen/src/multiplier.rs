//! Multiplier-like workload: chains of CMOS inverters coupled through
//! tree-structured RC interconnect parasitics — the stand-in for the
//! paper's extracted 8-bit multiplier (Table 1 / Figure 4).
//!
//! The essential properties the substitution preserves: parasitics form
//! *tree-like* RC networks (so matrices factor with little fill-in, the
//! point of the paper's Table 1 vs Table 3 memory discussion), transistor
//! count dominates simulation cost, and a critical path of cascaded
//! stages accumulates interconnect delay.

use pact_netlist::{Element, ElementKind, Netlist, Waveform};

use crate::line::{add_default_models, inverter};

/// Parameters for [`multiplier_like_deck`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultiplierSpec {
    /// Number of parallel inverter chains (bit slices).
    pub chains: usize,
    /// Inverter stages per chain (critical-path depth).
    pub stages: usize,
    /// RC-tree branches hanging off each stage's output net (fanout
    /// stubs modelling gate loads elsewhere).
    pub stubs: usize,
    /// Segments in each inter-stage wire.
    pub wire_segments: usize,
    /// Per-wire total resistance (Ω).
    pub wire_r: f64,
    /// Per-wire total capacitance (F).
    pub wire_c: f64,
}

impl MultiplierSpec {
    /// A laptop-scale stand-in for the paper's 8-bit multiplier: a few
    /// hundred transistors with tree RC parasitics (the paper's original
    /// has 7264 transistors / 20263 RC elements — scaled down ~20×, as
    /// recorded in DESIGN.md).
    pub fn scaled_down() -> Self {
        MultiplierSpec {
            chains: 8,
            stages: 12,
            stubs: 2,
            wire_segments: 6,
            wire_r: 150.0,
            wire_c: 60e-15,
        }
    }
}

/// Statistics of a generated multiplier-like deck.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MultiplierStats {
    /// MOSFET count.
    pub transistors: usize,
    /// RC element count (the parasitics PACT reduces).
    pub rc_elements: usize,
}

/// Builds the deck. Chain `c`'s input pad is `in{c}` (pulsed with a
/// per-chain phase), its final output is `out{c}` — `out0` is the
/// critical-path observation node for Figure 4.
pub fn multiplier_like_deck(spec: &MultiplierSpec) -> (Netlist, MultiplierStats) {
    let mut nl = Netlist::new(format!(
        "multiplier-like array: {} chains x {} stages",
        spec.chains, spec.stages
    ));
    add_default_models(&mut nl);
    nl.elements.push(Element {
        name: "Vdd".into(),
        kind: ElementKind::VSource {
            p: "vdd".into(),
            n: "0".into(),
            wave: Waveform::Dc(5.0),
        },
    });
    for c in 0..spec.chains {
        nl.elements.push(Element {
            name: format!("Vin{c}"),
            kind: ElementKind::VSource {
                p: format!("in{c}"),
                n: "0".into(),
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: 5.0,
                    td: 0.3e-9 + 0.1e-9 * c as f64,
                    tr: 0.1e-9,
                    tf: 0.1e-9,
                    pw: 4e-9,
                    per: 10e-9,
                },
            },
        });
    }

    let rseg = spec.wire_r / spec.wire_segments as f64;
    let cseg = spec.wire_c / spec.wire_segments as f64;
    for c in 0..spec.chains {
        for s in 0..spec.stages {
            let gate_in = if s == 0 {
                format!("in{c}")
            } else {
                format!("w{c}_{s}_end")
            };
            let drive = if s + 1 == spec.stages {
                format!("out{c}")
            } else {
                format!("w{c}_{}_start", s + 1)
            };
            nl.elements.extend(inverter(
                &format!("{c}_{s}"),
                &gate_in,
                &drive,
                "vdd",
                "0",
                "vdd",
                4e-6,
                8e-6,
            ));
            // Inter-stage wire with stubs (skip after the last stage).
            if s + 1 < spec.stages {
                let start = drive.clone();
                let end = format!("w{c}_{}_end", s + 1);
                for k in 0..spec.wire_segments {
                    let a = if k == 0 {
                        start.clone()
                    } else {
                        format!("w{c}_{}_n{k}", s + 1)
                    };
                    let b = if k + 1 == spec.wire_segments {
                        end.clone()
                    } else {
                        format!("w{c}_{}_n{}", s + 1, k + 1)
                    };
                    nl.elements.push(Element::resistor(
                        format!("Rw{c}_{}_{k}", s + 1),
                        a.clone(),
                        b.clone(),
                        rseg,
                    ));
                    nl.elements.push(Element::capacitor(
                        format!("Cw{c}_{}_{k}", s + 1),
                        b.clone(),
                        "0",
                        cseg,
                    ));
                }
                // Fanout stubs: short RC branches off the wire midpoint.
                let mid = format!("w{c}_{}_n{}", s + 1, spec.wire_segments / 2);
                for t in 0..spec.stubs {
                    let leaf = format!("stub{c}_{}_{t}", s + 1);
                    nl.elements.push(Element::resistor(
                        format!("Rs{c}_{}_{t}", s + 1),
                        mid.clone(),
                        leaf.clone(),
                        rseg * 2.0,
                    ));
                    nl.elements.push(Element::capacitor(
                        format!("Cs{c}_{}_{t}", s + 1),
                        leaf,
                        "0",
                        cseg * 3.0,
                    ));
                }
            }
        }
        // Output load.
        nl.elements.push(Element::capacitor(
            format!("Cl{c}"),
            format!("out{c}"),
            "0",
            25e-15,
        ));
    }
    let stats = MultiplierStats {
        transistors: nl.count(|e| matches!(e.kind, ElementKind::Mosfet { .. })),
        rc_elements: nl.count(Element::is_rc),
    };
    (nl, stats)
}

/// The same circuit with all parasitic wires replaced by ideal shorts
/// (the "without parasitics" row of Table 1).
pub fn multiplier_like_deck_no_parasitics(spec: &MultiplierSpec) -> (Netlist, MultiplierStats) {
    let ideal = MultiplierSpec {
        wire_segments: 1,
        wire_r: 1e-3,
        wire_c: 0.0,
        stubs: 0,
        ..*spec
    };
    multiplier_like_deck(&ideal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::extract_rc;

    #[test]
    fn counts_scale_with_spec() {
        let (nl, stats) = multiplier_like_deck(&MultiplierSpec::scaled_down());
        assert_eq!(stats.transistors, 2 * 8 * 12);
        assert!(stats.rc_elements > 1000, "rc = {}", stats.rc_elements);
        assert_eq!(
            stats.transistors,
            nl.count(|e| matches!(e.kind, ElementKind::Mosfet { .. }))
        );
    }

    #[test]
    fn network_is_tree_like_and_extractable() {
        let (nl, _) = multiplier_like_deck(&MultiplierSpec {
            chains: 2,
            stages: 3,
            stubs: 1,
            wire_segments: 4,
            wire_r: 100.0,
            wire_c: 50e-15,
        });
        let ex = extract_rc(&nl, &[]).unwrap();
        // Each of the 2 chains has 2 wires with ports at both ends.
        assert!(ex.network.num_ports >= 8);
        assert!(ex.network.num_internal() > 0);
    }

    #[test]
    fn no_parasitics_variant_has_trivial_rc() {
        let (_, with) = multiplier_like_deck(&MultiplierSpec::scaled_down());
        let (_, without) = multiplier_like_deck_no_parasitics(&MultiplierSpec::scaled_down());
        assert!(without.rc_elements < with.rc_elements / 3);
        assert_eq!(with.transistors, without.transistors);
    }
}
