//! One-bit CMOS full adder over a substrate mesh — the workload of the
//! paper's Tables 2–3 and Figure 6.
//!
//! The adder is the classic 28-transistor static mirror adder (10T carry
//! stage, 14T sum stage, two output inverters), with its three inputs
//! driven by separate CMOS inverters, matching the paper's description
//! ("the total number of transistors in the circuit is 28 as the three
//! inputs to the adder are driven by separate CMOS inverters"; the
//! paper's adder core has 22 devices — ours is the 28T textbook
//! topology, a documented substitution).
//!
//! Every adder-core transistor's body terminal connects to its own
//! substrate mesh port; the drivers' bodies tie to the Vdd/Vss contact
//! ports. One extra port (`portM`) is left unconnected as the substrate
//! voltage monitor, exactly as in the paper.

use pact_netlist::{Element, ElementKind, Netlist, RcNetwork, Waveform};

use crate::line::add_default_models;
use crate::mesh::{network_to_elements, substrate_mesh, MeshSpec};

/// Node naming and port bookkeeping for the adder + mesh deck.
#[derive(Clone, Debug)]
pub struct AdderDeck {
    /// The complete SPICE deck (adder + drivers + mesh + supplies).
    pub netlist: Netlist,
    /// The mesh port name used as the substrate voltage monitor.
    pub monitor_port: String,
    /// Mesh port names tied to NMOS bodies.
    pub nmos_ports: Vec<String>,
    /// The mesh port wired to the Vss substrate contact.
    pub vss_port: String,
    /// The mesh port wired to the Vdd well contact.
    pub vdd_port: String,
}

/// A four-terminal transistor shorthand used while assembling the adder.
fn mos(name: &str, d: &str, g: &str, s: &str, b: &str, nmos: bool, w: f64) -> Element {
    Element {
        name: name.to_owned(),
        kind: ElementKind::Mosfet {
            d: d.to_owned(),
            g: g.to_owned(),
            s: s.to_owned(),
            b: b.to_owned(),
            model: if nmos { "nch" } else { "pch" }.to_owned(),
            w,
            l: 1e-6,
        },
    }
}

/// Builds the full-adder-over-substrate deck.
///
/// `mesh_spec.num_contacts` must be at least 25 (22 body ports + Vdd +
/// Vss + monitor); extra contacts remain unloaded ports.
///
/// # Panics
///
/// Panics if the mesh has fewer than 25 contacts.
pub fn full_adder_deck(mesh_spec: &MeshSpec) -> AdderDeck {
    assert!(
        mesh_spec.num_contacts >= 25,
        "adder needs at least 25 mesh contacts"
    );
    let mesh: RcNetwork = substrate_mesh(mesh_spec);
    let mut nl = Netlist::new("one-bit full adder over 3-D substrate mesh");
    add_default_models(&mut nl);

    // Supplies and inputs.
    let vdd = 5.0;
    nl.elements.push(Element {
        name: "Vdd".into(),
        kind: ElementKind::VSource {
            p: "vdd".into(),
            n: "0".into(),
            wave: Waveform::Dc(vdd),
        },
    });
    for (i, (name, period)) in [("a", 4e-9), ("b", 8e-9), ("cin", 16e-9)]
        .iter()
        .enumerate()
    {
        nl.elements.push(Element {
            name: format!("Vin{i}"),
            kind: ElementKind::VSource {
                p: format!("{name}_in"),
                n: "0".into(),
                wave: Waveform::Pulse {
                    v1: 0.0,
                    v2: vdd,
                    td: 0.5e-9,
                    tr: 0.15e-9,
                    tf: 0.15e-9,
                    pw: period / 2.0 - 0.15e-9,
                    per: *period,
                },
            },
        });
    }

    // Port budget: 22 adder-core bodies, then vdd/vss contacts, then the
    // monitor, all distinct mesh ports.
    let mut port_iter = 0usize;
    let mut nmos_ports: Vec<String> = Vec::new();
    macro_rules! next_port {
        () => {{
            let p = format!("port{port_iter}");
            port_iter += 1;
            p
        }};
    }
    macro_rules! body_n {
        () => {{
            let p = next_port!();
            nmos_ports.push(p.clone());
            p
        }};
    }

    // --- carry stage: coutb = NOT(majority(a, b, cin)) — 10T mirror ---
    // PMOS pull-up.
    let mut els: Vec<Element> = Vec::new();
    let wp = 8e-6;
    let wn = 4e-6;
    // PMOS bodies share the well; the well itself contacts the mesh at
    // one port (vdd_port) — matching the paper's single Vdd well contact.
    let vdd_port = next_port!();
    els.push(mos("MPC1", "n1", "a", "vdd", &vdd_port, false, wp));
    els.push(mos("MPC2", "n1", "b", "vdd", &vdd_port, false, wp));
    els.push(mos("MPC3", "coutb", "cin", "n1", &vdd_port, false, wp));
    els.push(mos("MPC4", "n2", "a", "vdd", &vdd_port, false, wp));
    els.push(mos("MPC5", "coutb", "b", "n2", &vdd_port, false, wp));
    // NMOS pull-down (mirror) — each body to its own substrate port.
    let p1 = body_n!();
    els.push(mos("MNC1", "m1", "a", "0", &p1, true, wn));
    let p2 = body_n!();
    els.push(mos("MNC2", "coutb", "b", "m1", &p2, true, wn));
    let p3 = body_n!();
    els.push(mos("MNC3", "m2", "cin", "coutb", &p3, true, wn));
    let p4 = body_n!();
    els.push(mos("MNC4", "0", "a", "m2", &p4, true, wn));
    let p5 = body_n!();
    els.push(mos("MNC5", "0", "b", "m2", &p5, true, wn));

    // --- sum stage: sumb = NOT(a ⊕ b ⊕ cin) — 14T mirror ---
    els.push(mos("MPS1", "s1", "a", "vdd", &vdd_port, false, wp));
    els.push(mos("MPS2", "s1", "b", "vdd", &vdd_port, false, wp));
    els.push(mos("MPS3", "s1", "cin", "vdd", &vdd_port, false, wp));
    els.push(mos("MPS4", "sumb", "coutb", "s1", &vdd_port, false, wp));
    els.push(mos("MPS5", "s2", "a", "vdd", &vdd_port, false, wp));
    els.push(mos("MPS6", "s3", "b", "s2", &vdd_port, false, wp));
    els.push(mos("MPS7", "sumb", "cin", "s3", &vdd_port, false, wp));
    for (name, d, g, s) in [
        ("MNS1", "t1", "a", "0"),
        ("MNS2", "t1", "b", "0"),
        ("MNS3", "t1", "cin", "0"),
        ("MNS4", "sumb", "coutb", "t1"),
        ("MNS5", "t2", "a", "0"),
        ("MNS6", "t3", "b", "t2"),
        ("MNS7", "sumb", "cin", "t3"),
    ] {
        let p = body_n!();
        els.push(mos(name, d, g, s, &p, true, wn));
    }

    // --- output inverters (part of the 28T core) ---
    for (name, input, output) in [("cout", "coutb", "cout"), ("sum", "sumb", "sum")] {
        let pn = body_n!();
        els.push(mos(
            &format!("MNI{name}"),
            output,
            input,
            "0",
            &pn,
            true,
            wn,
        ));
        els.push(mos(
            &format!("MPI{name}"),
            output,
            input,
            "vdd",
            &vdd_port,
            false,
            wp,
        ));
    }

    // --- three input driver inverters (bodies tied to supply contacts,
    //     not the mesh, per the paper's 22-port budget) ---
    let vss_port = next_port!();
    for name in ["a", "b", "cin"] {
        els.push(mos(
            &format!("MND{name}"),
            name,
            &format!("{name}_in"),
            "0",
            &vss_port,
            true,
            wn * 2.0,
        ));
        els.push(mos(
            &format!("MPD{name}"),
            name,
            &format!("{name}_in"),
            "vdd",
            &vdd_port,
            false,
            wp * 2.0,
        ));
    }

    // Monitor port: a zero-value current probe makes it a port under the
    // extraction rule without disturbing the electrical network (the
    // paper includes this node explicitly "to monitor the substrate
    // voltage at a point near the adder").
    let monitor_port = next_port!();
    debug_assert!(port_iter <= mesh_spec.num_contacts);
    els.push(Element {
        name: "Imon".into(),
        kind: ElementKind::ISource {
            p: monitor_port.clone(),
            n: "0".into(),
            wave: Waveform::Dc(0.0),
        },
    });

    // Supply contacts: tie the vss port to ground and the vdd (well)
    // port to the supply through low-resistance contacts.
    els.push(Element::resistor("Rvssc", vss_port.clone(), "0", 1.0));
    els.push(Element::resistor("Rvddc", vdd_port.clone(), "vdd", 1.0));

    // Output loads.
    els.push(Element::capacitor("Clsum", "sum", "0", 15e-15));
    els.push(Element::capacitor("Clcout", "cout", "0", 15e-15));

    nl.elements.extend(els);
    nl.elements.extend(network_to_elements(&mesh, "sub"));

    AdderDeck {
        netlist: nl,
        monitor_port,
        nmos_ports,
        vss_port,
        vdd_port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mesh() -> MeshSpec {
        MeshSpec {
            nx: 8,
            ny: 8,
            nz: 3,
            num_contacts: 25,
            ..MeshSpec::table2()
        }
    }

    #[test]
    fn deck_has_28t_core_plus_drivers() {
        let deck = full_adder_deck(&small_mesh());
        let mosfets = deck
            .netlist
            .count(|e| matches!(e.kind, ElementKind::Mosfet { .. }));
        assert_eq!(mosfets, 34); // 28 core + 6 driver transistors
        assert_eq!(deck.nmos_ports.len(), 14); // 12 core NMOS + 2 inverter NMOS
    }

    #[test]
    fn all_body_ports_are_mesh_ports() {
        let deck = full_adder_deck(&small_mesh());
        for p in deck
            .nmos_ports
            .iter()
            .chain([&deck.vdd_port, &deck.vss_port, &deck.monitor_port])
        {
            assert!(p.starts_with("port"), "{p} is not a mesh port");
        }
        // Monitor must be distinct from the others.
        assert!(!deck.nmos_ports.contains(&deck.monitor_port));
    }

    #[test]
    fn adder_logic_is_correct_at_dc() {
        // Check cout/sum levels for all 8 input combinations via DC.
        use pact_circuit::Circuit;
        let deck = full_adder_deck(&small_mesh());
        for combo in 0..8u8 {
            let mut nl = deck.netlist.clone();
            // Replace input pulse sources with DC levels. Inputs pass
            // through inverting drivers, so drive the complement.
            let levels = [(combo & 1) != 0, (combo & 2) != 0, (combo & 4) != 0];
            let mut k = 0;
            for e in nl.elements.iter_mut() {
                if let ElementKind::VSource { wave, .. } = &mut e.kind {
                    if e.name.starts_with("Vin") {
                        // driver inverts: to get logic L at adder input,
                        // drive the pad high.
                        *wave = Waveform::Dc(if levels[k] { 0.0 } else { 5.0 });
                        k += 1;
                    }
                }
            }
            let ckt = Circuit::from_netlist(&nl).unwrap();
            let dc = ckt.dc_operating_point().unwrap();
            let (a, b, c) = (levels[0], levels[1], levels[2]);
            let want_sum = a ^ b ^ c;
            let want_cout = (a & b) | (c & (a | b));
            let vsum = dc.voltage("sum").unwrap();
            let vcout = dc.voltage("cout").unwrap();
            assert_eq!(
                vsum > 2.5,
                want_sum,
                "sum wrong for combo {combo:03b}: v={vsum}"
            );
            assert_eq!(
                vcout > 2.5,
                want_cout,
                "cout wrong for combo {combo:03b}: v={vcout}"
            );
        }
    }

    #[test]
    fn total_node_and_element_counts_scale_with_mesh() {
        let deck = full_adder_deck(&MeshSpec {
            nx: 10,
            ny: 10,
            nz: 4,
            num_contacts: 25,
            ..MeshSpec::table2()
        });
        let rc = deck.netlist.count(pact_netlist::Element::is_rc);
        assert!(rc > 900, "mesh RC elements missing, got {rc}");
    }
}
