//! Transport front ends for the daemon: stdin/stdout JSONL and a Unix
//! domain socket, both driving the same [`Daemon::submit`] loop.
//!
//! Client faults are a transport concern and stay here: a connection
//! that dies with responses in flight turns each failed write into a
//! counted `disconnects` tick and never touches the daemon core — the
//! worker that was reducing for the dead client finishes, its response
//! is dropped on the floor, and its warm session stays warm for the next
//! caller.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use crate::server::{Daemon, ReplySink, Submission};

/// Feeds request lines from `reader` into the daemon until EOF or a
/// shutdown request; responses go through `sink`.
///
/// # Errors
///
/// Propagates read errors from `reader`.
pub fn serve_lines<R: BufRead>(daemon: &Daemon, reader: R, sink: &ReplySink) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if daemon.submit(&line, sink) == Submission::Shutdown {
            break;
        }
    }
    Ok(())
}

/// Serves JSONL over stdin/stdout until EOF or shutdown. Does not drain
/// the daemon — the caller keeps ownership and calls
/// [`Daemon::shutdown`] afterwards.
///
/// # Errors
///
/// Propagates stdin read errors.
pub fn serve_stdin(daemon: &Daemon) -> io::Result<()> {
    let sink: ReplySink = Arc::new(|line: &str| {
        let mut out = io::stdout().lock();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    });
    serve_lines(daemon, BufReader::new(io::stdin().lock()), &sink)
}

/// Serves JSONL over a Unix domain socket at `path` (replacing any stale
/// socket file) until a client sends `{"op":"shutdown"}`. Each
/// connection gets a reader thread; responses are serialized per
/// connection, and a write failure marks the connection dead exactly
/// once.
///
/// # Errors
///
/// Propagates bind/accept errors.
pub fn serve_unix(daemon: &Daemon, path: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| -> io::Result<()> {
        for stream in listener.incoming() {
            if stop.load(AtomicOrdering::Relaxed) {
                break;
            }
            let stream = stream?;
            let stop = Arc::clone(&stop);
            scope.spawn(move || serve_connection(daemon, stream, &stop, path));
        }
        Ok(())
    })?;
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Runs one connection's read loop. On shutdown, pokes the listener with
/// a throwaway connect so the accept loop observes the stop flag.
fn serve_connection(daemon: &Daemon, stream: UnixStream, stop: &AtomicBool, path: &Path) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    let dead = Arc::new(AtomicBool::new(false));
    let counters = Arc::clone(daemon.counters());
    let sink: ReplySink = {
        let writer = Arc::clone(&writer);
        let dead = Arc::clone(&dead);
        Arc::new(move |line: &str| {
            let mut w = writer.lock().unwrap();
            let sent = writeln!(w, "{line}").and_then(|()| w.flush());
            if sent.is_err() && !dead.swap(true, AtomicOrdering::Relaxed) {
                counters.disconnects.fetch_add(1, AtomicOrdering::Relaxed);
            }
        })
    };
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if daemon.submit(&line, &sink) == Submission::Shutdown {
            stop.store(true, AtomicOrdering::Relaxed);
            let _ = UnixStream::connect(path);
            break;
        }
    }
}
