//! The `rcfitd-v1` wire protocol: JSON Lines request parsing and
//! response rendering.
//!
//! One request object per line. Fields:
//!
//! - `id` — any JSON value, echoed verbatim in the response (`null` when
//!   absent or when the line was too malformed to extract one).
//! - `op` — `"reduce"` (default), `"stats"`, or `"shutdown"`.
//! - `deck` — the SPICE deck text inline, or `path` — a file to read
//!   server-side. Exactly one of the two for `reduce`.
//! - `options` — an object mirroring the `rcfit` flags (`fmax`, `tol`,
//!   `sparsify`, `ports`, `threads`, `eigen`, `dense`, `components`,
//!   `strict_pivots`, `hier`, `block_size`, `max_depth`, `chol_kernel`,
//!   `strategy`, `points`, `extract`, `collapse_chains`, `chain_tol`).
//!
//! Unknown request fields and unknown option keys are *rejected* (code
//! `unknown_option`) rather than ignored: a silently dropped option
//! would change numerics behind the caller's back, which the protocol's
//! bit-identity guarantee forbids.
//!
//! Responses always carry `"schema":"rcfitd-v1"`, the echoed `id`, and
//! `"ok"`. Success adds the reduced `deck`, placement fields (`worker`,
//! `session_hit`, `queue_depth`) and the embedded `rcfit-telemetry-v1`
//! document; failure adds `error: {code, message}` with the stable
//! [`pact::PactError`] codes plus the protocol's own `bad_request`,
//! `unknown_option`, `deck_too_large` and `overloaded`.

use pact::json::Value;
use pact::CholKernel;
use pact_netlist::parse_value;

use crate::pipeline::{DeckOptions, EigenArg, StrategyArg};

/// The response/request schema tag.
pub const SCHEMA: &str = "rcfitd-v1";

/// Default cap on inline deck text (bytes).
pub const DEFAULT_MAX_DECK_BYTES: usize = 8 * 1024 * 1024;

/// What a request asks the daemon to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Reduce a deck (the default).
    Reduce,
    /// Report serve counters and queue depths.
    Stats,
    /// Drain the queues and exit.
    Shutdown,
}

/// Where the deck text comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeckSource {
    /// Deck text carried inline in the request.
    Inline(String),
    /// Server-side file path to read.
    Path(String),
}

/// A parsed, validated request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Echoed verbatim in the response (`Value::Null` when absent).
    pub id: Value,
    /// The operation.
    pub op: Op,
    /// Deck source; always `Some` when `op` is [`Op::Reduce`].
    pub source: Option<DeckSource>,
    /// Resolved reduction options.
    pub options: DeckOptions,
}

/// A request rejected before reaching a worker.
#[derive(Clone, Debug)]
pub struct ProtocolError {
    /// The request id, when one could be extracted.
    pub id: Value,
    /// Stable error code (`bad_request`, `unknown_option`,
    /// `deck_too_large`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    fn new(id: &Value, code: &'static str, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            id: id.clone(),
            code,
            message: message.into(),
        }
    }
}

/// Extracts a positive integer from a JSON number.
fn as_positive_int(v: &Value, what: &str, id: &Value) -> Result<usize, ProtocolError> {
    match v.as_f64() {
        Some(f) if f.fract() == 0.0 && f >= 1.0 && f <= u32::MAX as f64 => Ok(f as usize),
        _ => Err(ProtocolError::new(
            id,
            "bad_request",
            format!("`{what}` needs a positive integer"),
        )),
    }
}

fn as_number(v: &Value, what: &str, id: &Value) -> Result<f64, ProtocolError> {
    v.as_f64()
        .ok_or_else(|| ProtocolError::new(id, "bad_request", format!("`{what}` needs a number")))
}

fn as_bool(v: &Value, what: &str, id: &Value) -> Result<bool, ProtocolError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(ProtocolError::new(
            id,
            "bad_request",
            format!("`{what}` needs a boolean"),
        )),
    }
}

fn as_str<'v>(v: &'v Value, what: &str, id: &Value) -> Result<&'v str, ProtocolError> {
    v.as_str()
        .ok_or_else(|| ProtocolError::new(id, "bad_request", format!("`{what}` needs a string")))
}

/// Applies one `options` entry onto `opts`.
fn apply_option(
    opts: &mut DeckOptions,
    key: &str,
    v: &Value,
    id: &Value,
) -> Result<(), ProtocolError> {
    match key {
        // `fmax` accepts a JSON number or a SPICE-suffixed string
        // ("500meg"), exactly like the CLI flag.
        "fmax" => {
            opts.f_max = match v {
                Value::Num(f) => *f,
                Value::Str(s) => parse_value(s)
                    .map_err(|e| ProtocolError::new(id, "bad_request", format!("`fmax`: {e}")))?,
                _ => {
                    return Err(ProtocolError::new(
                        id,
                        "bad_request",
                        "`fmax` needs a number or a SPICE-suffixed string",
                    ))
                }
            };
        }
        "tol" => opts.tolerance = as_number(v, "tol", id)?,
        "sparsify" => opts.sparsify = as_number(v, "sparsify", id)?,
        "ports" => {
            let arr = v.as_arr().ok_or_else(|| {
                ProtocolError::new(id, "bad_request", "`ports` needs an array of strings")
            })?;
            let mut ports = Vec::with_capacity(arr.len());
            for p in arr {
                ports.push(as_str(p, "ports", id)?.to_owned());
            }
            opts.extra_ports = ports;
        }
        "threads" => opts.threads = Some(as_positive_int(v, "threads", id)?),
        "eigen" => {
            let s = as_str(v, "eigen", id)?;
            opts.eigen =
                Some(EigenArg::parse(s).map_err(|e| ProtocolError::new(id, "bad_request", e))?);
        }
        "dense" => opts.dense = as_bool(v, "dense", id)?,
        "components" => opts.components = as_bool(v, "components", id)?,
        "strict_pivots" => opts.strict_pivots = as_bool(v, "strict_pivots", id)?,
        "hier" => opts.hier = as_bool(v, "hier", id)?,
        "block_size" => opts.block_size = as_positive_int(v, "block_size", id)?,
        "max_depth" => opts.max_depth = as_positive_int(v, "max_depth", id)?,
        "strategy" => {
            let s = as_str(v, "strategy", id)?;
            opts.strategy =
                Some(StrategyArg::parse(s).map_err(|e| ProtocolError::new(id, "bad_request", e))?);
        }
        // `points` accepts JSON numbers or SPICE-suffixed strings
        // ("500meg"), like `fmax`; negative values put the expansion
        // point on the negative real axis.
        "points" => {
            let arr = v.as_arr().ok_or_else(|| {
                ProtocolError::new(
                    id,
                    "bad_request",
                    "`points` needs an array of frequencies (Hz)",
                )
            })?;
            let mut points = Vec::with_capacity(arr.len());
            for p in arr {
                let f = match p {
                    Value::Num(f) => *f,
                    Value::Str(s) => {
                        let (mag, neg) = match s.strip_prefix('-') {
                            Some(rest) => (rest, true),
                            None => (s.as_str(), false),
                        };
                        let v = parse_value(mag).map_err(|e| {
                            ProtocolError::new(id, "bad_request", format!("`points`: {e}"))
                        })?;
                        if neg {
                            -v
                        } else {
                            v
                        }
                    }
                    _ => {
                        return Err(ProtocolError::new(
                            id,
                            "bad_request",
                            "`points` entries must be numbers or SPICE-suffixed strings",
                        ))
                    }
                };
                if !f.is_finite() || f == 0.0 {
                    return Err(ProtocolError::new(
                        id,
                        "bad_request",
                        "`points` entries must be finite and nonzero (the s = 0 moment is always matched)",
                    ));
                }
                points.push(f);
            }
            if points.is_empty() {
                return Err(ProtocolError::new(
                    id,
                    "bad_request",
                    "`points` needs at least one frequency",
                ));
            }
            opts.points = Some(points);
        }
        "extract" => opts.extract = as_bool(v, "extract", id)?,
        "collapse_chains" => opts.collapse_chains = as_bool(v, "collapse_chains", id)?,
        "chain_tol" => {
            let tol = as_number(v, "chain_tol", id)?;
            if !tol.is_finite() || tol <= 0.0 {
                return Err(ProtocolError::new(
                    id,
                    "bad_request",
                    "`chain_tol` needs a positive finite number",
                ));
            }
            opts.chain_tol = tol;
        }
        "chol_kernel" => {
            opts.chol_kernel = match as_str(v, "chol_kernel", id)? {
                "auto" => CholKernel::Auto,
                "supernodal" => CholKernel::Supernodal,
                "scalar" => CholKernel::Scalar,
                other => {
                    return Err(ProtocolError::new(
                        id,
                        "bad_request",
                        format!(
                            "`chol_kernel` expects auto, supernodal, or scalar (got `{other}`)"
                        ),
                    ))
                }
            };
        }
        other => {
            return Err(ProtocolError::new(
                id,
                "unknown_option",
                format!("unknown option `{other}`"),
            ))
        }
    }
    Ok(())
}

/// Parses and validates one request line.
///
/// # Errors
///
/// [`ProtocolError`] with codes `bad_request` (malformed JSON, wrong
/// types, missing or conflicting deck source, unknown op),
/// `unknown_option` (unknown request field or option key — never
/// silently ignored) or `deck_too_large` (inline deck exceeding
/// `max_deck_bytes`).
pub fn parse_request(line: &str, max_deck_bytes: usize) -> Result<Request, ProtocolError> {
    let doc = Value::parse(line).map_err(|e| {
        ProtocolError::new(&Value::Null, "bad_request", format!("malformed JSON: {e}"))
    })?;
    let fields = match &doc {
        Value::Obj(fields) => fields,
        _ => {
            return Err(ProtocolError::new(
                &Value::Null,
                "bad_request",
                "request must be a JSON object",
            ))
        }
    };
    let id = doc.get("id").cloned().unwrap_or(Value::Null);

    for (k, _) in fields {
        match k.as_str() {
            "id" | "op" | "deck" | "path" | "options" => {}
            other => {
                return Err(ProtocolError::new(
                    &id,
                    "unknown_option",
                    format!("unknown request field `{other}`"),
                ))
            }
        }
    }

    let op = match doc.get("op") {
        None => Op::Reduce,
        Some(v) => match as_str(v, "op", &id)? {
            "reduce" => Op::Reduce,
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            other => {
                return Err(ProtocolError::new(
                    &id,
                    "bad_request",
                    format!("unknown op `{other}` (expected reduce, stats, or shutdown)"),
                ))
            }
        },
    };

    // The daemon gets its parallelism from the worker pool, so each
    // reduction defaults to one thread (results are bit-identical for
    // every thread count — this is scheduling, not numerics). An
    // explicit `threads` option still wins.
    let mut options = DeckOptions {
        threads: Some(1),
        ..DeckOptions::default()
    };
    let mut chain_tol_given = false;
    if let Some(v) = doc.get("options") {
        match v {
            Value::Obj(entries) => {
                for (k, v) in entries {
                    chain_tol_given |= k == "chain_tol";
                    apply_option(&mut options, k, v, &id)?;
                }
            }
            _ => {
                return Err(ProtocolError::new(
                    &id,
                    "bad_request",
                    "`options` must be an object",
                ))
            }
        }
    }
    // Cross-field validation. The CLI resolves `--hier` + `--strategy`
    // by letting the explicit strategy win; the protocol rejects the
    // combination outright so a caller can never be surprised by the
    // resolution order.
    if options.points.is_some() && options.strategy != Some(StrategyArg::Multipoint) {
        return Err(ProtocolError::new(
            &id,
            "bad_request",
            "`points` requires `\"strategy\":\"multipoint\"`",
        ));
    }
    if chain_tol_given && !options.collapse_chains {
        return Err(ProtocolError::new(
            &id,
            "bad_request",
            "`chain_tol` requires `\"collapse_chains\":true`",
        ));
    }
    if options.hier {
        if let Some(s) = options.strategy {
            if s != StrategyArg::Hier {
                return Err(ProtocolError::new(
                    &id,
                    "bad_request",
                    format!("`hier` conflicts with `\"strategy\":\"{}\"`", s.name()),
                ));
            }
        }
    }

    let source = match (doc.get("deck"), doc.get("path")) {
        (Some(_), Some(_)) => {
            return Err(ProtocolError::new(
                &id,
                "bad_request",
                "give either `deck` or `path`, not both",
            ))
        }
        (Some(v), None) => {
            let text = as_str(v, "deck", &id)?;
            if text.len() > max_deck_bytes {
                return Err(ProtocolError::new(
                    &id,
                    "deck_too_large",
                    format!(
                        "inline deck is {} bytes; this daemon accepts at most {max_deck_bytes}",
                        text.len()
                    ),
                ));
            }
            Some(DeckSource::Inline(text.to_owned()))
        }
        (None, Some(v)) => Some(DeckSource::Path(as_str(v, "path", &id)?.to_owned())),
        (None, None) => None,
    };
    if op == Op::Reduce && source.is_none() {
        return Err(ProtocolError::new(
            &id,
            "bad_request",
            "reduce needs `deck` or `path`",
        ));
    }

    Ok(Request {
        id,
        op,
        source,
        options,
    })
}

fn response_head(id: &Value, ok: bool) -> Vec<(String, Value)> {
    vec![
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), Value::Bool(ok)),
    ]
}

/// Renders a failure response line.
pub fn error_response(id: &Value, code: &str, message: &str) -> String {
    let mut fields = response_head(id, false);
    fields.push((
        "error".to_owned(),
        Value::obj(vec![
            ("code".to_owned(), Value::str(code)),
            ("message".to_owned(), Value::str(message)),
        ]),
    ));
    Value::obj(fields).render()
}

/// Renders a successful reduce response line.
pub fn reduce_response(
    id: &Value,
    worker: usize,
    session_hit: bool,
    queue_depth: u64,
    deck: &str,
    telemetry: Value,
) -> String {
    let mut fields = response_head(id, true);
    fields.push(("worker".to_owned(), Value::num(worker as f64)));
    fields.push(("session_hit".to_owned(), Value::Bool(session_hit)));
    fields.push(("queue_depth".to_owned(), Value::num(queue_depth as f64)));
    fields.push(("deck".to_owned(), Value::str(deck)));
    fields.push(("telemetry".to_owned(), telemetry));
    Value::obj(fields).render()
}

/// Renders a stats response line.
pub fn stats_response(id: &Value, stats: Value) -> String {
    let mut fields = response_head(id, true);
    fields.push(("stats".to_owned(), stats));
    Value::obj(fields).render()
}

/// Renders the acknowledgement for a shutdown request.
pub fn shutdown_response(id: &Value) -> String {
    let mut fields = response_head(id, true);
    fields.push(("shutdown".to_owned(), Value::Bool(true)));
    Value::obj(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_reduce_request_parses_with_defaults() {
        let r = parse_request(r#"{"deck":"* d\n.end\n"}"#, DEFAULT_MAX_DECK_BYTES).unwrap();
        assert_eq!(r.op, Op::Reduce);
        assert_eq!(r.id, Value::Null);
        assert_eq!(r.source, Some(DeckSource::Inline("* d\n.end\n".to_owned())));
        assert_eq!(r.options.threads, Some(1), "daemon default is one thread");
        assert_eq!(r.options.f_max, 1e9);
    }

    #[test]
    fn options_apply_and_fmax_takes_spice_suffixes() {
        let line = r#"{"id":7,"deck":"x","options":{"fmax":"500meg","tol":0.1,"eigen":"lowrank","hier":true,"block_size":100,"threads":2}}"#;
        let r = parse_request(line, DEFAULT_MAX_DECK_BYTES).unwrap();
        assert_eq!(r.id, Value::Num(7.0));
        assert_eq!(r.options.f_max, 5e8);
        assert_eq!(r.options.tolerance, 0.1);
        assert_eq!(r.options.eigen, Some(EigenArg::LowRank));
        assert!(r.options.hier);
        assert_eq!(r.options.block_size, 100);
        assert_eq!(r.options.threads, Some(2));
    }

    #[test]
    fn malformed_json_is_bad_request_with_null_id() {
        let e = parse_request("{nope", DEFAULT_MAX_DECK_BYTES).unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert_eq!(e.id, Value::Null);
    }

    #[test]
    fn unknown_fields_and_options_are_rejected_not_ignored() {
        let e = parse_request(r#"{"deck":"x","surprise":1}"#, 100).unwrap_err();
        assert_eq!(e.code, "unknown_option");
        let e = parse_request(r#"{"deck":"x","options":{"tolerance":0.1}}"#, 100).unwrap_err();
        assert_eq!(e.code, "unknown_option");
        assert!(e.message.contains("tolerance"));
    }

    #[test]
    fn oversized_inline_deck_is_typed() {
        let line = format!(r#"{{"id":"big","deck":"{}"}}"#, "x".repeat(64));
        let e = parse_request(&line, 16).unwrap_err();
        assert_eq!(e.code, "deck_too_large");
        assert_eq!(e.id, Value::Str("big".to_owned()));
    }

    #[test]
    fn deck_and_path_conflict_and_absence_are_rejected() {
        let e = parse_request(r#"{"deck":"x","path":"y"}"#, 100).unwrap_err();
        assert_eq!(e.code, "bad_request");
        let e = parse_request(r#"{"id":1}"#, 100).unwrap_err();
        assert_eq!(e.code, "bad_request");
        // stats/shutdown need no deck.
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#, 100).unwrap().op,
            Op::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#, 100).unwrap().op,
            Op::Shutdown
        );
    }

    #[test]
    fn strategy_and_points_options_parse_and_validate() {
        let line =
            r#"{"deck":"x","options":{"strategy":"multipoint","points":[5e8,"-2g","1meg"]}}"#;
        let r = parse_request(line, DEFAULT_MAX_DECK_BYTES).unwrap();
        assert_eq!(r.options.strategy, Some(StrategyArg::Multipoint));
        assert_eq!(r.options.points.as_deref(), Some(&[5e8, -2e9, 1e6][..]));

        let e = parse_request(
            r#"{"deck":"x","options":{"strategy":"quadtree"}}"#,
            DEFAULT_MAX_DECK_BYTES,
        )
        .unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert!(e.message.contains("quadtree"));

        for bad in [
            r#"{"deck":"x","options":{"strategy":"multipoint","points":[0]}}"#,
            r#"{"deck":"x","options":{"strategy":"multipoint","points":[]}}"#,
            r#"{"deck":"x","options":{"strategy":"multipoint","points":"1g"}}"#,
        ] {
            let e = parse_request(bad, DEFAULT_MAX_DECK_BYTES).unwrap_err();
            assert_eq!(e.code, "bad_request", "{bad}");
        }
    }

    #[test]
    fn cross_field_conflicts_are_bad_requests() {
        let e = parse_request(
            r#"{"deck":"x","options":{"points":[1e9]}}"#,
            DEFAULT_MAX_DECK_BYTES,
        )
        .unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert!(e.message.contains("multipoint"));

        let e = parse_request(
            r#"{"deck":"x","options":{"hier":true,"strategy":"flat"}}"#,
            DEFAULT_MAX_DECK_BYTES,
        )
        .unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert!(e.message.contains("conflicts"));

        // `hier` plus the matching explicit spelling is fine.
        let r = parse_request(
            r#"{"deck":"x","options":{"hier":true,"strategy":"hier"}}"#,
            DEFAULT_MAX_DECK_BYTES,
        )
        .unwrap();
        assert_eq!(r.options.strategy, Some(StrategyArg::Hier));
    }

    #[test]
    fn extract_and_collapse_options_parse_and_validate() {
        let line =
            r#"{"deck":"x","options":{"extract":true,"collapse_chains":true,"chain_tol":1e-4}}"#;
        let r = parse_request(line, DEFAULT_MAX_DECK_BYTES).unwrap();
        assert!(r.options.extract);
        assert!(r.options.collapse_chains);
        assert_eq!(r.options.chain_tol, 1e-4);

        // Defaults stay off.
        let r = parse_request(r#"{"deck":"x"}"#, DEFAULT_MAX_DECK_BYTES).unwrap();
        assert!(!r.options.extract && !r.options.collapse_chains);

        // Strict typing: booleans must be booleans, the tolerance must
        // be a positive finite number.
        for bad in [
            r#"{"deck":"x","options":{"extract":1}}"#,
            r#"{"deck":"x","options":{"collapse_chains":"yes"}}"#,
            r#"{"deck":"x","options":{"collapse_chains":true,"chain_tol":0}}"#,
            r#"{"deck":"x","options":{"collapse_chains":true,"chain_tol":-1e-6}}"#,
            r#"{"deck":"x","options":{"collapse_chains":true,"chain_tol":"tiny"}}"#,
        ] {
            let e = parse_request(bad, DEFAULT_MAX_DECK_BYTES).unwrap_err();
            assert_eq!(e.code, "bad_request", "{bad}");
        }

        // A tolerance without the pass it tunes is a cross-field error,
        // never a silent no-op.
        let e = parse_request(
            r#"{"deck":"x","options":{"chain_tol":1e-4}}"#,
            DEFAULT_MAX_DECK_BYTES,
        )
        .unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert!(e.message.contains("collapse_chains"));

        // Misspellings keep the unknown_option contract.
        let e = parse_request(
            r#"{"deck":"x","options":{"collapse-chains":true}}"#,
            DEFAULT_MAX_DECK_BYTES,
        )
        .unwrap_err();
        assert_eq!(e.code, "unknown_option");
    }

    #[test]
    fn responses_echo_id_and_schema() {
        let id = Value::Str("r1".to_owned());
        let line = error_response(&id, "overloaded", "queue full");
        let doc = Value::parse(&line).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(doc.get("id"), Some(&id));
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(
            doc.get("error").unwrap().get("code").unwrap().as_str(),
            Some("overloaded")
        );
    }
}
