//! `rcfitd` — the sharded reduction-as-a-service daemon.
//!
//! ```text
//! rcfitd [--workers N] [--queue-cap N] [--session-cap N] [--pattern-cap N]
//!        [--max-deck-bytes N] [--socket PATH] [--stats]
//! ```
//!
//! Speaks the `rcfitd-v1` JSON Lines protocol over stdin/stdout, or over
//! a Unix domain socket with `--socket`. Every response deck is
//! bit-identical to what `rcfit` prints for the same deck and options —
//! the daemon only adds warm-session scheduling. See DESIGN.md §14.

use std::process::ExitCode;

use pact_serve::{serve_stdin, serve_unix, Daemon, ServeConfig};

fn usage() -> &'static str {
    "usage: rcfitd [--workers N] [--queue-cap N] [--session-cap N] [--pattern-cap N] \
     [--max-deck-bytes N] [--socket PATH] [--stats]\n\
     Speaks rcfitd-v1 JSON Lines on stdin/stdout (one request per line, one\n\
     response per line), or on a Unix socket with --socket PATH.\n\
     --workers      worker shards (default: min(cores, 8))\n\
     --queue-cap    queued requests per worker before shedding (default 64)\n\
     --session-cap  warm sessions kept per worker (default 8)\n\
     --pattern-cap  symbolic analyses cached per session (default 64)\n\
     --max-deck-bytes  inline deck size cap (default 8 MiB)\n\
     --stats        print final serve counters to stderr on exit"
}

struct DaemonArgs {
    cfg: ServeConfig,
    socket: Option<String>,
    stats: bool,
}

fn parse_args(argv: &[String]) -> Result<DaemonArgs, String> {
    let mut cfg = ServeConfig::default();
    let mut socket = None;
    let mut stats = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let positive = |flag: &str, s: String| -> Result<usize, String> {
            match s.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("{flag} needs a positive integer")),
            }
        };
        match a.as_str() {
            "--workers" => cfg.workers = positive(a, next(a)?)?,
            "--queue-cap" => cfg.queue_cap = positive(a, next(a)?)?,
            "--session-cap" => cfg.sessions_per_worker = positive(a, next(a)?)?,
            "--pattern-cap" => cfg.patterns_per_session = positive(a, next(a)?)?,
            "--max-deck-bytes" => cfg.max_deck_bytes = positive(a, next(a)?)?,
            "--socket" => socket = Some(next(a)?),
            "--stats" => stats = true,
            "-h" | "--help" => return Err(usage().to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(DaemonArgs { cfg, socket, stats })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = Daemon::new(args.cfg);
    let served = match &args.socket {
        Some(path) => {
            eprintln!(
                "rcfitd: serving on {path} ({} workers)",
                daemon.num_workers()
            );
            serve_unix(&daemon, std::path::Path::new(path))
        }
        None => {
            eprintln!(
                "rcfitd: serving on stdin ({} workers)",
                daemon.num_workers()
            );
            serve_stdin(&daemon)
        }
    };
    let counters = daemon.shutdown();
    if args.stats {
        eprintln!("rcfitd: stats {}", counters.to_json().render());
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rcfitd: transport error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flags_parse_and_validate() {
        let a = parse_args(&argv(&[
            "--workers",
            "3",
            "--queue-cap",
            "5",
            "--session-cap",
            "2",
            "--socket",
            "/tmp/s.sock",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(a.cfg.workers, 3);
        assert_eq!(a.cfg.queue_cap, 5);
        assert_eq!(a.cfg.sessions_per_worker, 2);
        assert_eq!(a.socket.as_deref(), Some("/tmp/s.sock"));
        assert!(a.stats);
        assert!(parse_args(&argv(&["--workers", "0"])).is_err());
        assert!(parse_args(&argv(&["--frobnicate"])).is_err());
        assert!(parse_args(&argv(&["--workers"])).is_err());
    }
}
