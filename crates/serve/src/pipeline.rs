//! The shared deck pipeline: one code path from SPICE text to reduced
//! SPICE text, used by both the one-shot `rcfit` CLI and the `rcfitd`
//! daemon workers.
//!
//! Bit-identity between the daemon and the CLI is a protocol guarantee
//! (`rcfitd-v1` responses must match what `rcfit` would print for the
//! same deck and options), and the cheapest way to guarantee it is by
//! construction: both front ends call [`prepare_deck`],
//! [`reduce_prepared`] and [`render_reduced`] in that order, and neither
//! owns any numeric decision of its own. Option resolution (including
//! the historical `--dense` alias and the pivot-relief default) lives
//! here for the same reason.

use pact::{
    collapse_chains, sanitize_network, ChainCollapseSpec, CholKernel, ComponentReduction,
    CutoffSpec, EigenSelect, PactError, ReduceOptions, ReduceStrategy, Reduction, ReductionSession,
    Telemetry, Warning,
};
use pact_lanczos::LanczosConfig;
use pact_netlist::{extract_rc, parse, splice_reduced, Element, Netlist, RcNetwork};
use pact_sparse::Ordering;

/// Default relative pivot-relief floor for quasi-singular `D` diagonals;
/// see `ReduceOptions::pivot_relief`.
pub const PIVOT_RELIEF: f64 = 1e-12;

/// Default `--block-size`: target internal nodes per hierarchical leaf.
pub const DEFAULT_BLOCK_SIZE: usize = 2000;

/// Default `--max-depth`: dissection recursion budget.
pub const DEFAULT_MAX_DEPTH: usize = 16;

/// Default `--chain-tol`: relative in-band admittance error budget for
/// the series-chain collapse pre-pass.
pub const DEFAULT_CHAIN_TOL: f64 = 1e-6;

/// The `--eigen` flag / `"eigen"` option: which pole-analysis backend to
/// use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EigenArg {
    /// Let the reducer pick per sub-problem.
    Auto,
    /// The dense reference eigensolver.
    Dense,
    /// Shift-invert Lanczos (the default).
    Lanczos,
    /// The rank-revealing low-rank path with a dense fallback.
    LowRank,
}

impl EigenArg {
    /// Parses the spelling shared by `rcfit --eigen` and the daemon's
    /// `"eigen"` option.
    pub fn parse(s: &str) -> Result<EigenArg, String> {
        match s {
            "auto" => Ok(EigenArg::Auto),
            "dense" => Ok(EigenArg::Dense),
            "lanczos" => Ok(EigenArg::Lanczos),
            "lowrank" => Ok(EigenArg::LowRank),
            other => Err(format!(
                "eigen expects auto, dense, lanczos, or lowrank (got `{other}`)"
            )),
        }
    }

    /// The canonical spelling (inverse of [`EigenArg::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            EigenArg::Auto => "auto",
            EigenArg::Dense => "dense",
            EigenArg::Lanczos => "lanczos",
            EigenArg::LowRank => "lowrank",
        }
    }
}

/// The `--strategy` flag / `"strategy"` option: how the reduction is
/// executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyArg {
    /// One-shot flat PACT over the whole network.
    Flat,
    /// Nested-dissection divide-and-conquer.
    Hier,
    /// Multipoint moment expansion with congruence projection.
    Multipoint,
}

impl StrategyArg {
    /// Parses the spelling shared by `rcfit --strategy` and the daemon's
    /// `"strategy"` option.
    pub fn parse(s: &str) -> Result<StrategyArg, String> {
        match s {
            "flat" => Ok(StrategyArg::Flat),
            "hier" => Ok(StrategyArg::Hier),
            "multipoint" => Ok(StrategyArg::Multipoint),
            other => Err(format!(
                "strategy expects flat, hier, or multipoint (got `{other}`)"
            )),
        }
    }

    /// The canonical spelling (inverse of [`StrategyArg::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            StrategyArg::Flat => "flat",
            StrategyArg::Hier => "hier",
            StrategyArg::Multipoint => "multipoint",
        }
    }
}

/// Everything a deck reduction depends on beyond the deck text itself:
/// the resolved form of the `rcfit` CLI flags and of the `rcfitd`
/// request `options` object.
#[derive(Clone, Debug)]
pub struct DeckOptions {
    /// Maximum frequency of interest (Hz).
    pub f_max: f64,
    /// Relative error tolerance at `f_max`.
    pub tolerance: f64,
    /// Element-dropping tolerance for the realized reduced network.
    pub sparsify: f64,
    /// Node names forced to be ports beyond the paper's port rule.
    pub extra_ports: Vec<String>,
    /// Worker threads inside one reduction (`None` = all cores).
    pub threads: Option<usize>,
    /// Explicit eigen backend choice, if any.
    pub eigen: Option<EigenArg>,
    /// The historical `--dense` alias for the low-rank path.
    pub dense: bool,
    /// Reduce each connected component separately.
    pub components: bool,
    /// Fail on quasi-singular pivots instead of perturbing them.
    pub strict_pivots: bool,
    /// Reduce via nested-dissection blocks.
    pub hier: bool,
    /// `--block-size`: max internal nodes per hierarchical leaf.
    pub block_size: usize,
    /// `--max-depth`: dissection recursion budget.
    pub max_depth: usize,
    /// Numeric Cholesky kernel selection.
    pub chol_kernel: CholKernel,
    /// Explicit execution-strategy choice, if any (`--strategy` /
    /// `"strategy"`). `None` keeps the historical resolution: `hier`
    /// when the `--hier` alias is set, flat otherwise.
    pub strategy: Option<StrategyArg>,
    /// Explicit multipoint expansion points in hertz (`--points` /
    /// `"points"`), validated to be finite and nonzero at the edges.
    pub points: Option<Vec<f64>>,
    /// Reduce each maximal ported RC subnetwork independently
    /// (`--extract` / `"extract"`): the embedded-parasitics flow, where
    /// every RC island with its own boundary ports gets its own reduced
    /// realization and the `extract_subnets` counter reports how many.
    pub extract: bool,
    /// Run the degree-2 series-chain collapse pre-pass on the sanitized
    /// network before reduction (`--collapse-chains` /
    /// `"collapse_chains"`).
    pub collapse_chains: bool,
    /// Relative in-band error budget for the chain-collapse re-segmenting
    /// rule (`--chain-tol` / `"chain_tol"`); only meaningful with
    /// `collapse_chains`.
    pub chain_tol: f64,
}

impl Default for DeckOptions {
    fn default() -> DeckOptions {
        DeckOptions {
            f_max: 1e9,
            tolerance: 0.05,
            sparsify: 1e-9,
            extra_ports: Vec::new(),
            threads: None,
            eigen: None,
            dense: false,
            components: false,
            strict_pivots: false,
            hier: false,
            block_size: DEFAULT_BLOCK_SIZE,
            max_depth: DEFAULT_MAX_DEPTH,
            chol_kernel: CholKernel::Auto,
            strategy: None,
            points: None,
            extract: false,
            collapse_chains: false,
            chain_tol: DEFAULT_CHAIN_TOL,
        }
    }
}

impl DeckOptions {
    /// Resolves the eigen choice: an explicit `eigen` wins, bare `dense`
    /// keeps its historical low-rank meaning, and the default is
    /// shift-invert Lanczos.
    pub fn eigen_select(&self) -> EigenSelect {
        match self.eigen {
            Some(EigenArg::Auto) => EigenSelect::Auto,
            Some(EigenArg::Dense) => EigenSelect::Dense,
            Some(EigenArg::Lanczos) => EigenSelect::Lanczos(LanczosConfig::default()),
            Some(EigenArg::LowRank) => EigenSelect::LowRank,
            None if self.dense => EigenSelect::LowRank,
            None => EigenSelect::Lanczos(LanczosConfig::default()),
        }
    }

    /// The fully resolved reduction options.
    ///
    /// # Errors
    ///
    /// Fails (code `cutoff`) when `f_max`/`tolerance` do not define a
    /// valid cutoff.
    pub fn reduce_options(&self) -> Result<ReduceOptions, PactError> {
        let cutoff = CutoffSpec::new(self.f_max, self.tolerance)?;
        Ok(ReduceOptions {
            cutoff,
            eigen_backend: self.eigen_select(),
            ordering: Ordering::NestedDissection,
            dense_threshold: 400,
            threads: self.threads,
            pivot_relief: if self.strict_pivots {
                None
            } else {
                Some(PIVOT_RELIEF)
            },
            strategy: self.reduce_strategy(),
            expansion_points: self.points.clone(),
            chol_kernel: self.chol_kernel,
        })
    }

    /// Resolves the execution strategy: an explicit `strategy` wins,
    /// the bare `--hier` alias keeps its historical meaning, and the
    /// default is flat.
    pub fn reduce_strategy(&self) -> ReduceStrategy {
        match self.strategy {
            Some(StrategyArg::Multipoint) => ReduceStrategy::Multipoint {
                num_points: pact::multipoint::DEFAULT_NUM_POINTS,
            },
            Some(StrategyArg::Hier) => ReduceStrategy::Hierarchical {
                max_block: self.block_size,
                max_depth: self.max_depth,
            },
            Some(StrategyArg::Flat) => ReduceStrategy::Flat,
            None if self.hier => ReduceStrategy::Hierarchical {
                max_block: self.block_size,
                max_depth: self.max_depth,
            },
            None => ReduceStrategy::Flat,
        }
    }

    /// The chain-collapse spec resolved from `f_max` and `chain_tol`, or
    /// `None` when the pre-pass is off.
    ///
    /// # Errors
    ///
    /// Fails (code `internal`) when `chain_tol` is not positive and
    /// finite.
    pub fn collapse_spec(&self) -> Result<Option<ChainCollapseSpec>, PactError> {
        if self.collapse_chains {
            ChainCollapseSpec::new(self.f_max, self.chain_tol).map(Some)
        } else {
            Ok(None)
        }
    }

    /// A canonical string of every field [`DeckOptions::reduce_options`]
    /// depends on — the daemon's warm-session pool key. Render-only
    /// fields (`sparsify`) and deck-shaping fields (`extra_ports`,
    /// `collapse_chains`, `chain_tol`, which change the *network*, hence
    /// the topology shard, not the session) are deliberately excluded,
    /// as are execution-split fields (`components`, `extract`) that pick
    /// which networks go through the session without changing its
    /// numeric options.
    pub fn session_key(&self) -> String {
        let eigen = match self.eigen {
            Some(e) => e.name(),
            None if self.dense => "lowrank",
            None => "lanczos",
        };
        let strategy = match self.reduce_strategy() {
            ReduceStrategy::Flat => "flat".to_owned(),
            ReduceStrategy::Hierarchical {
                max_block,
                max_depth,
            } => format!("hier:{max_block}:{max_depth}"),
            ReduceStrategy::Multipoint { num_points } => {
                let points = match &self.points {
                    Some(p) => p
                        .iter()
                        .map(|f| format!("{f:e}"))
                        .collect::<Vec<_>>()
                        .join(","),
                    None => "auto".to_owned(),
                };
                format!("multipoint:{num_points}:{points}")
            }
        };
        let kernel = match self.chol_kernel {
            CholKernel::Auto => "auto",
            CholKernel::Supernodal => "supernodal",
            CholKernel::Scalar => "scalar",
        };
        format!(
            "fmax={};tol={};eigen={eigen};threads={:?};strict={};strategy={strategy};kernel={kernel}",
            self.f_max, self.tolerance, self.threads, self.strict_pivots
        )
    }
}

/// A deck carried through the front half of the pipeline: parsed,
/// flattened, extracted and sanitized, ready to be reduced.
#[derive(Clone, Debug)]
pub struct PreparedDeck {
    /// The flattened original deck (reduced elements splice into this).
    pub deck: Netlist,
    /// The sanitized RC network.
    pub network: RcNetwork,
    /// Ports in the raw extraction, before sanitization.
    pub raw_ports: usize,
    /// Internal nodes in the raw extraction.
    pub raw_internal: usize,
    /// Resistors in the raw extraction.
    pub raw_resistors: usize,
    /// Capacitors in the raw extraction.
    pub raw_capacitors: usize,
    /// Sanitizer warnings (already folded into `telemetry`; kept
    /// separately so the CLI can echo them to stderr).
    pub sanitize_warnings: Vec<Warning>,
    /// Telemetry for the phases run so far (parse/flatten/extract/
    /// sanitize) plus their warnings and counters.
    pub telemetry: Telemetry,
}

impl PreparedDeck {
    /// The FNV-1a topology fingerprint of the *sanitized* network — the
    /// daemon's shard key. Computed after sanitization so value-dependent
    /// pruning (dropped zero caps, floating internals) is reflected.
    pub fn topology_key(&self) -> u64 {
        self.network.topology_key()
    }
}

/// Runs the front half of the pipeline on deck text:
/// parse → flatten → extract → sanitize → optional chain collapse.
///
/// The chain-collapse pre-pass (when `opts.collapse_chains` is set)
/// rewrites the sanitized network *before* the topology fingerprint is
/// taken, so the daemon shards on the network that actually reduces and
/// the `chains_collapsed`/`nodes_eliminated` counters land in the
/// prepared telemetry.
///
/// # Errors
///
/// Any [`PactError`] with the usual typed codes (`parse`, `flatten`,
/// `network`, ...).
pub fn prepare_deck(text: &str, opts: &DeckOptions) -> Result<PreparedDeck, PactError> {
    let mut tel = Telemetry::new();
    let deck = tel.time("parse", || parse(text))?;
    let deck = tel.time("flatten", || deck.flatten())?;
    for (name, count) in deck.duplicate_element_names() {
        tel.counters.duplicate_element_names += 1;
        tel.warn(Warning::DuplicateElementName { name, count });
    }
    let port_refs: Vec<&str> = opts.extra_ports.iter().map(String::as_str).collect();
    let ex = tel.time("extract", || extract_rc(&deck, &port_refs))?;
    let raw_ports = ex.network.num_ports;
    let raw_internal = ex.network.num_internal();
    let raw_resistors = ex.network.resistors.len();
    let raw_capacitors = ex.network.capacitors.len();
    let sanitized = tel.time("sanitize", || sanitize_network(&ex.network))?;
    sanitized.record(&mut tel);
    let network = match opts.collapse_spec()? {
        Some(spec) => {
            let cc = tel.time("collapse_chains", || {
                collapse_chains(&sanitized.network, &spec)
            });
            tel.counters.chains_collapsed += cc.chains_collapsed;
            tel.counters.nodes_eliminated += cc.nodes_eliminated;
            cc.network
        }
        None => sanitized.network,
    };
    Ok(PreparedDeck {
        deck,
        network,
        raw_ports,
        raw_internal,
        raw_resistors,
        raw_capacitors,
        sanitize_warnings: sanitized.warnings,
        telemetry: tel,
    })
}

/// The back half's result: a whole-network or per-component reduction.
#[derive(Clone, Debug)]
pub enum ReducedDeck {
    /// One reduction of the whole connected network (boxed: a
    /// `Reduction` is large relative to the per-component variant).
    Whole(Box<Reduction>),
    /// Independent reductions of each connected component.
    Components {
        /// The per-component reductions.
        reduction: ComponentReduction,
        /// Ported RC subnetworks counted by the embedded-parasitics
        /// flow; zero under bare `components` (same execution split,
        /// but the caller did not ask for extraction semantics).
        extract_subnets: u64,
    },
}

impl ReducedDeck {
    /// The reduction's telemetry (aggregated across components).
    pub fn telemetry(&self) -> Telemetry {
        match self {
            ReducedDeck::Whole(r) => r.telemetry.clone(),
            ReducedDeck::Components {
                reduction,
                extract_subnets,
            } => {
                let mut tel = reduction.telemetry();
                tel.counters.extract_subnets = *extract_subnets;
                tel
            }
        }
    }

    /// Poles retained by the reduced model(s).
    pub fn num_poles(&self) -> usize {
        match self {
            ReducedDeck::Whole(r) => r.model.num_poles(),
            ReducedDeck::Components { reduction, .. } => reduction.num_poles(),
        }
    }

    /// SPICE elements realizing the reduced network.
    pub fn to_netlist_elements(&self, prefix: &str, sparsify_tol: f64) -> Vec<Element> {
        match self {
            ReducedDeck::Whole(r) => r.model.to_netlist_elements(prefix, sparsify_tol),
            ReducedDeck::Components { reduction, .. } => {
                reduction.to_netlist_elements(prefix, sparsify_tol)
            }
        }
    }
}

/// Reduces a prepared deck inside `session`: whole-network by default,
/// or per ported RC subnetwork when `opts.components` or `opts.extract`
/// is set (the two share the execution split; `extract` additionally
/// reports the subnetwork count through the `extract_subnets` counter).
///
/// # Errors
///
/// Reduction failures, remapped to node/element attribution on the
/// prepared network.
pub fn reduce_prepared(
    prep: &PreparedDeck,
    session: &mut ReductionSession,
    opts: &DeckOptions,
) -> Result<ReducedDeck, PactError> {
    let net = &prep.network;
    if opts.components || opts.extract {
        session
            .reduce_network_components(net)
            .map(|reduction| {
                let extract_subnets = if opts.extract {
                    reduction.reductions.len() as u64
                } else {
                    0
                };
                ReducedDeck::Components {
                    reduction,
                    extract_subnets,
                }
            })
            .map_err(|e| PactError::from_reduce(e, net))
    } else {
        session
            .reduce_network(net)
            .map(|r| ReducedDeck::Whole(Box::new(r)))
            .map_err(|e| PactError::from_reduce(e, net))
    }
}

/// Realizes the reduced model as SPICE elements, splices them into the
/// original deck and renders the result. Returns the rendered deck text
/// and the number of realized elements; the `emit` phase is recorded on
/// `tel`.
pub fn render_reduced(
    prep: &PreparedDeck,
    reduced: &ReducedDeck,
    prefix: &str,
    sparsify: f64,
    tel: &mut Telemetry,
) -> (String, usize) {
    let elements = reduced.to_netlist_elements(prefix, sparsify);
    let count = elements.len();
    let rendered = tel.time("emit", || splice_reduced(&prep.deck, elements).to_string());
    (rendered, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = "* ladder\n\
        R1 in n1 1k\n\
        R2 n1 out 1k\n\
        C1 n1 0 1p\n\
        C2 out 0 1p\n\
        V1 in 0 1\n\
        RL out 0 10k\n\
        .end\n";

    #[test]
    fn pipeline_round_trips_a_deck() {
        let opts = DeckOptions::default();
        let prep = prepare_deck(DECK, &opts).unwrap();
        assert_eq!(
            prep.network.num_ports, 1,
            "only `in` touches a non-RC device"
        );
        assert_eq!(prep.raw_resistors, 3);
        assert_eq!(prep.raw_capacitors, 2);
        let mut session = ReductionSession::new(opts.reduce_options().unwrap());
        let red = reduce_prepared(&prep, &mut session, &opts).unwrap();
        let mut tel = prep.telemetry.clone();
        let (text, n) = render_reduced(&prep, &red, "rcfit", opts.sparsify, &mut tel);
        assert!(n > 0);
        assert!(text.contains("V1"), "non-RC elements survive the splice");
        assert!(tel.phases.iter().any(|p| p.name == "emit"));
    }

    #[test]
    fn prepared_decks_same_topology_share_a_shard_key() {
        let opts = DeckOptions::default();
        let prep = prepare_deck(DECK, &opts).unwrap();
        let scaled = DECK.replace("1k", "2k").replace("1p", "3p");
        let prep2 = prepare_deck(&scaled, &opts).unwrap();
        assert_eq!(prep.topology_key(), prep2.topology_key());
        let rewired = DECK.replace("C2 out 0 1p", "C2 n1 out 1p");
        let prep3 = prepare_deck(&rewired, &opts).unwrap();
        assert_ne!(prep.topology_key(), prep3.topology_key());
    }

    /// A driven RC line long enough for the chain-collapse pre-pass to
    /// re-segment at a loose tolerance.
    fn line_deck(segments: usize) -> String {
        let mut s = String::from("* line\nVdrv in 0 1\n");
        let mut prev = "in".to_owned();
        for i in 0..segments {
            let next = if i + 1 == segments {
                "out".to_owned()
            } else {
                format!("n{}", i + 1)
            };
            s.push_str(&format!("R{i} {prev} {next} 10\n"));
            s.push_str(&format!("C{i} {next} 0 1p\n"));
            prev = next;
        }
        s.push_str("RL out 0 1k\n.end\n");
        s
    }

    #[test]
    fn collapse_chains_option_shrinks_the_prepared_network() {
        let deck = line_deck(120);
        let plain = DeckOptions::default();
        // 120 segments of 10 Ω / 1 pF: τ = 1.44e-7 s, so at 1 MHz
        // ωτ ≈ 0.9 and the 1e-3 budget re-segments onto ~23 nodes.
        let collapsing = DeckOptions {
            collapse_chains: true,
            chain_tol: 1e-3,
            f_max: 1e6,
            ..DeckOptions::default()
        };
        let before = prepare_deck(&deck, &plain).unwrap();
        let after = prepare_deck(&deck, &collapsing).unwrap();
        assert!(
            after.network.num_internal() < before.network.num_internal(),
            "collapse removed internal nodes: {} -> {}",
            before.network.num_internal(),
            after.network.num_internal()
        );
        assert!(after.telemetry.counters.chains_collapsed >= 1);
        assert!(after.telemetry.counters.nodes_eliminated > 0);
        assert_ne!(
            before.topology_key(),
            after.topology_key(),
            "the shard key follows the collapsed topology"
        );
        assert_eq!(before.telemetry.counters.chains_collapsed, 0);
    }

    #[test]
    fn bad_chain_tol_is_a_typed_error() {
        let opts = DeckOptions {
            collapse_chains: true,
            chain_tol: 0.0,
            ..DeckOptions::default()
        };
        let e = prepare_deck(DECK, &opts).unwrap_err();
        assert_eq!(e.code(), "internal");
        // With the pre-pass off the same tolerance is never inspected.
        let off = DeckOptions {
            chain_tol: 0.0,
            ..DeckOptions::default()
        };
        assert!(prepare_deck(DECK, &off).is_ok());
    }

    #[test]
    fn extract_option_counts_subnetworks() {
        // Two RC islands separated by a voltage source: each gets its
        // own reduced realization under `extract`.
        let deck = "* two islands\n\
            R1 a m1 1k\nC1 m1 0 1p\nR2 m1 b 1k\n\
            V1 b c 1\n\
            R3 c m2 2k\nC2 m2 0 2p\nR4 m2 d 2k\n\
            Vd a 0 1\nRL d 0 1k\n.end\n";
        let opts = DeckOptions {
            extract: true,
            ..DeckOptions::default()
        };
        let prep = prepare_deck(deck, &opts).unwrap();
        let mut session = ReductionSession::new(opts.reduce_options().unwrap());
        let red = reduce_prepared(&prep, &mut session, &opts).unwrap();
        match &red {
            ReducedDeck::Components {
                reduction,
                extract_subnets,
            } => {
                assert_eq!(reduction.reductions.len(), 2, "two RC islands");
                assert_eq!(*extract_subnets, 2);
            }
            ReducedDeck::Whole(_) => panic!("extract must split per subnetwork"),
        }
        assert_eq!(red.telemetry().counters.extract_subnets, 2);

        // Bare `components` takes the same split without claiming the
        // extraction counter.
        let comp = DeckOptions {
            components: true,
            ..DeckOptions::default()
        };
        let red = reduce_prepared(&prep, &mut session, &comp).unwrap();
        assert_eq!(red.telemetry().counters.extract_subnets, 0);
    }

    #[test]
    fn session_key_tracks_numeric_options_only() {
        let a = DeckOptions::default();
        let b = DeckOptions {
            sparsify: 1e-3,
            extra_ports: vec!["n1".to_owned()],
            ..DeckOptions::default()
        };
        assert_eq!(
            a.session_key(),
            b.session_key(),
            "render-only fields excluded"
        );
        let c = DeckOptions {
            f_max: 2e9,
            ..DeckOptions::default()
        };
        assert_ne!(a.session_key(), c.session_key());
        let d = DeckOptions {
            hier: true,
            ..DeckOptions::default()
        };
        assert_ne!(a.session_key(), d.session_key());
        let e = DeckOptions {
            extract: true,
            collapse_chains: true,
            chain_tol: 1e-3,
            ..DeckOptions::default()
        };
        assert_eq!(
            a.session_key(),
            e.session_key(),
            "deck-shaping and execution-split fields excluded"
        );
    }

    #[test]
    fn strategy_arg_round_trips_and_rejects_unknowns() {
        for s in ["flat", "hier", "multipoint"] {
            assert_eq!(StrategyArg::parse(s).unwrap().name(), s);
        }
        let err = StrategyArg::parse("quadtree").unwrap_err();
        assert!(err.contains("quadtree"), "error names the bad value: {err}");
    }

    #[test]
    fn explicit_strategy_overrides_the_hier_alias() {
        let o = DeckOptions {
            hier: true,
            strategy: Some(StrategyArg::Flat),
            ..DeckOptions::default()
        };
        assert!(matches!(o.reduce_strategy(), ReduceStrategy::Flat));
        let m = DeckOptions {
            strategy: Some(StrategyArg::Multipoint),
            points: Some(vec![5e8, -2e9]),
            ..DeckOptions::default()
        };
        assert!(matches!(
            m.reduce_strategy(),
            ReduceStrategy::Multipoint { .. }
        ));
        let opts = m.reduce_options().unwrap();
        assert_eq!(opts.expansion_points.as_deref(), Some(&[5e8, -2e9][..]));
    }

    #[test]
    fn session_key_tracks_strategy_and_points() {
        let a = DeckOptions::default();
        let m = DeckOptions {
            strategy: Some(StrategyArg::Multipoint),
            ..DeckOptions::default()
        };
        assert_ne!(a.session_key(), m.session_key());
        let mp = DeckOptions {
            points: Some(vec![1e9]),
            ..m.clone()
        };
        assert_ne!(m.session_key(), mp.session_key());
        let hier_alias = DeckOptions {
            hier: true,
            ..DeckOptions::default()
        };
        let hier_explicit = DeckOptions {
            strategy: Some(StrategyArg::Hier),
            ..DeckOptions::default()
        };
        assert_eq!(
            hier_alias.session_key(),
            hier_explicit.session_key(),
            "alias and explicit spelling resolve to the same session"
        );
    }

    #[test]
    fn dense_alias_and_eigen_override_resolve_like_the_cli() {
        let mut o = DeckOptions::default();
        assert!(matches!(o.eigen_select(), EigenSelect::Lanczos(_)));
        o.dense = true;
        assert!(matches!(o.eigen_select(), EigenSelect::LowRank));
        o.eigen = Some(EigenArg::Dense);
        assert!(matches!(o.eigen_select(), EigenSelect::Dense));
    }
}
