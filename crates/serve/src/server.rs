//! The daemon core: topology-sharded dispatch, per-worker warm session
//! pools, bounded queues with typed shedding, and serve counters.
//!
//! ```text
//!            submit(line)                    worker k
//!   client ──────────────▶ dispatcher ──┬──▶ [bounded queue] ──▶ warm
//!                          parse/prepare│        try_send        sessions
//!                          shard = key%W└──▶ overloaded when full  (LRU)
//! ```
//!
//! The dispatcher runs the *cheap, deterministic* front half of the
//! pipeline (parse → flatten → extract → sanitize) inline, because the
//! shard key is the FNV-1a fingerprint of the sanitized topology — it
//! cannot be known before sanitization. The expensive back half
//! (ordering, factorization, eigen analysis) runs on the shard's worker,
//! which is where warmth lives: same-topology decks always land on the
//! same worker and hit its cached symbolic analysis.
//!
//! Workers never share sessions, so [`pact::ReductionSession`] needs
//! `Send` but not `Sync` — each worker owns its scratch exclusively
//! (pinned by the compile-time assertions in `pact::session`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use pact::json::Value;
use pact::{LruCache, ReduceOptions, ReductionSession};

use crate::pipeline::{prepare_deck, reduce_prepared, render_reduced, DeckOptions, PreparedDeck};
use crate::protocol::{
    self, error_response, parse_request, reduce_response, shutdown_response, stats_response,
    DeckSource, Op, ProtocolError,
};

/// Daemon sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads (shards).
    pub workers: usize,
    /// Bounded queue slots per worker; a full queue sheds.
    pub queue_cap: usize,
    /// Warm [`ReductionSession`]s kept per worker (LRU beyond this).
    pub sessions_per_worker: usize,
    /// Symbolic-analysis patterns cached inside each session.
    pub patterns_per_session: usize,
    /// Cap on inline deck text per request (bytes).
    pub max_deck_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ServeConfig {
            workers,
            queue_cap: 64,
            sessions_per_worker: 8,
            patterns_per_session: 64,
            max_deck_bytes: protocol::DEFAULT_MAX_DECK_BYTES,
        }
    }
}

/// Monotonic serve counters, shared across dispatcher and workers.
///
/// All loads/stores are `Relaxed`: these are statistics, not
/// synchronization — cross-thread ordering is established by the
/// channels, and the final read happens after worker joins.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Request lines accepted by the dispatcher.
    pub requests: AtomicU64,
    /// Successful reduce responses.
    pub ok: AtomicU64,
    /// Typed error responses (protocol or reduction failures).
    pub errors: AtomicU64,
    /// Requests shed with `overloaded` because a shard's queue was full.
    pub shed: AtomicU64,
    /// Reductions that fully reused a warm symbolic analysis.
    pub session_hits: AtomicU64,
    /// Reductions that had to run at least one fresh symbolic analysis.
    pub session_misses: AtomicU64,
    /// Warm sessions evicted from a worker's LRU pool.
    pub sessions_evicted: AtomicU64,
    /// Worker panics caught (the worker survives; its pool is reset).
    pub worker_panics: AtomicU64,
    /// Client connections that died with responses still in flight.
    pub disconnects: AtomicU64,
    /// Highest queue depth observed on any single worker.
    pub peak_queue_depth: AtomicU64,
}

impl ServeCounters {
    fn bump(c: &AtomicU64) {
        c.fetch_add(1, AtomicOrdering::Relaxed);
    }

    fn bump_peak(&self, depth: u64) {
        self.peak_queue_depth
            .fetch_max(depth, AtomicOrdering::Relaxed);
    }

    /// A deterministic JSON object of the current counter values.
    pub fn to_json(&self) -> Value {
        let g = |c: &AtomicU64| Value::num(c.load(AtomicOrdering::Relaxed) as f64);
        Value::obj(vec![
            ("requests".to_owned(), g(&self.requests)),
            ("ok".to_owned(), g(&self.ok)),
            ("errors".to_owned(), g(&self.errors)),
            ("shed".to_owned(), g(&self.shed)),
            ("session_hits".to_owned(), g(&self.session_hits)),
            ("session_misses".to_owned(), g(&self.session_misses)),
            ("sessions_evicted".to_owned(), g(&self.sessions_evicted)),
            ("worker_panics".to_owned(), g(&self.worker_panics)),
            ("disconnects".to_owned(), g(&self.disconnects)),
            ("peak_queue_depth".to_owned(), g(&self.peak_queue_depth)),
        ])
    }
}

/// Where a response line goes: stdout, a socket, or a test collector.
/// Called exactly once per request, from the dispatcher (rejects, stats,
/// sheds) or from a worker (reduce results).
pub type ReplySink = Arc<dyn Fn(&str) + Send + Sync>;

/// One unit of work handed to a shard.
struct Job {
    id: Value,
    opts: DeckOptions,
    ropts: ReduceOptions,
    prep: PreparedDeck,
    /// Jobs already queued ahead of this one at enqueue time.
    queue_depth: u64,
    reply: ReplySink,
}

/// What [`Daemon::submit`] tells the transport loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submission {
    /// Keep reading requests.
    Handled,
    /// A shutdown was acknowledged: stop reading, drain, exit.
    Shutdown,
}

struct WorkerHandle {
    tx: SyncSender<Job>,
    depth: Arc<AtomicU64>,
    handle: JoinHandle<()>,
}

/// The sharded reduction daemon. Transport-agnostic: feed it request
/// lines via [`Daemon::submit`] from any front end ([`crate::io`] wires
/// stdin and Unix sockets).
pub struct Daemon {
    cfg: ServeConfig,
    counters: Arc<ServeCounters>,
    workers: Vec<WorkerHandle>,
}

// Clients submit from many transport threads at once; the dispatcher
// must be shareable by reference. Workers own their sessions privately,
// so only the handle side needs `Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Daemon>();
    assert_send_sync::<ServeCounters>();
};

impl Daemon {
    /// Spawns the worker pool.
    pub fn new(cfg: ServeConfig) -> Daemon {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap.max(1),
            sessions_per_worker: cfg.sessions_per_worker.max(1),
            patterns_per_session: cfg.patterns_per_session.max(1),
            ..cfg
        };
        let counters = Arc::new(ServeCounters::default());
        let workers = (0..cfg.workers)
            .map(|w| {
                let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(cfg.queue_cap);
                let depth = Arc::new(AtomicU64::new(0));
                let worker_depth = Arc::clone(&depth);
                let worker_counters = Arc::clone(&counters);
                let handle = std::thread::Builder::new()
                    .name(format!("rcfitd-worker-{w}"))
                    .spawn(move || worker_loop(w, rx, worker_depth, worker_counters, cfg))
                    .expect("spawn rcfitd worker");
                WorkerHandle { tx, depth, handle }
            })
            .collect();
        Daemon {
            cfg,
            counters,
            workers,
        }
    }

    /// Number of shards.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<ServeCounters> {
        &self.counters
    }

    /// Current per-worker queue depths.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.workers
            .iter()
            .map(|w| w.depth.load(AtomicOrdering::Relaxed))
            .collect()
    }

    /// Handles one request line: parses, validates, and either answers
    /// directly (errors, stats, shutdown) or prepares the deck and
    /// enqueues it on its topology shard. Exactly one response line is
    /// sent through `reply` per non-empty line (possibly later, from a
    /// worker).
    pub fn submit(&self, line: &str, reply: &ReplySink) -> Submission {
        if line.trim().is_empty() {
            return Submission::Handled;
        }
        ServeCounters::bump(&self.counters.requests);
        let req = match parse_request(line, self.cfg.max_deck_bytes) {
            Ok(req) => req,
            Err(ProtocolError { id, code, message }) => {
                ServeCounters::bump(&self.counters.errors);
                reply(&error_response(&id, code, &message));
                return Submission::Handled;
            }
        };
        match req.op {
            Op::Stats => {
                let depths: Vec<Value> = self
                    .queue_depths()
                    .into_iter()
                    .map(|d| Value::num(d as f64))
                    .collect();
                let stats = Value::obj(vec![
                    ("workers".to_owned(), Value::num(self.num_workers() as f64)),
                    ("queue_depths".to_owned(), Value::Arr(depths)),
                    ("counters".to_owned(), self.counters.to_json()),
                ]);
                reply(&stats_response(&req.id, stats));
                Submission::Handled
            }
            Op::Shutdown => {
                reply(&shutdown_response(&req.id));
                Submission::Shutdown
            }
            Op::Reduce => {
                self.submit_reduce(req, reply);
                Submission::Handled
            }
        }
    }

    fn submit_reduce(&self, req: crate::protocol::Request, reply: &ReplySink) {
        let id = req.id;
        let fail = |code: &str, message: &str| {
            ServeCounters::bump(&self.counters.errors);
            reply(&error_response(&id, code, message));
        };
        let text = match req.source.expect("reduce requests carry a source") {
            DeckSource::Inline(text) => text,
            DeckSource::Path(path) => match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => return fail("io", &format!("{path}: {e}")),
            },
        };
        let ropts = match req.options.reduce_options() {
            Ok(o) => o,
            Err(e) => return fail(e.code(), &e.to_string()),
        };
        // The front half runs inline: the shard key is the fingerprint
        // of the *sanitized* topology, so routing needs it.
        let prep = match prepare_deck(&text, &req.options) {
            Ok(p) => p,
            Err(e) => return fail(e.code(), &e.to_string()),
        };
        let shard = (prep.topology_key() % self.workers.len() as u64) as usize;
        let worker = &self.workers[shard];
        // Count the slot *before* try_send: the worker decrements after
        // dequeue, so incrementing afterwards could race below zero.
        let depth = worker.depth.fetch_add(1, AtomicOrdering::Relaxed) + 1;
        self.counters.bump_peak(depth);
        let job = Job {
            id: id.clone(),
            opts: req.options,
            ropts,
            prep,
            queue_depth: depth - 1,
            reply: Arc::clone(reply),
        };
        match worker.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                worker.depth.fetch_sub(1, AtomicOrdering::Relaxed);
                ServeCounters::bump(&self.counters.shed);
                reply(&error_response(
                    &id,
                    "overloaded",
                    &format!(
                        "worker {shard} queue is full ({} queued); retry later",
                        self.cfg.queue_cap
                    ),
                ));
            }
            Err(TrySendError::Disconnected(_)) => {
                worker.depth.fetch_sub(1, AtomicOrdering::Relaxed);
                fail("internal", &format!("worker {shard} is gone"));
            }
        }
    }

    /// Drains every queue (jobs already accepted still get responses)
    /// and joins the workers. Returns the final counters.
    pub fn shutdown(self) -> Arc<ServeCounters> {
        let Daemon {
            counters, workers, ..
        } = self;
        for w in workers {
            drop(w.tx); // close the queue: the worker drains, then exits
            let _ = w.handle.join();
        }
        counters
    }
}

fn worker_loop(
    worker_id: usize,
    rx: Receiver<Job>,
    depth: Arc<AtomicU64>,
    counters: Arc<ServeCounters>,
    cfg: ServeConfig,
) {
    let mut sessions: LruCache<String, ReductionSession> = LruCache::new(cfg.sessions_per_worker);
    while let Ok(job) = rx.recv() {
        depth.fetch_sub(1, AtomicOrdering::Relaxed);
        let Job {
            id,
            opts,
            ropts,
            prep,
            queue_depth,
            reply,
        } = job;
        let line = match catch_unwind(AssertUnwindSafe(|| {
            run_job(
                worker_id,
                &mut sessions,
                &cfg,
                &counters,
                &id,
                &opts,
                ropts,
                prep,
                queue_depth,
            )
        })) {
            Ok(line) => line,
            Err(_) => {
                // A panic may have left a session mid-mutation; reset the
                // pool so later requests never see poisoned warm state.
                ServeCounters::bump(&counters.worker_panics);
                ServeCounters::bump(&counters.errors);
                sessions = LruCache::new(cfg.sessions_per_worker);
                error_response(
                    &id,
                    "internal",
                    "worker panicked during reduction; its warm sessions were reset",
                )
            }
        };
        reply(&line);
    }
}

/// Runs one reduce job on its shard's warm session and renders the
/// response line.
#[allow(clippy::too_many_arguments)]
fn run_job(
    worker_id: usize,
    sessions: &mut LruCache<String, ReductionSession>,
    cfg: &ServeConfig,
    counters: &ServeCounters,
    id: &Value,
    opts: &DeckOptions,
    ropts: ReduceOptions,
    prep: PreparedDeck,
    queue_depth: u64,
) -> String {
    let key = opts.session_key();
    if sessions.peek(&key).is_none() {
        let fresh = ReductionSession::with_capacity(ropts, cfg.patterns_per_session);
        if sessions.insert(key.clone(), fresh).is_some() {
            ServeCounters::bump(&counters.sessions_evicted);
        }
    }
    let session = sessions
        .get_mut(&key)
        .expect("session was just ensured present");
    match reduce_prepared(&prep, session, opts) {
        Err(e) => {
            ServeCounters::bump(&counters.errors);
            error_response(id, e.code(), &e.to_string())
        }
        Ok(red) => {
            let rtel = red.telemetry();
            // Fully warm means no fresh symbolic analysis anywhere in
            // the request — refactorizations only.
            let hit = rtel.counters.factorizations == 0 && rtel.counters.refactorizations > 0;
            ServeCounters::bump(if hit {
                &counters.session_hits
            } else {
                &counters.session_misses
            });
            let mut tel = prep.telemetry.clone();
            tel.absorb(&rtel);
            let (deck_text, _elements) =
                render_reduced(&prep, &red, "rcfit", opts.sparsify, &mut tel);
            ServeCounters::bump(&counters.ok);
            reduce_response(id, worker_id, hit, queue_depth, &deck_text, tel.to_json())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A sink that collects response lines for assertions.
    fn collector() -> (ReplySink, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let sink: ReplySink = Arc::new(move |line: &str| {
            sink_lines.lock().unwrap().push(line.to_owned());
        });
        (sink, lines)
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 4,
            sessions_per_worker: 2,
            patterns_per_session: 8,
            max_deck_bytes: 1 << 20,
        }
    }

    const DECK: &str = "* ladder\\nR1 in n1 1k\\nR2 n1 out 1k\\nC1 n1 0 1p\\nC2 out 0 1p\\nV1 in 0 1\\nRL out 0 10k\\n.end\\n";

    fn reduce_line(id: u32) -> String {
        format!(r#"{{"id":{id},"deck":"{DECK}"}}"#)
    }

    #[test]
    fn reduce_then_stats_then_shutdown() {
        let daemon = Daemon::new(test_config());
        let (sink, lines) = collector();
        assert_eq!(daemon.submit(&reduce_line(1), &sink), Submission::Handled);
        assert_eq!(daemon.submit(&reduce_line(2), &sink), Submission::Handled);
        assert_eq!(
            daemon.submit(r#"{"id":"bye","op":"shutdown"}"#, &sink),
            Submission::Shutdown
        );
        let counters = daemon.shutdown();
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 3, "every request got exactly one response");
        // Worker responses may land after the shutdown ack; find by id.
        let r1 = lines
            .iter()
            .map(|l| Value::parse(l).unwrap())
            .find(|d| d.get("id") == Some(&Value::num(1.0)))
            .expect("response for id 1");
        assert_eq!(r1.get("ok"), Some(&Value::Bool(true)));
        assert!(r1.get("deck").unwrap().as_str().unwrap().contains("V1"));
        assert_eq!(counters.ok.load(AtomicOrdering::Relaxed), 2);
        assert_eq!(counters.requests.load(AtomicOrdering::Relaxed), 3);
        // Same deck twice: the second reduction reuses the warm analysis.
        assert_eq!(counters.session_hits.load(AtomicOrdering::Relaxed), 1);
        assert_eq!(counters.session_misses.load(AtomicOrdering::Relaxed), 1);
    }

    #[test]
    fn protocol_errors_are_answered_inline() {
        let daemon = Daemon::new(test_config());
        let (sink, lines) = collector();
        daemon.submit("{not json", &sink);
        daemon.submit(r#"{"id":9,"options":{"bogus":1},"deck":"x"}"#, &sink);
        let lines_now = lines.lock().unwrap().clone();
        assert_eq!(lines_now.len(), 2, "rejects answered without a worker");
        let codes: Vec<String> = lines_now
            .iter()
            .map(|l| {
                Value::parse(l)
                    .unwrap()
                    .get("error")
                    .unwrap()
                    .get("code")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_owned()
            })
            .collect();
        assert_eq!(codes, vec!["bad_request", "unknown_option"]);
        let counters = daemon.shutdown();
        assert_eq!(counters.errors.load(AtomicOrdering::Relaxed), 2);
    }

    #[test]
    fn empty_lines_are_skipped_without_response() {
        let daemon = Daemon::new(test_config());
        let (sink, lines) = collector();
        assert_eq!(daemon.submit("   ", &sink), Submission::Handled);
        assert!(lines.lock().unwrap().is_empty());
        let counters = daemon.shutdown();
        assert_eq!(counters.requests.load(AtomicOrdering::Relaxed), 0);
    }
}
