//! Reduction as a service: the `rcfitd` daemon and the deck pipeline it
//! shares with the one-shot `rcfit` CLI.
//!
//! The daemon is a *scheduling* layer, never a numerics layer. Every
//! request runs through exactly the same
//! parse → flatten → extract → sanitize → reduce → splice pipeline as
//! `rcfit` ([`pipeline`]), inside a warm [`pact::ReductionSession`], so a
//! deck reduced over the wire is bit-identical to the same deck reduced
//! by the CLI. What the daemon adds is placement and flow control:
//!
//! - **Sharding.** Requests are routed to a fixed pool of worker threads
//!   by the FNV-1a topology fingerprint of the sanitized network
//!   (`RcNetwork::topology_key`), so same-topology decks land on the same
//!   worker and reuse its warm symbolic-analysis cache instead of
//!   re-running fill-reducing ordering per deck.
//! - **Warm session pools.** Each worker owns a bounded LRU
//!   ([`pact::LruCache`]) of [`pact::ReductionSession`]s keyed by the
//!   canonical reduction-option string, with the cap-bounded symbolic
//!   cache inside each session.
//! - **Backpressure.** Per-worker queues are bounded; when a shard's
//!   queue is full the daemon answers a typed `overloaded` error
//!   immediately instead of buffering without bound, and drains cleanly
//!   on shutdown.
//!
//! The wire protocol (`rcfitd-v1`, [`protocol`]) is JSON Lines over
//! stdin/stdout or a Unix domain socket: one request object per line in,
//! one response object per line out, with per-request telemetry
//! (`rcfit-telemetry-v1`) embedded in successful responses.

pub mod io;
pub mod pipeline;
pub mod protocol;
pub mod server;

pub use io::{serve_lines, serve_stdin, serve_unix};
pub use pipeline::{
    prepare_deck, reduce_prepared, render_reduced, DeckOptions, EigenArg, PreparedDeck,
    ReducedDeck, StrategyArg, DEFAULT_BLOCK_SIZE, DEFAULT_CHAIN_TOL, DEFAULT_MAX_DEPTH,
    PIVOT_RELIEF,
};
pub use protocol::{parse_request, DeckSource, Op, ProtocolError, Request, SCHEMA};
pub use server::{Daemon, ReplySink, ServeConfig, ServeCounters, Submission};
