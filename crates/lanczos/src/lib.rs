//! # pact-lanczos
//!
//! Symmetric Lanczos eigensolver with **selective orthogonalization**
//! (LASO, Parlett & Scott 1979) — the eigensolver the PACT paper uses for
//! its second congruence transform.
//!
//! PACT needs only the eigenvalues of the transformed internal
//! susceptance matrix `E'` that exceed the cutoff `λ_c` (poles below the
//! cutoff frequency) together with their eigenvectors. These are the
//! *largest* eigenvalues, exactly where Lanczos converges first, and `E'`
//! is only ever touched through matrix–vector products — here abstracted
//! as [`SymOp`] so the caller can apply `L⁻¹ E L⁻ᵀ x` via sparse
//! triangular solves without forming `E'`.
//!
//! Three orthogonalization policies are provided (they are an explicit
//! ablation axis of the reproduction):
//!
//! - [`Reorthogonalization::Selective`] — LASO: new Lanczos vectors are
//!   orthogonalized against converged Ritz vectors only;
//! - [`Reorthogonalization::Full`] — classical full reorthogonalization
//!   (accurate, `O(k²·n)` work);
//! - [`Reorthogonalization::None`] — the raw three-term recursion, which
//!   loses orthogonality and can produce duplicate/spurious Ritz values.
//!
//! ```
//! use pact_lanczos::{eigs_above, LanczosConfig, SymOp};
//! use pact_sparse::DMat;
//!
//! let a = DMat::from_diag(&[10.0, 5.0, 1.0, 0.1, 0.01]);
//! let pairs = eigs_above(&a, 0.5, &LanczosConfig::default())?;
//! let mut vals: Vec<f64> = pairs.iter().map(|p| p.value).collect();
//! vals.sort_by(|x, y| y.partial_cmp(x).unwrap());
//! assert_eq!(vals.len(), 3); // 10, 5, 1 exceed the 0.5 cutoff
//! # Ok::<(), pact_lanczos::LanczosError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pact_sparse::{axpy, dot, eig_tridiagonal, norm2, CsrMat, DMat, ParCtx, XorShiftRng};

/// A symmetric linear operator presented only through matrix–vector
/// products, so large operators (like PACT's `L⁻¹ E L⁻ᵀ`) never need to
/// be formed explicitly.
pub trait SymOp {
    /// Operator dimension `n` (square).
    fn dim(&self) -> usize;
    /// Computes `y = A x`. Implementations must be symmetric:
    /// `xᵀ(Ay) == yᵀ(Ax)`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl SymOp for CsrMat {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.nrows(), self.ncols());
        self.nrows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

impl SymOp for DMat<f64> {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.nrows(), self.ncols());
        self.nrows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec(x));
    }
}

/// Orthogonalization policy for the Lanczos recursion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Reorthogonalization {
    /// No reorthogonalization (fast, loses orthogonality).
    None,
    /// LASO: orthogonalize against converged Ritz vectors when the
    /// Parlett–Scott bound detects orthogonality loss.
    #[default]
    Selective,
    /// Orthogonalize against every previous Lanczos vector (oracle).
    Full,
}

/// Configuration for [`eigs_above`].
#[derive(Clone, Debug)]
pub struct LanczosConfig {
    /// Orthogonalization policy.
    pub reorth: Reorthogonalization,
    /// Relative residual bound below which a Ritz pair counts as
    /// converged: `β_k |z_kj| ≤ conv_tol · ‖T‖`.
    pub conv_tol: f64,
    /// Hard cap on iterations per restart (defaults to the operator
    /// dimension).
    pub max_iters: Option<usize>,
    /// Maximum number of deflated restarts (captures repeated
    /// eigenvalues, which a single Krylov sequence cannot).
    pub max_restarts: usize,
    /// How often (in iterations) the tridiagonal eigenproblem is solved to
    /// test convergence.
    pub check_every: usize,
    /// RNG seed for the random start vector (deterministic by default).
    pub seed: u64,
    /// Worker threads for the reorthogonalization dot-product sweeps
    /// (`None` ⇒ run serially). Results are bit-identical for every
    /// thread count: the sweeps are classical Gram–Schmidt passes whose
    /// projections are all taken against the same vector, so each dot
    /// product is computed by exactly one worker with the serial
    /// instruction sequence and applied in basis order.
    pub threads: Option<usize>,
}

impl Default for LanczosConfig {
    fn default() -> Self {
        LanczosConfig {
            reorth: Reorthogonalization::Selective,
            conv_tol: 1e-10,
            max_iters: None,
            max_restarts: 8,
            check_every: 5,
            seed: 0x9E37_79B9_7F4A_7C15,
            threads: None,
        }
    }
}

/// A converged Ritz pair: approximate eigenvalue, eigenvector and the
/// residual bound `β_k |z_kj|` that certified convergence.
#[derive(Clone, Debug)]
pub struct RitzPair {
    /// Approximate eigenvalue.
    pub value: f64,
    /// Approximate unit eigenvector.
    pub vector: Vec<f64>,
    /// Residual bound at convergence (`‖A u − λ u‖₂ ≤` this, in exact
    /// arithmetic).
    pub residual_bound: f64,
}

/// Counters describing the work a [`eigs_above`] call performed; these
/// feed the paper's Section-4 complexity comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LanczosStats {
    /// Total operator applications.
    pub matvecs: usize,
    /// Total Lanczos iterations across restarts.
    pub iterations: usize,
    /// Number of deflated restarts used.
    pub restarts: usize,
    /// Number of vector–vector orthogonalization operations performed.
    pub orthogonalizations: usize,
    /// Peak number of length-`n` vectors held (memory model).
    pub peak_vectors: usize,
}

/// Error from the Lanczos driver.
#[derive(Clone, Debug, PartialEq)]
pub enum LanczosError {
    /// The tridiagonal eigensolver failed (should not occur for symmetric
    /// input).
    Tridiagonal(pact_sparse::EigenError),
    /// The iteration hit `max_iters` before resolving the spectrum near
    /// the cutoff.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
    },
}

impl std::fmt::Display for LanczosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LanczosError::Tridiagonal(e) => write!(f, "tridiagonal eigensolver failed: {e}"),
            LanczosError::NotConverged { iterations } => {
                write!(
                    f,
                    "lanczos failed to converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for LanczosError {}

impl From<pact_sparse::EigenError> for LanczosError {
    fn from(e: pact_sparse::EigenError) -> Self {
        LanczosError::Tridiagonal(e)
    }
}

/// Computes every eigenpair of `op` with eigenvalue **strictly greater**
/// than `lambda_min`, sorted descending by eigenvalue.
///
/// This is the exact query PACT issues: eigenvalues of `E'` above
/// `λ_c = 1/(2π f_c)` correspond to admittance poles *below* the cutoff
/// frequency and must be retained.
///
/// # Errors
///
/// [`LanczosError::NotConverged`] if the spectrum near the cutoff cannot
/// be resolved within the configured iteration budget.
pub fn eigs_above(
    op: &impl SymOp,
    lambda_min: f64,
    cfg: &LanczosConfig,
) -> Result<Vec<RitzPair>, LanczosError> {
    eigs_above_with_stats(op, lambda_min, cfg).map(|(pairs, _)| pairs)
}

/// Like [`eigs_above`] but also returns work counters.
///
/// # Errors
///
/// See [`eigs_above`].
pub fn eigs_above_with_stats(
    op: &impl SymOp,
    lambda_min: f64,
    cfg: &LanczosConfig,
) -> Result<(Vec<RitzPair>, LanczosStats), LanczosError> {
    let n = op.dim();
    let mut stats = LanczosStats::default();
    let mut converged: Vec<RitzPair> = Vec::new();
    if n == 0 {
        return Ok((converged, stats));
    }
    let mut rng = XorShiftRng::seed_from_u64(cfg.seed);
    let ctx = match cfg.threads {
        Some(t) => ParCtx::new(Some(t)),
        None => ParCtx::serial(),
    };

    // A single Krylov sequence sees only one copy of each eigenvalue, so a
    // run that "resolves" its spectrum is re-confirmed with a deflated
    // restart; only a restart that finds nothing new terminates the search
    // (this is how LASO recovers multiplicities).
    for restart in 0..cfg.max_restarts.max(1) {
        stats.restarts = restart;
        if converged.len() >= n {
            break;
        }
        let before = converged.len();
        let outcome = lanczos_run(
            op,
            lambda_min,
            cfg,
            &mut converged,
            &mut rng,
            &mut stats,
            &ctx,
        )?;
        let found_new = converged.len() > before;
        match outcome {
            RunOutcome::Stalled => break,
            RunOutcome::SpectrumResolved if !found_new => break,
            RunOutcome::SpectrumResolved | RunOutcome::NewPairsFound => continue,
        }
    }
    // Sort descending by eigenvalue.
    converged.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap());
    Ok((converged, stats))
}

enum RunOutcome {
    /// A converged Ritz value below the cutoff proves the tail is resolved.
    SpectrumResolved,
    /// New pairs found but cutoff boundary not yet proven (or β vanished
    /// with progress); restart explores the deflated complement.
    NewPairsFound,
    /// Nothing new converged above the cutoff.
    Stalled,
}

#[allow(clippy::too_many_arguments)]
fn lanczos_run(
    op: &impl SymOp,
    lambda_min: f64,
    cfg: &LanczosConfig,
    converged: &mut Vec<RitzPair>,
    rng: &mut XorShiftRng,
    stats: &mut LanczosStats,
    ctx: &ParCtx,
) -> Result<RunOutcome, LanczosError> {
    let n = op.dim();
    // Per-run cap: Ritz extraction costs O(k³), so unbounded runs on large
    // operators are quadratic-to-cubic in wasted work. Extreme eigenvalues
    // converge in ≪ n iterations; deflated restarts pick up the rest.
    let max_iters = cfg.max_iters.unwrap_or_else(|| n.min(300)).min(n).max(1);
    let deflate_base = converged.len();

    // Random unit start vector, deflated against already-converged Ritz
    // vectors so restarts explore the complementary subspace.
    let mut w: Vec<f64> = (0..n).map(|_| rng.gen_f64() - 0.5).collect();
    orthogonalize_against(&mut w, converged, stats, ctx);
    let nrm = norm2(&w);
    if nrm < 1e-300 {
        return Ok(RunOutcome::Stalled);
    }
    pact_sparse::scale(1.0 / nrm, &mut w);

    let mut basis: Vec<Vec<f64>> = vec![w];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut av = vec![0.0; n];
    let mut breakdown = false;
    let mut new_this_run = 0usize;
    // Ritz indices (into the current T eigendecomposition) promoted this
    // run, keyed by rounded eigenvalue to survive re-decomposition.
    let mut promoted: Vec<usize> = Vec::new();
    // Ritz values already assembled and residual-tested this run
    // (accepted *or* rejected as linearly dependent). A converged Ritz
    // value is stable across later decompositions to within its residual
    // bound, so re-assembling it at every subsequent check would repeat
    // an O(k·n) sweep only to re-reach the same verdict — historically
    // the single most expensive part of the whole eigensolve. An
    // eigenvalue that genuinely reappears in the deflated complement
    // (a multiplicity) is still found, by the next restart: its Krylov
    // sequence is deflated against the accepted copy, which is exactly
    // how repeated eigenvalues are recovered in the first place.
    let mut tested: Vec<f64> = Vec::new();

    for j in 0..max_iters {
        op.apply(&basis[j], &mut av);
        stats.matvecs += 1;
        stats.iterations += 1;
        let alpha = dot(&basis[j], &av);
        alphas.push(alpha);
        // w̃_{j+1} = A w_j − α_j w_j − β_{j−1} w_{j−1}   (eq. 13)
        let mut wt = av.clone();
        axpy(-alpha, &basis[j], &mut wt);
        if j > 0 {
            axpy(-betas[j - 1], &basis[j - 1], &mut wt);
        }
        // Deflation: stay orthogonal to Ritz vectors from earlier restarts.
        if deflate_base > 0 {
            orthogonalize_against(&mut wt, &converged[..deflate_base], stats, ctx);
        }
        match cfg.reorth {
            Reorthogonalization::None => {}
            Reorthogonalization::Selective => {
                // LASO: orthogonalize against Ritz vectors converged in
                // this run (eq. 19 of the paper) when the projection is
                // significantly nonzero. Classical Gram–Schmidt: all
                // projections are taken against the incoming wt, so the
                // dot-product sweep parallelizes without changing values.
                let t_norm = t_norm_estimate(&alphas, &betas);
                let threshold = f64::EPSILON.sqrt() * t_norm.max(1e-300);
                let run_pairs = &converged[deflate_base..];
                let projs = ritz_projections(ctx, run_pairs, &wt);
                for (pair, proj) in run_pairs.iter().zip(projs) {
                    if proj.abs() > threshold * 1e-6 {
                        axpy(-proj, &pair.vector, &mut wt);
                        stats.orthogonalizations += 1;
                    }
                }
            }
            Reorthogonalization::Full => {
                // Two-pass classical Gram–Schmidt against all basis
                // vectors (CGS2 — orthogonality on par with the modified
                // variant). Each pass computes every projection against
                // the same wt, which lets the sweep fan out across
                // threads, then subtracts in basis order.
                for _ in 0..2 {
                    let projs = basis_projections(ctx, &basis, &wt);
                    for (b, proj) in basis.iter().zip(projs) {
                        axpy(-proj, b, &mut wt);
                        stats.orthogonalizations += 1;
                    }
                }
            }
        }
        let beta = norm2(&wt);
        let t_norm = t_norm_estimate(&alphas, &betas);
        if beta <= f64::EPSILON * t_norm.max(1.0) * 16.0 {
            breakdown = true;
            betas.push(0.0);
        } else {
            pact_sparse::scale(1.0 / beta, &mut wt);
            betas.push(beta);
        }

        let k = alphas.len();
        let at_end = breakdown || k == max_iters;
        if at_end || k.is_multiple_of(cfg.check_every) {
            // Ritz extraction from T_k (eq. 17/18).
            let (vals, z) = eig_tridiagonal(&alphas, &betas[..k - 1], true)?;
            let beta_k = betas[k - 1];
            let t_scale = t_norm.max(1e-300);
            promoted.clear();
            // Count this run's accepted values to re-match after each new
            // decomposition: accept any unclaimed converged Ritz value
            // above the cutoff that is not already represented.
            for (idx, &theta) in vals.iter().enumerate() {
                if theta <= lambda_min {
                    continue;
                }
                let bound = beta_k * z[(k - 1, idx)].abs();
                if bound > cfg.conv_tol * t_scale {
                    continue;
                }
                // Already assembled this run (to within residual-bound
                // drift)? The verdict would repeat; skip the O(k·n) sweep.
                let match_tol = 16.0 * cfg.conv_tol * t_scale;
                if tested.iter().any(|&t| (t - theta).abs() <= match_tol) {
                    continue;
                }
                promoted.push(idx);
                // Is this Ritz value already represented among converged
                // pairs from this run? Match by assembling the vector and
                // checking its residual after deflation.
                let mut u = vec![0.0; n];
                for (row, b) in basis.iter().enumerate() {
                    axpy(z[(row, idx)], b, &mut u);
                }
                orthogonalize_against(&mut u, converged, stats, ctx);
                let un = norm2(&u);
                if un > 1e-6 {
                    pact_sparse::scale(1.0 / un, &mut u);
                    // Verify it is a genuine eigenvector (guards against
                    // spurious copies under Reorthogonalization::None).
                    let mut au = vec![0.0; n];
                    op.apply(&u, &mut au);
                    stats.matvecs += 1;
                    let mut r = au;
                    axpy(-theta, &u, &mut r);
                    if norm2(&r) <= (cfg.conv_tol.sqrt() * t_scale).max(1e-8 * t_scale) {
                        converged.push(RitzPair {
                            value: theta,
                            vector: u,
                            residual_bound: bound,
                        });
                        new_this_run += 1;
                        tested.push(theta);
                    }
                    // A residual failure is a ghost (possible without
                    // reorthogonalization); leave it re-testable — it may
                    // become genuine once the sequence converges further.
                } else {
                    // Linearly dependent on already-accepted pairs: a
                    // duplicate this Krylov sequence cannot resolve.
                    tested.push(theta);
                }
            }
            // Boundary proof: some Ritz value at/below the cutoff has
            // (loosely) converged, or the subspace is exhausted.
            let boundary_proven = vals.iter().enumerate().any(|(idx, &theta)| {
                theta <= lambda_min
                    && beta_k * z[(k - 1, idx)].abs() <= cfg.conv_tol.sqrt() * t_scale
            });
            let all_above_converged = vals
                .iter()
                .enumerate()
                .filter(|&(_, &theta)| theta > lambda_min)
                .all(|(idx, _)| beta_k * z[(k - 1, idx)].abs() <= cfg.conv_tol * t_scale);
            stats.peak_vectors = stats.peak_vectors.max(basis.len() + converged.len());
            if all_above_converged && boundary_proven {
                return Ok(RunOutcome::SpectrumResolved);
            }
            if breakdown {
                return Ok(if new_this_run > 0 {
                    RunOutcome::NewPairsFound
                } else {
                    RunOutcome::Stalled
                });
            }
            if at_end {
                // Out of iterations: if this run made progress, let a
                // deflated restart continue the search; only a run with no
                // progress at all is a hard failure.
                if all_above_converged || new_this_run > 0 {
                    return Ok(RunOutcome::NewPairsFound);
                }
                return Err(LanczosError::NotConverged {
                    iterations: stats.iterations,
                });
            }
        }
        if breakdown {
            break;
        }
        basis.push(wt);
    }
    Ok(if new_this_run > 0 {
        RunOutcome::NewPairsFound
    } else {
        RunOutcome::Stalled
    })
}

/// Estimate of ‖T‖₁ from its entries (max row sum of the tridiagonal).
fn t_norm_estimate(alphas: &[f64], betas: &[f64]) -> f64 {
    let k = alphas.len();
    let mut m = 0.0f64;
    for i in 0..k {
        let mut row = alphas[i].abs();
        if i > 0 {
            row += betas[i - 1].abs();
        }
        if i < betas.len() {
            row += betas[i].abs();
        }
        m = m.max(row);
    }
    m
}

/// Work below which a projection sweep is not worth fanning out (the
/// gate only affects scheduling — each dot product's value is the same
/// either way, so determinism is unaffected).
const PAR_SWEEP_MIN_WORK: usize = 1 << 15;

/// Projections of `v` onto every Ritz vector in `pairs`, in order.
fn ritz_projections(ctx: &ParCtx, pairs: &[RitzPair], v: &[f64]) -> Vec<f64> {
    if ctx.threads() == 1 || pairs.len().saturating_mul(v.len()) < PAR_SWEEP_MIN_WORK {
        pairs.iter().map(|p| dot(&p.vector, v)).collect()
    } else {
        ctx.map_items(pairs.len(), || (), |_, k| dot(&pairs[k].vector, v))
    }
}

/// Projections of `v` onto every basis vector, in order.
fn basis_projections(ctx: &ParCtx, basis: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    if ctx.threads() == 1 || basis.len().saturating_mul(v.len()) < PAR_SWEEP_MIN_WORK {
        basis.iter().map(|b| dot(b, v)).collect()
    } else {
        ctx.map_items(basis.len(), || (), |_, k| dot(&basis[k], v))
    }
}

/// Deflate `v` against converged Ritz vectors: one classical
/// Gram–Schmidt pass (the Ritz set is orthonormal, so a single CGS pass
/// matches the modified variant to rounding). The projection sweep runs
/// through `ctx`; subtractions are applied in pair order.
fn orthogonalize_against(
    v: &mut [f64],
    pairs: &[RitzPair],
    stats: &mut LanczosStats,
    ctx: &ParCtx,
) {
    if pairs.is_empty() {
        return;
    }
    let projs = ritz_projections(ctx, pairs, v);
    for (p, proj) in pairs.iter().zip(projs) {
        if proj != 0.0 {
            axpy(-proj, &p.vector, v);
            stats.orthogonalizations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_sparse::{sym_eig, TripletMat};

    fn diag_op(d: &[f64]) -> DMat<f64> {
        DMat::from_diag(d)
    }

    #[test]
    fn finds_top_of_diagonal_spectrum() {
        let d = [9.0, 7.0, 3.0, 1.0, 0.5, 0.1, 0.01];
        let pairs = eigs_above(&diag_op(&d), 2.0, &LanczosConfig::default()).unwrap();
        assert_eq!(pairs.len(), 3);
        assert!((pairs[0].value - 9.0).abs() < 1e-8);
        assert!((pairs[1].value - 7.0).abs() < 1e-8);
        assert!((pairs[2].value - 3.0).abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_satisfy_residual() {
        let mut t = TripletMat::new(6, 6);
        for i in 0..5 {
            t.stamp_conductance(Some(i), Some(i + 1), 1.0);
        }
        for i in 0..6 {
            t.push(i, i, 0.3);
        }
        let a = t.to_csr();
        let pairs = eigs_above(&a, 0.5, &LanczosConfig::default()).unwrap();
        assert!(!pairs.is_empty());
        for p in &pairs {
            let mut au = vec![0.0; 6];
            a.apply(&p.vector, &mut au);
            let mut r = au;
            axpy(-p.value, &p.vector, &mut r);
            assert!(norm2(&r) < 1e-7, "residual {} too big", norm2(&r));
        }
    }

    #[test]
    fn matches_dense_oracle_on_random_symmetric() {
        let n = 30;
        let a = DMat::from_fn(n, n, |i, j| {
            let x = ((i * 31 + j * 17) % 13) as f64 / 13.0;
            let y = ((j * 31 + i * 17) % 13) as f64 / 13.0;
            0.5 * (x + y) + if i == j { 3.0 } else { 0.0 }
        });
        let oracle = sym_eig(&a).unwrap();
        let cutoff = oracle.values[n - 4] + 1e-9; // top 3 eigenvalues
        let pairs = eigs_above(&a, cutoff, &LanczosConfig::default()).unwrap();
        assert_eq!(pairs.len(), 3, "expected 3 eigenvalues above {cutoff}");
        for (p, expect) in pairs.iter().zip(oracle.values.iter().rev()) {
            assert!(
                (p.value - expect).abs() < 1e-6,
                "got {} expected {}",
                p.value,
                expect
            );
        }
    }

    #[test]
    fn repeated_eigenvalues_found_via_restarts() {
        // Eigenvalue 5 with multiplicity 3, plus a low-frequency tail.
        let d = [5.0, 5.0, 5.0, 0.1, 0.1, 0.05, 0.01, 0.02];
        let pairs = eigs_above(&diag_op(&d), 1.0, &LanczosConfig::default()).unwrap();
        assert_eq!(pairs.len(), 3, "multiplicity missed");
        for p in &pairs {
            assert!((p.value - 5.0).abs() < 1e-7);
        }
        for i in 0..3 {
            for j in 0..i {
                assert!(dot(&pairs[i].vector, &pairs[j].vector).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_result_when_cutoff_above_spectrum() {
        let d = [0.3, 0.2, 0.1];
        let pairs = eigs_above(&diag_op(&d), 1.0, &LanczosConfig::default()).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn zero_operator() {
        let pairs = eigs_above(&diag_op(&[0.0; 5]), 0.5, &LanczosConfig::default()).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn dimension_zero() {
        let pairs = eigs_above(&DMat::zeros(0, 0), 0.5, &LanczosConfig::default()).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn full_reorth_agrees_with_selective() {
        let n = 40;
        let a = DMat::from_fn(n, n, |i, j| {
            1.0 / (1.0 + (i as f64 - j as f64).abs()) + if i == j { 1.0 } else { 0.0 }
        });
        let cutoff = 1.5;
        let sel = eigs_above(
            &a,
            cutoff,
            &LanczosConfig {
                reorth: Reorthogonalization::Selective,
                ..LanczosConfig::default()
            },
        )
        .unwrap();
        let full = eigs_above(
            &a,
            cutoff,
            &LanczosConfig {
                reorth: Reorthogonalization::Full,
                ..LanczosConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sel.len(), full.len());
        for (s, f) in sel.iter().zip(&full) {
            assert!((s.value - f.value).abs() < 1e-7);
        }
    }

    #[test]
    fn stats_are_populated() {
        let d = [4.0, 3.0, 2.0, 1.0, 0.5, 0.25];
        let (pairs, stats) =
            eigs_above_with_stats(&diag_op(&d), 1.5, &LanczosConfig::default()).unwrap();
        assert_eq!(pairs.len(), 3);
        assert!(stats.matvecs > 0);
        assert!(stats.iterations >= pairs.len());
    }

    #[test]
    fn no_reorth_does_not_duplicate_after_verification() {
        // Under no reorthogonalization duplicates are filtered by the
        // residual verification, so the count still matches.
        let d = [6.0, 4.0, 2.0, 0.5, 0.4, 0.3, 0.2, 0.1];
        let pairs = eigs_above(
            &diag_op(&d),
            1.0,
            &LanczosConfig {
                reorth: Reorthogonalization::None,
                ..LanczosConfig::default()
            },
        )
        .unwrap();
        assert_eq!(pairs.len(), 3);
    }
}
