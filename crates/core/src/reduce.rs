//! The top-level PACT reduction driver.
//!
//! `reduce` chains the two congruence transforms: Cholesky-based
//! conversion of the internal blocks (Section 3.1), then pole analysis of
//! `E'` (Section 3.2) keeping only eigenvalues above `λ_c`, and packages
//! the result as a [`ReducedModel`] plus work statistics.
//!
//! The free functions here are one-shot conveniences over
//! [`crate::ReductionSession`], which additionally caches symbolic
//! analyses and scratch across calls — use a session when reducing many
//! decks.

use pact_lanczos::{LanczosError, LanczosStats};
use pact_netlist::{RcNetwork, Stamped};
use pact_sparse::{CholKernel, EigenError, FactorError, Ordering};

use crate::backend::EigenSelect;
use crate::cutoff::CutoffSpec;
use crate::model::ReducedModel;
use crate::session::ReductionSession;
use crate::telemetry::Telemetry;

/// How the reduction is executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReduceStrategy {
    /// One-shot PACT over the whole network: a single Cholesky of the
    /// full internal block and one pole analysis.
    #[default]
    Flat,
    /// Divide-and-conquer ([`crate::hier`]): partition the internal-node
    /// graph by nested-dissection vertex separators, reduce each leaf
    /// block independently (separator nodes promoted to temporary
    /// ports) via the two-level Schur path — one Cholesky per leaf,
    /// boundary Schur complement on the factor, W-trick pole extraction,
    /// and an error-budgeted trim of out-of-band leaf poles — then
    /// stitch the reduced blocks and run a final flat pass over the
    /// much smaller stitched network. Leaves sharing a sparsity pattern
    /// reuse one symbolic analysis through the session, and the leaf
    /// fan-out parallelizes over the worker pool with bit-identical
    /// results at any thread count.
    Hierarchical {
        /// Target maximum internal nodes per leaf block.
        max_block: usize,
        /// Maximum dissection recursion depth.
        max_depth: usize,
    },
    /// Multipoint moment expansion ([`crate::multipoint`]): moment-
    /// matching bases computed at s = 0 plus shifted expansion points
    /// (auto-selected from the cutoff spec unless
    /// [`ReduceOptions::expansion_points`] overrides them), stacked and
    /// orthonormalized, with one congruence projection of `(G, C)` so
    /// the reduced model stays provably passive like flat PACT.
    Multipoint {
        /// Number of auto-selected shifted expansion points (in addition
        /// to the always-included s = 0 moment block). Ignored when
        /// [`ReduceOptions::expansion_points`] is set.
        num_points: usize,
    },
}

/// Options controlling a reduction.
#[derive(Clone, Debug)]
pub struct ReduceOptions {
    /// Accuracy specification (max frequency + tolerance).
    pub cutoff: CutoffSpec,
    /// Eigen backend selection for the pole analysis
    /// ([`EigenSelect::Auto`] adapts to block size and capacitance rank).
    pub eigen_backend: EigenSelect,
    /// Fill-reducing ordering for the Cholesky factorization of `D`.
    pub ordering: Ordering,
    /// [`EigenSelect::Auto`] switches from the low-rank/dense path to
    /// Lanczos above this internal-block size.
    pub dense_threshold: usize,
    /// Worker threads for the parallel stages (port fan-out, Ritz rows,
    /// operator products). `None` ⇒ all available cores. The reduced
    /// model is bit-identical for every thread count.
    pub threads: Option<usize>,
    /// Relief floor for quasi-singular pivots of `D`, relative to the
    /// largest diagonal entry (e.g. `Some(1e-12)`). `None` keeps the
    /// strict behavior: any non-positive pivot fails the reduction with
    /// a typed error. When set, offending pivots are raised to the floor
    /// (a passivity-preserving diagonal stiffening `D → D + ΔD`,
    /// `ΔD ⪰ 0`) and each substitution is recorded as a
    /// [`crate::Warning::PerturbedPivot`] in the reduction's telemetry.
    pub pivot_relief: Option<f64>,
    /// Execution strategy: one-shot flat PACT (default) or hierarchical
    /// divide-and-conquer over a nested-dissection partition tree.
    pub strategy: ReduceStrategy,
    /// Numeric Cholesky kernel for factoring `D`:
    /// [`CholKernel::Auto`] (default) resolves to the supernodal blocked
    /// kernel unless `PACT_CHOL_KERNEL=scalar` is set;
    /// [`CholKernel::Scalar`] forces the scalar up-looking reference
    /// kernel (the A/B escape hatch for benchmarking). Retained poles
    /// agree between the kernels to floating-point roundoff.
    pub chol_kernel: CholKernel,
    /// Explicit expansion-point override for
    /// [`ReduceStrategy::Multipoint`], in hertz. Positive values are
    /// imaginary-axis points `s = j·2πf` (always regular for a passive
    /// RC pencil); negative values are negative-real-axis shifts
    /// `s = −2π|f|`, where the pencil's poles live — a point landing on
    /// a pole fails with [`ReduceError::ExpansionPointAtPole`]. `None`
    /// (the default) selects `num_points` log-spaced imaginary-axis
    /// points from the cutoff spec. Ignored by the other strategies.
    pub expansion_points: Option<Vec<f64>>,
}

impl ReduceOptions {
    /// Default options for a given accuracy specification.
    pub fn new(cutoff: CutoffSpec) -> Self {
        ReduceOptions {
            cutoff,
            eigen_backend: EigenSelect::Auto,
            ordering: Ordering::NestedDissection,
            dense_threshold: 400,
            threads: None,
            pivot_relief: None,
            strategy: ReduceStrategy::Flat,
            chol_kernel: CholKernel::Auto,
            expansion_points: None,
        }
    }
}

/// Work/footprint statistics for one reduction, feeding the paper's
/// tables (reduction time, memory) and the Section-4 complexity study.
#[derive(Clone, Debug, Default)]
pub struct ReductionStats {
    /// Ports `m`.
    pub num_ports: usize,
    /// Internal nodes `n` before reduction.
    pub num_internal: usize,
    /// Poles retained (internal nodes after reduction).
    pub poles_retained: usize,
    /// Wall-clock seconds for the whole reduction.
    pub elapsed_seconds: f64,
    /// Nonzeros in the Cholesky factor of `D`.
    pub chol_nnz: usize,
    /// Modelled bytes for the Cholesky factor (the paper's dominant term).
    pub chol_memory_bytes: usize,
    /// Modelled peak bytes for the whole reduction: factor + dense port
    /// blocks + Lanczos working set.
    pub modelled_memory_bytes: usize,
    /// Lanczos work counters when the Lanczos backend ran.
    pub lanczos: Option<LanczosStats>,
}

/// Error from a reduction.
#[derive(Clone, Debug)]
pub enum ReduceError {
    /// `D` was not positive definite (internal node without DC path) or
    /// carried a non-finite entry.
    Factor(FactorError),
    /// The Lanczos solver failed to resolve the spectrum near the cutoff.
    Lanczos(LanczosError),
    /// The dense eigensolver failed.
    Eigen(EigenError),
    /// A sub-network rejected during hierarchical reduction (per-block
    /// sanitization found non-physical element values).
    Network(pact_netlist::NetworkError),
    /// A user-supplied multipoint expansion point landed on (or within
    /// relief tolerance of) a pole of the pencil `D + sE`, making the
    /// shifted factorization numerically singular. `index` is the
    /// internal-node index of the vanishing pivot's column (the node the
    /// pole is most associated with); `pivot` is the pivot modulus
    /// relative to the largest pivot.
    ExpansionPointAtPole {
        /// The offending expansion point in hertz, as supplied.
        point_hz: f64,
        /// Internal-node index of the near-zero pivot column.
        index: usize,
        /// Smallest pivot modulus divided by the largest.
        pivot: f64,
    },
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::Factor(e) => write!(f, "internal conductance factorization failed: {e}"),
            ReduceError::Lanczos(e) => write!(f, "pole analysis failed: {e}"),
            ReduceError::Eigen(e) => write!(f, "dense eigendecomposition failed: {e}"),
            ReduceError::Network(e) => write!(f, "block sanitization rejected the network: {e}"),
            ReduceError::ExpansionPointAtPole {
                point_hz,
                index,
                pivot,
            } => write!(
                f,
                "expansion point {point_hz:.6e} Hz lies on a pole of the pencil \
                 (internal node {index}, relative pivot {pivot:.3e}); move the \
                 point off the negative real axis or away from the pole"
            ),
        }
    }
}

impl std::error::Error for ReduceError {}

impl From<FactorError> for ReduceError {
    fn from(e: FactorError) -> Self {
        ReduceError::Factor(e)
    }
}
impl From<LanczosError> for ReduceError {
    fn from(e: LanczosError) -> Self {
        ReduceError::Lanczos(e)
    }
}
impl From<EigenError> for ReduceError {
    fn from(e: EigenError) -> Self {
        ReduceError::Eigen(e)
    }
}
impl From<pact_netlist::NetworkError> for ReduceError {
    fn from(e: pact_netlist::NetworkError) -> Self {
        ReduceError::Network(e)
    }
}

/// A completed reduction: the passive reduced model and its statistics.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The reduced-order model.
    pub model: ReducedModel,
    /// Work statistics.
    pub stats: ReductionStats,
    /// Structured telemetry: per-phase wall times, deterministic
    /// counters, warnings (pivot perturbations etc.), and the eigen
    /// backend chosen per block.
    pub telemetry: Telemetry,
}

/// Reduces stamped network matrices with PACT.
///
/// `port_names` labels the leading `stamped.num_ports` rows and is carried
/// into the model for netlist output. One-shot convenience over
/// [`ReductionSession::reduce`].
///
/// # Errors
///
/// See [`ReduceError`].
pub fn reduce(
    stamped: &Stamped,
    port_names: &[String],
    opts: &ReduceOptions,
) -> Result<Reduction, ReduceError> {
    ReductionSession::new(opts.clone()).reduce(stamped, port_names)
}

/// Convenience wrapper: stamps an [`RcNetwork`] and reduces it with the
/// strategy selected in `opts` (flat one-shot PACT by default,
/// divide-and-conquer for [`ReduceStrategy::Hierarchical`]).
///
/// Warnings in the returned telemetry carry real node names (the
/// stamped-matrix entry point [`reduce`] can only attribute by index).
/// One-shot convenience over [`ReductionSession::reduce_network`].
///
/// # Errors
///
/// See [`ReduceError`].
pub fn reduce_network(network: &RcNetwork, opts: &ReduceOptions) -> Result<Reduction, ReduceError> {
    ReductionSession::new(opts.clone()).reduce_network(network)
}

/// Result of a per-component reduction ([`reduce_network_components`]).
#[derive(Clone, Debug)]
pub struct ComponentReduction {
    /// One reduction per connected component that has port nodes.
    pub reductions: Vec<Reduction>,
    /// Connected components with no port node: they cannot influence any
    /// port and are dropped from the output entirely.
    pub floating_dropped: usize,
}

impl ComponentReduction {
    /// Total retained poles across all components.
    pub fn num_poles(&self) -> usize {
        self.reductions.iter().map(|r| r.model.num_poles()).sum()
    }

    /// Emits the SPICE elements of every component's reduced network.
    /// Internal node names are disambiguated per component
    /// (`<prefix><k>_p<i>`).
    pub fn to_netlist_elements(
        &self,
        prefix: &str,
        sparsify_tol: f64,
    ) -> Vec<pact_netlist::Element> {
        let mut out = Vec::new();
        for (k, r) in self.reductions.iter().enumerate() {
            out.extend(
                r.model
                    .to_netlist_elements(&format!("{prefix}{k}"), sparsify_tol),
            );
        }
        out
    }

    /// `true` when every component's reduced model is passive.
    pub fn is_passive(&self, rel_tol: f64) -> bool {
        self.reductions.iter().all(|r| r.model.is_passive(rel_tol))
    }

    /// Aggregated telemetry across all component reductions: phase times
    /// and counters summed (peaks maxed), warnings concatenated in
    /// component order, plus the component-level counters.
    pub fn telemetry(&self) -> Telemetry {
        let mut tel = Telemetry::new();
        for r in &self.reductions {
            tel.absorb(&r.telemetry);
        }
        tel.counters.components_reduced = self.reductions.len() as u64;
        tel.counters.floating_islands_dropped = self.floating_dropped as u64;
        tel
    }
}

/// Reduces each connected component of the network independently.
///
/// Real layouts contain many electrically independent nets (the paper's
/// multiplier parasitics are hundreds of separate RC trees); reducing
/// them per component keeps each eigenproblem small and drops floating
/// RC islands that no port can observe. One-shot convenience over
/// [`ReductionSession::reduce_network_components`].
///
/// # Errors
///
/// See [`ReduceError`]; the first failing component aborts.
pub fn reduce_network_components(
    network: &RcNetwork,
    opts: &ReduceOptions,
) -> Result<ComponentReduction, ReduceError> {
    ReductionSession::new(opts.clone()).reduce_network_components(network)
}

/// Rewrites a component-local factorization failure index into the parent
/// network's internal-node numbering, so callers attributing errors
/// against the parent network (e.g. [`crate::PactError::from_reduce`])
/// name the right node.
pub(crate) fn remap_factor_index(
    e: ReduceError,
    comp: &RcNetwork,
    parent: &RcNetwork,
) -> ReduceError {
    let remap = |index: usize| {
        comp.node_names
            .get(comp.num_ports + index)
            .and_then(|name| parent.node_index(name))
            .and_then(|gi| gi.checked_sub(parent.num_ports))
            .unwrap_or(index)
    };
    match e {
        ReduceError::Factor(FactorError::NotPositiveDefinite { step, index, pivot }) => {
            ReduceError::Factor(FactorError::NotPositiveDefinite {
                step,
                index: remap(index),
                pivot,
            })
        }
        ReduceError::Factor(FactorError::NonFinitePivot { step, index, pivot }) => {
            ReduceError::Factor(FactorError::NonFinitePivot {
                step,
                index: remap(index),
                pivot,
            })
        }
        ReduceError::ExpansionPointAtPole {
            point_hz,
            index,
            pivot,
        } => ReduceError::ExpansionPointAtPole {
            point_hz,
            index: remap(index),
            pivot,
        },
        other => other,
    }
}
