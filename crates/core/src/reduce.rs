//! The top-level PACT reduction driver.
//!
//! `reduce` chains the two congruence transforms: Cholesky-based
//! conversion of the internal blocks (Section 3.1), then pole analysis of
//! `E'` (Section 3.2) keeping only eigenvalues above `λ_c`, and packages
//! the result as a [`ReducedModel`] plus work statistics.

use std::time::Instant;

use pact_lanczos::{eigs_above_with_stats, LanczosConfig, LanczosError, LanczosStats, SymOp};
use pact_netlist::{RcNetwork, Stamped};
use pact_sparse::{
    sym_eig, DMat, EigenError, FactorError, Ordering, ParCtx, PivotPolicy, SparseCholesky,
};

use crate::cutoff::CutoffSpec;
use crate::model::ReducedModel;
use crate::partition::Partitions;
use crate::telemetry::{Telemetry, Warning};
use crate::transform::Transform1;

/// How the reduction is executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReduceStrategy {
    /// One-shot PACT over the whole network: a single Cholesky of the
    /// full internal block and one pole analysis.
    #[default]
    Flat,
    /// Divide-and-conquer ([`crate::hier`]): partition the internal-node
    /// graph by nested-dissection vertex separators, reduce each leaf
    /// block independently with flat PACT (separator nodes promoted to
    /// temporary ports), stitch the reduced blocks back together and run
    /// a final flat pass over the much smaller stitched network.
    Hierarchical {
        /// Target maximum internal nodes per leaf block.
        max_block: usize,
        /// Maximum dissection recursion depth.
        max_depth: usize,
    },
}

/// How the eigenpairs of `E'` above the cutoff are computed.
#[derive(Clone, Debug, Default)]
pub enum EigenStrategy {
    /// Dense for small `n`, LASO above `dense_threshold`.
    #[default]
    Auto,
    /// Always form `E'` densely and fully decompose it (oracle; `O(n³)`).
    Dense,
    /// Always use the Lanczos solver with the given configuration.
    Laso(LanczosConfig),
}

/// Options controlling a reduction.
#[derive(Clone, Debug)]
pub struct ReduceOptions {
    /// Accuracy specification (max frequency + tolerance).
    pub cutoff: CutoffSpec,
    /// Eigen solver selection.
    pub eigen: EigenStrategy,
    /// Fill-reducing ordering for the Cholesky factorization of `D`.
    pub ordering: Ordering,
    /// `Auto` strategy switches from dense to LASO above this `n`.
    pub dense_threshold: usize,
    /// Worker threads for the parallel stages (port fan-out, Ritz rows,
    /// operator products). `None` ⇒ all available cores. The reduced
    /// model is bit-identical for every thread count.
    pub threads: Option<usize>,
    /// Relief floor for quasi-singular pivots of `D`, relative to the
    /// largest diagonal entry (e.g. `Some(1e-12)`). `None` keeps the
    /// strict behavior: any non-positive pivot fails the reduction with
    /// a typed error. When set, offending pivots are raised to the floor
    /// (a passivity-preserving diagonal stiffening `D → D + ΔD`,
    /// `ΔD ⪰ 0`) and each substitution is recorded as a
    /// [`Warning::PerturbedPivot`] in the reduction's telemetry.
    pub pivot_relief: Option<f64>,
    /// Execution strategy: one-shot flat PACT (default) or hierarchical
    /// divide-and-conquer over a nested-dissection partition tree.
    pub strategy: ReduceStrategy,
}

impl ReduceOptions {
    /// Default options for a given accuracy specification.
    pub fn new(cutoff: CutoffSpec) -> Self {
        ReduceOptions {
            cutoff,
            eigen: EigenStrategy::Auto,
            ordering: Ordering::NestedDissection,
            dense_threshold: 400,
            threads: None,
            pivot_relief: None,
            strategy: ReduceStrategy::Flat,
        }
    }
}

/// Work/footprint statistics for one reduction, feeding the paper's
/// tables (reduction time, memory) and the Section-4 complexity study.
#[derive(Clone, Debug, Default)]
pub struct ReductionStats {
    /// Ports `m`.
    pub num_ports: usize,
    /// Internal nodes `n` before reduction.
    pub num_internal: usize,
    /// Poles retained (internal nodes after reduction).
    pub poles_retained: usize,
    /// Wall-clock seconds for the whole reduction.
    pub elapsed_seconds: f64,
    /// Nonzeros in the Cholesky factor of `D`.
    pub chol_nnz: usize,
    /// Modelled bytes for the Cholesky factor (the paper's dominant term).
    pub chol_memory_bytes: usize,
    /// Modelled peak bytes for the whole reduction: factor + dense port
    /// blocks + Lanczos working set.
    pub modelled_memory_bytes: usize,
    /// Lanczos work counters when LASO ran.
    pub lanczos: Option<LanczosStats>,
}

/// Error from a reduction.
#[derive(Clone, Debug)]
pub enum ReduceError {
    /// `D` was not positive definite (internal node without DC path).
    Factor(FactorError),
    /// The Lanczos solver failed to resolve the spectrum near the cutoff.
    Lanczos(LanczosError),
    /// The dense eigensolver failed.
    Eigen(EigenError),
    /// A sub-network rejected during hierarchical reduction (per-block
    /// sanitization found non-physical element values).
    Network(pact_netlist::NetworkError),
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::Factor(e) => write!(f, "internal conductance factorization failed: {e}"),
            ReduceError::Lanczos(e) => write!(f, "pole analysis failed: {e}"),
            ReduceError::Eigen(e) => write!(f, "dense eigendecomposition failed: {e}"),
            ReduceError::Network(e) => write!(f, "block sanitization rejected the network: {e}"),
        }
    }
}

impl std::error::Error for ReduceError {}

impl From<FactorError> for ReduceError {
    fn from(e: FactorError) -> Self {
        ReduceError::Factor(e)
    }
}
impl From<LanczosError> for ReduceError {
    fn from(e: LanczosError) -> Self {
        ReduceError::Lanczos(e)
    }
}
impl From<EigenError> for ReduceError {
    fn from(e: EigenError) -> Self {
        ReduceError::Eigen(e)
    }
}
impl From<pact_netlist::NetworkError> for ReduceError {
    fn from(e: pact_netlist::NetworkError) -> Self {
        ReduceError::Network(e)
    }
}

/// A completed reduction: the passive reduced model and its statistics.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The reduced-order model.
    pub model: ReducedModel,
    /// Work statistics.
    pub stats: ReductionStats,
    /// Structured telemetry: per-phase wall times, deterministic
    /// counters, and warnings (pivot perturbations etc.).
    pub telemetry: Telemetry,
}

/// Reduces stamped network matrices with PACT.
///
/// `port_names` labels the leading `stamped.num_ports` rows and is carried
/// into the model for netlist output.
///
/// # Errors
///
/// See [`ReduceError`].
pub fn reduce(
    stamped: &Stamped,
    port_names: &[String],
    opts: &ReduceOptions,
) -> Result<Reduction, ReduceError> {
    reduce_impl(stamped, port_names, opts, &|i| format!("internal#{i}"))
}

/// The shared reduction body. `internal_name` maps a `D`-local internal
/// node index to a display name for warning attribution (the stamped
/// entry point only knows indices; [`reduce_network`] supplies real node
/// names).
pub(crate) fn reduce_impl(
    stamped: &Stamped,
    port_names: &[String],
    opts: &ReduceOptions,
    internal_name: &dyn Fn(usize) -> String,
) -> Result<Reduction, ReduceError> {
    let start = Instant::now();
    let mut tel = Telemetry::new();
    let ctx = ParCtx::new(opts.threads);
    let parts = tel.time("partition", || Partitions::split(stamped));

    let policy = match opts.pivot_relief {
        Some(rel_threshold) => PivotPolicy::Perturb { rel_threshold },
        None => PivotPolicy::Error,
    };
    let factored = tel.time("factor", || {
        SparseCholesky::factor_diagnosed(&parts.d, opts.ordering, policy)
    });
    let (chol, diag) = factored?;
    for p in &diag.perturbed {
        tel.warn(Warning::PerturbedPivot {
            node: internal_name(p.index),
            pivot: p.original,
            replaced_with: p.replaced_with,
        });
    }
    tel.counters.perturbed_pivots = diag.perturbed.len() as u64;

    let t1 = tel.time("moments", || Transform1::with_factor(&parts, chol, &ctx));
    let lambda_c = opts.cutoff.lambda_c();

    let eigen_start = Instant::now();
    let poles = match &opts.eigen {
        EigenStrategy::Dense => low_rank_poles(&t1, &parts, lambda_c, &ctx)
            .unwrap_or_else(|| dense_poles(&t1, &parts, lambda_c, &ctx)),
        EigenStrategy::Laso(cfg) => laso_poles(&t1, &parts, lambda_c, cfg, &ctx),
        EigenStrategy::Auto => {
            if parts.n <= opts.dense_threshold {
                low_rank_poles(&t1, &parts, lambda_c, &ctx)
                    .unwrap_or_else(|| dense_poles(&t1, &parts, lambda_c, &ctx))
            } else {
                laso_poles(&t1, &parts, lambda_c, &LanczosConfig::default(), &ctx)
            }
        }
    };
    tel.record_phase("eigen", eigen_start.elapsed().as_secs_f64());
    let (lambdas, vectors, lanczos_stats) = poles?;

    let r2 = tel.time("projection", || t1.r2_rows_ctx(&parts, &vectors, &ctx));
    let model = ReducedModel {
        a1: t1.a1.clone(),
        b1: t1.b1.clone(),
        r2,
        lambdas: lambdas.clone(),
        port_names: port_names.to_vec(),
    };

    let m = parts.m;
    let k = lambdas.len();
    let chol_memory = t1.chol.memory_bytes();
    let modelled = chol_memory
        + 2 * m * m * 8              // A', B'
        + k * parts.n * 8            // Ritz vectors
        + k * m * 8                  // R''
        + 4 * parts.n * 8; // solver workspace
    let stats = ReductionStats {
        num_ports: m,
        num_internal: parts.n,
        poles_retained: k,
        elapsed_seconds: start.elapsed().as_secs_f64(),
        chol_nnz: t1.chol.l_nnz(),
        chol_memory_bytes: chol_memory,
        modelled_memory_bytes: modelled,
        lanczos: lanczos_stats,
    };

    let c = &mut tel.counters;
    c.num_ports = m as u64;
    c.num_internal = parts.n as u64;
    c.poles_retained = k as u64;
    c.poles_dropped = parts.n.saturating_sub(k) as u64;
    c.peak_matrix_dim = (m + parts.n) as u64;
    c.chol_nnz = stats.chol_nnz as u64;
    if let Some(ls) = &stats.lanczos {
        c.lanczos_iterations = ls.iterations as u64;
        c.lanczos_matvecs = ls.matvecs as u64;
        c.lanczos_restarts = ls.restarts as u64;
        c.lanczos_reorthogonalizations = ls.orthogonalizations as u64;
    }

    Ok(Reduction {
        model,
        stats,
        telemetry: tel,
    })
}

/// Convenience wrapper: stamps an [`RcNetwork`] and reduces it with the
/// strategy selected in `opts` (flat one-shot PACT by default,
/// divide-and-conquer for [`ReduceStrategy::Hierarchical`]).
///
/// Warnings in the returned telemetry carry real node names (the
/// stamped-matrix entry point [`reduce`] can only attribute by index).
///
/// # Errors
///
/// See [`ReduceError`].
pub fn reduce_network(network: &RcNetwork, opts: &ReduceOptions) -> Result<Reduction, ReduceError> {
    match opts.strategy {
        ReduceStrategy::Flat => reduce_network_flat(network, opts),
        ReduceStrategy::Hierarchical {
            max_block,
            max_depth,
        } => crate::hier::reduce_network_hier(network, opts, max_block, max_depth),
    }
}

/// The flat (single-pass) reduction body shared by [`reduce_network`]
/// and the hierarchical driver's leaf/fallback paths.
pub(crate) fn reduce_network_flat(
    network: &RcNetwork,
    opts: &ReduceOptions,
) -> Result<Reduction, ReduceError> {
    let stamped = network.stamp();
    let ports: Vec<String> = network.node_names[..network.num_ports].to_vec();
    reduce_impl(&stamped, &ports, opts, &|i| {
        network
            .node_names
            .get(network.num_ports + i)
            .cloned()
            .unwrap_or_else(|| format!("internal#{i}"))
    })
}

/// Result of a per-component reduction ([`reduce_network_components`]).
#[derive(Clone, Debug)]
pub struct ComponentReduction {
    /// One reduction per connected component that has port nodes.
    pub reductions: Vec<Reduction>,
    /// Connected components with no port node: they cannot influence any
    /// port and are dropped from the output entirely.
    pub floating_dropped: usize,
}

impl ComponentReduction {
    /// Total retained poles across all components.
    pub fn num_poles(&self) -> usize {
        self.reductions.iter().map(|r| r.model.num_poles()).sum()
    }

    /// Emits the SPICE elements of every component's reduced network.
    /// Internal node names are disambiguated per component
    /// (`<prefix><k>_p<i>`).
    pub fn to_netlist_elements(
        &self,
        prefix: &str,
        sparsify_tol: f64,
    ) -> Vec<pact_netlist::Element> {
        let mut out = Vec::new();
        for (k, r) in self.reductions.iter().enumerate() {
            out.extend(
                r.model
                    .to_netlist_elements(&format!("{prefix}{k}"), sparsify_tol),
            );
        }
        out
    }

    /// `true` when every component's reduced model is passive.
    pub fn is_passive(&self, rel_tol: f64) -> bool {
        self.reductions.iter().all(|r| r.model.is_passive(rel_tol))
    }

    /// Aggregated telemetry across all component reductions: phase times
    /// and counters summed (peaks maxed), warnings concatenated in
    /// component order, plus the component-level counters.
    pub fn telemetry(&self) -> Telemetry {
        let mut tel = Telemetry::new();
        for r in &self.reductions {
            tel.absorb(&r.telemetry);
        }
        tel.counters.components_reduced = self.reductions.len() as u64;
        tel.counters.floating_islands_dropped = self.floating_dropped as u64;
        tel
    }
}

/// Reduces each connected component of the network independently.
///
/// Real layouts contain many electrically independent nets (the paper's
/// multiplier parasitics are hundreds of separate RC trees); reducing
/// them per component keeps each eigenproblem small and drops floating
/// RC islands that no port can observe.
///
/// # Errors
///
/// See [`ReduceError`]; the first failing component aborts.
pub fn reduce_network_components(
    network: &RcNetwork,
    opts: &ReduceOptions,
) -> Result<ComponentReduction, ReduceError> {
    let mut reductions = Vec::new();
    let mut floating = 0usize;
    for comp in network.connected_components() {
        if comp.num_ports == 0 {
            floating += 1;
            continue;
        }
        reductions
            .push(reduce_network(&comp, opts).map_err(|e| remap_factor_index(e, &comp, network))?);
    }
    Ok(ComponentReduction {
        reductions,
        floating_dropped: floating,
    })
}

/// Rewrites a component-local factorization failure index into the parent
/// network's internal-node numbering, so callers attributing errors
/// against the parent network (e.g. [`crate::PactError::from_reduce`])
/// name the right node.
pub(crate) fn remap_factor_index(
    e: ReduceError,
    comp: &RcNetwork,
    parent: &RcNetwork,
) -> ReduceError {
    match e {
        ReduceError::Factor(FactorError::NotPositiveDefinite { step, index, pivot }) => {
            let remapped = comp
                .node_names
                .get(comp.num_ports + index)
                .and_then(|name| parent.node_index(name))
                .and_then(|gi| gi.checked_sub(parent.num_ports))
                .unwrap_or(index);
            ReduceError::Factor(FactorError::NotPositiveDefinite {
                step,
                index: remapped,
                pivot,
            })
        }
        other => other,
    }
}

type Poles = (Vec<f64>, Vec<Vec<f64>>, Option<LanczosStats>);

/// One rank-1 term `w·u uᵀ` of the capacitance split: `u = e_i − e_j`
/// for a coupling entry, `u = e_i` (j = None) for residual node
/// capacitance to ground/ports.
struct CapTerm {
    i: usize,
    j: Option<usize>,
    w: f64,
}

/// Splits the internal capacitance block `E` into `Σ c_k u_k u_kᵀ` with
/// one term per coupling entry plus one per residual diagonal — the
/// factorization every capacitance stamp admits (a branch between two
/// internal nodes contributes `c(e_i−e_j)(e_i−e_j)ᵀ`, everything else is
/// diagonal). Returns `None` if `E` is not such a stamp (positive
/// off-diagonal or negative residual beyond rounding), which sends the
/// caller to the general dense path.
fn capacitance_split(e: &pact_sparse::CsrMat) -> Option<Vec<CapTerm>> {
    let n = e.nrows();
    let diag: Vec<f64> = (0..n).map(|i| e.get(i, i)).collect();
    let mut terms = Vec::new();
    let mut offsum = vec![0.0f64; n];
    for i in 0..n {
        for (j, v) in e.row_iter(i) {
            if j <= i {
                continue;
            }
            let tol = 1e-12 * (diag[i].abs() + diag[j].abs());
            if v > tol {
                return None; // not a capacitance stamp
            }
            if v < -tol {
                terms.push(CapTerm {
                    i,
                    j: Some(j),
                    w: -v,
                });
                offsum[i] -= v;
                offsum[j] -= v;
            }
        }
    }
    for i in 0..n {
        let s = diag[i] - offsum[i];
        let tol = 1e-12 * diag[i].abs();
        if s < -tol {
            return None;
        }
        if s > tol {
            terms.push(CapTerm { i, j: None, w: s });
        }
    }
    Some(terms)
}

/// Pole analysis exploiting the rank deficiency of `E` (the paper's §6
/// observation that RC extractions carry far fewer capacitors than
/// nodes): with `E = U Uᵀ` (one scaled column per capacitance term),
/// `E' = X Xᵀ` for `X = F⁻¹U`, whose nonzero spectrum equals that of the
/// tiny `c×c` Gram matrix `XᵀX`. Eigenpairs `(λ, z)` of the Gram lift to
/// eigenvectors `v = Xz/√λ` of `E'`. `None` when `E` is not a
/// capacitance stamp or the rank bound does not beat `n` — callers fall
/// back to the dense `n×n` path.
fn low_rank_poles(
    t1: &Transform1,
    parts: &Partitions,
    lambda_c: f64,
    ctx: &ParCtx,
) -> Option<Result<Poles, ReduceError>> {
    let n = parts.n;
    if n == 0 {
        return Some(Ok((Vec::new(), Vec::new(), None)));
    }
    let terms = capacitance_split(&parts.e)?;
    let c = terms.len();
    if c == 0 {
        return Some(Ok((Vec::new(), Vec::new(), None)));
    }
    if c >= n {
        return None;
    }
    // X = F⁻¹ U, one forward solve per capacitance term; each column is
    // computed by exactly one worker, so the result is thread-invariant.
    // A column's support is the elimination-tree reach of its two nodes
    // — usually a small fraction of `n` — so columns are compressed to
    // (index, value) pairs. The nonzero pattern is itself deterministic
    // (exact zeros are reproduced bit-for-bit by the serial-per-column
    // solves), so the compressed form stays thread-invariant too.
    let x: Vec<(Vec<u32>, Vec<f64>)> = ctx.map_items(
        c,
        || (vec![0.0f64; n], vec![0.0f64; n]),
        |(rhs, col), k| {
            rhs.iter_mut().for_each(|v| *v = 0.0);
            let t = &terms[k];
            let w = t.w.sqrt();
            rhs[t.i] = w;
            if let Some(j) = t.j {
                rhs[j] = -w;
            }
            t1.chol.fsolve_into(rhs, col);
            let mut idx = Vec::new();
            let mut val = Vec::new();
            for (i, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    idx.push(i as u32);
                    val.push(v);
                }
            }
            (idx, val)
        },
    );
    // Gram matrix XᵀX (c×c): row-partitioned sparse merge dots, each
    // with a fixed index-ascending summation order.
    let mut gram = DMat::zeros(c, c);
    let rows = ctx.map_items(
        c,
        || (),
        |_, a| {
            (a..c)
                .map(|b| sparse_dot(&x[a], &x[b]))
                .collect::<Vec<f64>>()
        },
    );
    for (a, row) in rows.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            gram[(a, a + off)] = v;
            gram[(a + off, a)] = v;
        }
    }
    let eig = match sym_eig(&gram) {
        Ok(e) => e,
        Err(e) => return Some(Err(e.into())),
    };
    let mut lambdas = Vec::new();
    let mut vectors = Vec::new();
    // Descending order to match the dense and LASO paths.
    for idx in (0..c).rev() {
        let lam = eig.values[idx];
        if lam < lambda_c {
            break;
        }
        let scale = 1.0 / lam.sqrt();
        let mut v = vec![0.0f64; n];
        for (k, (xi, xv)) in x.iter().enumerate() {
            let zk = eig.vectors[(k, idx)] * scale;
            if zk != 0.0 {
                for (&i, &xval) in xi.iter().zip(xv) {
                    v[i as usize] += zk * xval;
                }
            }
        }
        lambdas.push(lam);
        vectors.push(v);
    }
    Some(Ok((lambdas, vectors, None)))
}

/// Dot product of two compressed sparse vectors (sorted indices),
/// accumulated in ascending index order.
fn sparse_dot(a: &(Vec<u32>, Vec<f64>), b: &(Vec<u32>, Vec<f64>)) -> f64 {
    let (ai, av) = a;
    let (bi, bv) = b;
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
    while i < ai.len() && j < bi.len() {
        match ai[i].cmp(&bi[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += av[i] * bv[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

fn dense_poles(
    t1: &Transform1,
    parts: &Partitions,
    lambda_c: f64,
    ctx: &ParCtx,
) -> Result<Poles, ReduceError> {
    if parts.n == 0 {
        return Ok((Vec::new(), Vec::new(), None));
    }
    let ep = t1.e_prime_dense_ctx(parts, ctx);
    let eig = sym_eig(&ep)?;
    let mut lambdas = Vec::new();
    let mut vectors = Vec::new();
    // Descending order to match the LASO path.
    for idx in (0..parts.n).rev() {
        let lam = eig.values[idx];
        if lam >= lambda_c {
            lambdas.push(lam);
            vectors.push((0..parts.n).map(|i| eig.vectors[(i, idx)]).collect());
        } else {
            break;
        }
    }
    Ok((lambdas, vectors, None))
}

fn laso_poles(
    t1: &Transform1,
    parts: &Partitions,
    lambda_c: f64,
    cfg: &LanczosConfig,
    ctx: &ParCtx,
) -> Result<Poles, ReduceError> {
    if parts.n == 0 {
        return Ok((Vec::new(), Vec::new(), None));
    }
    let op = t1.e_prime_operator_ctx(parts, *ctx);
    debug_assert_eq!(op.dim(), parts.n);
    // An explicit thread choice in the Lanczos config wins; otherwise the
    // reduction's resolved thread count flows through.
    let cfg = if cfg.threads.is_none() {
        let mut c = cfg.clone();
        c.threads = Some(ctx.threads());
        c
    } else {
        cfg.clone()
    };
    let (pairs, stats) = eigs_above_with_stats(&op, lambda_c, &cfg)?;
    let mut lambdas = Vec::with_capacity(pairs.len());
    let mut vectors = Vec::with_capacity(pairs.len());
    for p in pairs {
        lambdas.push(p.value);
        vectors.push(p.vector);
    }
    Ok((lambdas, vectors, Some(stats)))
}
