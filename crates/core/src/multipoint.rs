//! Multipoint moment expansion with passivity-preserving congruence
//! projection (FlexRC / SMP-RCR style).
//!
//! Flat PACT matches moments of the port admittance only at s = 0, so
//! its accuracy near the cutoff is bought entirely with retained poles.
//! This module matches moments at several *expansion points* as well:
//! for each shifted point `s_k` it computes the port response columns
//! `(D + s_k E)⁻¹ P` (with `P = R − E D⁻¹ Q`, the transformed
//! connection block in untransformed coordinates), stacks them with the
//! flat spectral basis, orthonormalizes, and projects `(G, C)` through
//! a single congruence — so the reduced model keeps flat PACT's
//! passivity guarantee while reaching the same in-band accuracy with
//! fewer poles.
//!
//! ## Coordinates and the D-inner product
//!
//! Everything runs in *untransformed* internal coordinates. With the
//! Cholesky factor `F Fᵀ = D` of the first congruence, a transformed
//! basis `V = Fᵀ Y` is Euclidean-orthonormal exactly when `Y` is
//! orthonormal in the D-inner product `⟨a, b⟩_D = aᵀ D b`, and
//!
//! ```text
//! Ẽ = Vᵀ E' V = Yᵀ E Y,     E' = F⁻¹ E F⁻ᵀ
//! r̃ᵢ = (V wᵢ)ᵀ P' = wᵢᵀ (Yᵀ P),   Ẽ wᵢ = λ̃ᵢ wᵢ
//! ```
//!
//! so no `Fᵀ`-multiplication primitive is ever needed: D-orthonormal
//! columns, one sparse `E` product per column, and plain dot products
//! give the projected pencil and the reduced connection rows.
//!
//! The flat spectral block is always included: the kept eigenvectors
//! `uᵢ` of `E'` map to `yᵢ = F⁻ᵀ uᵢ`, which are D-orthonormal by
//! construction (`yᵢᵀ D yⱼ = uᵢᵀ uⱼ`). Exact eigenpairs inside the
//! span reproduce through the projection (`Ẽ (Vᵀu) = λ (Vᵀu)` when
//! `u ∈ span(V)`), so with no shifted points the result agrees with
//! flat PACT to rounding — that degenerate case is the equivalence
//! anchor the test suite pins.
//!
//! ## Passivity
//!
//! `[B′ P̃ᵀ; P̃ Ẽ]` is a congruence (projector `[I 0; 0 V]`) of the
//! transformed capacitance matrix, hence positive semidefinite;
//! diagonalizing `Ẽ` is another congruence and dropping pole rows takes
//! a principal submatrix. PSD survives each step, so the reduced model
//! is passive exactly as in the flat algorithm — the paper's Section 5
//! argument applies unchanged.
//!
//! ## Shifted factorizations
//!
//! All shifted systems share one union sparsity structure: a
//! [`CscPencil`] over `(D, E)` evaluated per point, factored through a
//! single value-free [`SymbolicLu`] analysis captured at s = 0 (real)
//! and replayed at every point — `Complex64` on the imaginary axis,
//! `f64` on the negative real axis. The analysis is cached on the
//! [`ReductionSession`] keyed by the pencil's pattern fingerprint, so
//! warm decks of the same topology skip straight to numeric
//! refactorization.
//!
//! Point sign convention (hertz): `f > 0` is the imaginary-axis point
//! `s = j·2πf` — always regular for an SPD `D` — while `f < 0` is the
//! negative-real-axis shift `s = −2π|f|`, where the pencil's poles
//! live. A real shift landing on (or within relief tolerance of) a
//! pole fails with the typed [`ReduceError::ExpansionPointAtPole`],
//! attributing the internal node of the vanishing pivot.
//!
//! ## Determinism
//!
//! Candidate order is fixed (spectral block, then per point in order,
//! per port, real before imaginary parts), the modified Gram–Schmidt
//! loop is serial, and every parallel stage computes each column with
//! one worker in an identical instruction sequence — the reduced model
//! and all counters are bit-identical across thread counts; warm and
//! cold sessions differ only in the `factorizations` /
//! `refactorizations` counters.

use std::sync::Arc;
use std::time::Instant;

use pact_netlist::RcNetwork;
use pact_sparse::{
    axpy, dot, scale, sym_eig, Complex64, CscMat, CscPencil, DMat, ParCtx, PivotPolicy,
    RefactorError, Scalar, SparseLu, SparseLuError, SymbolicLu,
};

use crate::backend;
use crate::model::ReducedModel;
use crate::partition::Partitions;
use crate::reduce::{ReduceError, ReduceStrategy, Reduction};
use crate::session::{finish_reduction, ReductionSession};
use crate::telemetry::{Telemetry, Warning};
use crate::transform::Transform1;

/// Shifted expansion points the automatic selection places (in addition
/// to the always-included s = 0 spectral/moment block).
pub const DEFAULT_NUM_POINTS: usize = 2;

/// A candidate basis column is dropped as linearly dependent when its
/// D-norm after two Gram–Schmidt passes falls below this fraction of
/// its original D-norm.
const BASIS_DROP_TOL: f64 = 1e-8;

/// A projected pole is kept while its worst per-port in-band model
/// contribution exceeds this fraction of the error tolerance (see the
/// keep rule in [`reduce_network_multipoint`]). Calibrated against the
/// `multipoint_ablation` curves: on the Table 2 substrate at 3 GHz the
/// weakest pole ranks at 0.10 of tolerance and is redundant (dropping
/// it measures 3.1 % against the 5 % spec), while on both Table 4
/// meshes every pole from 0.16 of tolerance up is essential (dropping
/// the weakest jumps the measured error past 80 %); 0.12 splits the
/// two with margin on each side.
const KEEP_FRACTION: f64 = 0.12;

/// Relief floor for the shifted-pencil pivot ratio when the reduction
/// options don't set one: a point whose smallest `U` pivot modulus falls
/// below this fraction of the largest is reported as sitting on a pole.
const POINT_RELIEF: f64 = 1e-12;

/// Automatic expansion points for a cutoff spec: `n` log-spaced
/// imaginary-axis frequencies between `f_max / 2` and the pole-dropping
/// cutoff `f_c` (all positive, so every auto-selected shift is provably
/// regular). Deterministic in the spec alone.
pub fn auto_points(cutoff: &crate::cutoff::CutoffSpec, n: usize) -> Vec<f64> {
    let lo = cutoff.f_max() / 2.0;
    let hi = cutoff.cutoff_frequency();
    match n {
        0 => Vec::new(),
        1 => vec![(lo * hi).sqrt()],
        _ => (0..n)
            .map(|k| lo * (hi / lo).powf(k as f64 / (n - 1) as f64))
            .collect(),
    }
}

/// Maps a shifted-factorization singularity to the typed expansion-point
/// error (internal-node attribution: LU columns are in natural order, so
/// the pivot column *is* the internal node index).
fn at_pole(point_hz: f64, index: usize, pivot: f64) -> ReduceError {
    ReduceError::ExpansionPointAtPole {
        point_hz,
        index,
        pivot,
    }
}

/// Factors one shifted evaluation of the pencil through the shared
/// symbolic analysis, falling back to a fresh factorization when
/// threshold pivoting rejects the cached pivot sequence, and applying
/// the near-pole relief check on the `U` diagonal.
fn shifted_lu<S: Scalar>(
    sym: &SymbolicLu,
    a: &CscMat<S>,
    point_hz: f64,
    relief: f64,
    tel: &mut Telemetry,
) -> Result<SparseLu<S>, ReduceError> {
    let lu = match sym.refactor(a) {
        Ok(lu) => {
            tel.counters.refactorizations += 1;
            lu
        }
        Err(RefactorError::Singular { column }) => return Err(at_pole(point_hz, column, 0.0)),
        Err(RefactorError::PivotRejected { .. }) | Err(RefactorError::StructureMismatch) => {
            match SparseLu::factor(a) {
                Ok(lu) => {
                    tel.counters.factorizations += 1;
                    lu
                }
                Err(SparseLuError { column }) => return Err(at_pole(point_hz, column, 0.0)),
            }
        }
    };
    let (argmin, min, max) = lu.diag_extremes();
    // `partial_cmp` so a NaN pivot (overflowed elimination) also lands
    // on the at-pole path rather than passing a `<=` comparison.
    if min.partial_cmp(&(relief * max)) != Some(std::cmp::Ordering::Greater) {
        let ratio = if max > 0.0 { min / max } else { 0.0 };
        return Err(at_pole(point_hz, argmin, ratio));
    }
    Ok(lu)
}

/// The multipoint reduction of one network (see the module docs for the
/// algorithm). `num_points` is the automatic point count; an explicit
/// [`crate::ReduceOptions::expansion_points`] list overrides it.
pub(crate) fn reduce_network_multipoint(
    session: &mut ReductionSession,
    network: &RcNetwork,
    num_points: usize,
) -> Result<Reduction, ReduceError> {
    let opts = session.options().clone();
    debug_assert!(matches!(opts.strategy, ReduceStrategy::Multipoint { .. }));
    let start = Instant::now();
    let mut tel = Telemetry::new();
    let ctx = ParCtx::new(opts.threads);

    let stamped = network.stamp();
    let port_names: Vec<String> = network.node_names[..network.num_ports].to_vec();
    let internal_name = |i: usize| {
        network
            .node_names
            .get(network.num_ports + i)
            .cloned()
            .unwrap_or_else(|| format!("internal#{i}"))
    };
    let parts = tel.time("partition", || Partitions::split(&stamped));
    let (m, n) = (parts.m, parts.n);

    // First congruence, exactly as flat: Cholesky of D (through the
    // session's symbolic cache) and the exact first two moments.
    let policy = match opts.pivot_relief {
        Some(rel_threshold) => PivotPolicy::Perturb { rel_threshold },
        None => PivotPolicy::Error,
    };
    let factor_start = Instant::now();
    let factored = session.factor_internal(&parts.d, policy);
    tel.record_phase("factor", factor_start.elapsed().as_secs_f64());
    let (chol, diag, cache_hit) = factored?;
    for p in &diag.perturbed {
        tel.warn(Warning::PerturbedPivot {
            node: internal_name(p.index),
            pivot: p.original,
            replaced_with: p.replaced_with,
        });
    }
    tel.counters.perturbed_pivots = diag.perturbed.len() as u64;
    if cache_hit {
        tel.counters.refactorizations = 1;
    } else {
        tel.counters.factorizations = 1;
    }
    tel.counters.supernode_count = chol.supernode_count() as u64;
    tel.counters.max_panel_cols = chol.max_panel_cols() as u64;
    tel.counters.panel_flops = chol.panel_flops();

    let t1 = tel.time("moments", || Transform1::with_factor(&parts, chol, &ctx));
    let lambda_c = opts.cutoff.lambda_c();

    // Spectral block: flat PACT's kept eigenpairs of E', mapped to
    // untransformed coordinates y = F⁻ᵀu (D-orthonormal by construction).
    let eigen_start = Instant::now();
    let poles = backend::compute_poles(
        &opts.eigen_backend,
        opts.dense_threshold,
        &t1,
        &parts,
        lambda_c,
        &ctx,
    );
    tel.record_phase("eigen", eigen_start.elapsed().as_secs_f64());
    let (sol, backend_name) = poles?;
    tel.record_eigen_choice("multipoint:base", backend_name, n, sol.lambdas.len());

    // Shifted expansion points: the explicit override (zero / non-finite
    // entries were filtered at the CLI and daemon edges, but the core
    // filters again so the library API is safe on its own), or the
    // automatic log-spaced selection from the cutoff spec.
    let points: Vec<f64> = match &opts.expansion_points {
        Some(ps) => ps
            .iter()
            .copied()
            .filter(|f| f.is_finite() && *f != 0.0)
            .collect(),
        None => auto_points(&opts.cutoff, num_points),
    };

    let basis_start = Instant::now();

    // P = R − E D⁻¹ Q, one column per port (never needed transformed:
    // both the shifted solves and the reduced rows consume it raw).
    let qt = parts.q.transpose();
    let rt = parts.r.transpose();
    let pcols: Vec<Vec<f64>> = ctx.map_items(
        m,
        || (vec![0.0f64; n], vec![0.0f64; n], Vec::new()),
        |(rhs, ex, work), j| {
            rhs.iter_mut().for_each(|v| *v = 0.0);
            for (i, v) in qt.row_iter(j) {
                rhs[i] = v;
            }
            let mut x = vec![0.0f64; n];
            t1.chol.solve_into(rhs, &mut x, work);
            parts.e.matvec_into(&x, ex);
            let mut p = vec![0.0f64; n];
            for (i, v) in rt.row_iter(j) {
                p[i] = v;
            }
            for (pi, ei) in p.iter_mut().zip(ex.iter()) {
                *pi -= ei;
            }
            p
        },
    );

    // Candidate columns: spectral block first, then per point / per port
    // (real before imaginary parts) — a fixed, thread-invariant order.
    let mut candidates: Vec<Vec<f64>> = sol.vectors.iter().map(|u| t1.chol.ftsolve(u)).collect();
    let spectral_count = candidates.len();

    if !points.is_empty() && n > 0 {
        let gtrips: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| parts.d.row_iter(i).map(move |(j, v)| (i, j, v)))
            .collect();
        let ctrips: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| parts.e.row_iter(i).map(move |(j, v)| (i, j, v)))
            .collect();
        let pencil = CscPencil::from_triplets(n, &gtrips, &ctrips);
        let key = pencil.pattern_key();
        let a0 = pencil.eval_real(0.0);
        let sym = match session.lu_lookup(key, &a0) {
            Some(sym) => sym,
            None => {
                // Capture the analysis from the (always SPD) s = 0
                // evaluation; the numeric factor is a by-product.
                let (_, sym) = SparseLu::factor_analyzed(&a0)
                    .map_err(|SparseLuError { column }| at_pole(0.0, column, 0.0))?;
                tel.counters.factorizations += 1;
                let sym = Arc::new(sym);
                session.lu_insert(key, Arc::clone(&sym));
                sym
            }
        };
        let relief = opts.pivot_relief.unwrap_or(POINT_RELIEF);

        for &f in &points {
            let omega = 2.0 * std::f64::consts::PI * f.abs();
            if f > 0.0 {
                // Imaginary-axis point s = jω: complex solves; the real
                // and imaginary parts of each solution span the same
                // space as the point and its conjugate.
                let a_s = pencil.eval(omega);
                let lu = shifted_lu(&sym, &a_s, f, relief, &mut tel)?;
                let cols = ctx.map_items(
                    m,
                    || (),
                    |_, j| {
                        let rhs: Vec<Complex64> =
                            pcols[j].iter().map(|&v| Complex64::from_real(v)).collect();
                        lu.solve(&rhs)
                    },
                );
                for y in cols {
                    candidates.push(y.iter().map(|c| c.re).collect());
                    candidates.push(y.iter().map(|c| c.im).collect());
                }
            } else {
                // Negative-real-axis shift s = −ω: real solves, one
                // column per port. This is the axis where the pencil's
                // poles live — the relief check above can reject it.
                let a_s = pencil.eval_real(-omega);
                let lu = shifted_lu(&sym, &a_s, f, relief, &mut tel)?;
                candidates.extend(ctx.map_items(m, || (), |_, j| lu.solve(&pcols[j])));
            }
        }
    }
    tel.counters.multipoint_points = points.len() as u64;
    tel.counters.multipoint_moment_poles = (candidates.len() - spectral_count) as u64;

    // Two-pass modified Gram–Schmidt in the D-inner product, serial and
    // in fixed candidate order. Columns that lose more than
    // `1 − BASIS_DROP_TOL` of their D-norm are linearly dependent on
    // earlier ones and dropped.
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut basis_d: Vec<Vec<f64>> = Vec::new(); // D·y per kept column
    let mut dropped = 0u64;
    let mut dv = vec![0.0f64; n];
    for mut y in candidates {
        parts.d.matvec_into(&y, &mut dv);
        let orig = dot(&y, &dv).sqrt();
        // Not strictly positive (zero or NaN): the candidate carries no
        // D-norm and cannot be orthonormalized.
        if orig.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            dropped += 1;
            continue;
        }
        for _pass in 0..2 {
            for (q, dq) in basis.iter().zip(&basis_d) {
                let c = dot(&y, dq);
                axpy(-c, q, &mut y);
            }
        }
        parts.d.matvec_into(&y, &mut dv);
        let nrm = dot(&y, &dv).sqrt();
        if nrm < BASIS_DROP_TOL * orig {
            dropped += 1;
            continue;
        }
        scale(1.0 / nrm, &mut y);
        basis_d.push(dv.iter().map(|v| v / nrm).collect());
        basis.push(y);
    }
    let k = basis.len();
    tel.counters.multipoint_basis_columns = k as u64;
    tel.counters.multipoint_basis_dropped = dropped;
    tel.record_phase("multipoint_basis", basis_start.elapsed().as_secs_f64());

    // Congruence projection and pole analysis of the projected pencil:
    // G̃ = YᵀDY = I by construction, so the pencil reduces to the dense
    // symmetric Ẽ = YᵀEY.
    let project_start = Instant::now();
    let ey: Vec<Vec<f64>> = ctx.map_items(
        k,
        || vec![0.0f64; n],
        |buf, j| {
            parts.e.matvec_into(&basis[j], buf);
            buf.clone()
        },
    );
    let mut et = DMat::zeros(k, k);
    let rows = ctx.map_items(
        k,
        || (),
        |_, a| (a..k).map(|b| dot(&basis[a], &ey[b])).collect::<Vec<f64>>(),
    );
    for (a, row) in rows.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            et[(a, a + off)] = v;
            et[(a + off, a)] = v;
        }
    }
    et.symmetrize();

    // Reduced connection rows come from Yᵀ P: r̃ᵢ = wᵢᵀ (YᵀP), because
    // (Fᵀ y)ᵀ F⁻¹ P = yᵀ P — no transformed quantities needed.
    let yp: Vec<Vec<f64>> = ctx.map_items(
        k,
        || (),
        |_, a| (0..m).map(|j| dot(&basis[a], &pcols[j])).collect(),
    );

    let (lambdas, r2) = if k == 0 {
        (Vec::new(), DMat::zeros(0, m))
    } else {
        let eig = sym_eig(&et)?;
        // Keep rule, in descending λ̃ order. Without shifted points this
        // is exactly flat's λ̃ ≥ λ_c spectral cutoff. With shifted
        // points, a pole is kept while its worst *per-port* in-band
        // contribution — the magnitude of the dropped model term
        // s²·r̃ᵢⱼ²/(1+sλ̃) at s = jω_max, monotone in ω, relative to
        // that port's own admittance scale |A'ⱼⱼ| + ω_max·B'ⱼⱼ — clears
        // a fraction of the error tolerance. Per-port normalization
        // matters: a pole negligible against the largest port can still
        // dominate a small one. This is what buys fewer poles than the
        // flat spectral rule — near-cutoff poles with negligible
        // residues no longer survive on frequency alone.
        let omega_max = 2.0 * std::f64::consts::PI * opts.cutoff.f_max();
        let port_scale: Vec<f64> = (0..m)
            .map(|j| t1.a1[(j, j)].abs() + omega_max * t1.b1[(j, j)].abs())
            .collect();
        let threshold = KEEP_FRACTION * opts.cutoff.tolerance();
        let base_only = points.is_empty();
        let mut lambdas = Vec::new();
        let mut rows_kept: Vec<Vec<f64>> = Vec::new();
        for idx in (0..k).rev() {
            let lam = eig.values[idx];
            if base_only {
                if lam < lambda_c {
                    break;
                }
            } else if lam <= 0.0 {
                break;
            }
            let row: Vec<f64> = (0..m)
                .map(|j| (0..k).map(|a| eig.vectors[(a, idx)] * yp[a][j]).sum())
                .collect();
            if !base_only {
                let band = omega_max * omega_max / (1.0 + (omega_max * lam).powi(2)).sqrt();
                let contribution = row
                    .iter()
                    .zip(&port_scale)
                    .map(|(r, s)| band * r * r / s.max(f64::MIN_POSITIVE))
                    .fold(0.0f64, f64::max);
                if contribution < threshold {
                    continue;
                }
            }
            lambdas.push(lam);
            rows_kept.push(row);
        }
        let mut r2 = DMat::zeros(lambdas.len(), m);
        for (i, row) in rows_kept.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                r2[(i, j)] = v;
            }
        }
        (lambdas, r2)
    };
    tel.record_eigen_choice("multipoint:pencil", "dense", k, lambdas.len());
    tel.record_phase("multipoint_project", project_start.elapsed().as_secs_f64());

    let model = ReducedModel {
        a1: t1.a1.clone(),
        b1: t1.b1.clone(),
        r2,
        lambdas,
        port_names,
    };
    let chol_memory = t1.chol.memory_bytes();
    let modelled = chol_memory
        + 2 * m * m * 8              // A', B'
        + k * n * 8                  // orthonormal basis Y
        + k * n * 8                  // E·Y columns
        + k * k * 8                  // projected pencil Ẽ
        + (k + 4) * n * 8; // P columns + solver workspace
    Ok(finish_reduction(
        tel,
        start,
        model,
        n,
        t1.chol.l_nnz(),
        chol_memory,
        modelled,
        sol.lanczos,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::CutoffSpec;

    #[test]
    fn auto_points_are_log_spaced_and_positive() {
        let spec = CutoffSpec::new(3e9, 0.05).unwrap();
        let pts = auto_points(&spec, 3);
        assert_eq!(pts.len(), 3);
        assert!((pts[0] - spec.f_max() / 2.0).abs() < 1.0);
        assert!((pts[2] - spec.cutoff_frequency()).abs() < 1.0);
        // Log-spaced: constant ratio between neighbours.
        let r0 = pts[1] / pts[0];
        let r1 = pts[2] / pts[1];
        assert!((r0 - r1).abs() < 1e-9 * r0);
        assert!(pts.iter().all(|&f| f > 0.0));
        assert!(auto_points(&spec, 0).is_empty());
        let one = auto_points(&spec, 1);
        assert_eq!(one.len(), 1);
        assert!(one[0] > spec.f_max() / 2.0 && one[0] < spec.cutoff_frequency());
    }

    #[test]
    fn expansion_point_error_carries_attribution() {
        let e = at_pole(-2.5e9, 7, 3e-15);
        match e {
            ReduceError::ExpansionPointAtPole {
                point_hz,
                index,
                pivot,
            } => {
                assert_eq!(point_hz, -2.5e9);
                assert_eq!(index, 7);
                assert_eq!(pivot, 3e-15);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
