//! # pact — Pole Analysis via Congruence Transformations
//!
//! A from-scratch reproduction of the RC-network reduction algorithm of
//! Kerns & Yang, *Stable and Efficient Reduction of Large, Multiport RC
//! Networks by Pole Analysis via Congruence Transformations* (DAC 1996).
//!
//! PACT reduces a large multiport RC network — `(G + sC)x = b` with `m`
//! ports and `n ≫ m` internal nodes — to a small **passive** equivalent
//! that matches the first two moments of the multiport admittance exactly
//! and preserves every admittance pole below a user-chosen cutoff
//! frequency. Because both steps are congruence transformations, the
//! reduced conductance/susceptance matrices inherit the non-negative
//! definiteness of the originals, which is necessary and sufficient for
//! passivity — reduced networks can never destabilize a simulation.
//!
//! The pipeline (Sections 2–3 of the paper):
//!
//! 1. [`Partitions::split`] — order ports first and slice `G`, `C` into
//!    the `A/B`, `Q/R`, `D/E` blocks (eq. 2);
//! 2. [`Transform1::compute`] — congruence by the Cholesky factor of `D`:
//!    `A' = A − QᵀX` and `B' = B − PᵀX − XᵀR` become the exact first two
//!    moments, `Q` vanishes, `D → I` (eq. 6–9);
//! 3. pole analysis — eigenpairs of `E' = L⁻¹EL⁻ᵀ` above
//!    `λ_c = 1/(2π f_c)` ([`CutoffSpec`]) are found by LASO
//!    (`pact_lanczos`) or densely, and everything else is dropped
//!    (eq. 10–12);
//! 4. [`ReducedModel`] — the `m + k` node reduced network, evaluable as
//!    `Y(jω)` ([`ReducedModel::y_at`]), checkable for passivity, and
//!    convertible back to a SPICE RC netlist
//!    ([`ReducedModel::to_netlist_elements`]).
//!
//! ## Quick start
//!
//! ```
//! use pact::{reduce_network, CutoffSpec, ReduceOptions};
//! use pact_netlist::{extract_rc, parse};
//!
//! // A 20-segment RC line driven by a source and loading a MOSFET gate.
//! let mut deck = String::from("* line\nV1 n0 0 1\nM1 x n20 0 0 nch\n.model nch nmos()\n");
//! for i in 0..20 {
//!     deck.push_str(&format!("R{i} n{i} n{} 12.5\n", i + 1));
//!     deck.push_str(&format!("C{i} n{} 0 67.5f\n", i + 1));
//! }
//! let ex = extract_rc(&parse(&deck)?, &[])?;
//! let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05)?);
//! let red = reduce_network(&ex.network, &opts)?;
//! assert!(red.model.num_poles() < ex.network.num_internal());
//! assert!(red.model.is_passive(1e-9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod admittance;
mod backend;
mod cutoff;
mod error;
pub mod extract;
pub mod hier;
pub mod json;
pub mod lru;
mod matrix_free;
mod model;
pub mod multipoint;
mod partition;
mod reduce;
mod sanitize;
mod session;
mod telemetry;
mod transform;
mod verify;

pub use admittance::{transimpedance_of, FullAdmittance, PortImpedance, SweepCounts, YEvaluator};
pub use backend::{
    DenseQlBackend, EigenBackend, EigenSelect, EigenSolution, LanczosBackend, LowRankBackend,
};
pub use cutoff::{CutoffError, CutoffSpec};
pub use error::PactError;
pub use extract::{
    collapse_chains, reduce_embedded, ChainCollapse, ChainCollapseSpec, EmbeddedReduction,
    ExtractOptions,
};
pub use lru::LruCache;
pub use matrix_free::{reduce_matrix_free, DSolver, PcgSolver};
pub use model::ReducedModel;
pub use pact_sparse::CholKernel;
pub use partition::Partitions;
pub use reduce::{
    reduce, reduce_network, reduce_network_components, ComponentReduction, ReduceError,
    ReduceOptions, ReduceStrategy, Reduction, ReductionStats,
};
pub use sanitize::{sanitize_network, SanitizeReport};
pub use session::ReductionSession;
pub use telemetry::{Counters, EigenChoice, PhaseTiming, Telemetry, Warning};
pub use transform::{EPrimeOp, Transform1};
pub use verify::{verify_reduction, verify_reduction_with, ErrorSample, VerificationReport};

#[cfg(test)]
mod tests {
    use super::*;
    use pact_lanczos::LanczosConfig;
    use pact_netlist::{extract_rc, parse, RcNetwork};
    use pact_sparse::Ordering;

    /// Builds the paper's illustrative example: a distributed RC line of
    /// 250 Ω / 1.35 pF split into `nseg` segments, port at each end.
    fn rc_line(nseg: usize) -> RcNetwork {
        let mut deck = String::from("* line\nV1 p_in 0 1\nM1 x p_out 0 0 nch\n.model nch nmos()\n");
        let r = 250.0 / nseg as f64;
        let c = 1.35e-12 / nseg as f64;
        for i in 0..nseg {
            let a = if i == 0 {
                "p_in".to_owned()
            } else {
                format!("n{i}")
            };
            let b = if i == nseg - 1 {
                "p_out".to_owned()
            } else {
                format!("n{}", i + 1)
            };
            deck.push_str(&format!("R{i} {a} {b} {r}\n"));
            // Distributed line: half caps at segment ends.
            deck.push_str(&format!("C{i}a {a} 0 {}\n", c / 2.0));
            deck.push_str(&format!("C{i}b {b} 0 {}\n", c / 2.0));
        }
        deck.push_str(".end\n");
        extract_rc(&parse(&deck).unwrap(), &[]).unwrap().network
    }

    #[test]
    fn paper_example_one_pole_at_4_7_ghz() {
        // 100-segment line, 5 % tolerance, 5 GHz max frequency: the paper
        // reports a single retained pole at 4.7 GHz.
        let net = rc_line(100);
        assert_eq!(net.num_internal(), 99);
        let opts = ReduceOptions::new(CutoffSpec::new(5e9, 0.05).unwrap());
        let red = reduce_network(&net, &opts).unwrap();
        assert_eq!(
            red.model.num_poles(),
            1,
            "expected exactly one pole below {:.3} GHz",
            opts.cutoff.cutoff_frequency() / 1e9
        );
        let f_pole = red.model.pole_frequencies()[0];
        assert!(
            (f_pole - 4.7e9).abs() / 4.7e9 < 0.05,
            "pole at {:.3} GHz, paper says 4.7 GHz",
            f_pole / 1e9
        );
    }

    #[test]
    fn reduced_admittance_tracks_exact_below_fmax() {
        let net = rc_line(60);
        let stamped = net.stamp();
        let parts = Partitions::split(&stamped);
        let full = FullAdmittance::new(&parts);
        let spec = CutoffSpec::new(3e9, 0.05).unwrap();
        let red = reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
        // Sample the magnitude of Y11 and Y12 up to f_max; relative error
        // must stay within ~tolerance.
        for k in 0..12 {
            let f = 10f64.powf(7.0 + (k as f64) * (9.477 - 7.0) / 11.0); // up to 3 GHz
            let ye = full.y_at(f).unwrap();
            let yr = red.model.y_at(f);
            for (i, j) in [(0, 0), (0, 1), (1, 1)] {
                let exact = ye[(i, j)].abs();
                let approx = yr[(i, j)].abs();
                assert!(
                    (approx - exact).abs() <= 0.06 * exact.max(1e-12),
                    "f={f:.3e} Y[{i}{j}] exact={exact:.4e} reduced={approx:.4e}"
                );
            }
        }
    }

    #[test]
    fn moments_are_matched_exactly() {
        // DC admittance (0th moment) of reduced == exact.
        let net = rc_line(40);
        let stamped = net.stamp();
        let parts = Partitions::split(&stamped);
        let full = FullAdmittance::new(&parts);
        let red = reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap()),
        )
        .unwrap();
        let y0e = full.y_at(0.0).unwrap();
        let y0r = red.model.y_at(0.0);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (y0e[(i, j)].re - y0r[(i, j)].re).abs()
                        <= 1e-10 * y0e[(i, j)].re.abs().max(1e-12),
                    "DC moment mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn laso_and_dense_strategies_agree() {
        let net = rc_line(50);
        let spec = CutoffSpec::new(5e9, 0.05).unwrap();
        let mut opts = ReduceOptions::new(spec);
        opts.eigen_backend = EigenSelect::Dense;
        let dense = reduce_network(&net, &opts).unwrap();
        opts.eigen_backend = EigenSelect::Lanczos(LanczosConfig::default());
        let laso = reduce_network(&net, &opts).unwrap();
        assert_eq!(dense.model.num_poles(), laso.model.num_poles());
        for (a, b) in dense.model.lambdas.iter().zip(&laso.model.lambdas) {
            assert!((a - b).abs() < 1e-6 * a.abs());
        }
        // The admittances agree even though eigenvector signs may differ.
        let f = 2e9;
        let ya = dense.model.y_at(f);
        let yb = laso.model.y_at(f);
        for i in 0..2 {
            for j in 0..2 {
                assert!((ya[(i, j)] - yb[(i, j)]).abs() < 1e-8 * ya[(i, j)].abs().max(1e-12));
            }
        }
    }

    #[test]
    fn reduction_is_passive() {
        let net = rc_line(80);
        for tol in [0.01, 0.05, 0.2] {
            let red = reduce_network(
                &net,
                &ReduceOptions::new(CutoffSpec::new(4e9, tol).unwrap()),
            )
            .unwrap();
            assert!(red.model.is_passive(1e-8), "not passive at tol {tol}");
        }
    }

    #[test]
    fn higher_fmax_keeps_more_poles() {
        let net = rc_line(100);
        let count = |fmax: f64| {
            reduce_network(
                &net,
                &ReduceOptions::new(CutoffSpec::new(fmax, 0.05).unwrap()),
            )
            .unwrap()
            .model
            .num_poles()
        };
        let low = count(3e8);
        let mid = count(3e9);
        let high = count(3e10);
        assert!(low <= mid && mid <= high);
        assert!(high > low, "pole count should grow with fmax");
    }

    #[test]
    fn stats_populated_and_orderings_equivalent() {
        let net = rc_line(30);
        let spec = CutoffSpec::new(5e9, 0.05).unwrap();
        let mut opts = ReduceOptions::new(spec);
        opts.ordering = Ordering::Natural;
        let a = reduce_network(&net, &opts).unwrap();
        opts.ordering = Ordering::MinDegree;
        let b = reduce_network(&net, &opts).unwrap();
        assert_eq!(a.model.num_poles(), b.model.num_poles());
        assert!(a.stats.chol_nnz > 0);
        assert!(a.stats.modelled_memory_bytes > 0);
        assert!(a.stats.elapsed_seconds >= 0.0);
        assert_eq!(a.stats.num_internal, net.num_internal());
    }

    #[test]
    fn no_internal_nodes_degenerates_gracefully() {
        let nl = parse("* r\nV1 a 0 1\nV2 b 0 1\nR1 a b 100\nC1 a b 1p\n.end\n").unwrap();
        let net = extract_rc(&nl, &[]).unwrap().network;
        assert_eq!(net.num_internal(), 0);
        let red = reduce_network(
            &net,
            &ReduceOptions::new(CutoffSpec::new(1e9, 0.05).unwrap()),
        )
        .unwrap();
        assert_eq!(red.model.num_poles(), 0);
        let y = red.model.y_at(1e9);
        assert!((y[(0, 0)].re - 0.01).abs() < 1e-12);
    }

    #[test]
    fn component_reduction_matches_whole_network() {
        // Two independent ladders reduced per component must give the
        // same port admittances as reducing the union at once.
        let mut deck = String::from(
            "* two\nV1 x0 0 1\nM1 q xN 0 0 nch\nV2 y0 0 1\nM2 r yN 0 0 nch\n.model nch nmos()\n",
        );
        for (p, nseg, r, c) in [("x", 20usize, 200.0, 1.0e-12), ("y", 15, 120.0, 0.7e-12)] {
            for i in 0..nseg {
                let a = if i == 0 {
                    format!("{p}0")
                } else {
                    format!("{p}m{i}")
                };
                let b = if i == nseg - 1 {
                    format!("{p}N")
                } else {
                    format!("{p}m{}", i + 1)
                };
                deck.push_str(&format!("R{p}{i} {a} {b} {}\n", r / nseg as f64));
                deck.push_str(&format!("C{p}{i} {b} 0 {}\n", c / nseg as f64));
            }
        }
        let net = extract_rc(&parse(&deck).unwrap(), &[]).unwrap().network;
        let opts = ReduceOptions::new(CutoffSpec::new(3e9, 0.05).unwrap());
        let whole = reduce_network(&net, &opts).unwrap();
        let comps = reduce_network_components(&net, &opts).unwrap();
        assert_eq!(comps.reductions.len(), 2);
        assert_eq!(comps.floating_dropped, 0);
        assert_eq!(comps.num_poles(), whole.model.num_poles());
        assert!(comps.is_passive(1e-8));
        // Per-port admittance agreement at a few frequencies: the whole
        // model's Y is block diagonal over components.
        for f in [1e8, 1e9, 3e9] {
            let yw = whole.model.y_at(f);
            for r in &comps.reductions {
                let yc = r.model.y_at(f);
                for (i, ni) in r.model.port_names.iter().enumerate() {
                    let gi = whole.model.port_names.iter().position(|p| p == ni).unwrap();
                    for (j, nj) in r.model.port_names.iter().enumerate() {
                        let gj = whole.model.port_names.iter().position(|p| p == nj).unwrap();
                        assert!(
                            (yc[(i, j)] - yw[(gi, gj)]).abs()
                                <= 1e-9 * yw[(gi, gj)].abs().max(1e-12),
                            "component Y mismatch at f={f:e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reduced_netlist_reproduces_admittance() {
        // Unstamp the reduced model, restamp the emitted elements, and
        // verify the resulting network has the same Y (SPICE-out
        // correctness).
        let net = rc_line(40);
        let spec = CutoffSpec::new(5e9, 0.05).unwrap();
        let red = reduce_network(&net, &ReduceOptions::new(spec)).unwrap();
        let els = red.model.to_netlist_elements("x", 0.0);
        let mut names = red.model.port_names.clone();
        for i in 0..red.model.num_poles() {
            names.push(format!("x_p{i}"));
        }
        let idx = |s: &str| names.iter().position(|n| n == s);
        let nn = names.len();
        let mut gt = pact_sparse::TripletMat::new(nn, nn);
        let mut ct = pact_sparse::TripletMat::new(nn, nn);
        for e in &els {
            match &e.kind {
                pact_netlist::ElementKind::Resistor { a, b, ohms } => {
                    gt.stamp_conductance(idx(a), idx(b), 1.0 / ohms);
                }
                pact_netlist::ElementKind::Capacitor { a, b, farads } => {
                    ct.stamp_conductance(idx(a), idx(b), *farads);
                }
                _ => unreachable!("unstamp only emits RC elements"),
            }
        }
        let st = pact_netlist::Stamped {
            g: gt.to_csr(),
            c: ct.to_csr(),
            num_ports: red.model.num_ports(),
        };
        let parts = Partitions::split(&st);
        let full = FullAdmittance::new(&parts);
        for &f in &[1e8, 1e9, 4e9] {
            let ya = full.y_at(f).unwrap();
            let yb = red.model.y_at(f);
            for i in 0..2 {
                for j in 0..2 {
                    assert!(
                        (ya[(i, j)] - yb[(i, j)]).abs() < 1e-6 * yb[(i, j)].abs().max(1e-12),
                        "netlist admittance mismatch at f={f:e} ({i},{j})"
                    );
                }
            }
        }
    }
}
