//! Structured telemetry for the reduction pipeline.
//!
//! Every phase of the PACT flow (parse → extract → sanitize → partition
//! → factor → moments → eigen → projection → emit) records wall time and
//! integer counters into a [`Telemetry`] value that travels with the
//! result instead of being printed ad hoc. `rcfit --trace` renders it as
//! a human-readable table; `--log-json` writes the machine form
//! (schema `rcfit-telemetry-v1`, documented in DESIGN.md).
//!
//! Determinism contract: every field of [`Counters`] and every
//! [`Warning`] is a pure function of the input network and options —
//! never of thread count or timing. `counters_json_string` serializes
//! exactly that deterministic subset, and `par_determinism` asserts it
//! is bit-identical across 1/2/4/8 threads. Wall times are the only
//! non-deterministic content and live solely in `phases`.

use crate::json::Value;

/// Wall time spent in one named pipeline phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTiming {
    /// Phase name (e.g. `"factor"`, `"eigen"`).
    pub name: &'static str,
    /// Wall-clock seconds, summed over repeated entries of the same phase
    /// (per-component reduction runs each phase once per component).
    pub seconds: f64,
}

/// Deterministic integer counters describing what the pipeline did.
///
/// All fields are totals; [`Counters::add`] makes them compose across
/// per-component reductions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Ports in the (sanitized) network handed to the reducer.
    pub num_ports: u64,
    /// Internal nodes in the (sanitized) network handed to the reducer.
    pub num_internal: u64,
    /// Poles retained below the cutoff.
    pub poles_retained: u64,
    /// Poles examined and dropped (above the cutoff).
    pub poles_dropped: u64,
    /// Largest square-matrix dimension factored or decomposed.
    pub peak_matrix_dim: u64,
    /// Nonzeros in the Cholesky factor `L` of `D`.
    pub chol_nnz: u64,
    /// Supernode panels in the Cholesky factor of `D` (0 when the scalar
    /// kernel is selected).
    pub supernode_count: u64,
    /// Widest supernode panel in columns (peak; takes max).
    pub max_panel_cols: u64,
    /// Structural flops of the supernodal numeric factorization — a
    /// function of the sparsity pattern only, so thread-count invariant.
    pub panel_flops: u64,
    /// Pivots replaced by the relief floor (see `PivotPolicy::Perturb`).
    pub perturbed_pivots: u64,
    /// Internal nodes pruned for lacking a resistive path to any port.
    pub pruned_internal_nodes: u64,
    /// Ports with no element connection at all.
    pub disconnected_ports: u64,
    /// Distinct element names that appeared more than once.
    pub duplicate_element_names: u64,
    /// Zero-valued capacitors dropped during sanitization.
    pub zero_value_elements: u64,
    /// Connected components independently reduced.
    pub components_reduced: u64,
    /// Floating port-free islands discarded in per-component mode.
    pub floating_islands_dropped: u64,
    /// Lanczos iterations across all restarts.
    pub lanczos_iterations: u64,
    /// Operator applications inside Lanczos.
    pub lanczos_matvecs: u64,
    /// Lanczos restarts.
    pub lanczos_restarts: u64,
    /// Full reorthogonalization passes.
    pub lanczos_reorthogonalizations: u64,
    /// Leaf blocks reduced by the hierarchical strategy.
    pub hier_blocks: u64,
    /// Total separator (interface) nodes across the dissection tree.
    pub hier_separator_nodes: u64,
    /// Internal nodes in the largest leaf block (peak; takes max).
    pub hier_max_block_nodes: u64,
    /// Nodes in the largest single separator (peak; takes max).
    pub hier_max_separator_nodes: u64,
    /// Poles retained across all leaf reductions (before the top pass).
    pub hier_leaf_poles_retained: u64,
    /// Guard-band leaf poles dropped by the per-leaf residue budget (the
    /// two-level leaf path's replacement for blanket cutoff widening).
    pub hier_leaf_trimmed_poles: u64,
    /// Leaf factorizations that reused a symbolic analysis deduplicated
    /// across the leaf fan-out (same-pattern leaves analyze once).
    pub hier_leaf_pattern_reuses: u64,
    /// Leaf blocks with no port/separator boundary, dropped as
    /// unobservable.
    pub hier_portless_blocks_dropped: u64,
    /// Depth of the nested-dissection tree (peak; takes max).
    pub hier_tree_depth: u64,
    /// Expansion points used by the multipoint strategy (shifted points;
    /// the always-present s = 0 moment block is not counted).
    pub multipoint_points: u64,
    /// Orthonormal basis columns after stacking and deduplication — the
    /// dimension of the projected pencil.
    pub multipoint_basis_columns: u64,
    /// Candidate basis columns dropped as linearly dependent during
    /// orthonormalization.
    pub multipoint_basis_dropped: u64,
    /// Moment-matching (non-spectral) candidate columns generated across
    /// all expansion points before orthonormalization.
    pub multipoint_moment_poles: u64,
    /// Degree-2 RC chains collapsed by the series-chain pre-pass
    /// (`pact::extract::collapse_chains`).
    pub chains_collapsed: u64,
    /// Internal nodes eliminated by the chain-collapse pre-pass (chain
    /// interior nodes removed minus re-segmentation nodes added).
    pub nodes_eliminated: u64,
    /// Ported RC subnetworks independently reduced by the embedded
    /// extraction pass (`pact::extract::reduce_embedded`).
    pub extract_subnets: u64,
    /// Fresh full sparse-LU factorizations (symbolic + numeric) across
    /// sweep phases (e.g. the `--verify` exact-admittance grid).
    pub factorizations: u64,
    /// Numeric-only refactorizations that reused a cached symbolic
    /// analysis instead of paying a full factorization.
    pub refactorizations: u64,
}

impl Counters {
    /// Field-wise accumulation, except `peak_matrix_dim` which takes the
    /// max (it is a peak, not a total).
    pub fn add(&mut self, other: &Counters) {
        self.num_ports += other.num_ports;
        self.num_internal += other.num_internal;
        self.poles_retained += other.poles_retained;
        self.poles_dropped += other.poles_dropped;
        self.peak_matrix_dim = self.peak_matrix_dim.max(other.peak_matrix_dim);
        self.chol_nnz += other.chol_nnz;
        self.supernode_count += other.supernode_count;
        self.max_panel_cols = self.max_panel_cols.max(other.max_panel_cols);
        self.panel_flops += other.panel_flops;
        self.perturbed_pivots += other.perturbed_pivots;
        self.pruned_internal_nodes += other.pruned_internal_nodes;
        self.disconnected_ports += other.disconnected_ports;
        self.duplicate_element_names += other.duplicate_element_names;
        self.zero_value_elements += other.zero_value_elements;
        self.components_reduced += other.components_reduced;
        self.floating_islands_dropped += other.floating_islands_dropped;
        self.lanczos_iterations += other.lanczos_iterations;
        self.lanczos_matvecs += other.lanczos_matvecs;
        self.lanczos_restarts += other.lanczos_restarts;
        self.lanczos_reorthogonalizations += other.lanczos_reorthogonalizations;
        self.hier_blocks += other.hier_blocks;
        self.hier_separator_nodes += other.hier_separator_nodes;
        self.hier_max_block_nodes = self.hier_max_block_nodes.max(other.hier_max_block_nodes);
        self.hier_max_separator_nodes = self
            .hier_max_separator_nodes
            .max(other.hier_max_separator_nodes);
        self.hier_leaf_poles_retained += other.hier_leaf_poles_retained;
        self.hier_leaf_trimmed_poles += other.hier_leaf_trimmed_poles;
        self.hier_leaf_pattern_reuses += other.hier_leaf_pattern_reuses;
        self.hier_portless_blocks_dropped += other.hier_portless_blocks_dropped;
        self.hier_tree_depth = self.hier_tree_depth.max(other.hier_tree_depth);
        self.multipoint_points += other.multipoint_points;
        self.multipoint_basis_columns += other.multipoint_basis_columns;
        self.multipoint_basis_dropped += other.multipoint_basis_dropped;
        self.multipoint_moment_poles += other.multipoint_moment_poles;
        self.chains_collapsed += other.chains_collapsed;
        self.nodes_eliminated += other.nodes_eliminated;
        self.extract_subnets += other.extract_subnets;
        self.factorizations += other.factorizations;
        self.refactorizations += other.refactorizations;
    }

    /// (name, value) pairs in a fixed order — the single source of truth
    /// for both JSON serialization and the `--trace` table.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("num_ports", self.num_ports),
            ("num_internal", self.num_internal),
            ("poles_retained", self.poles_retained),
            ("poles_dropped", self.poles_dropped),
            ("peak_matrix_dim", self.peak_matrix_dim),
            ("chol_nnz", self.chol_nnz),
            ("supernode_count", self.supernode_count),
            ("max_panel_cols", self.max_panel_cols),
            ("panel_flops", self.panel_flops),
            ("perturbed_pivots", self.perturbed_pivots),
            ("pruned_internal_nodes", self.pruned_internal_nodes),
            ("disconnected_ports", self.disconnected_ports),
            ("duplicate_element_names", self.duplicate_element_names),
            ("zero_value_elements", self.zero_value_elements),
            ("components_reduced", self.components_reduced),
            ("floating_islands_dropped", self.floating_islands_dropped),
            ("lanczos_iterations", self.lanczos_iterations),
            ("lanczos_matvecs", self.lanczos_matvecs),
            ("lanczos_restarts", self.lanczos_restarts),
            (
                "lanczos_reorthogonalizations",
                self.lanczos_reorthogonalizations,
            ),
            ("hier_blocks", self.hier_blocks),
            ("hier_separator_nodes", self.hier_separator_nodes),
            ("hier_max_block_nodes", self.hier_max_block_nodes),
            ("hier_max_separator_nodes", self.hier_max_separator_nodes),
            ("hier_leaf_poles_retained", self.hier_leaf_poles_retained),
            ("hier_leaf_trimmed_poles", self.hier_leaf_trimmed_poles),
            ("hier_leaf_pattern_reuses", self.hier_leaf_pattern_reuses),
            (
                "hier_portless_blocks_dropped",
                self.hier_portless_blocks_dropped,
            ),
            ("hier_tree_depth", self.hier_tree_depth),
            ("multipoint_points", self.multipoint_points),
            ("multipoint_basis_columns", self.multipoint_basis_columns),
            ("multipoint_basis_dropped", self.multipoint_basis_dropped),
            ("multipoint_moment_poles", self.multipoint_moment_poles),
            ("chains_collapsed", self.chains_collapsed),
            ("nodes_eliminated", self.nodes_eliminated),
            ("extract_subnets", self.extract_subnets),
            ("factorizations", self.factorizations),
            ("refactorizations", self.refactorizations),
        ]
    }

    fn to_json(self) -> Value {
        Value::Obj(
            self.fields()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), Value::num(v as f64)))
                .collect(),
        )
    }
}

/// A recoverable anomaly the pipeline worked around instead of failing.
///
/// Warnings carry node/element attribution so the user can fix the
/// extracted netlist; they are part of the deterministic telemetry
/// subset.
#[derive(Clone, Debug, PartialEq)]
pub enum Warning {
    /// A quasi-singular diagonal pivot of `D` was raised to the relief
    /// floor (D ← D + ΔD with ΔD ⪰ 0 diagonal, which preserves
    /// passivity; see DESIGN.md).
    PerturbedPivot {
        /// Node name owning the pivot.
        node: String,
        /// The offending pivot value.
        pivot: f64,
        /// The floor it was replaced with.
        replaced_with: f64,
    },
    /// An internal node with no resistive path to any port or to ground
    /// was removed before Transform 1 (it would make `D` singular).
    PrunedFloatingInternal {
        /// Node name.
        node: String,
    },
    /// A port with no element connection at all; it contributes an empty
    /// row/column and is reported rather than silently carried.
    DisconnectedPort {
        /// Port node name.
        node: String,
    },
    /// The same element name appeared on multiple cards.
    DuplicateElementName {
        /// The (lower-cased) element name.
        name: String,
        /// How many cards used it.
        count: usize,
    },
    /// A zero-valued capacitor was dropped during sanitization.
    ZeroValueElement {
        /// Element name, when known, else the node pair.
        name: String,
    },
}

impl Warning {
    /// Stable machine-readable discriminant for JSON output and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Warning::PerturbedPivot { .. } => "perturbed_pivot",
            Warning::PrunedFloatingInternal { .. } => "pruned_floating_internal",
            Warning::DisconnectedPort { .. } => "disconnected_port",
            Warning::DuplicateElementName { .. } => "duplicate_element_name",
            Warning::ZeroValueElement { .. } => "zero_value_element",
        }
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![("kind".to_owned(), Value::str(self.kind()))];
        match self {
            Warning::PerturbedPivot {
                node,
                pivot,
                replaced_with,
            } => {
                fields.push(("node".to_owned(), Value::str(node.clone())));
                fields.push(("pivot".to_owned(), Value::num(*pivot)));
                fields.push(("replaced_with".to_owned(), Value::num(*replaced_with)));
            }
            Warning::PrunedFloatingInternal { node } | Warning::DisconnectedPort { node } => {
                fields.push(("node".to_owned(), Value::str(node.clone())));
            }
            Warning::DuplicateElementName { name, count } => {
                fields.push(("name".to_owned(), Value::str(name.clone())));
                fields.push(("count".to_owned(), Value::num(*count as f64)));
            }
            Warning::ZeroValueElement { name } => {
                fields.push(("name".to_owned(), Value::str(name.clone())));
            }
        }
        Value::Obj(fields)
    }
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::PerturbedPivot {
                node,
                pivot,
                replaced_with,
            } => write!(
                f,
                "quasi-singular pivot {pivot:.3e} at node `{node}` raised to {replaced_with:.3e}"
            ),
            Warning::PrunedFloatingInternal { node } => {
                write!(
                    f,
                    "internal node `{node}` has no resistive path to a port; pruned"
                )
            }
            Warning::DisconnectedPort { node } => {
                write!(f, "port `{node}` is not connected to any element")
            }
            Warning::DuplicateElementName { name, count } => {
                write!(f, "element name `{name}` used by {count} cards")
            }
            Warning::ZeroValueElement { name } => {
                write!(f, "zero-valued capacitor `{name}` dropped")
            }
        }
    }
}

/// Which eigen backend served one pole-analysis block, and at what size.
///
/// One record per eigendecomposition the run performed: the flat path
/// emits one, the hierarchical path one per leaf plus one for the top
/// (separator) pass, and per-component reduction one per component.
/// Part of the deterministic telemetry subset — backend selection is a
/// pure function of block size and options, never of thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EigenChoice {
    /// Which block this record describes (`"flat"`, `"leaf3"`, `"top"`,
    /// `"component2"`, `"pencil"`).
    pub scope: String,
    /// Backend that ran: `"dense"`, `"lanczos"`, `"lowrank"`,
    /// `"pencil_lanczos"` for the matrix-free path, or `"schur"` for the
    /// hierarchical two-level leaf path (Gram eigenanalysis on the
    /// factored Schur complement, residues read off the moment panel).
    pub backend: &'static str,
    /// Dimension of the internal block the backend decomposed.
    pub dim: u64,
    /// Poles the backend retained below the cutoff.
    pub poles: u64,
}

impl EigenChoice {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("scope".to_owned(), Value::str(self.scope.clone())),
            ("backend".to_owned(), Value::str(self.backend)),
            ("dim".to_owned(), Value::num(self.dim as f64)),
            ("poles".to_owned(), Value::num(self.poles as f64)),
        ])
    }
}

/// The telemetry record for one pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    /// Per-phase wall times in first-appearance order.
    pub phases: Vec<PhaseTiming>,
    /// Deterministic counters.
    pub counters: Counters,
    /// Deterministic warnings, in pipeline order.
    pub warnings: Vec<Warning>,
    /// Eigen backend chosen for each pole-analysis block, in pipeline
    /// order.
    pub eigen_choices: Vec<EigenChoice>,
}

impl Telemetry {
    /// Creates an empty record.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Adds `seconds` to the phase named `name`, creating it on first
    /// use. Repeated phases sum so per-component runs aggregate.
    pub fn record_phase(&mut self, name: &'static str, seconds: f64) {
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(p) => p.seconds += seconds,
            None => self.phases.push(PhaseTiming { name, seconds }),
        }
    }

    /// Runs `f`, recording its wall time under `name`, and returns its
    /// result.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record_phase(name, start.elapsed().as_secs_f64());
        out
    }

    /// Records a warning.
    pub fn warn(&mut self, warning: Warning) {
        self.warnings.push(warning);
    }

    /// Records which eigen backend served one pole-analysis block.
    pub fn record_eigen_choice(
        &mut self,
        scope: impl Into<String>,
        backend: &'static str,
        dim: usize,
        poles: usize,
    ) {
        self.eigen_choices.push(EigenChoice {
            scope: scope.into(),
            backend,
            dim: dim as u64,
            poles: poles as u64,
        });
    }

    /// Merges another record into this one: phase times sum by name,
    /// counters accumulate, warnings and eigen choices append.
    pub fn absorb(&mut self, other: &Telemetry) {
        for p in &other.phases {
            self.record_phase(p.name, p.seconds);
        }
        self.counters.add(&other.counters);
        self.warnings.extend(other.warnings.iter().cloned());
        self.eigen_choices
            .extend(other.eigen_choices.iter().cloned());
    }

    /// The full machine-readable document (schema `rcfit-telemetry-v1`).
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("schema".to_owned(), Value::str("rcfit-telemetry-v1")),
            (
                "phases".to_owned(),
                Value::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Value::obj(vec![
                                ("name".to_owned(), Value::str(p.name)),
                                ("seconds".to_owned(), Value::num(p.seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("counters".to_owned(), self.counters.to_json()),
            (
                "warnings".to_owned(),
                Value::Arr(self.warnings.iter().map(Warning::to_json).collect()),
            ),
            (
                "eigen_choices".to_owned(),
                Value::Arr(
                    self.eigen_choices
                        .iter()
                        .map(EigenChoice::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes only the deterministic subset (counters + warnings +
    /// eigen choices, no timings). Bit-identical across thread counts by
    /// the crate's determinism contract; `par_determinism` asserts
    /// exactly this string.
    pub fn counters_json_string(&self) -> String {
        Value::obj(vec![
            ("counters".to_owned(), self.counters.to_json()),
            (
                "warnings".to_owned(),
                Value::Arr(self.warnings.iter().map(Warning::to_json).collect()),
            ),
            (
                "eigen_choices".to_owned(),
                Value::Arr(
                    self.eigen_choices
                        .iter()
                        .map(EigenChoice::to_json)
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Renders the human-readable `--trace` table.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("phase            seconds\n");
        let mut total = 0.0;
        for p in &self.phases {
            out.push_str(&format!("  {:<14} {:>10.6}\n", p.name, p.seconds));
            total += p.seconds;
        }
        out.push_str(&format!("  {:<14} {:>10.6}\n", "total", total));
        out.push_str("counters\n");
        for (name, v) in self.counters.fields() {
            if v != 0 {
                out.push_str(&format!("  {name:<28} {v}\n"));
            }
        }
        if !self.eigen_choices.is_empty() {
            out.push_str("eigen backends\n");
            for c in &self.eigen_choices {
                out.push_str(&format!(
                    "  {:<14} {:<10} dim={} poles={}\n",
                    c.scope, c.backend, c.dim, c.poles
                ));
            }
        }
        if !self.warnings.is_empty() {
            out.push_str("warnings\n");
            for w in &self.warnings {
                out.push_str(&format!("  [{}] {w}\n", w.kind()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_sum_by_name_in_first_appearance_order() {
        let mut t = Telemetry::new();
        t.record_phase("factor", 0.5);
        t.record_phase("eigen", 1.0);
        t.record_phase("factor", 0.25);
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[0].name, "factor");
        assert_eq!(t.phases[0].seconds, 0.75);
        assert_eq!(t.phases[1].name, "eigen");
    }

    #[test]
    fn absorb_merges_phases_counters_warnings() {
        let mut a = Telemetry::new();
        a.record_phase("factor", 1.0);
        a.counters.poles_retained = 3;
        a.counters.peak_matrix_dim = 10;
        let mut b = Telemetry::new();
        b.record_phase("factor", 2.0);
        b.record_phase("eigen", 4.0);
        b.counters.poles_retained = 2;
        b.counters.peak_matrix_dim = 50;
        b.warn(Warning::DisconnectedPort { node: "p3".into() });
        a.absorb(&b);
        assert_eq!(a.phases[0].seconds, 3.0);
        assert_eq!(a.phases[1].name, "eigen");
        assert_eq!(a.counters.poles_retained, 5);
        assert_eq!(a.counters.peak_matrix_dim, 50, "peaks take max, not sum");
        assert_eq!(a.warnings.len(), 1);
    }

    #[test]
    fn json_document_roundtrips_and_carries_schema() {
        let mut t = Telemetry::new();
        t.record_phase("parse", 0.001);
        t.counters.num_ports = 4;
        t.warn(Warning::PerturbedPivot {
            node: "n17".into(),
            pivot: 1e-30,
            replaced_with: 1e-12,
        });
        let doc = t.to_json();
        let text = doc.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").unwrap().as_str().unwrap(),
            "rcfit-telemetry-v1"
        );
        let counters = back.get("counters").unwrap();
        assert_eq!(counters.get("num_ports").unwrap().as_f64().unwrap(), 4.0);
        let warnings = back.get("warnings").unwrap().as_arr().unwrap();
        assert_eq!(
            warnings[0].get("kind").unwrap().as_str().unwrap(),
            "perturbed_pivot"
        );
        assert_eq!(warnings[0].get("node").unwrap().as_str().unwrap(), "n17");
    }

    #[test]
    fn counters_json_excludes_timings() {
        let mut t = Telemetry::new();
        t.record_phase("factor", 123.0);
        t.counters.chol_nnz = 99;
        let s = t.counters_json_string();
        assert!(!s.contains("seconds"), "timings must not leak: {s}");
        assert!(s.contains("\"chol_nnz\":99"));
    }

    #[test]
    fn eigen_choices_serialize_and_absorb() {
        let mut a = Telemetry::new();
        a.record_eigen_choice("flat", "lowrank", 12, 3);
        let mut b = Telemetry::new();
        b.record_eigen_choice("leaf0", "lanczos", 900, 17);
        a.absorb(&b);
        assert_eq!(a.eigen_choices.len(), 2);
        assert_eq!(a.eigen_choices[1].scope, "leaf0");
        let s = a.counters_json_string();
        assert!(s.contains("\"backend\":\"lowrank\""), "{s}");
        assert!(s.contains("\"scope\":\"leaf0\""), "{s}");
        let doc = a.to_json();
        let back = Value::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
        let trace = a.render_trace();
        assert!(trace.contains("eigen backends"), "{trace}");
        assert!(trace.contains("lanczos"), "{trace}");
    }

    #[test]
    fn trace_render_lists_phases_and_nonzero_counters() {
        let mut t = Telemetry::new();
        t.record_phase("eigen", 0.5);
        t.counters.poles_retained = 7;
        t.warn(Warning::ZeroValueElement { name: "c4".into() });
        let s = t.render_trace();
        assert!(s.contains("eigen"));
        assert!(s.contains("poles_retained"));
        assert!(!s.contains("chol_nnz"), "zero counters are elided");
        assert!(s.contains("zero_value_element"));
    }
}
