//! TurboMOR-style two-level leaf reduction.
//!
//! The original hierarchical path ran the *full* flat PACT pipeline per
//! leaf — including a per-pole projection (`r2_rows`, three sparse
//! solves per retained pole) that dominated leaf cost under the widened
//! [`crate::hier::LEAF_CUTOFF_GUARD`] cutoff. This module replaces it
//! with a two-level split in the spirit of TurboMOR's block elimination:
//! leaf internals are eliminated through the cached Cholesky factor
//! (the Schur complement onto the boundary is exactly the `A'`/`B'`
//! moment computation), and the pole content is read off a *small*
//! `c×c` Gram eigenproblem plus the moment panel — no per-pole solves.
//!
//! ## Residues from the moment panel
//!
//! With the capacitance split `E = U Uᵀ` (`c = rank bound ≪ n` for
//! extracted RC leaves) and `X = F⁻¹U`, the nonzero spectrum of
//! `E' = F⁻¹EF⁻ᵀ = XXᵀ` is that of the Gram matrix `XᵀX`. For a Gram
//! eigenpair `(λ_p, z_p)` the lifted eigenvector is `u_p = Xz_p/√λ_p`,
//! so the residue row of the second congruence transform collapses to
//!
//! ```text
//! R''[p, :] = u_pᵀ F⁻¹ P = (1/√λ_p) z_pᵀ Xᵀ F⁻¹ P
//!           = (1/√λ_p) z_pᵀ Uᵀ (D⁻¹ P) = (1/√λ_p) z_pᵀ (Uᵀ S)
//! ```
//!
//! where `S = D⁻¹P = Y − Z` is exactly the per-port solution panel the
//! moment fan-out already computes ([`Transform1::with_factor_panel`]).
//! `Uᵀ` has at most two nonzeros per row, so the whole residue block
//! costs `O(c·m + c²·m)` dense flops — the leaf projection phase
//! disappears.
//!
//! ## Budgeted guard-band trimming
//!
//! Dropping a *set* `Δ` of pole terms changes the leaf admittance by
//! `ΔY(jω) = Σ_{p∈Δ} ω² r_p r_pᵀ / (1 + jωλ_p)`, so with
//! `M = Σ_{p∈Δ} r_p r_pᵀ` every quadratic form obeys
//! `|xᵀ ΔY x| ≤ ω² xᵀMx ≤ ω² ‖M‖₂` (each term is PSD rank-1 scaled by
//! `1/(1+jωλ)`, `|1 + jωλ| ≥ 1` for `λ > 0`), while `A'`/`B'` — the
//! first two moments — are unaffected. Poles below the user cutoff
//! `λ_c` are therefore dropped greedily, ascending in their individual
//! bound `e_p = ω_max²‖r_p‖²`, while a cheap upper bound on
//! `ω_max²‖M‖₂` (trace first, then the Gershgorin row sum of the
//! maintained `M`) stays within [`TRIM_BUDGET_REL`]`·‖A'‖_max` —
//! instead of blanket-retaining everything down to
//! `λ_c /` [`crate::hier::LEAF_CUTOFF_GUARD`]. The distinction between
//! trace and spectral norm matters: distinct Gram modes couple to the
//! boundary in nearly orthogonal directions, so the collective
//! perturbation is close to the *largest* individual `e_p`, not their
//! sum, and the row-sum bound tracks that within a small factor.
//! Keeping a subset of pole rows is a principal-submatrix congruence of
//! the realized `(G'', C'')`, so passivity survives exactly as before.

use std::sync::Arc;
use std::time::Instant;

use pact_netlist::RcNetwork;
use pact_sparse::{
    sym_eig, CholKernel, CsrMat, DMat, FactorDiagnostics, FactorError, Ordering, ParCtx,
    PivotPolicy, SparseCholesky,
};

use crate::backend::{self, capacitance_split, sparse_dot, CapTerm, EigenSelect};
use crate::cutoff::CutoffSpec;
use crate::hier::partition_tree::LeafBlock;
use crate::model::ReducedModel;
use crate::partition::Partitions;
use crate::reduce::{remap_factor_index, ReduceError, ReduceOptions, Reduction};
use crate::sanitize::sanitize_network;
use crate::session::{finish_reduction, SymbolicCache};
use crate::telemetry::{Telemetry, Warning};
use crate::transform::Transform1;

/// Guard-band trim budget, relative to the leaf's `‖A'‖_max` (its DC
/// port-conductance scale): the worst-case in-band admittance
/// perturbation `ω_max²‖Σ_dropped r_p r_pᵀ‖₂` of the dropped sub-cutoff
/// poles — bounded via its Gershgorin row sum, see [`schur_leaf_poles`]
/// — stays below this fraction of the leaf's own conductance norm.
///
/// The bound is worst-case in three stacked ways (it evaluates at
/// `ω_max`, takes `|1 + jωλ_p| ≥ 1`, and maximizes over port
/// directions), while both the hier top pass and the flat reference
/// drop the *same* sub-cutoff spectral content at the user cutoff, so
/// the parity-visible residual is the second-order interaction between
/// leaf trimming and top truncation: empirically nanovolts-level, and
/// validated at `1e-6` by `hier_equivalence.rs` across the mesh /
/// power-grid / line suite.
pub(crate) const TRIM_BUDGET_REL: f64 = 1e-5;

/// A leaf after the parallel preparation pre-pass: sanitized, stamped
/// and partitioned, with its `D`-pattern fingerprint for the symbolic
/// dedup step.
pub(crate) struct PreparedLeaf {
    /// The sanitized leaf network (names feed warning attribution).
    pub network: RcNetwork,
    /// Sanitize warnings, tagged with the block id at merge time.
    pub warnings: Vec<Warning>,
    /// Partitioned leaf matrices (boundary-as-ports first).
    pub parts: Partitions,
    /// `parts.d.pattern_key()`, the symbolic-cache fingerprint.
    pub pattern_key: u64,
    /// Wall seconds of the stamp+partition work (merged into the
    /// `leaf_partition` phase).
    pub partition_seconds: f64,
}

/// Sanitizes, stamps and partitions one leaf block (the parallel
/// pre-pass of the fan-out; no numeric factorization happens here).
pub(crate) fn prepare_leaf(leaf: &LeafBlock) -> Result<PreparedLeaf, ReduceError> {
    let report = sanitize_network(&leaf.network)?;
    let start = Instant::now();
    let stamped = report.network.stamp();
    let parts = Partitions::split(&stamped);
    let pattern_key = parts.d.pattern_key();
    Ok(PreparedLeaf {
        warnings: report.warnings,
        network: report.network,
        parts,
        pattern_key,
        partition_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Numeric factorization against the shared pattern cache. The
/// `leaf_reuse` pre-pass guarantees every leaf pattern is present, so
/// this is a refactorization in all but pathological cases (capacity
/// eviction on a tree with more unique patterns than cache slots).
fn factor_cached(
    cache: &mut SymbolicCache,
    d: &CsrMat,
    key: u64,
    ordering: Ordering,
    kernel: CholKernel,
    policy: PivotPolicy,
) -> Result<(SparseCholesky, FactorDiagnostics), FactorError> {
    if let Some(sym) = cache.lookup(key, ordering, kernel, d) {
        return sym.refactor(d, policy);
    }
    let (chol, diag, sym) =
        SparseCholesky::factor_analyzed_with_kernel(d, ordering, policy, kernel)?;
    cache.insert(key, ordering, kernel, Arc::new(sym));
    Ok((chol, diag))
}

/// Reduces one prepared leaf: cached factor → moments (retaining the
/// `S = Y − Z` panel) → two-level Gram/Schur pole analysis with
/// budgeted trimming, falling back to the guarded low-rank/dense flat
/// path when `E` is not a low-rank capacitance stamp.
///
/// Runs serially — the leaf fan-out above is the parallel axis — and
/// reports telemetry with flat phase names; the merge step renames them
/// to their `leaf_*` forms.
pub(crate) fn reduce_prepared_leaf(
    prep: &PreparedLeaf,
    leaf: &LeafBlock,
    parent: &RcNetwork,
    leaf_opts: &ReduceOptions,
    user_cutoff: &CutoffSpec,
    cache: &mut SymbolicCache,
) -> Result<Reduction, ReduceError> {
    let start = Instant::now();
    let mut tel = Telemetry::new();
    tel.record_phase("partition", prep.partition_seconds);
    let ctx = ParCtx::serial();
    let parts = &prep.parts;
    let internal_name = |i: usize| {
        prep.network
            .node_names
            .get(prep.network.num_ports + i)
            .cloned()
            .unwrap_or_else(|| format!("internal#{i}"))
    };

    let policy = match leaf_opts.pivot_relief {
        Some(rel_threshold) => PivotPolicy::Perturb { rel_threshold },
        None => PivotPolicy::Error,
    };
    let kernel = leaf_opts.chol_kernel.resolved();
    let factor_start = Instant::now();
    let factored = factor_cached(
        cache,
        &parts.d,
        prep.pattern_key,
        leaf_opts.ordering,
        kernel,
        policy,
    );
    tel.record_phase("factor", factor_start.elapsed().as_secs_f64());
    let (chol, diag) = factored.map_err(|e| {
        let e = remap_factor_index(ReduceError::from(e), &prep.network, &leaf.network);
        remap_factor_index(e, &leaf.network, parent)
    })?;
    for p in &diag.perturbed {
        tel.warn(Warning::PerturbedPivot {
            node: internal_name(p.index),
            pivot: p.original,
            replaced_with: p.replaced_with,
        });
    }
    tel.counters.perturbed_pivots = diag.perturbed.len() as u64;
    tel.counters.supernode_count = chol.supernode_count() as u64;
    tel.counters.max_panel_cols = chol.max_panel_cols() as u64;
    tel.counters.panel_flops = chol.panel_flops();

    // Commit to the two-level path *before* the moments so the moment
    // fan-out knows whether to retain the S panel.
    let split = capacitance_split(&parts.e);
    let two_level = matches!(&split, Some(terms) if terms.len() < parts.n || parts.n == 0);

    let moments_start = Instant::now();
    let (t1, panel) = Transform1::with_factor_panel(parts, chol, &ctx, two_level);
    tel.record_phase("moments", moments_start.elapsed().as_secs_f64());

    let port_names: Vec<String> = prep.network.node_names[..prep.network.num_ports].to_vec();
    let (model, poles_dim_hint);
    if two_level {
        let terms = split.as_deref().unwrap_or(&[]);
        let panel = panel.expect("panel retained on the two-level path");
        let schur_start = Instant::now();
        let schur = schur_leaf_poles(&t1, terms, &panel, user_cutoff, t1.a1.norm_max());
        tel.record_phase("schur", schur_start.elapsed().as_secs_f64());
        let schur = schur?;
        tel.counters.hier_leaf_trimmed_poles = schur.trimmed as u64;
        tel.record_eigen_choice("leaf", "schur", parts.n, schur.lambdas.len());
        poles_dim_hint = terms.len();
        model = ReducedModel {
            a1: t1.a1.clone(),
            b1: t1.b1.clone(),
            r2: schur.r2,
            lambdas: schur.lambdas,
            port_names,
        };
    } else {
        // General fallback (coupled / full-rank capacitance): the
        // guarded-cutoff low-rank/dense flat path, per-pole projection.
        let lambda_guard = leaf_opts.cutoff.lambda_c();
        let eigen_start = Instant::now();
        let poles = backend::compute_poles(
            &EigenSelect::LowRank,
            leaf_opts.dense_threshold,
            &t1,
            parts,
            lambda_guard,
            &ctx,
        );
        tel.record_phase("eigen", eigen_start.elapsed().as_secs_f64());
        let (sol, backend_name) = poles?;
        tel.record_eigen_choice("leaf", backend_name, parts.n, sol.lambdas.len());
        let r2 = tel.time("projection", || t1.r2_rows_ctx(parts, &sol.vectors, &ctx));
        poles_dim_hint = parts.n;
        model = ReducedModel {
            a1: t1.a1.clone(),
            b1: t1.b1.clone(),
            r2,
            lambdas: sol.lambdas,
            port_names,
        };
    }

    let m = parts.m;
    let k = model.lambdas.len();
    let chol_memory = t1.chol.memory_bytes();
    let modelled = chol_memory
        + 2 * m * m * 8                 // A', B'
        + poles_dim_hint * parts.n * 8  // X columns / Ritz vectors
        + parts.n * m * 8               // retained S panel
        + k * m * 8                     // R''
        + 4 * parts.n * 8; // solver workspace
    Ok(finish_reduction(
        tel,
        start,
        model,
        parts.n,
        t1.chol.l_nnz(),
        chol_memory,
        modelled,
        None,
    ))
}

/// The two-level pole analysis: kept poles (descending), their residue
/// rows, and how many guard-band candidates the budget trimmed.
struct SchurPoles {
    lambdas: Vec<f64>,
    r2: DMat<f64>,
    trimmed: usize,
}

/// One sub-cutoff candidate: Gram eigen index, eigenvalue, residue row,
/// and its worst-case in-band admittance contribution `ω_max²‖r‖²`.
struct GuardCand {
    idx: usize,
    lam: f64,
    row: Vec<f64>,
    err: f64,
}

/// `rs[i] = Σ_j |mm[i][j]|`, the exact Gershgorin row sums of `mm`.
fn exact_rowsums(mm: &[f64], m: usize, rs: &mut [f64]) {
    for (i, r) in rs.iter_mut().enumerate() {
        *r = mm[i * m..(i + 1) * m].iter().map(|v| v.abs()).sum();
    }
}

/// `mm += row rowᵀ` on a row-major `m×m` buffer.
fn accumulate_rank1(mm: &mut [f64], row: &[f64], m: usize) {
    for i in 0..m {
        let ri = row[i];
        if ri != 0.0 {
            for (o, &rj) in mm[i * m..(i + 1) * m].iter_mut().zip(row) {
                *o += ri * rj;
            }
        }
    }
}

/// Gram eigenanalysis of `XᵀX` plus panel residues and budgeted
/// trimming (see the module docs for the algebra and the error bound).
fn schur_leaf_poles(
    t1: &Transform1,
    terms: &[CapTerm],
    panel: &[f64],
    user_cutoff: &CutoffSpec,
    a1_norm: f64,
) -> Result<SchurPoles, ReduceError> {
    let n = t1.n;
    let m = t1.m;
    let c = terms.len();
    if c == 0 || n == 0 {
        return Ok(SchurPoles {
            lambdas: Vec::new(),
            r2: DMat::zeros(0, m),
            trimmed: 0,
        });
    }
    // X = F⁻¹U in blocked multi-RHS batches (bit-identical to the
    // scalar solve per the kernel's lane contract), each column
    // compressed to (index, value) pairs — a column's support is the
    // elimination-tree reach of its (at most two) nodes, usually a
    // small fraction of n. Batching bounds the dense scratch at
    // `2·n·XBATCH` while still amortizing each loaded factor entry
    // across [`pact_sparse::LANES`] right-hand sides.
    const XBATCH: usize = 64;
    let batch = c.min(XBATCH);
    let mut rhs = vec![0.0f64; n * batch];
    let mut cols = vec![0.0f64; n * batch];
    let mut work = Vec::new();
    let mut x: Vec<(Vec<u32>, Vec<f64>)> = Vec::with_capacity(c);
    let mut k0 = 0;
    while k0 < c {
        let kb = (c - k0).min(XBATCH);
        rhs[..n * kb].iter_mut().for_each(|v| *v = 0.0);
        for (k, t) in terms[k0..k0 + kb].iter().enumerate() {
            let w = t.w.sqrt();
            rhs[k * n + t.i] = w;
            if let Some(j) = t.j {
                rhs[k * n + j] = -w;
            }
        }
        t1.chol
            .fsolve_block_into(&rhs[..n * kb], kb, &mut cols[..n * kb], &mut work);
        for col in cols[..n * kb].chunks_exact(n) {
            let mut idx = Vec::new();
            let mut val = Vec::new();
            for (i, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    idx.push(i as u32);
                    val.push(v);
                }
            }
            x.push((idx, val));
        }
        k0 += kb;
    }
    // Gram matrix XᵀX (c×c), index-ascending merge dots.
    let mut gram = DMat::zeros(c, c);
    for a in 0..c {
        for b in a..c {
            let v = sparse_dot(&x[a], &x[b]);
            gram[(a, b)] = v;
            gram[(b, a)] = v;
        }
    }
    let eig = sym_eig(&gram)?;

    // W = Uᵀ S (c×m, row-major): at most two panel rows per term.
    let mut wmat = vec![0.0f64; c * m];
    for (k, t) in terms.iter().enumerate() {
        let w = t.w.sqrt();
        for j in 0..m {
            let mut v = w * panel[j * n + t.i];
            if let Some(j2) = t.j {
                v -= w * panel[j * n + j2];
            }
            wmat[k * m + j] = v;
        }
    }

    // Candidate sweep, descending eigenvalue order. λ ≥ λ_c is always
    // kept (those are the poles flat keeps too); 0 < λ < λ_c enters the
    // budgeted guard band; λ ≤ 0 is a Gram null direction — it lifts to
    // the zero vector (‖Xz‖² = λ), carries no pole, and drops free.
    let lambda_c = user_cutoff.lambda_c();
    let omega_max = 2.0 * std::f64::consts::PI * user_cutoff.f_max();
    let omega2 = omega_max * omega_max;
    let residue_row = |idx: usize, lam: f64| -> Vec<f64> {
        let scale = 1.0 / lam.sqrt();
        let mut row = vec![0.0f64; m];
        for k in 0..c {
            let zk = eig.vectors[(k, idx)] * scale;
            if zk != 0.0 {
                for (o, v) in row.iter_mut().zip(&wmat[k * m..(k + 1) * m]) {
                    *o += zk * v;
                }
            }
        }
        row
    };
    let mut kept: Vec<(f64, Vec<f64>)> = Vec::new();
    let mut guard: Vec<GuardCand> = Vec::new();
    for idx in (0..c).rev() {
        let lam = eig.values[idx];
        if lam <= 0.0 {
            break; // ascending storage: everything below is ≤ 0 too
        }
        if lam >= lambda_c {
            kept.push((lam, residue_row(idx, lam)));
        } else {
            let row = residue_row(idx, lam);
            let err = omega2 * row.iter().map(|v| v * v).sum::<f64>();
            guard.push(GuardCand { idx, lam, row, err });
        }
    }

    // Greedy trim, smallest worst-case contribution first. The dropped
    // set `Δ` perturbs the leaf admittance by
    // `ΔY(jω) = Σ_{p∈Δ} ω² r_p r_pᵀ / (1 + jωλ_p)`, and since every
    // term is a PSD rank-1 times a unit-modulus-or-less factor,
    // `|xᵀ ΔY x| ≤ ω² xᵀ M x ≤ ω² ‖M‖₂` with `M = Σ_{p∈Δ} r_p r_pᵀ`.
    // The trim admits candidates in ascending `e_p` order while a cheap
    // *upper* bound on `ω_max²‖M‖₂` stays within the budget:
    // first the trace bound `Σ e_p` (no `M` needed), then — because the
    // residue directions of distinct Gram modes are nearly orthogonal,
    // making the trace pessimistic by orders of magnitude — the
    // Gershgorin row-sum bound `‖M‖₂ ≤ ‖M‖_∞` on the incrementally
    // maintained `M`. Ordering by (err, idx) is deterministic;
    // survivors rejoin in descending-λ (= descending Gram index) order
    // behind the always-kept set.
    let budget = TRIM_BUDGET_REL * a1_norm;
    let mut order: Vec<usize> = (0..guard.len()).collect();
    order.sort_by(|&a, &b| {
        guard[a]
            .err
            .total_cmp(&guard[b].err)
            .then(guard[a].idx.cmp(&guard[b].idx))
    });
    let mut dropped = vec![false; guard.len()];
    let mut spent = 0.0f64;
    let mut trimmed = 0usize;
    let mut mm: Vec<f64> = Vec::new(); // M, built lazily on trace-bound exhaustion
    let mut rs: Vec<f64> = Vec::new(); // running row-sum upper estimates of M
    for (k, &gi) in order.iter().enumerate() {
        let g = &guard[gi];
        if mm.is_empty() && spent + g.err <= budget {
            spent += g.err;
            dropped[gi] = true;
            trimmed += 1;
            continue;
        }
        // Trace bound exhausted: switch to the Gershgorin bound on the
        // actual dropped-set matrix (backfilling M with the rows the
        // trace phase admitted).
        if mm.is_empty() {
            mm = vec![0.0f64; m * m];
            for &gj in &order[..k] {
                if dropped[gj] {
                    accumulate_rank1(&mut mm, &guard[gj].row, m);
                }
            }
            rs.resize(m, 0.0);
            exact_rowsums(&mm, m, &mut rs);
        }
        // `rs` holds per-row upper estimates of `M`'s Gershgorin row
        // sums, advanced in O(m) per candidate via the triangle
        // inequality (`|mm_ij + r_i r_j| ≤ |mm_ij| + |r_i||r_j|`). The
        // estimate only ever over-states the true row sum, so a passing
        // estimate is a passing exact check; when it fails, one exact
        // O(m²) recompute from `mm` tightens it before the real
        // verdict — decisions are identical to recomputing exactly for
        // every candidate, without the quadratic per-candidate scan.
        accumulate_rank1(&mut mm, &g.row, m);
        let l1: f64 = g.row.iter().map(|v| v.abs()).sum();
        for (r, &ri) in rs.iter_mut().zip(&g.row) {
            *r += ri.abs() * l1;
        }
        let mut worst = rs.iter().fold(0.0f64, |a, &b| a.max(b));
        if omega2 * worst > budget {
            exact_rowsums(&mm, m, &mut rs);
            worst = rs.iter().fold(0.0f64, |a, &b| a.max(b));
        }
        if omega2 * worst <= budget {
            dropped[gi] = true;
            trimmed += 1;
        } else {
            // Candidates only grow from here; the set is final.
            break;
        }
    }
    for (gi, g) in guard.into_iter().enumerate() {
        if !dropped[gi] {
            kept.push((g.lam, g.row));
        }
    }

    let mut lambdas = Vec::with_capacity(kept.len());
    let mut r2 = DMat::zeros(kept.len(), m);
    for (p, (lam, row)) in kept.into_iter().enumerate() {
        lambdas.push(lam);
        for (j, v) in row.into_iter().enumerate() {
            r2[(p, j)] = v;
        }
    }
    Ok(SchurPoles {
        lambdas,
        r2,
        trimmed,
    })
}
