//! Re-assembling per-block reduced models into one stitched network.
//!
//! Each leaf reduction yields the realized matrices (eq. 10–11)
//!
//! ```text
//! G'' = [ A'  0 ]       C'' = [ B'   R''ᵀ ]
//!       [ 0   I ]              [ R''  Λ    ]
//! ```
//!
//! over the leaf's boundary nodes plus one synthetic node per retained
//! pole. Stitching stamps every leaf's `(G'', C'')` — *raw*, not the
//! netlist-normalized form, so no rescaling noise enters — into a global
//! triplet matrix over `ports ∪ separators ∪ pole nodes`, together with
//! the residual branches that never belonged to a leaf. Because each
//! leaf contribution is congruent to the leaf's original stamp, the
//! stitched matrices are congruent to the full network's `(G, C)` up to
//! the leaf-truncated poles: symmetric, non-negative definite, and
//! exact in the first two port moments.

use pact_netlist::{RcNetwork, Stamped};
use pact_sparse::TripletMat;

use crate::hier::partition_tree::PartitionTree;
use crate::model::ReducedModel;

/// The stitched top-level network, ready for a final flat PACT pass.
#[derive(Clone, Debug)]
pub struct Stitched {
    /// Stamped `(G, C)` over ports, separators, then per-leaf pole
    /// nodes.
    pub stamped: Stamped,
    /// Names of the stitched internal nodes (separators keep their
    /// original names; pole nodes are `hier_b<block>_p<i>`), for
    /// warning/error attribution in the top pass.
    pub internal_names: Vec<String>,
}

/// Stamps the residual branches and every leaf's realized reduced
/// matrices into one stitched network.
///
/// `models` must parallel `tree.leaves` (one reduced model per kept
/// leaf, in tree order); each model's ports are the leaf's boundary in
/// ascending global order — exactly how [`PartitionTree::build`] laid
/// out the leaf sub-networks.
pub fn stitch(net: &RcNetwork, tree: &PartitionTree, models: &[ReducedModel]) -> Stitched {
    assert_eq!(models.len(), tree.leaves.len(), "one model per kept leaf");
    let m = net.num_ports;
    let nsep = tree.separators.len();
    let total_poles: usize = models.iter().map(ReducedModel::num_poles).sum();
    let dim = m + nsep + total_poles;

    // Global node index -> stitched index (ports identity, separators
    // compacted after them; leaf internals never appear).
    let mut top = vec![usize::MAX; net.num_nodes()];
    for (p, t) in top.iter_mut().enumerate().take(m) {
        *t = p;
    }
    for (k, &s) in tree.separators.iter().enumerate() {
        top[s] = m + k;
    }

    // Entry counts are known exactly up front (dense mb×mb leaf blocks
    // dominate); reserving avoids realloc churn during the stamp loop.
    let g_cap = 4 * tree.residual_resistors.len()
        + models
            .iter()
            .map(|md| md.num_ports() * md.num_ports() + md.num_poles())
            .sum::<usize>();
    let c_cap = 4 * tree.residual_capacitors.len()
        + models
            .iter()
            .map(|md| {
                let mb = md.num_ports();
                mb * mb + md.num_poles() * (1 + 2 * mb)
            })
            .sum::<usize>();
    let mut g = TripletMat::with_capacity(dim, dim, g_cap);
    let mut c = TripletMat::with_capacity(dim, dim, c_cap);

    // Residual branches live entirely on ports/separators/ground.
    for r in &tree.residual_resistors {
        g.stamp_conductance(r.a.map(|v| top[v]), r.b.map(|v| top[v]), 1.0 / r.value);
    }
    for cap in &tree.residual_capacitors {
        c.stamp_conductance(cap.a.map(|v| top[v]), cap.b.map(|v| top[v]), cap.value);
    }

    let mut internal_names: Vec<String> = tree
        .separators
        .iter()
        .map(|&s| net.node_names[s].clone())
        .collect();

    // Each leaf's (G'', C'') block, mapped boundary -> stitched index
    // and pole p -> its own fresh node. Stamped straight from the model
    // fields rather than via `to_matrices()`: the realized matrices'
    // off-blocks (`G''` boundary↔pole, zero) are structural and skipping
    // them keeps the stitch linear in the entries that exist.
    let mut pole_base = m + nsep;
    for (leaf, model) in tree.leaves.iter().zip(models) {
        let mb = model.num_ports();
        let kb = model.num_poles();
        debug_assert_eq!(mb, leaf.boundary.len(), "model ports = leaf boundary");
        let bmap: Vec<usize> = leaf.boundary.iter().map(|&b| top[b]).collect();
        // G'' = [A' 0; 0 I], C'' boundary block = B'.
        for i in 0..mb {
            let ti = bmap[i];
            for (j, &tj) in bmap.iter().enumerate() {
                g.push(ti, tj, model.a1[(i, j)]);
                c.push(ti, tj, model.b1[(i, j)]);
            }
        }
        // Pole rows: unit G diagonal, λ on C's diagonal, R'' coupling.
        for p in 0..kb {
            let tp = pole_base + p;
            g.push(tp, tp, 1.0);
            c.push(tp, tp, model.lambdas[p]);
            for (j, &tj) in bmap.iter().enumerate() {
                let v = model.r2[(p, j)];
                c.push(tp, tj, v);
                c.push(tj, tp, v);
            }
            internal_names.push(format!("hier_b{}_p{p}", leaf.id));
        }
        pole_base += kb;
    }

    Stitched {
        stamped: Stamped {
            g: g.to_csr(),
            c: c.to_csr(),
            num_ports: m,
        },
        internal_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_netlist::Branch;
    use pact_sparse::DMat;

    #[test]
    fn stitched_matrices_are_symmetric_and_sized() {
        // Two ports, one separator (node 2), two leaves each with one
        // boundary pair and a toy one-pole model.
        let net = RcNetwork {
            node_names: vec!["p0".into(), "p1".into(), "s".into(), "a".into(), "b".into()],
            num_ports: 2,
            resistors: vec![
                Branch {
                    a: Some(0),
                    b: Some(3),
                    value: 1.0,
                },
                Branch {
                    a: Some(3),
                    b: Some(2),
                    value: 1.0,
                },
                Branch {
                    a: Some(2),
                    b: Some(4),
                    value: 1.0,
                },
                Branch {
                    a: Some(4),
                    b: Some(1),
                    value: 1.0,
                },
            ],
            capacitors: vec![],
        };
        let tree = PartitionTree::build(&net, 1, 16);
        assert_eq!(tree.separators.len(), 1);
        assert_eq!(tree.leaves.len(), 2);
        let models: Vec<ReducedModel> = tree
            .leaves
            .iter()
            .map(|l| ReducedModel {
                a1: DMat::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]),
                b1: DMat::from_rows(&[&[1e-15, 0.0], &[0.0, 1e-15]]),
                r2: DMat::from_rows(&[&[1e-9, -1e-9]]),
                lambdas: vec![1e-10],
                port_names: l.network.node_names[..l.network.num_ports].to_vec(),
            })
            .collect();
        let st = stitch(&net, &tree, &models);
        // dim = 2 ports + 1 separator + 2 pole nodes.
        assert_eq!(st.stamped.g.nrows(), 5);
        assert_eq!(st.stamped.num_ports, 2);
        assert!(st.stamped.g.is_symmetric(0.0));
        assert!(st.stamped.c.is_symmetric(0.0));
        assert_eq!(st.internal_names.len(), 3);
        assert_eq!(st.internal_names[0], "s");
        assert!(st.internal_names[1].starts_with("hier_b"));
        // Pole-node diagonal of G is the identity from G''.
        assert_eq!(st.stamped.g.get(3, 3), 1.0);
        assert_eq!(st.stamped.g.get(4, 4), 1.0);
        // Pole-node diagonal of C carries λ.
        assert!((st.stamped.c.get(3, 3) - 1e-10).abs() < 1e-25);
    }
}
