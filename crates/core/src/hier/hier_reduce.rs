//! The hierarchical reduction driver: partition → leaf reductions →
//! stitch → top-level flat pass.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use pact_netlist::RcNetwork;
use pact_sparse::{FactorError, ParCtx, SymbolicCholesky};

use crate::backend::EigenSelect;
use crate::cutoff::CutoffSpec;
use crate::hier::leaf::{prepare_leaf, reduce_prepared_leaf, PreparedLeaf};
use crate::hier::partition_tree::PartitionTree;
use crate::hier::stitch::stitch;
use crate::reduce::{ReduceError, ReduceStrategy, Reduction, ReductionStats};
use crate::session::{CacheEntry, ReductionSession};
use crate::telemetry::{Telemetry, Warning};

/// Cutoff widening of the *fallback* leaf path (leaves whose
/// capacitance block is not a low-rank stamp, where the two-level
/// residue-budget trim of the `hier::leaf` module does not apply): such
/// leaves keep every pole below `LEAF_CUTOFF_GUARD × f_c`, so the only
/// poles they truncate are a factor `LEAF_CUTOFF_GUARD` above the band
/// of interest. By the high-pass error envelope (see
/// [`crate::CutoffSpec`]) their in-band contribution is
/// `≈ ½ (f / (guard · f_c))²` relative — below `1e-6` of the flat
/// reduction for the default guard. Two-level leaves instead trim
/// against an explicit per-leaf error budget, which retains far fewer
/// sub-cutoff poles for the same accuracy.
pub const LEAF_CUTOFF_GUARD: f64 = 1024.0;

/// Renames a warning's node/element attribution to carry the leaf block
/// id, so degenerate sub-blocks are directly identifiable in telemetry.
fn tag_warning(w: &Warning, block: usize) -> Warning {
    let tag = |s: &str| format!("{s}@block{block}");
    match w {
        Warning::PerturbedPivot {
            node,
            pivot,
            replaced_with,
        } => Warning::PerturbedPivot {
            node: tag(node),
            pivot: *pivot,
            replaced_with: *replaced_with,
        },
        Warning::PrunedFloatingInternal { node } => {
            Warning::PrunedFloatingInternal { node: tag(node) }
        }
        Warning::DisconnectedPort { node } => Warning::DisconnectedPort { node: tag(node) },
        Warning::DuplicateElementName { name, count } => Warning::DuplicateElementName {
            name: tag(name),
            count: *count,
        },
        Warning::ZeroValueElement { name } => Warning::ZeroValueElement { name: tag(name) },
    }
}

/// Leaf pipeline phases renamed so top-pass phases (which keep the flat
/// names) stay distinguishable in the telemetry tables.
fn leaf_phase_name(name: &'static str) -> &'static str {
    match name {
        "partition" => "leaf_partition",
        "factor" => "leaf_factor",
        "moments" => "leaf_moments",
        "schur" => "leaf_schur",
        "eigen" => "leaf_eigen",
        "projection" => "leaf_projection",
        _ => "leaf_other",
    }
}

/// Hierarchical divide-and-conquer reduction (see [`crate::hier`]).
///
/// Falls back to the flat pipeline when the partition produces at most
/// one block (tiny networks, or `max_block ≥ n`).
pub(crate) fn reduce_network_hier(
    session: &mut ReductionSession,
    network: &RcNetwork,
    max_block: usize,
    max_depth: usize,
) -> Result<Reduction, ReduceError> {
    let start = Instant::now();
    let opts = session.options().clone();
    let m = network.num_ports;
    let n_int = network.num_internal();
    let mut tel = Telemetry::new();

    let tree = tel.time("partition_tree", || {
        PartitionTree::build(network, max_block, max_depth)
    });

    if tree.leaves.len() <= 1 {
        // Nothing to divide: run flat, but keep the hier bookkeeping so
        // telemetry still says what happened.
        let mut red = session.reduce_network_flat(network, "flat")?;
        tel.absorb(&red.telemetry);
        let c = &mut tel.counters;
        c.hier_blocks = tree.leaves.len().max(1) as u64;
        c.hier_tree_depth = tree.depth as u64;
        c.hier_max_block_nodes = n_int as u64;
        red.telemetry = tel;
        return Ok(red);
    }

    // Fallback-path leaves keep poles up to a guarded cutoff so
    // truncation error stays negligible relative to the user tolerance;
    // an overflow of the guard multiplication (absurdly high f_c) falls
    // back to the user cutoff, which only keeps fewer leaf poles.
    let leaf_cutoff =
        CutoffSpec::from_cutoff_frequency(LEAF_CUTOFF_GUARD * opts.cutoff.cutoff_frequency())
            .unwrap_or(opts.cutoff);
    let mut leaf_opts = opts.clone();
    leaf_opts.cutoff = leaf_cutoff;
    leaf_opts.threads = Some(1); // one worker per leaf; fan-out is outside
    leaf_opts.strategy = ReduceStrategy::Flat;
    // Under the guarded cutoff a fallback leaf keeps a large fraction of
    // its spectrum, which is exactly the regime where an iterative
    // extremal solver (Lanczos) degenerates into full-spectrum iteration
    // with massive reorthogonalization. Blocks are bounded by
    // `max_block`, so solve them with the low-rank/dense path;
    // `opts.eigen_backend` still governs the top-level pass, where the
    // spectral problem has the usual few-poles-in-band shape.
    leaf_opts.eigen_backend = EigenSelect::LowRank;

    let ctx = ParCtx::new(opts.threads);

    // --- `leaf_reuse` pre-pass -------------------------------------
    // Prepare every leaf (sanitize → stamp → partition) in parallel,
    // then deduplicate the symbolic Cholesky work: each distinct
    // D-pattern not already in the session cache is analyzed exactly
    // once (in parallel, in first-occurrence order), and the results
    // are seeded both into the parent session and into the snapshot the
    // numeric fan-out reads. Same-pattern leaves — the common case for
    // regular meshes — share one analysis instead of re-deriving it per
    // leaf; every lookup below is then a hit, independent of worker
    // assignment, which keeps counters and models thread-invariant.
    let reuse_start = Instant::now();
    let prepared: Vec<PreparedLeaf> = ctx
        .map_items(
            tree.leaves.len(),
            || (),
            |_, k| prepare_leaf(&tree.leaves[k]),
        )
        .into_iter()
        .collect::<Result<_, ReduceError>>()?;
    let kernel = opts.chol_kernel.resolved();
    let mut probe = session.cache_snapshot();
    let mut seen = BTreeSet::new();
    let mut unique: Vec<usize> = Vec::new();
    for (k, prep) in prepared.iter().enumerate() {
        if !seen.insert(prep.pattern_key) {
            continue;
        }
        if probe
            .lookup(prep.pattern_key, opts.ordering, kernel, &prep.parts.d)
            .is_none()
        {
            unique.push(k);
        }
    }
    let analyzed = ctx.map_items(
        unique.len(),
        || (),
        |_, i| {
            SymbolicCholesky::analyze_with_kernel(
                &prepared[unique[i]].parts.d,
                opts.ordering,
                kernel,
            )
        },
    );
    let mut new_entries: Vec<CacheEntry> = Vec::with_capacity(unique.len());
    for (&k, sym) in unique.iter().zip(analyzed) {
        new_entries.push((
            (prepared[k].pattern_key, opts.ordering, kernel),
            Arc::new(sym?),
        ));
    }
    let mut leaf_cache = session.cache_snapshot();
    leaf_cache.extend(new_entries.clone());
    session.cache_extend(new_entries);
    tel.record_phase("leaf_reuse", reuse_start.elapsed().as_secs_f64());
    // Counter attribution: one fresh symbolic analysis per unique new
    // pattern; every leaf factorization itself replays a cached
    // analysis. `factorizations`/`refactorizations` are the two
    // counters warm session state legitimately moves (a warm cache
    // turns analyses into replays) — the contract `serve_determinism`
    // strips and asserts. `hier_leaf_pattern_reuses` instead counts
    // within-run pattern dedup (leaves sharing another leaf's
    // D-pattern), a function of the tree alone: identical across
    // thread counts *and* across warm-vs-cold sessions.
    tel.counters.factorizations += unique.len() as u64;
    tel.counters.refactorizations += (tree.leaves.len() - unique.len()) as u64;
    tel.counters.hier_leaf_pattern_reuses = (tree.leaves.len() - seen.len()) as u64;

    // --- numeric fan-out -------------------------------------------
    // Fan the leaves across workers; results come back in leaf order so
    // the merge below is bit-identical for every thread count. Each
    // worker clones the seeded snapshot (cheap: shared `Arc`s).
    let leaf_start = Instant::now();
    let outcomes: Vec<Result<Reduction, ReduceError>> = ctx.map_items(
        tree.leaves.len(),
        || leaf_cache.clone(),
        |cache, k| {
            reduce_prepared_leaf(
                &prepared[k],
                &tree.leaves[k],
                network,
                &leaf_opts,
                &opts.cutoff,
                cache,
            )
        },
    );
    tel.record_phase("leaf_reduce", leaf_start.elapsed().as_secs_f64());

    let mut models = Vec::with_capacity(tree.leaves.len());
    let mut leaf_poles = 0u64;
    let mut chol_nnz = 0usize;
    let mut chol_memory = 0usize;
    let mut modelled_memory = 0usize;
    for ((leaf, prep), outcome) in tree.leaves.iter().zip(&prepared).zip(outcomes) {
        let o = outcome?; // first failing leaf (in tree order) aborts
        for w in &prep.warnings {
            match w {
                Warning::PrunedFloatingInternal { .. } => tel.counters.pruned_internal_nodes += 1,
                Warning::DisconnectedPort { .. } => tel.counters.disconnected_ports += 1,
                Warning::ZeroValueElement { .. } => tel.counters.zero_value_elements += 1,
                _ => {}
            }
            tel.warn(tag_warning(w, leaf.id));
        }
        let ltel = &o.telemetry;
        for p in &ltel.phases {
            tel.record_phase(leaf_phase_name(p.name), p.seconds);
        }
        for w in &ltel.warnings {
            tel.warn(tag_warning(w, leaf.id));
        }
        for ec in &ltel.eigen_choices {
            let mut ec = ec.clone();
            ec.scope = format!("leaf{}", leaf.id);
            tel.eigen_choices.push(ec);
        }
        // Size/pole counters describing the leaf sub-problems are
        // reported through the hier_* fields; the flat-shaped fields
        // must describe the original network, so zero them before
        // accumulating the rest (work counters, peaks).
        let mut lc = ltel.counters;
        leaf_poles += lc.poles_retained;
        lc.num_ports = 0;
        lc.num_internal = 0;
        lc.poles_retained = 0;
        lc.poles_dropped = 0;
        tel.counters.add(&lc);
        chol_nnz += o.stats.chol_nnz;
        chol_memory += o.stats.chol_memory_bytes;
        modelled_memory = modelled_memory.max(o.stats.modelled_memory_bytes);
        models.push(o.model);
    }

    let stitched = tel.time("stitch", || stitch(network, &tree, &models));
    let port_names: Vec<String> = network.node_names[..m].to_vec();
    let internal_names = stitched.internal_names;
    let nsep = tree.separators.len();
    let top = session
        .reduce_stamped_scoped(
            &stitched.stamped,
            &port_names,
            &|i| {
                internal_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("internal#{i}"))
            },
            "top",
        )
        .map_err(|e| match e {
            // A singular pivot on a separator row maps back to an original
            // internal node; pole-node rows (identity diagonal) cannot fail.
            ReduceError::Factor(FactorError::NotPositiveDefinite { step, index, pivot })
                if index < nsep =>
            {
                ReduceError::Factor(FactorError::NotPositiveDefinite {
                    step,
                    index: tree.separators[index] - m,
                    pivot,
                })
            }
            ReduceError::Factor(FactorError::NonFinitePivot { step, index, pivot })
                if index < nsep =>
            {
                ReduceError::Factor(FactorError::NonFinitePivot {
                    step,
                    index: tree.separators[index] - m,
                    pivot,
                })
            }
            other => other,
        })?;

    for p in &top.telemetry.phases {
        tel.record_phase(p.name, p.seconds);
    }
    for w in &top.telemetry.warnings {
        tel.warn(w.clone());
    }
    tel.eigen_choices
        .extend(top.telemetry.eigen_choices.iter().cloned());
    let mut tc = top.telemetry.counters;
    tc.num_ports = 0;
    tc.num_internal = 0;
    tc.poles_retained = 0;
    tc.poles_dropped = 0;
    tel.counters.add(&tc);

    let poles = top.model.num_poles();
    let c = &mut tel.counters;
    c.num_ports = m as u64;
    c.num_internal = n_int as u64;
    c.poles_retained = poles as u64;
    c.poles_dropped = (n_int as u64).saturating_sub(poles as u64);
    c.hier_blocks = tree.leaves.len() as u64;
    c.hier_separator_nodes = tree.separators.len() as u64;
    c.hier_max_block_nodes = tree.max_block_nodes as u64;
    c.hier_max_separator_nodes = tree.max_separator_nodes as u64;
    c.hier_leaf_poles_retained = leaf_poles;
    c.hier_portless_blocks_dropped = tree.portless_dropped as u64;
    c.hier_tree_depth = tree.depth as u64;

    let stats = ReductionStats {
        num_ports: m,
        num_internal: n_int,
        poles_retained: poles,
        elapsed_seconds: start.elapsed().as_secs_f64(),
        chol_nnz: chol_nnz + top.stats.chol_nnz,
        chol_memory_bytes: chol_memory + top.stats.chol_memory_bytes,
        modelled_memory_bytes: modelled_memory.max(top.stats.modelled_memory_bytes),
        lanczos: top.stats.lanczos,
    };

    Ok(Reduction {
        model: top.model,
        stats,
        telemetry: tel,
    })
}
