//! The hierarchical reduction driver: partition → leaf reductions →
//! stitch → top-level flat pass.

use std::time::Instant;

use pact_netlist::RcNetwork;
use pact_sparse::{FactorError, ParCtx};

use crate::backend::EigenSelect;
use crate::cutoff::CutoffSpec;
use crate::hier::partition_tree::{LeafBlock, PartitionTree};
use crate::hier::stitch::stitch;
use crate::reduce::{
    remap_factor_index, ReduceError, ReduceOptions, ReduceStrategy, Reduction, ReductionStats,
};
use crate::sanitize::sanitize_network;
use crate::session::{CacheEntry, ReductionSession, SymbolicCache};
use crate::telemetry::{Telemetry, Warning};

/// Leaf reductions keep every pole below `LEAF_CUTOFF_GUARD × f_c` (the
/// user's cutoff times this guard), so the only poles a leaf truncates
/// are a factor `LEAF_CUTOFF_GUARD` above the band of interest. By the
/// high-pass error envelope (see [`crate::CutoffSpec`]) their in-band
/// contribution is `≈ ½ (f / (guard · f_c))²` relative — below `1e-6`
/// of the flat reduction for the default guard — while leaves still
/// shed the vast majority of their internal nodes.
pub const LEAF_CUTOFF_GUARD: f64 = 1024.0;

/// What one leaf reduction hands back to the merge step.
struct LeafOutcome {
    reduction: Reduction,
    sanitize_warnings: Vec<Warning>,
    /// Symbolic analyses this leaf's session computed beyond the shared
    /// snapshot, merged into the parent session in leaf order.
    new_cache_entries: Vec<CacheEntry>,
}

/// Renames a warning's node/element attribution to carry the leaf block
/// id, so degenerate sub-blocks are directly identifiable in telemetry.
fn tag_warning(w: &Warning, block: usize) -> Warning {
    let tag = |s: &str| format!("{s}@block{block}");
    match w {
        Warning::PerturbedPivot {
            node,
            pivot,
            replaced_with,
        } => Warning::PerturbedPivot {
            node: tag(node),
            pivot: *pivot,
            replaced_with: *replaced_with,
        },
        Warning::PrunedFloatingInternal { node } => {
            Warning::PrunedFloatingInternal { node: tag(node) }
        }
        Warning::DisconnectedPort { node } => Warning::DisconnectedPort { node: tag(node) },
        Warning::DuplicateElementName { name, count } => Warning::DuplicateElementName {
            name: tag(name),
            count: *count,
        },
        Warning::ZeroValueElement { name } => Warning::ZeroValueElement { name: tag(name) },
    }
}

/// Leaf pipeline phases renamed so top-pass phases (which keep the flat
/// names) stay distinguishable in the telemetry tables.
fn leaf_phase_name(name: &'static str) -> &'static str {
    match name {
        "partition" => "leaf_partition",
        "factor" => "leaf_factor",
        "moments" => "leaf_moments",
        "eigen" => "leaf_eigen",
        "projection" => "leaf_projection",
        _ => "leaf_other",
    }
}

/// Sanitizes and reduces one leaf block with the flat pipeline inside a
/// transient session seeded with the parent cache snapshot.
/// Factorization failures are remapped (via node names) into the parent
/// network's internal numbering so top-level attribution stays correct.
fn reduce_leaf(
    leaf: &LeafBlock,
    parent: &RcNetwork,
    opts: &ReduceOptions,
    snapshot: &SymbolicCache,
) -> Result<LeafOutcome, ReduceError> {
    let report = sanitize_network(&leaf.network)?;
    // Every leaf looks up against the same snapshot, so cache hits (and
    // the factorizations/refactorizations counters) are independent of
    // how leaves are assigned to workers.
    let base = snapshot.next_seq();
    let mut session = ReductionSession::with_cache(opts.clone(), snapshot.clone());
    let reduction = session
        .reduce_network_flat(&report.network, "leaf")
        .map_err(|e| {
            let e = remap_factor_index(e, &report.network, &leaf.network);
            remap_factor_index(e, &leaf.network, parent)
        })?;
    Ok(LeafOutcome {
        reduction,
        sanitize_warnings: report.warnings,
        new_cache_entries: session.cache_entries_since(base),
    })
}

/// Hierarchical divide-and-conquer reduction (see [`crate::hier`]).
///
/// Falls back to the flat pipeline when the partition produces at most
/// one block (tiny networks, or `max_block ≥ n`).
pub(crate) fn reduce_network_hier(
    session: &mut ReductionSession,
    network: &RcNetwork,
    max_block: usize,
    max_depth: usize,
) -> Result<Reduction, ReduceError> {
    let start = Instant::now();
    let opts = session.options().clone();
    let m = network.num_ports;
    let n_int = network.num_internal();
    let mut tel = Telemetry::new();

    let tree = tel.time("partition_tree", || {
        PartitionTree::build(network, max_block, max_depth)
    });

    if tree.leaves.len() <= 1 {
        // Nothing to divide: run flat, but keep the hier bookkeeping so
        // telemetry still says what happened.
        let mut red = session.reduce_network_flat(network, "flat")?;
        tel.absorb(&red.telemetry);
        let c = &mut tel.counters;
        c.hier_blocks = tree.leaves.len().max(1) as u64;
        c.hier_tree_depth = tree.depth as u64;
        c.hier_max_block_nodes = n_int as u64;
        red.telemetry = tel;
        return Ok(red);
    }

    // Leaves keep poles up to a guarded cutoff so truncation error stays
    // negligible relative to the user tolerance; an overflow of the
    // guard multiplication (absurdly high f_c) falls back to the user
    // cutoff, which only keeps fewer leaf poles.
    let leaf_cutoff =
        CutoffSpec::from_cutoff_frequency(LEAF_CUTOFF_GUARD * opts.cutoff.cutoff_frequency())
            .unwrap_or(opts.cutoff);
    let mut leaf_opts = opts.clone();
    leaf_opts.cutoff = leaf_cutoff;
    leaf_opts.threads = Some(1); // one worker per leaf; fan-out is outside
    leaf_opts.strategy = ReduceStrategy::Flat;
    // Under the guarded cutoff a leaf keeps a large fraction of its
    // spectrum, which is exactly the regime where an iterative extremal
    // solver (Lanczos) degenerates into full-spectrum iteration with
    // massive reorthogonalization. Blocks are bounded by `max_block`, so
    // solve them with the low-rank/dense path; `opts.eigen_backend`
    // still governs the top-level pass, where the spectral problem has
    // the usual few-poles-in-band shape.
    leaf_opts.eigen_backend = EigenSelect::LowRank;

    // Every leaf session starts from the same snapshot of the parent
    // cache, so lookups are independent of worker assignment.
    let snapshot = session.cache_snapshot();

    // Fan the leaves across workers; results come back in leaf order so
    // the merge below is bit-identical for every thread count.
    let ctx = ParCtx::new(opts.threads);
    let leaf_start = Instant::now();
    let outcomes: Vec<Result<LeafOutcome, ReduceError>> = ctx.map_items(
        tree.leaves.len(),
        || (),
        |_, k| reduce_leaf(&tree.leaves[k], network, &leaf_opts, &snapshot),
    );
    tel.record_phase("leaf_reduce", leaf_start.elapsed().as_secs_f64());

    let mut models = Vec::with_capacity(tree.leaves.len());
    let mut leaf_poles = 0u64;
    let mut chol_nnz = 0usize;
    let mut chol_memory = 0usize;
    let mut modelled_memory = 0usize;
    for (leaf, outcome) in tree.leaves.iter().zip(outcomes) {
        let o = outcome?; // first failing leaf (in tree order) aborts
        session.cache_extend(o.new_cache_entries);
        for w in &o.sanitize_warnings {
            match w {
                Warning::PrunedFloatingInternal { .. } => tel.counters.pruned_internal_nodes += 1,
                Warning::DisconnectedPort { .. } => tel.counters.disconnected_ports += 1,
                Warning::ZeroValueElement { .. } => tel.counters.zero_value_elements += 1,
                _ => {}
            }
            tel.warn(tag_warning(w, leaf.id));
        }
        let ltel = &o.reduction.telemetry;
        for p in &ltel.phases {
            tel.record_phase(leaf_phase_name(p.name), p.seconds);
        }
        for w in &ltel.warnings {
            tel.warn(tag_warning(w, leaf.id));
        }
        for ec in &ltel.eigen_choices {
            let mut ec = ec.clone();
            ec.scope = format!("leaf{}", leaf.id);
            tel.eigen_choices.push(ec);
        }
        // Size/pole counters describing the leaf sub-problems are
        // reported through the hier_* fields; the flat-shaped fields
        // must describe the original network, so zero them before
        // accumulating the rest (work counters, peaks).
        let mut lc = ltel.counters;
        leaf_poles += lc.poles_retained;
        lc.num_ports = 0;
        lc.num_internal = 0;
        lc.poles_retained = 0;
        lc.poles_dropped = 0;
        tel.counters.add(&lc);
        chol_nnz += o.reduction.stats.chol_nnz;
        chol_memory += o.reduction.stats.chol_memory_bytes;
        modelled_memory = modelled_memory.max(o.reduction.stats.modelled_memory_bytes);
        models.push(o.reduction.model);
    }

    let stitched = tel.time("stitch", || stitch(network, &tree, &models));
    let port_names: Vec<String> = network.node_names[..m].to_vec();
    let internal_names = stitched.internal_names;
    let nsep = tree.separators.len();
    let top = session
        .reduce_stamped_scoped(
            &stitched.stamped,
            &port_names,
            &|i| {
                internal_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("internal#{i}"))
            },
            "top",
        )
        .map_err(|e| match e {
            // A singular pivot on a separator row maps back to an original
            // internal node; pole-node rows (identity diagonal) cannot fail.
            ReduceError::Factor(FactorError::NotPositiveDefinite { step, index, pivot })
                if index < nsep =>
            {
                ReduceError::Factor(FactorError::NotPositiveDefinite {
                    step,
                    index: tree.separators[index] - m,
                    pivot,
                })
            }
            ReduceError::Factor(FactorError::NonFinitePivot { step, index, pivot })
                if index < nsep =>
            {
                ReduceError::Factor(FactorError::NonFinitePivot {
                    step,
                    index: tree.separators[index] - m,
                    pivot,
                })
            }
            other => other,
        })?;

    for p in &top.telemetry.phases {
        tel.record_phase(p.name, p.seconds);
    }
    for w in &top.telemetry.warnings {
        tel.warn(w.clone());
    }
    tel.eigen_choices
        .extend(top.telemetry.eigen_choices.iter().cloned());
    let mut tc = top.telemetry.counters;
    tc.num_ports = 0;
    tc.num_internal = 0;
    tc.poles_retained = 0;
    tc.poles_dropped = 0;
    tel.counters.add(&tc);

    let poles = top.model.num_poles();
    let c = &mut tel.counters;
    c.num_ports = m as u64;
    c.num_internal = n_int as u64;
    c.poles_retained = poles as u64;
    c.poles_dropped = (n_int as u64).saturating_sub(poles as u64);
    c.hier_blocks = tree.leaves.len() as u64;
    c.hier_separator_nodes = tree.separators.len() as u64;
    c.hier_max_block_nodes = tree.max_block_nodes as u64;
    c.hier_max_separator_nodes = tree.max_separator_nodes as u64;
    c.hier_leaf_poles_retained = leaf_poles;
    c.hier_portless_blocks_dropped = tree.portless_dropped as u64;
    c.hier_tree_depth = tree.depth as u64;

    let stats = ReductionStats {
        num_ports: m,
        num_internal: n_int,
        poles_retained: poles,
        elapsed_seconds: start.elapsed().as_secs_f64(),
        chol_nnz: chol_nnz + top.stats.chol_nnz,
        chol_memory_bytes: chol_memory + top.stats.chol_memory_bytes,
        modelled_memory_bytes: modelled_memory.max(top.stats.modelled_memory_bytes),
        lanczos: top.stats.lanczos,
    };

    Ok(Reduction {
        model: top.model,
        stats,
        telemetry: tel,
    })
}
