//! Hierarchical divide-and-conquer reduction.
//!
//! PACT's flat pipeline factors the whole internal block `D` at once and
//! eigendecomposes one `E'` of dimension `n`; this module breaks that
//! monolith apart. The internal-node graph is split by nested-dissection
//! vertex separators ([`PartitionTree`]), each leaf block is reduced
//! independently — its separator neighbors promoted to temporary ports —
//! and the per-block reduced models are stitched back together
//! ([`stitch`]) into a much smaller network over
//! `ports ∪ separators ∪ leaf poles`, which a final flat pass reduces to
//! the delivered model.
//!
//! Leaves run the two-level Schur path of the (crate-private)
//! `hier::leaf` module:
//! internals are eliminated through a symbolic-cache-shared Cholesky
//! factor (the `leaf_reuse` pre-pass analyzes each distinct pattern
//! once per fan-out), the pole content comes from a small `c×c` Gram
//! eigenproblem, and residues are read off the moment panel — no
//! per-pole solves. Sub-cutoff poles are trimmed against an explicit
//! per-leaf error budget instead of the blanket [`LEAF_CUTOFF_GUARD`]
//! retention, which the fallback (non-low-rank-capacitance) leaf path
//! still uses.
//!
//! ## Why composition is sound
//!
//! Reducing a leaf with its boundary promoted to ports is a congruence
//! transformation of the leaf's `(G, C)` contribution; embedding it back
//! extends that congruence by identity on everything outside the leaf.
//! The composition of congruences is a congruence, so non-negative
//! definiteness — and therefore passivity — survives the whole tree, and
//! the first two port moments compose exactly (leaf `A'`/`B'` are exact,
//! and the top pass matches the stitched network's moments exactly).
//! The only approximation is pole truncation: two-level leaves drop
//! sub-cutoff poles only while their worst-case in-band contribution
//! (`ω_max²‖r_p‖²` each) fits a per-leaf budget, and fallback leaves
//! drop only poles a factor [`LEAF_CUTOFF_GUARD`] above the band — in
//! both regimes the discrepancy against a flat reduction stays far
//! below the user tolerance in-band.
//!
//! ## Determinism
//!
//! Leaves fan out across [`pact_sparse::ParCtx`] workers but each leaf
//! is reduced single-threaded by exactly one worker and the results are
//! merged in leaf order, so the delivered model and every telemetry
//! counter are bit-identical for any `--threads` value.

mod hier_reduce;
pub(crate) mod leaf;
mod partition_tree;
mod stitch;

pub(crate) use hier_reduce::reduce_network_hier;
pub use hier_reduce::LEAF_CUTOFF_GUARD;
pub use partition_tree::{LeafBlock, PartitionTree};
pub use stitch::{stitch, Stitched};
